// Figure 9 (range queries): maximum short-range-scan throughput vs dataset
// size (YCSB short-ranges: each query scans the window (k - R, k]). Paper
// claim: MiniCrypt consistently beats both comparison clients — it ships
// whole compressed packs while the vanilla client is network-bound on
// uncompressed rows.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  // The range length is NOT scaled down: with short ranges the per-partition
  // boundary-pack fetch (Figure 4 line 5, one per hash partition) dominates
  // and distorts the comparison; at the paper's 1000-key ranges it amortizes
  // to ~30% as in the paper.
  const double scale = BenchScale();
  const size_t cache_per_node = static_cast<size_t>(6.0 * scale * 1024 * 1024);
  const uint64_t range_len = 1000;
  const std::vector<double> raw_mbs = {4, 12, 16, 24};
  const std::vector<std::string> systems = {"minicrypt", "baseline", "vanilla"};
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");

  std::printf("# Figure 9 (range queries): throughput (scans/s) vs dataset size\n");
  std::printf("# range=%llu keys, cache/node=%.1fMB\n",
              static_cast<unsigned long long>(range_len), cache_per_node / 1048576.0);

  std::map<std::string, std::map<std::string, std::vector<double>>> results;
  for (MediaKind media : {MediaKind::kSsd, MediaKind::kDisk}) {
    std::printf("\n%-6s %-9s", "media", "raw_MB");
    for (const auto& s : systems) {
      std::printf(" %-12s", s.c_str());
    }
    std::printf("\n");
    for (double raw_mb : raw_mbs) {
      const auto row_count =
          static_cast<uint64_t>(raw_mb * scale * 1024 * 1024 / 1100.0);
      const auto rows = ConvivaRows(row_count);
      std::printf("%-6s %-9.1f", MediaName(media), raw_mb * scale);
      for (const auto& system : systems) {
        Cluster cluster(PaperCluster(media, cache_per_node));
        MiniCryptOptions options;
        options.pack_rows = 50;
        auto facade = MakeSystem(system, &cluster, options, key);
        PreloadAndWarm(*facade, cluster, options, rows);

        DriverConfig config;
        config.threads = 8;
        config.warmup_micros = 400'000;
        // Longer window than the point bench: scans are ~10 ms each, so a
        // short window has high variance.
        config.run_micros = static_cast<uint64_t>(2'000'000 * scale);
        const DriverResult r = RunClosedLoop(config, [&](int thread, uint64_t index) {
          thread_local UniformChooser chooser(row_count,
                                              0x51de + static_cast<uint64_t>(thread));
          const uint64_t hi = chooser.Next();
          const uint64_t lo = hi >= range_len ? hi - range_len + 1 : 0;
          auto out = facade->GetRange(lo, hi);
          return out.ok() && !out->empty();
        });
        std::printf(" %-12.1f", r.throughput_ops_s);
        std::fflush(stdout);
        results[MediaName(media)][system].push_back(r.throughput_ops_s);
      }
      std::printf("\n");
    }
  }

  // Shape checks: MiniCrypt wins (within measurement noise — 10% — at the
  // in-memory end, where the paper shows the curves closest) at every size;
  // gain within the paper's reported 5-40x band (we accept >= 2x given
  // scaling).
  bool always_wins = true;
  int strict_wins = 0;
  int cells = 0;
  double max_gain = 0.0;
  for (const char* media : {"ssd", "disk"}) {
    for (size_t i = 0; i < raw_mbs.size(); ++i) {
      const double mc = results[media]["minicrypt"][i];
      const double base = results[media]["baseline"][i];
      const double van = results[media]["vanilla"][i];
      // In-memory cells (the smallest size) run closest together in the
      // paper's figure too; allow 25% noise there and 10% elsewhere.
      const double tolerance = i == 0 ? 0.75 : 0.9;
      if (mc < base * tolerance || mc < van * tolerance) {
        always_wins = false;
      }
      if (mc > base && mc > van) {
        ++strict_wins;
      }
      ++cells;
      max_gain = std::max(max_gain, mc / base);
    }
  }
  const bool mostly_strict = strict_wins * 4 >= cells * 3;  // >= 75% of cells
  std::printf("\n# max gain over encrypted baseline: %.1fx; strict wins %d/%d\n", max_gain,
              strict_wins, cells);
  std::printf("# shape-check: minicrypt-wins-all-range-sizes=%s gain>=2x=%s\n",
              (always_wins && mostly_strict) ? "PASS" : "FAIL",
              max_gain >= 2.0 ? "PASS" : "FAIL");
  return (always_wins && mostly_strict && max_gain >= 2.0) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
