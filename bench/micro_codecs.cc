// Micro-benchmarks (google-benchmark): codec compress/decompress throughput
// on a 50-row Conviva-like pack, the crypto primitives, and the pack codec
// operations. These quantify the client-side CPU costs behind the figures.
//
// All setup (payloads, keys, pre-compressed/encrypted inputs, pack copies)
// happens outside the timed region, and every benchmark reports allocs/op
// via the counting operator new in bench/alloc_counter.h.

#include <benchmark/benchmark.h>

#include "bench/alloc_counter.h"
#include "src/common/coding.h"
#include "src/compress/compressor.h"
#include "src/core/pack.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

std::string PackPayload() {
  auto dataset = MakeDataset("conviva", 3);
  std::string payload;
  for (int i = 0; i < 50; ++i) {
    payload += dataset->Row(static_cast<uint64_t>(i));
  }
  return payload;
}

uint64_t AllocsNow() {
  return AllocCounter().load(std::memory_order_relaxed);
}

// Reports heap allocations per iteration for the span since `allocs_before`.
void ReportAllocs(benchmark::State& state, uint64_t allocs) {
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}

void BM_Compress(benchmark::State& state, const char* codec_name) {
  const Compressor* codec = FindCompressor(codec_name);
  const std::string payload = PackPayload();
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = codec->Compress(payload);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}

void BM_Decompress(benchmark::State& state, const char* codec_name) {
  const Compressor* codec = FindCompressor(codec_name);
  const std::string payload = PackPayload();
  const std::string compressed = *codec->Compress(payload);
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = codec->Decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}

BENCHMARK_CAPTURE(BM_Compress, snappylike, "snappylike");
BENCHMARK_CAPTURE(BM_Compress, lz4like, "lz4like");
BENCHMARK_CAPTURE(BM_Compress, zlib, "zlib");
BENCHMARK_CAPTURE(BM_Compress, bzip2like, "bzip2like");
BENCHMARK_CAPTURE(BM_Compress, lzmalike, "lzmalike");
BENCHMARK_CAPTURE(BM_Decompress, snappylike, "snappylike");
BENCHMARK_CAPTURE(BM_Decompress, lz4like, "lz4like");
BENCHMARK_CAPTURE(BM_Decompress, zlib, "zlib");
BENCHMARK_CAPTURE(BM_Decompress, bzip2like, "bzip2like");
BENCHMARK_CAPTURE(BM_Decompress, lzmalike, "lzmalike");

void BM_AesGcmSeal(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string iv(kAesGcmIvBytes, '\x07');
  const std::string payload = PackPayload();
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = AesGcmEncryptWithIv(key, iv, payload);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_AesGcmSeal);

void BM_AesGcmOpen(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string envelope = *AesGcmEncrypt(key, PackPayload());
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = AesGcmDecrypt(key, envelope);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * envelope.size()));
}
BENCHMARK(BM_AesGcmOpen);

void BM_AesCbcEncrypt(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string payload = PackPayload();
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = AesCbcEncrypt(key, payload);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_AesCbcEncrypt);

void BM_AesCbcDecrypt(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string envelope = *AesCbcEncrypt(key, PackPayload());
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto out = AesCbcDecrypt(key, envelope);
    benchmark::DoNotOptimize(out);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * envelope.size()));
}
BENCHMARK(BM_AesCbcDecrypt);

void BM_Sha256Hash(benchmark::State& state) {
  const std::string payload = PackPayload();
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(payload));
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_Sha256Hash);

void BM_PackSealOpen(benchmark::State& state) {
  MiniCryptOptions options;
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  PackCrypter crypter(options, key);
  auto dataset = MakeDataset("conviva", 3);
  Pack pack;
  for (uint64_t i = 0; i < 50; ++i) {
    pack.Upsert(EncodeKey64(i), dataset->Row(i));
  }
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    auto sealed = crypter.Seal(pack);
    auto opened = crypter.Open(sealed->envelope);
    benchmark::DoNotOptimize(opened);
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
}
BENCHMARK(BM_PackSealOpen);

void BM_PackUpsertSplit(benchmark::State& state) {
  auto dataset = MakeDataset("conviva", 3);
  Pack pack;
  for (uint64_t i = 0; i < 75; ++i) {
    pack.Upsert(EncodeKey64(i * 2), dataset->Row(i));
  }
  // The deep copy is setup (upsert/split mutate), so it runs with timing
  // paused; the alloc counter likewise only covers the timed region.
  uint64_t timed_allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Pack copy = pack;
    state.ResumeTiming();
    const uint64_t allocs_before = AllocsNow();
    copy.Upsert(EncodeKey64(51), "new value");
    auto halves = copy.SplitDeterministic();
    benchmark::DoNotOptimize(halves);
    timed_allocs += AllocsNow() - allocs_before;
  }
  ReportAllocs(state, timed_allocs);
}
BENCHMARK(BM_PackUpsertSplit);

void BM_PackIdPrf(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  uint64_t bucket = 0;
  const uint64_t allocs_before = AllocsNow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, EncodeKey64(bucket++)));
  }
  ReportAllocs(state, AllocsNow() - allocs_before);
}
BENCHMARK(BM_PackIdPrf);

}  // namespace
}  // namespace minicrypt

BENCHMARK_MAIN();
