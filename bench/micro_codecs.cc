// Micro-benchmarks (google-benchmark): codec compress/decompress throughput
// on a 50-row Conviva-like pack, the crypto primitives, and the pack codec
// operations. These quantify the client-side CPU costs behind the figures.

#include <benchmark/benchmark.h>

#include "src/common/coding.h"
#include "src/compress/compressor.h"
#include "src/core/pack.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

std::string PackPayload() {
  auto dataset = MakeDataset("conviva", 3);
  std::string payload;
  for (int i = 0; i < 50; ++i) {
    payload += dataset->Row(static_cast<uint64_t>(i));
  }
  return payload;
}

void BM_Compress(benchmark::State& state, const char* codec_name) {
  const Compressor* codec = FindCompressor(codec_name);
  const std::string payload = PackPayload();
  for (auto _ : state) {
    auto out = codec->Compress(payload);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}

void BM_Decompress(benchmark::State& state, const char* codec_name) {
  const Compressor* codec = FindCompressor(codec_name);
  const std::string payload = PackPayload();
  const std::string compressed = *codec->Compress(payload);
  for (auto _ : state) {
    auto out = codec->Decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}

BENCHMARK_CAPTURE(BM_Compress, snappylike, "snappylike");
BENCHMARK_CAPTURE(BM_Compress, lz4like, "lz4like");
BENCHMARK_CAPTURE(BM_Compress, zlib, "zlib");
BENCHMARK_CAPTURE(BM_Compress, bzip2like, "bzip2like");
BENCHMARK_CAPTURE(BM_Compress, lzmalike, "lzmalike");
BENCHMARK_CAPTURE(BM_Decompress, snappylike, "snappylike");
BENCHMARK_CAPTURE(BM_Decompress, lz4like, "lz4like");
BENCHMARK_CAPTURE(BM_Decompress, zlib, "zlib");
BENCHMARK_CAPTURE(BM_Decompress, bzip2like, "bzip2like");
BENCHMARK_CAPTURE(BM_Decompress, lzmalike, "lzmalike");

void BM_AesEncrypt(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string payload = PackPayload();
  for (auto _ : state) {
    auto out = AesCbcEncrypt(key, payload);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_AesEncrypt);

void BM_AesDecrypt(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string envelope = *AesCbcEncrypt(key, PackPayload());
  for (auto _ : state) {
    auto out = AesCbcDecrypt(key, envelope);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * envelope.size()));
}
BENCHMARK(BM_AesDecrypt);

void BM_Sha256Hash(benchmark::State& state) {
  const std::string payload = PackPayload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_Sha256Hash);

void BM_PackSealOpen(benchmark::State& state) {
  MiniCryptOptions options;
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  PackCrypter crypter(options, key);
  auto dataset = MakeDataset("conviva", 3);
  Pack pack;
  for (uint64_t i = 0; i < 50; ++i) {
    pack.Upsert(EncodeKey64(i), dataset->Row(i));
  }
  for (auto _ : state) {
    auto sealed = crypter.Seal(pack);
    auto opened = crypter.Open(sealed->envelope);
    benchmark::DoNotOptimize(opened);
  }
}
BENCHMARK(BM_PackSealOpen);

void BM_PackUpsertSplit(benchmark::State& state) {
  auto dataset = MakeDataset("conviva", 3);
  Pack pack;
  for (uint64_t i = 0; i < 75; ++i) {
    pack.Upsert(EncodeKey64(i * 2), dataset->Row(i));
  }
  for (auto _ : state) {
    Pack copy = pack;
    copy.Upsert(EncodeKey64(51), "new value");
    auto halves = copy.SplitDeterministic();
    benchmark::DoNotOptimize(halves);
  }
}
BENCHMARK(BM_PackUpsertSplit);

void BM_PackIdPrf(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  uint64_t bucket = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, EncodeKey64(bucket++)));
  }
}
BENCHMARK(BM_PackIdPrf);

}  // namespace
}  // namespace minicrypt

BENCHMARK_MAIN();
