// §8.1.1 latency table: single-threaded point-read latency on an in-memory
// database (advantageous for the baseline), MiniCrypt vs encrypted baseline.
// Paper: baseline ~1.019 ms, MiniCrypt ~1.199 ms — MiniCrypt pays a modest
// client-side decompression/decryption premium, nothing more.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  const double scale = BenchScale();
  const auto row_count = static_cast<uint64_t>(5.0 * scale * 1024 * 1024 / 1100.0);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);

  std::printf("# 8.1.1 latency table: single-threaded point reads, %.1f MB in memory, SSD\n",
              5.0 * scale);
  std::printf("%-12s %-12s %-12s %-12s\n", "system", "mean_us", "p50_us", "p99_us");

  double mean_baseline = 0;
  double mean_minicrypt = 0;
  for (const char* system : {"baseline", "minicrypt"}) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    MiniCryptOptions options;
    options.pack_rows = 50;
    auto facade = MakeSystem(system, &cluster, options, key);
    PreloadAndWarm(*facade, cluster, options, rows);

    DriverConfig config;
    config.threads = 1;
    config.warmup_micros = 200'000;
    config.run_micros = static_cast<uint64_t>(1'500'000 * scale);
    const DriverResult r = RunClosedLoop(config, [&](int thread, uint64_t index) {
      thread_local UniformChooser chooser(row_count, 0x133);
      return facade->Get(chooser.Next()).ok();
    });
    std::printf("%-12s %-12.1f %-12.0f %-12.0f\n", system, r.latency.Mean(),
                r.latency.Percentile(0.5), r.latency.Percentile(0.99));
    if (std::string_view(system) == "baseline") {
      mean_baseline = r.latency.Mean();
    } else {
      mean_minicrypt = r.latency.Mean();
    }
  }

  // Shape check: MiniCrypt's in-memory latency premium is modest — the paper
  // measured +18%; accept anything under +150% at our scale.
  const double premium = mean_minicrypt / mean_baseline;
  std::printf("\n# minicrypt/baseline latency ratio: %.2f (paper: ~1.18)\n", premium);
  const bool pass = premium > 0.9 && premium < 2.5;
  std::printf("# shape-check: modest-latency-premium=%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
