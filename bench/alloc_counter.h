// Global operator new/delete replacements that count heap allocations, so
// benchmarks can report allocs/op alongside ns/op (a kernel win that trades
// time for allocation churn is not a win).
//
// Include from exactly ONE translation unit per binary — the replacement
// functions here are definitions, not declarations. The count is read
// through AllocCounter() in bench_util.h, which benches can use whether or
// not the counting replacements are linked in (it just stays 0 without them).

#ifndef MINICRYPT_BENCH_ALLOC_COUNTER_H_
#define MINICRYPT_BENCH_ALLOC_COUNTER_H_

#include <cstdlib>
#include <new>

#include "bench/bench_util.h"

// GCC flags free() inside a replaced operator delete because it cannot see
// that the matching operator new above also uses malloc. The pairing is
// correct by construction here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  minicrypt::AllocCounter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  minicrypt::AllocCounter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t& tag) noexcept {
  return ::operator new(n, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#pragma GCC diagnostic pop

#endif  // MINICRYPT_BENCH_ALLOC_COUNTER_H_
