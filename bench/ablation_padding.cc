// Ablation for §2.5's padding-tier trade-off: padding packs to size tiers
// reduces what the server learns from pack sizes at the cost of compression.
// Quantifies, per tier scheme: the at-rest expansion vs no padding, and the
// number of distinct sizes the server observes.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/pack_crypter.h"

namespace minicrypt {
namespace {

struct Scheme {
  const char* label;
  PaddingTiers tiers;
};

int Main() {
  const auto row_count = static_cast<uint64_t>(3000 * BenchScale());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);

  const std::vector<Scheme> schemes = {
      {"none", PaddingTiers::None()},
      {"exp-1KiB-x8", PaddingTiers::Exponential(1024, 8)},
      {"exp-4KiB-x6", PaddingTiers::Exponential(4096, 6)},
      {"sml-4/16/64K", PaddingTiers::SmallMediumLarge(4096, 16384, 65536)},
  };

  std::printf("# ablation: padding tiers vs compression (pack=50 conviva rows)\n");
  std::printf("%-14s %-12s %-14s %-16s\n", "scheme", "ratio", "overhead_pct",
              "visible_sizes");

  size_t raw_bytes = RawBytes(rows);
  double none_bytes = 0;
  bool shrinking_sizes = true;
  size_t prev_visible = SIZE_MAX;
  for (const Scheme& scheme : schemes) {
    MiniCryptOptions options;
    options.pack_rows = 50;
    options.padding = scheme.tiers;
    PackCrypter crypter(options, key);

    size_t sealed_bytes = 0;
    std::set<size_t> visible;
    std::vector<Pack::Entry> chunk;
    for (const auto& [k, v] : rows) {
      chunk.push_back(Pack::Entry{EncodeKey64(k), v});
      if (chunk.size() == options.pack_rows) {
        auto pack = Pack::FromSorted(std::move(chunk));
        chunk.clear();
        auto sealed = crypter.Seal(*pack);
        sealed_bytes += sealed->envelope.size();
        visible.insert(sealed->envelope.size());
      }
    }
    const double ratio = static_cast<double>(raw_bytes) / static_cast<double>(sealed_bytes);
    if (none_bytes == 0) {
      none_bytes = static_cast<double>(sealed_bytes);
    }
    const double overhead =
        (static_cast<double>(sealed_bytes) - none_bytes) / none_bytes * 100.0;
    std::printf("%-14s %-12.2f %-14.1f %-16zu\n", scheme.label, ratio, overhead,
                visible.size());
    if (scheme.tiers.enabled()) {
      if (visible.size() > prev_visible) {
        shrinking_sizes = false;
      }
      prev_visible = visible.size();
    }
  }

  // Shape check: coarser tiers leak fewer sizes and cost bounded compression
  // (the paper calls this "a tradeoff between compression and security").
  std::printf("\n# shape-check: coarser-tiers-leak-fewer-sizes=%s\n",
              shrinking_sizes ? "PASS" : "FAIL");
  return shrinking_sizes ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
