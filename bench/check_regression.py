#!/usr/bin/env python3
"""Compare a perf_suite BENCH_*.json run against a committed baseline.

Usage:
    check_regression.py --baseline bench/baselines/BENCH_baseline.json \
                        --current BENCH_<rev>.json [--tolerance 0.10]

Policy (see docs/PERF.md):
  * Cells are compared by normalized throughput: each run's cell throughput
    is divided by that run's calibration.memcpy_1m throughput, so a slower
    CI machine does not read as a code regression.
  * A cell fails if its normalized throughput drops by more than the
    tolerance (default 10%, override with --tolerance or MC_PERF_TOLERANCE).
  * Cells with no byte volume (mb_per_s == 0) are compared on 1/ns_per_op.
  * Latency cells (those carrying a p99_us field, emitted by load_harness)
    are exempt from the throughput gate and instead fail when current p99
    exceeds baseline p99 by more than the latency tolerance (default 50%,
    override with --latency-tolerance or MC_PERF_LATENCY_TOLERANCE; tail
    latency under open-loop load is far noisier than kernel throughput).
    Simulated media/network sleeps dominate these latencies, so they are
    compared raw, without the memcpy normalization.
  * Runs at different dispatch levels are never compared (exit 3) — a
    scalar-forced run against an avx2 baseline would fail everything.
  * When the run is at a non-scalar dispatch level, the pack encode+decode
    pair must additionally show >= 1.5x combined speedup over the
    forced-scalar cells from the SAME run (the SIMD acceptance gate; both
    sides share machine noise so no normalization is needed).
  * Cells present in only one file are reported but do not fail the gate
    (new cells need a baseline refresh; see docs/PERF.md).

Exit codes: 0 ok, 1 regression/gate failure, 2 usage/IO error,
3 incomparable runs (schema or dispatch mismatch).
"""

import argparse
import json
import os
import sys

SCHEMA = "mc-bench-v1"
CALIBRATION_CELL = "calibration.memcpy_1m"
PACK_SPEEDUP_GATE = 1.5
PACK_CELLS = ("pack.encode.50rows", "pack.decode.50rows")
PACK_SCALAR_CELLS = ("pack.scalar.encode.50rows", "pack.scalar.decode.50rows")


def load_run(path):
    try:
        with open(path) as f:
            run = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if run.get("schema") != SCHEMA:
        print(f"error: {path}: schema {run.get('schema')!r} != {SCHEMA!r}",
              file=sys.stderr)
        sys.exit(3)
    cells = {c["name"]: c for c in run.get("cells", [])}
    if CALIBRATION_CELL not in cells:
        print(f"error: {path}: missing {CALIBRATION_CELL}", file=sys.stderr)
        sys.exit(3)
    return run, cells


def throughput(cell):
    """Comparable per-cell throughput: MB/s, or ops/s for byte-less cells."""
    if cell.get("mb_per_s", 0) > 0:
        return cell["mb_per_s"]
    ns = cell.get("ns_per_op", 0)
    return 1e9 / ns if ns > 0 else 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("MC_PERF_TOLERANCE", "0.10")),
        help="allowed fractional drop in normalized throughput (default 0.10)")
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=float(os.environ.get("MC_PERF_LATENCY_TOLERANCE", "0.50")),
        help="allowed fractional p99 increase for latency cells (default 0.50)")
    args = parser.parse_args()

    base_run, base_cells = load_run(args.baseline)
    cur_run, cur_cells = load_run(args.current)

    base_level = base_run.get("dispatch_level", "?")
    cur_level = cur_run.get("dispatch_level", "?")
    if base_level != cur_level:
        print(f"error: dispatch level mismatch: baseline={base_level} "
              f"current={cur_level}; refusing to compare", file=sys.stderr)
        sys.exit(3)

    base_cal = throughput(base_cells[CALIBRATION_CELL])
    cur_cal = throughput(cur_cells[CALIBRATION_CELL])
    if base_cal <= 0 or cur_cal <= 0:
        print("error: calibration cell has no throughput", file=sys.stderr)
        sys.exit(3)
    print(f"calibration: baseline {base_cal:.0f} MB/s, current {cur_cal:.0f} "
          f"MB/s (machine ratio {cur_cal / base_cal:.3f})")

    failures = []
    for name in sorted(base_cells):
        if name == CALIBRATION_CELL:
            continue
        if name not in cur_cells:
            print(f"  note: cell {name} missing from current run")
            continue
        base_p99 = base_cells[name].get("p99_us", 0)
        if base_p99 > 0:
            # Latency cell: gate the p99 tail directly (lower is better).
            cur_p99 = cur_cells[name].get("p99_us", 0)
            ratio = cur_p99 / base_p99
            status = "ok"
            if ratio > 1.0 + args.latency_tolerance:
                status = "REGRESSION"
                failures.append((name, ratio))
            print(f"  {name:32s} p99 {cur_p99:.0f}us vs {base_p99:.0f}us "
                  f"x{ratio:.3f} {status}")
            continue
        base_norm = throughput(base_cells[name]) / base_cal
        cur_norm = throughput(cur_cells[name]) / cur_cal
        if base_norm <= 0:
            continue
        ratio = cur_norm / base_norm
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append((name, ratio))
        print(f"  {name:32s} normalized x{ratio:.3f} {status}")
    for name in sorted(set(cur_cells) - set(base_cells)):
        print(f"  note: new cell {name} (no baseline; refresh the baseline "
              "to gate it)")

    # SIMD acceptance gate: dispatched pack encode+decode vs forced-scalar,
    # within the current run.
    if cur_level != "scalar":
        if all(c in cur_cells for c in PACK_CELLS + PACK_SCALAR_CELLS):
            simd_ns = sum(cur_cells[c]["ns_per_op"] for c in PACK_CELLS)
            scalar_ns = sum(cur_cells[c]["ns_per_op"] for c in PACK_SCALAR_CELLS)
            speedup = scalar_ns / simd_ns if simd_ns > 0 else 0.0
            print(f"pack encode+decode SIMD speedup: x{speedup:.2f} "
                  f"(gate >= x{PACK_SPEEDUP_GATE})")
            if speedup < PACK_SPEEDUP_GATE:
                failures.append(("pack.simd_speedup", speedup))
        else:
            print("warning: pack cells missing; SIMD speedup gate skipped")

    if failures:
        print(f"\nFAIL: {len(failures)} gate failure(s) "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: x{ratio:.3f}", file=sys.stderr)
        sys.exit(1)
    print("\nPASS: no regressions beyond tolerance "
          f"({args.tolerance:.0%})")


if __name__ == "__main__":
    main()
