// Figure 13: 50% read / 50% write workload on a preloaded database, versus
// the "interval" knob — the window of most-recent keys the reads draw from
// (YCSB read-most-recent). APPEND-mode MiniCrypt versus the encrypted
// baseline; MiniCrypt falls off as the interval grows because the reads and
// the merge process compete for cache/media.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

MiniCryptOptions AppendOptions() {
  MiniCryptOptions options;
  options.table = "ts";
  options.pack_rows = 50;
  options.epoch_micros = 800'000;
  options.t_delta_micros = 120'000;
  options.t_drift_micros = 120'000;
  options.heartbeat_micros = 120'000;
  options.client_timeout_micros = 4'000'000;
  options.merge_period_micros = 200'000;
  return options;
}

int Main() {
  const double scale = BenchScale();
  const double preload_mb = 16.0 * scale;
  const auto preload_rows_n =
      static_cast<uint64_t>(preload_mb * 1024 * 1024 / 1100.0);
  const std::vector<double> interval_mb = {0.5, 1, 2, 4, 8};
  const int clients = 8;
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  auto dataset = MakeDataset("conviva", 1);
  const auto preload = ConvivaRows(preload_rows_n);

  std::printf("# Figure 13: 50/50 read-latest/write throughput vs read interval,\n");
  std::printf("# preloaded %.1f MB, %d clients, SSD\n", preload_mb, clients);
  std::printf("%-12s %-12s %-12s %-12s\n", "interval_MB", "baseline", "mc-append", "mc-cache");

  std::vector<double> base_tp;
  std::vector<double> mc_tp;
  std::vector<double> mc_cache_tp;
  for (double mb : interval_mb) {
    const auto window = static_cast<uint64_t>(mb * 1024 * 1024 / 1100.0);

    // Baseline run.
    double baseline_result = 0;
    std::string baseline_metrics;
    {
      Cluster cluster(PaperCluster(MediaKind::kSsd, 8 * 1024 * 1024));
      MiniCryptOptions options = AppendOptions();
      EncryptedBaselineClient baseline(&cluster, options, key);
      (void)baseline.CreateTable();
      (void)baseline.BulkLoad(preload);
      (void)cluster.FlushAll();
      cluster.WarmCaches(options.table);
      MetricsRegistry::Instance().ResetAll();
      std::atomic<uint64_t> frontier{preload_rows_n};
      DriverConfig driver;
      driver.threads = clients;
      driver.warmup_micros = 200'000;
      driver.run_micros = static_cast<uint64_t>(1'000'000 * scale);
      const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
        thread_local LatestWindowChooser chooser(&frontier, window,
                                                 0xabc + static_cast<uint64_t>(thread));
        if (index % 2 == 0) {
          const uint64_t k = frontier.fetch_add(1, std::memory_order_relaxed);
          return baseline.Put(k, dataset->Row(k % 4096)).ok();
        }
        return baseline.Get(chooser.Next()).ok();
      });
      baseline_result = r.throughput_ops_s;
      baseline_metrics = MetricsJson();
    }

    // MiniCrypt APPEND run: preload lands as epoch-0 packs; mergers live.
    double mc_result = 0;
    std::string mc_metrics;
    {
      Cluster cluster(PaperCluster(MediaKind::kSsd, 8 * 1024 * 1024));
      MiniCryptOptions options = AppendOptions();
      EmService em(&cluster, options, "em0");
      (void)em.Bootstrap();
      (void)em.Tick();
      PreloadAppendPacks(cluster, options, key, preload);
      (void)cluster.FlushAll();
      cluster.WarmCaches(options.table);
      MetricsRegistry::Instance().ResetAll();
      em.Start(150'000);
      std::vector<std::unique_ptr<AppendClient>> workers;
      for (int c = 0; c < clients; ++c) {
        workers.push_back(std::make_unique<AppendClient>(&cluster, options, key,
                                                         "client-" + std::to_string(c)));
        (void)workers.back()->Register();
        workers.back()->Start();
      }
      std::atomic<uint64_t> frontier{preload_rows_n};
      DriverConfig driver;
      driver.threads = clients;
      driver.warmup_micros = 200'000;
      driver.run_micros = static_cast<uint64_t>(1'000'000 * scale);
      const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
        thread_local LatestWindowChooser chooser(&frontier, window,
                                                 0xdef + static_cast<uint64_t>(thread));
        AppendClient& worker = *workers[static_cast<size_t>(thread)];
        if (index % 2 == 0) {
          const uint64_t k = frontier.fetch_add(1, std::memory_order_relaxed);
          return worker.Put(k, dataset->Row(k % 4096)).ok();
        }
        return worker.Get(chooser.Next()).ok();
      });
      em.Stop();
      for (auto& w : workers) {
        w->Stop();
      }
      mc_result = r.throughput_ops_s;
      mc_metrics = MetricsJson();
    }

    // Same APPEND run with one shared decrypted-pack cache (ttl=0) across
    // all clients: merged-pack reads and merge-source fetches reuse cached
    // packs after a cheap version probe instead of re-reading and
    // re-decrypting them.
    double mc_cache_result = 0;
    std::string mc_cache_metrics;
    {
      Cluster cluster(PaperCluster(MediaKind::kSsd, 8 * 1024 * 1024));
      MiniCryptOptions options = AppendOptions();
      options.cache_capacity_bytes = 64u << 20;
      EmService em(&cluster, options, "em0");
      (void)em.Bootstrap();
      (void)em.Tick();
      PreloadAppendPacks(cluster, options, key, preload);
      (void)cluster.FlushAll();
      cluster.WarmCaches(options.table);
      MetricsRegistry::Instance().ResetAll();
      em.Start(150'000);
      auto shared_cache = std::make_shared<PackCache>(options.cache_capacity_bytes,
                                                      options.cache_ttl_micros,
                                                      cluster.options().clock);
      std::vector<std::unique_ptr<AppendClient>> workers;
      for (int c = 0; c < clients; ++c) {
        workers.push_back(std::make_unique<AppendClient>(&cluster, options, key,
                                                         "client-" + std::to_string(c),
                                                         cluster.options().clock, shared_cache));
        (void)workers.back()->Register();
        workers.back()->Start();
      }
      std::atomic<uint64_t> frontier{preload_rows_n};
      DriverConfig driver;
      driver.threads = clients;
      driver.warmup_micros = 200'000;
      driver.run_micros = static_cast<uint64_t>(1'000'000 * scale);
      const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
        thread_local LatestWindowChooser chooser(&frontier, window,
                                                 0xdef + static_cast<uint64_t>(thread));
        AppendClient& worker = *workers[static_cast<size_t>(thread)];
        if (index % 2 == 0) {
          const uint64_t k = frontier.fetch_add(1, std::memory_order_relaxed);
          return worker.Put(k, dataset->Row(k % 4096)).ok();
        }
        return worker.Get(chooser.Next()).ok();
      });
      em.Stop();
      for (auto& w : workers) {
        w->Stop();
      }
      mc_cache_result = r.throughput_ops_s;
      mc_cache_metrics = MetricsJson();
    }

    std::printf("%-12.1f %-12.0f %-12.0f %-12.0f\n", mb, baseline_result, mc_result,
                mc_cache_result);
    // Per-cell attribution: cache-hit rate, merge activity, and the
    // decrypt/decompress share of read latency (docs/METRICS.md).
    std::printf("# metrics interval_MB=%.1f baseline %s\n", mb, baseline_metrics.c_str());
    std::printf("# metrics interval_MB=%.1f mc-append %s\n", mb, mc_metrics.c_str());
    std::printf("# metrics interval_MB=%.1f mc-cache %s\n", mb, mc_cache_metrics.c_str());
    std::fflush(stdout);
    base_tp.push_back(baseline_result);
    mc_tp.push_back(mc_result);
    mc_cache_tp.push_back(mc_cache_result);
  }

  // Shape checks: MiniCrypt is competitive at small intervals and its curve
  // falls off as the interval grows (merge/read interference), while the
  // baseline stays comparatively flat.
  const double mc_small = mc_tp.front();
  const double mc_large = mc_tp.back();
  const double base_small = base_tp.front();
  const bool competitive_small = mc_small > base_small * 0.3;
  const bool falls_off = mc_large < mc_small;
  // The shared cache must not cost throughput: read-latest traffic revisits
  // recently merged packs, so mc-cache should at worst match mc-append.
  double cache_ratio_best = 0;
  for (size_t i = 0; i < mc_tp.size(); ++i) {
    cache_ratio_best = std::max(cache_ratio_best, mc_cache_tp[i] / mc_tp[i]);
  }
  const bool cache_not_slower = cache_ratio_best >= 0.9;
  std::printf("\n# mc small-interval/baseline=%.2f  mc large/small=%.2f  cache best-ratio=%.2f\n",
              mc_small / base_small, mc_large / mc_small, cache_ratio_best);
  std::printf(
      "# shape-check: competitive-at-small-interval=%s falls-off-with-interval=%s "
      "cache-not-slower=%s\n",
      competitive_small ? "PASS" : "FAIL", falls_off ? "PASS" : "FAIL",
      cache_not_slower ? "PASS" : "FAIL");
  return (competitive_small && falls_off && cache_not_slower) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
