// §2.4 strawman numbers: dictionary encoding applied per field of the
// Conviva-like dataset versus MiniCrypt's packing. The paper reports that
// dictionary encoding achieved only ~1.6x overall (great on low-cardinality
// columns, useless on high-cardinality ones) and that the shared table the
// clients must hold reached ~80% of the compressed data size.

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/compress/compressor.h"
#include "src/compress/strawman.h"

namespace minicrypt {
namespace {

// Splits a conviva row into "field=value" tokens.
std::vector<std::pair<std::string, std::string>> Fields(const std::string& row) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream stream(row);
  std::string token;
  while (stream >> token) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return out;
}

int Main() {
  const auto row_count = static_cast<uint64_t>(2000 * BenchScale());
  auto dataset = MakeDataset("conviva", 17);

  // Per-column dictionaries, as a column-store strawman would build.
  std::map<std::string, DictionaryEncoder> dictionaries;
  size_t raw_bytes = 0;
  std::vector<std::vector<std::pair<std::string, std::string>>> parsed_rows;
  parsed_rows.reserve(row_count);
  for (uint64_t i = 0; i < row_count; ++i) {
    const std::string row = dataset->Row(i);
    raw_bytes += row.size();
    parsed_rows.push_back(Fields(row));
    for (const auto& [field, value] : parsed_rows.back()) {
      dictionaries[field].Intern(value);
    }
  }

  size_t encoded_bytes = 0;
  size_t table_bytes = 0;
  for (const auto& row : parsed_rows) {
    for (const auto& [field, value] : row) {
      encoded_bytes += dictionaries[field].CodeWidth();
    }
  }
  for (const auto& [field, dict] : dictionaries) {
    table_bytes += dict.TableBytes();
  }

  const double dict_ratio =
      static_cast<double>(raw_bytes) / static_cast<double>(encoded_bytes + table_bytes);
  const double table_fraction =
      static_cast<double>(table_bytes) / static_cast<double>(encoded_bytes + table_bytes);

  // MiniCrypt packing for comparison (50-row packs, zlib).
  const Compressor* zlib = FindCompressor("zlib");
  size_t packed_bytes = 0;
  std::string pack;
  for (uint64_t i = 0; i < row_count; i += 50) {
    pack.clear();
    for (uint64_t j = i; j < std::min<uint64_t>(row_count, i + 50); ++j) {
      pack += dataset->Row(j);
    }
    packed_bytes += zlib->Compress(pack)->size();
  }
  const double pack_ratio = static_cast<double>(raw_bytes) / static_cast<double>(packed_bytes);

  std::printf("# 2.4 strawman: dictionary encoding vs MiniCrypt packing (conviva-like)\n");
  std::printf("%-28s %-10s\n", "metric", "value");
  std::printf("%-28s %-10zu\n", "rows", static_cast<size_t>(row_count));
  std::printf("%-28s %-10.2f\n", "dict_overall_ratio", dict_ratio);
  std::printf("%-28s %-10.0f%%\n", "dict_table_share", table_fraction * 100.0);
  std::printf("%-28s %-10.2f\n", "minicrypt_pack_ratio", pack_ratio);
  std::printf("%-28s %-10zu\n", "distinct_columns", dictionaries.size());

  // Per-column detail: a few columns compress superbly, the id columns not
  // at all — exactly the paper's point.
  double best = 0;
  double worst = 1e9;
  for (const auto& [field, dict] : dictionaries) {
    const double cardinality = static_cast<double>(dict.DistinctValues());
    best = std::max(best, static_cast<double>(row_count) / cardinality);
    worst = std::min(worst, static_cast<double>(row_count) / cardinality);
  }
  std::printf("%-28s %-10.0f\n", "best_column_rows_per_value", best);
  std::printf("%-28s %-10.2f\n", "worst_column_rows_per_value", worst);

  // Shape checks: dictionary ratio far below packing; table share is large.
  const bool packing_wins = pack_ratio > dict_ratio * 1.8;
  const bool table_heavy = table_fraction > 0.4;
  std::printf("\n# shape-check: packing-beats-dictionary=%s client-table-is-heavy=%s\n",
              packing_wins ? "PASS" : "FAIL", table_heavy ? "PASS" : "FAIL");
  return (packing_wins && table_heavy) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
