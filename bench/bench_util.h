// Shared scaffolding for the figure-reproduction benchmark binaries.
//
// Every bench binary is standalone and prints the series the paper plots as
// whitespace-separated columns, plus a trailing "# shape-check:" line stating
// whether the qualitative claim held in this run. Defaults are scaled to run
// in tens of seconds; MC_BENCH_SCALE=N multiplies dataset sizes and run time
// for higher-fidelity runs.

#ifndef MINICRYPT_BENCH_BENCH_UTIL_H_
#define MINICRYPT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/core/append/epoch.h"
#include "src/core/baseline_client.h"
#include "src/core/generic_client.h"
#include "src/core/options.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/kvstore/cluster.h"
#include "src/obs/metrics.h"
#include "src/workload/datasets.h"

namespace minicrypt {

inline double BenchScale() {
  const char* env = std::getenv("MC_BENCH_SCALE");
  const double v = env != nullptr ? std::atof(env) : 1.0;
  return v > 0 ? v : 1.0;
}

// Simulation time scale: all modelled latencies (media + network) multiplied
// by this. 0.1 keeps the paper's latency *ratios* while letting sweeps finish
// quickly on one machine.
inline double LatencyScale() {
  const char* env = std::getenv("MC_LATENCY_SCALE");
  const double v = env != nullptr ? std::atof(env) : 0.1;
  return v > 0 ? v : 0.1;
}

// --- Kernel-cell measurement (perf_suite, micro benches) ---------------------
//
// Setup happens before MeasureCell; only the op runs inside the timed region.
// Ops are timed in batches sized to dwarf clock-read overhead, and p50/p99
// are percentiles over per-batch means — stated as such in docs/PERF.md.

// Process-wide allocation counter. Stays 0 unless the binary links the
// counting operator new from bench/alloc_counter.h.
inline std::atomic<uint64_t>& AllocCounter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

struct CellStats {
  double ns_per_op = 0;
  double mb_per_s = 0;      // 0 when the cell has no byte volume
  double p50_ns = 0;
  double p99_ns = 0;
  double allocs_per_op = 0;
  uint64_t iterations = 0;
};

// Runs `op` untimed until ~2ms have passed (warmup), then measures batches
// until `min_seconds` of timed work accumulates. bytes_per_op = 0 disables
// the MB/s column.
template <typename Op>
CellStats MeasureCell(Op&& op, size_t bytes_per_op, double min_seconds = 0.2) {
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  // Warmup + batch sizing: grow the batch until one batch takes >= 50us.
  uint64_t batch = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) {
      op();
    }
    const double ns = ns_between(t0, Clock::now());
    if (ns >= 50'000.0 || batch >= (1ULL << 20)) {
      break;
    }
    batch *= 2;
  }

  std::vector<double> batch_mean_ns;
  double total_ns = 0;
  uint64_t total_ops = 0;
  const uint64_t allocs_before = AllocCounter().load(std::memory_order_relaxed);
  while (total_ns < min_seconds * 1e9) {
    const auto t0 = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) {
      op();
    }
    const double ns = ns_between(t0, Clock::now());
    batch_mean_ns.push_back(ns / static_cast<double>(batch));
    total_ns += ns;
    total_ops += batch;
  }
  const uint64_t allocs_after = AllocCounter().load(std::memory_order_relaxed);

  std::sort(batch_mean_ns.begin(), batch_mean_ns.end());
  const auto percentile = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(batch_mean_ns.size() - 1));
    return batch_mean_ns[idx];
  };
  CellStats stats;
  stats.iterations = total_ops;
  stats.ns_per_op = total_ns / static_cast<double>(total_ops);
  if (bytes_per_op > 0) {
    stats.mb_per_s = static_cast<double>(bytes_per_op) / (stats.ns_per_op * 1e-9) / 1e6;
  }
  stats.p50_ns = percentile(0.50);
  stats.p99_ns = percentile(0.99);
  stats.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(total_ops);
  return stats;
}

enum class MediaKind { kDisk, kSsd };

inline const char* MediaName(MediaKind kind) {
  return kind == MediaKind::kDisk ? "disk" : "ssd";
}

// The paper's cluster shape: 3 nodes, RF = 3, eventual-consistency reads.
//
// Media calibration. The paper's figures are governed by the ordering
//   memory throughput >> SSD IOPS >> disk IOPS,
// relative to the servers' compute capacity. On this single-core simulation
// the compute ceiling is ~100-1000x lower than 3x c4.2xlarge plus client
// machines, so the device profiles are calibrated to preserve the *ratios*:
// disk ~100 IOPS/node (queue depth 1, like one head) and "SSD" ~400 IOPS/node
// — both orders of magnitude below the in-memory ceiling, with the paper's
// ~4x disk:SSD gap. MC_LATENCY_SCALE only scales the network model; the
// media profiles are fixed by this calibration (see EXPERIMENTS.md).
inline ClusterOptions PaperCluster(MediaKind media, size_t cache_bytes_per_node) {
  ClusterOptions o;
  o.node_count = 3;
  o.replication_factor = 3;
  o.consistency = Consistency::kOne;
  o.rtt_micros = 250;
  o.replica_hop_micros = 120;
  o.lwt_extra_round_trips = 3;
  o.network_bytes_per_micro = 120.0;
  o.latency_scale = LatencyScale();
  o.block_cache_bytes = cache_bytes_per_node;
  MediaProfile profile;
  if (media == MediaKind::kDisk) {
    profile.seek_micros = 12'000;
    profile.queue_depth = 1;
  } else {
    profile.seek_micros = 3'500;
    profile.queue_depth = 1;
  }
  profile.bytes_per_micro_read = media == MediaKind::kDisk ? 150.0 : 500.0;
  profile.bytes_per_micro_write = media == MediaKind::kDisk ? 130.0 : 450.0;
  // Undo the cluster-level latency multiplication for media: the profile
  // above is already the calibrated effective latency.
  profile.latency_scale = 1.0 / LatencyScale();
  o.media = profile;
  o.engine.memtable_flush_bytes = 4 * 1024 * 1024;
  o.engine.compaction_trigger = 6;
  o.engine.sstable.block_bytes = 8 * 1024;
  return o;
}

// Conviva-like rows (keys 0..n-1), the dataset all performance figures use.
inline std::vector<std::pair<uint64_t, std::string>> ConvivaRows(uint64_t count,
                                                                 uint64_t seed = 1) {
  auto dataset = MakeDataset("conviva", seed);
  return MaterializeRows(*dataset, count);
}

inline size_t RawBytes(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  size_t bytes = 0;
  for (const auto& [key, value] : rows) {
    bytes += value.size() + 8;
  }
  return bytes;
}

// The three systems Figure 9 compares. MiniCrypt is wrapped in the common
// facade so the driver code is identical for all three.
class MiniCryptFacade : public KvFacade {
 public:
  MiniCryptFacade(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key)
      : client_(cluster, options, key) {}

  Status CreateTable() override { return client_.CreateTable(); }
  Result<std::string> Get(uint64_t key) override { return client_.Get(key); }
  Status Put(uint64_t key, std::string_view value) override { return client_.Put(key, value); }
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low,
                                                                 uint64_t high) override {
    return client_.GetRange(low, high);
  }
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) override {
    return client_.BulkLoad(rows);
  }

  GenericClient& generic() { return client_; }

 private:
  GenericClient client_;
};

inline std::unique_ptr<KvFacade> MakeSystem(std::string_view system, Cluster* cluster,
                                            const MiniCryptOptions& options,
                                            const SymmetricKey& key) {
  if (system == "minicrypt") {
    return std::make_unique<MiniCryptFacade>(cluster, options, key);
  }
  if (system == "baseline") {
    return std::make_unique<EncryptedBaselineClient>(cluster, options, key);
  }
  if (system == "vanilla") {
    return std::make_unique<VanillaClient>(cluster, options);
  }
  std::fprintf(stderr, "unknown system %s\n", std::string(system).c_str());
  std::abort();
}

// Preloads `rows` into `system`'s table, flushes, and warms the caches
// (stand-in for the paper's 5-10 minute warmup).
inline void PreloadAndWarm(KvFacade& facade, Cluster& cluster, const MiniCryptOptions& options,
                           const std::vector<std::pair<uint64_t, std::string>>& rows) {
  Status s = facade.CreateTable();
  if (s.ok()) {
    s = facade.BulkLoad(rows);
  }
  if (s.ok()) {
    s = cluster.FlushAll();
  }
  if (!s.ok()) {
    std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  cluster.WarmCaches(options.table);
  cluster.ResetPerfCounters();
  // Scope the metrics snapshot to the measured run: drop everything the
  // preload/warmup phase recorded.
  MetricsRegistry::Instance().ResetAll();
}

// One-line JSON snapshot of every metric recorded since the last reset
// (docs/METRICS.md documents the names and schema). With reset=true the
// registry is cleared afterwards so the next measured cell starts clean.
inline std::string MetricsJson(bool reset = true) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  std::string json = registry.ToJson();
  if (reset) {
    registry.ResetAll();
  }
  return json;
}

// Preloads APPEND-mode data: rows packed directly into epoch 0 (the layout
// the merger produces), so read paths exercise the real pack lookup.
inline void PreloadAppendPacks(Cluster& cluster, const MiniCryptOptions& options,
                               const SymmetricKey& key,
                               const std::vector<std::pair<uint64_t, std::string>>& rows) {
  PackCrypter crypter(options, key);
  std::vector<Pack::Entry> chunk;
  auto flush = [&] {
    if (chunk.empty()) {
      return;
    }
    auto pack = Pack::FromSorted(std::move(chunk));
    chunk.clear();
    auto sealed = crypter.Seal(*pack);
    Row row;
    row.cells["v"] = Cell{sealed->envelope, 0, false};
    row.cells["h"] = Cell{sealed->hash, 0, false};
    (void)cluster.Write(options.table, EpochPartition(kMergedEpoch),
                        std::string(*pack->MinKey()), row);
  };
  for (const auto& [k, v] : rows) {
    chunk.push_back(Pack::Entry{EncodeKey64(k), v});
    if (chunk.size() >= options.pack_rows) {
      flush();
    }
  }
  flush();
}

}  // namespace minicrypt

#endif  // MINICRYPT_BENCH_BENCH_UTIL_H_
