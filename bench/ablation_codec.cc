// Ablation for the §3 codec choice: the paper picked zlib as the balance of
// ratio and speed. For each registered codec, this measures (a) the 50-row
// pack compression ratio on Conviva-like data and (b) single-threaded
// seal+open (compress+encrypt / decrypt+decompress) latency — the two axes of
// the paper's trade-off discussion.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/pack_crypter.h"

namespace minicrypt {
namespace {

int Main() {
  const auto row_count = static_cast<uint64_t>(2000 * BenchScale());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);
  const size_t raw_bytes = RawBytes(rows);

  std::printf("# ablation: codec choice for 50-row packs (conviva-like)\n");
  std::printf("%-12s %-10s %-16s %-16s\n", "codec", "ratio", "seal_us/pack",
              "open_us/pack");

  struct Point {
    std::string name;
    double ratio;
    double seal_us;
    double open_us;
  };
  std::vector<Point> points;

  for (std::string_view codec_name : AllCompressorNames()) {
    MiniCryptOptions options;
    options.pack_rows = 50;
    options.codec = std::string(codec_name);
    PackCrypter crypter(options, key);

    // Build packs once.
    std::vector<Pack> packs;
    std::vector<Pack::Entry> chunk;
    for (const auto& [k, v] : rows) {
      chunk.push_back(Pack::Entry{EncodeKey64(k), v});
      if (chunk.size() == options.pack_rows) {
        packs.push_back(std::move(*Pack::FromSorted(std::move(chunk))));
        chunk.clear();
      }
    }

    size_t sealed_bytes = 0;
    std::vector<std::string> envelopes;
    envelopes.reserve(packs.size());
    const auto seal_start = std::chrono::steady_clock::now();
    for (const Pack& pack : packs) {
      auto sealed = crypter.Seal(pack);
      sealed_bytes += sealed->envelope.size();
      envelopes.push_back(std::move(sealed->envelope));
    }
    const auto seal_end = std::chrono::steady_clock::now();
    for (const std::string& envelope : envelopes) {
      auto opened = crypter.Open(envelope);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed for %s\n", std::string(codec_name).c_str());
        return 1;
      }
    }
    const auto open_end = std::chrono::steady_clock::now();

    Point p;
    p.name = std::string(codec_name);
    p.ratio = static_cast<double>(raw_bytes) / static_cast<double>(sealed_bytes);
    p.seal_us = std::chrono::duration<double, std::micro>(seal_end - seal_start).count() /
                static_cast<double>(packs.size());
    p.open_us = std::chrono::duration<double, std::micro>(open_end - seal_end).count() /
                static_cast<double>(packs.size());
    points.push_back(p);
    std::printf("%-12s %-10.2f %-16.0f %-16.0f\n", p.name.c_str(), p.ratio, p.seal_us,
                p.open_us);
  }

  // Shape checks: the survey spans a real trade-off — the fastest codec has
  // the worst ratio, the best ratio is not the fastest, and zlib is within
  // 25% of the best ratio while several times faster than the slow end.
  const auto by_name = [&](std::string_view name) -> const Point& {
    for (const auto& p : points) {
      if (p.name == name) {
        return p;
      }
    }
    std::abort();
  };
  double best_ratio = 0;
  double worst_ratio = 1e9;
  for (const auto& p : points) {
    best_ratio = std::max(best_ratio, p.ratio);
    worst_ratio = std::min(worst_ratio, p.ratio);
  }
  const Point& zlib = by_name("zlib");
  const Point& snappy = by_name("snappylike");
  const bool spread = best_ratio > worst_ratio * 1.3;
  const bool fast_end_cheap = snappy.seal_us < zlib.seal_us;
  const bool zlib_balanced = zlib.ratio > best_ratio * 0.7;
  std::printf("\n# shape-check: ratio-speed-tradeoff-exists=%s zlib-is-balanced-choice=%s\n",
              (spread && fast_end_cheap) ? "PASS" : "FAIL", zlib_balanced ? "PASS" : "FAIL");
  return (spread && fast_end_cheap && zlib_balanced) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
