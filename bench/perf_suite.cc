// Perf-trajectory suite: runs the codec/crypto/pack kernel cells plus
// fig9/fig13-style cluster cells with fixed seeds and emits a
// schema-versioned BENCH_<rev>.json (ns/op, MB/s, p50/p99, allocs/op, and
// the dispatch level the run used). bench/check_regression.py compares two
// of these files and fails CI on >10% normalized throughput regression; the
// memcpy calibration cell is the cross-machine normalizer.
//
//   perf_suite [--revision=REV] [--out=PATH] [--quick]
//
// MC_NO_SIMD=1 / MC_SIMD_LEVEL=N apply as everywhere else; the JSON records
// which level actually ran so baselines are only compared like-for-like.

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/bench_util.h"
#include "src/common/coding.h"
#include "src/common/cpu_features.h"
#include "src/common/crc32c.h"
#include "src/common/random.h"
#include "src/compress/compressor.h"
#include "src/core/pack.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

struct BenchCell {
  std::string name;
  size_t bytes_per_op;
  CellStats stats;
};

// Restores the ambient dispatch level after a forced-scalar cell.
class ScopedLevel {
 public:
  explicit ScopedLevel(SimdLevel level) : saved_(CurrentSimdLevel()) {
    OverrideSimdLevelForTest(level);
  }
  ~ScopedLevel() { OverrideSimdLevelForTest(saved_); }

 private:
  SimdLevel saved_;
};

std::string ConvivaPayload(size_t min_bytes) {
  auto dataset = MakeDataset("conviva", 3);
  std::string payload;
  for (uint64_t i = 0; payload.size() < min_bytes; ++i) {
    payload += dataset->Row(i);
  }
  return payload;
}

Pack FiftyRowPack() {
  auto dataset = MakeDataset("conviva", 3);
  std::vector<Pack::Entry> entries;
  for (uint64_t i = 0; i < 50; ++i) {
    entries.push_back(Pack::Entry{EncodeKey64(i), dataset->Row(i)});
  }
  return Pack::FromSorted(std::move(entries)).value();
}

void JsonEscapeAppend(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int PerfSuiteMain(int argc, char** argv) {
  std::string revision = "dev";
  std::string out_path;
  double min_seconds = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--revision=", 0) == 0) {
      revision = arg.substr(strlen("--revision="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(strlen("--out="));
    } else if (arg == "--quick") {
      min_seconds = 0.05;
    } else {
      std::fprintf(stderr, "usage: perf_suite [--revision=REV] [--out=PATH] [--quick]\n");
      return 2;
    }
  }
  if (out_path.empty()) {
    out_path = "BENCH_" + revision + ".json";
  }

  const SimdLevel ambient = CurrentSimdLevel();
  std::vector<BenchCell> cells;
  const auto run = [&](const std::string& name, size_t bytes_per_op, auto&& op) {
    BenchCell cell;
    cell.name = name;
    cell.bytes_per_op = bytes_per_op;
    cell.stats = MeasureCell(op, bytes_per_op, min_seconds);
    std::fprintf(stderr, "%-28s %12.1f ns/op %10.1f MB/s %8.2f allocs/op\n",
                 name.c_str(), cell.stats.ns_per_op, cell.stats.mb_per_s,
                 cell.stats.allocs_per_op);
    cells.push_back(std::move(cell));
  };

  // --- Calibration: raw memory bandwidth, the cross-machine normalizer.
  {
    const std::string src(1 << 20, 'm');
    std::string dst(1 << 20, '\0');
    run("calibration.memcpy_1m", src.size(), [&] {
      std::memcpy(dst.data(), src.data(), src.size());
      asm volatile("" : : "r"(dst.data()) : "memory");
    });
  }

  // --- CRC32C.
  {
    Rng rng(11);
    const std::string block = rng.Bytes(4096);
    run("crc32c.4k", block.size(), [&] {
      volatile uint32_t crc = Crc32c(block);
      (void)crc;
    });
    run("crc32c.scalar.4k", block.size(), [&] {
      volatile uint32_t crc = Crc32cScalar(block);
      (void)crc;
    });
  }

  // --- Codecs: dispatched vs forced-scalar, compress and decompress.
  const std::string payload = ConvivaPayload(64 * 1024);
  for (const char* codec_name : {"lz4like", "snappylike"}) {
    const Compressor* codec = FindCompressor(codec_name);
    const std::string compressed = codec->Compress(payload).value();
    run(std::string(codec_name) + ".compress.64k", payload.size(),
        [&] { (void)codec->Compress(payload); });
    run(std::string(codec_name) + ".decompress.64k", payload.size(),
        [&] { (void)codec->Decompress(compressed); });
    {
      ScopedLevel scalar(SimdLevel::kScalar);
      run(std::string(codec_name) + ".scalar.compress.64k", payload.size(),
          [&] { (void)codec->Compress(payload); });
      run(std::string(codec_name) + ".scalar.decompress.64k", payload.size(),
          [&] { (void)codec->Decompress(compressed); });
    }
  }

  // --- AES-GCM: hardware kernel vs portable EVP.
  {
    const SymmetricKey key = SymmetricKey::FromSeed("perf");
    const std::string iv(kAesGcmIvBytes, '\x07');
    const std::string envelope = AesGcmEncryptWithIv(key, iv, payload).value();
    run("aes_gcm.seal.64k", payload.size(),
        [&] { (void)AesGcmEncryptWithIv(key, iv, payload); });
    run("aes_gcm.open.64k", payload.size(),
        [&] { (void)AesGcmDecrypt(key, envelope); });
    {
      ScopedLevel scalar(SimdLevel::kScalar);
      run("aes_gcm.portable.seal.64k", payload.size(),
          [&] { (void)AesGcmEncryptWithIv(key, iv, payload); });
      run("aes_gcm.portable.open.64k", payload.size(),
          [&] { (void)AesGcmDecrypt(key, envelope); });
    }
  }

  // --- Pack encode/decode: the gated >=1.5x cell (serialize+compress /
  // decompress+zero-copy deserialize, the per-pack work every read and
  // write pays).
  {
    const Pack pack = FiftyRowPack();
    const Compressor* codec = FindCompressor("snappylike");
    const std::string raw = pack.Serialize();
    const std::string compressed = codec->Compress(raw).value();
    const auto encode = [&] {
      (void)codec->Compress(pack.Serialize());
    };
    const auto decode = [&] {
      std::string plain = codec->Decompress(compressed).value();
      (void)Pack::FromSerialized(std::move(plain));
    };
    run("pack.encode.50rows", raw.size(), encode);
    run("pack.decode.50rows", raw.size(), decode);
    {
      ScopedLevel scalar(SimdLevel::kScalar);
      run("pack.scalar.encode.50rows", raw.size(), encode);
      run("pack.scalar.decode.50rows", raw.size(), decode);
    }

    // Full seal+open cycle (compress, pad, GCM, and back) for the trajectory.
    MiniCryptOptions options;
    const SymmetricKey key = SymmetricKey::FromSeed("perf");
    PackCrypter crypter(options, key);
    const std::string sealed = crypter.Seal(pack).value().envelope;
    run("pack.seal.50rows", raw.size(), [&] { (void)crypter.Seal(pack); });
    run("pack.open.50rows", raw.size(), [&] { (void)crypter.Open(sealed); });
  }

  // --- fig9/fig13-style cluster cells: end-to-end ops through the simulated
  // 3-node cluster, fixed seeds, small scale (these gate the full stack, not
  // just the kernels).
  {
    const auto rows = ConvivaRows(2000, /*seed=*/1);
    ClusterOptions copts = PaperCluster(MediaKind::kSsd, 64 << 20);
    Cluster cluster(copts);
    MiniCryptOptions options;
    const SymmetricKey key = SymmetricKey::FromSeed("bench");
    auto system = MakeSystem("minicrypt", &cluster, options, key);
    PreloadAndWarm(*system, cluster, options, rows);

    Rng read_rng(9001);
    run("fig9.point_read", 0, [&] {
      (void)system->Get(read_rng.Uniform(rows.size()));
    });
    Rng mix_rng(9002);
    run("fig13.mixed_90r10w", 0, [&] {
      const uint64_t k = mix_rng.Uniform(rows.size());
      if (mix_rng.Bernoulli(0.1)) {
        (void)system->Put(k, rows[static_cast<size_t>(k)].second);
      } else {
        (void)system->Get(k);
      }
    });
  }

  // --- Emit JSON.
  std::string json = "{\n";
  json += "  \"schema\": \"mc-bench-v1\",\n";
  json += "  \"revision\": \"";
  JsonEscapeAppend(&json, revision);
  json += "\",\n";
  json += "  \"dispatch_level\": \"";
  json += SimdLevelName(ambient);
  json += "\",\n";
  json += std::string("  \"aes_gcm_hw\": ") + (AesGcmHardwareEnabled() ? "true" : "false") + ",\n";
  json += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const BenchCell& c = cells[i];
    json += "    {\"name\": \"";
    JsonEscapeAppend(&json, c.name);
    json += "\", \"bytes_per_op\": " + std::to_string(c.bytes_per_op);
    json += ", \"ns_per_op\": " + FormatDouble(c.stats.ns_per_op);
    json += ", \"mb_per_s\": " + FormatDouble(c.stats.mb_per_s);
    json += ", \"p50_ns\": " + FormatDouble(c.stats.p50_ns);
    json += ", \"p99_ns\": " + FormatDouble(c.stats.p99_ns);
    json += ", \"allocs_per_op\": " + FormatDouble(c.stats.allocs_per_op);
    json += ", \"iterations\": " + std::to_string(c.stats.iterations);
    json += i + 1 < cells.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu cells, dispatch=%s)\n", out_path.c_str(),
               cells.size(), SimdLevelName(ambient));
  return 0;
}

}  // namespace minicrypt

int main(int argc, char** argv) { return minicrypt::PerfSuiteMain(argc, argv); }
