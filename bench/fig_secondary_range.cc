// Secondary-index range queries: throughput of GetRangeByValue at each
// leakage level vs the full-decrypting-scan baseline (the only way to answer
// a non-key predicate without an index — fetch every pack, decrypt, filter).
//
// The POPE claim this bench gates: once the queried region has been lazily
// sorted, kQueriedOrder answers selective ranges from a handful of leaf packs
// instead of scanning the table, while still leaking order only for queried
// regions. Gate: kQueriedOrder >= 5x the full-scan baseline on selective
// ranges (docs/INDEXING.md).

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/index/secondary_index.h"
#include "src/workload/driver.h"
#include "src/workload/secondary.h"

namespace minicrypt {
namespace {

int Main() {
  const double scale = BenchScale();
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");

  SecondaryWorkloadOptions wopts;
  wopts.row_count = static_cast<uint64_t>(8000 * scale);
  // Row sizes in the paper's regime (~0.3-1 KB). The index side is 16 bytes
  // per entry regardless, so the full scan pays the whole value volume while
  // the index pays it only for actual matches.
  wopts.payload_bytes = 256;
  // Selective ranges: ~8 matching rows out of 8000. Selectivity is what the
  // index earns its keep on — candidate verification costs one primary pack
  // fetch per match, so wide ranges converge toward the scan no matter how
  // cheap the index side is.
  wopts.range_selectivity = 0.001;
  wopts.seed = 7;
  SecondaryWorkload workload(wopts);
  const auto rows = workload.MaterializeRows();

  // Distinct query starts drawn from a small pool so kQueriedOrder pays its
  // lazy sort a bounded number of times and then serves from sorted leaves —
  // the regime the paper's lazy-sort amortization argument is about.
  const uint64_t kQueryPool = 16;

  std::printf("# Secondary-index range queries: throughput (queries/s) by leakage level\n");
  std::printf("# rows=%llu selectivity=%.3f pool=%llu\n",
              static_cast<unsigned long long>(wopts.row_count), wopts.range_selectivity,
              static_cast<unsigned long long>(kQueryPool));
  std::printf("%-14s %-12s %-10s\n", "mode", "queries/s", "errors");

  std::map<std::string, double> tput;

  const auto run_driver = [&](const std::function<bool(int, uint64_t)>& op) {
    DriverConfig config;
    config.threads = 4;
    config.warmup_micros = 200'000;
    config.run_micros = static_cast<uint64_t>(1'500'000 * scale);
    return RunClosedLoop(config, op);
  };

  // Full-scan baseline: every query fetches the whole primary table (all
  // packs, decrypted client-side) and filters by attribute.
  {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 16 * 1024 * 1024));
    MiniCryptOptions options;
    options.pack_rows = 50;
    GenericClient client(&cluster, options, key);
    Status s = client.CreateTable();
    if (s.ok()) {
      s = client.BulkLoad(rows);
    }
    if (s.ok()) {
      s = cluster.FlushAll();
    }
    if (!s.ok()) {
      std::fprintf(stderr, "baseline preload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    cluster.WarmCaches(options.table);
    const DriverResult r = run_driver([&](int thread, uint64_t index) {
      const auto [lo, hi] = workload.RangeFor((index + static_cast<uint64_t>(thread)) % kQueryPool);
      auto scan = client.GetRange(0, wopts.row_count);
      if (!scan.ok()) {
        return false;
      }
      size_t matches = 0;
      for (const auto& [k, v] : *scan) {
        const auto attr = DecodeIndexedAttr(v);
        if (attr.has_value() && *attr >= lo && *attr <= hi) {
          ++matches;
        }
      }
      return matches > 0;
    });
    std::printf("%-14s %-12.1f %-10llu\n", "full_scan", r.throughput_ops_s,
                static_cast<unsigned long long>(r.errors));
    std::fflush(stdout);
    tput["full_scan"] = r.throughput_ops_s;
  }

  for (IndexLeakage leakage :
       {IndexLeakage::kNoOrder, IndexLeakage::kQueriedOrder, IndexLeakage::kTotalOrder}) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 16 * 1024 * 1024));
    MiniCryptOptions options;
    options.pack_rows = 50;
    GenericClient client(&cluster, options, key);
    SecondaryIndexOptions iopts;
    iopts.leakage = leakage;
    // Index entries are 16 fixed bytes against ~1 KB primary rows, so index
    // packs hold far more rows than primary packs for the same envelope size
    // (docs/INDEXING.md "Sizing"). Inheriting pack_rows would shatter the
    // buffer into dozens of packs and every query pays an Open per pack.
    iopts.leaf_rows = 400;
    iopts.buffer_seal_rows = 4000;
    Status s = client.CreateTable();
    if (s.ok()) {
      s = client.CreateIndex(iopts);
    }
    if (s.ok()) {
      s = client.BulkLoadIndexed(rows);
    }
    if (s.ok()) {
      s = cluster.FlushAll();
    }
    if (!s.ok()) {
      std::fprintf(stderr, "%s preload failed: %s\n",
                   std::string(IndexLeakageName(leakage)).c_str(), s.ToString().c_str());
      return 1;
    }
    cluster.WarmCaches(options.table);
    const DriverResult r = run_driver([&](int thread, uint64_t index) {
      const auto [lo, hi] = workload.RangeFor((index + static_cast<uint64_t>(thread)) % kQueryPool);
      auto out = client.GetRangeByValue(lo, hi);
      return out.ok();
    });
    std::printf("%-14s %-12.1f %-10llu\n", std::string(IndexLeakageName(leakage)).c_str(),
                r.throughput_ops_s, static_cast<unsigned long long>(r.errors));
    std::fflush(stdout);
    tput[std::string(IndexLeakageName(leakage))] = r.throughput_ops_s;
  }

  // Shape checks. The CI gate is the first one; the others document the
  // expected ordering of the leakage/cost trade (total order cheapest,
  // no-order still beats decrypting the whole table because index entries
  // are 16 compact bytes against full rows).
  const double pope_gain = tput["queried_order"] / tput["full_scan"];
  const bool pope_wins = pope_gain >= 5.0;
  const bool total_fastest = tput["total_order"] >= tput["queried_order"] * 0.8;
  const bool noorder_beats_scan = tput["no_order"] > tput["full_scan"];
  std::printf("\n# queried_order gain over full scan: %.1fx\n", pope_gain);
  std::printf("# shape-check: pope>=5x-scan=%s total-order-not-slower=%s no-order-beats-scan=%s\n",
              pope_wins ? "PASS" : "FAIL", total_fastest ? "PASS" : "FAIL",
              noorder_beats_scan ? "PASS" : "FAIL");
  return (pope_wins && total_fastest && noorder_beats_scan) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
