// Figure 12: APPEND-mode long run. Plots cumulative inserted / merged /
// deleted key counts over time while a fleet of writers appends
// continuously, showing the merge pipeline keeping pace with insertion. A
// separate baseline run provides the reference insert curve.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"

namespace minicrypt {
namespace {

MiniCryptOptions AppendOptions() {
  MiniCryptOptions options;
  options.table = "ts";
  options.pack_rows = 50;
  options.epoch_micros = 1'000'000;
  options.t_delta_micros = 150'000;
  options.t_drift_micros = 150'000;
  options.heartbeat_micros = 150'000;
  options.client_timeout_micros = 5'000'000;
  options.merge_period_micros = 200'000;
  return options;
}

ClusterOptions LongRunCluster() {
  ClusterOptions o = PaperCluster(MediaKind::kSsd, 96 * 1024 * 1024);
  // Long ingest run: large memtables and a late compaction trigger keep the
  // (synchronous) compactions from stalling the writers mid-run.
  o.engine.memtable_flush_bytes = 24 * 1024 * 1024;
  o.engine.compaction_trigger = 16;
  return o;
}

uint64_t RunBaseline(int clients, int seconds) {
  Cluster cluster(LongRunCluster());
  MiniCryptOptions options = AppendOptions();
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  EncryptedBaselineClient baseline(&cluster, options, key);
  (void)baseline.CreateTable();
  auto dataset = MakeDataset("conviva", 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_key{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = next_key.fetch_add(1, std::memory_order_relaxed);
        (void)baseline.Put(k, dataset->Row(k % 4096));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop = true;
  for (auto& th : threads) {
    th.join();
  }
  return next_key.load();
}

int Main() {
  const double scale = BenchScale();
  const int clients = 8;
  const int seconds = static_cast<int>(20 * scale);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  auto dataset = MakeDataset("conviva", 1);

  std::printf("# Figure 12: APPEND-mode long run, %d writer clients, %d s (scaled from 10 min)\n",
              clients, seconds);

  Cluster cluster(LongRunCluster());
  MiniCryptOptions options = AppendOptions();
  EmService em(&cluster, options, "em0");
  (void)em.Bootstrap();
  (void)em.Tick();
  em.Start(150'000);

  std::vector<std::unique_ptr<AppendClient>> workers;
  for (int c = 0; c < clients; ++c) {
    workers.push_back(std::make_unique<AppendClient>(&cluster, options, key,
                                                     "client-" + std::to_string(c)));
    (void)workers.back()->Register();
    workers.back()->Start();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_key{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = next_key.fetch_add(1, std::memory_order_relaxed);
        (void)workers[static_cast<size_t>(t)]->Put(k, dataset->Row(k % 4096));
      }
    });
  }

  std::printf("%-8s %-12s %-12s %-12s\n", "t_sec", "inserted", "merged", "deleted");
  uint64_t merged = 0;
  uint64_t deleted = 0;
  uint64_t inserted = 0;
  uint64_t mid_inserted = 0;
  uint64_t mid_merged = 0;
  for (int s = 1; s <= seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    inserted = next_key.load();
    merged = 0;
    deleted = 0;
    for (const auto& w : workers) {
      merged += w->stats().keys_merged.load();
      deleted += w->stats().keys_deleted.load();
    }
    std::printf("%-8d %-12llu %-12llu %-12llu\n", s,
                static_cast<unsigned long long>(inserted),
                static_cast<unsigned long long>(merged),
                static_cast<unsigned long long>(deleted));
    std::fflush(stdout);
    if (s == seconds / 2) {
      mid_inserted = inserted;
      mid_merged = merged;
    }
  }
  stop = true;
  for (auto& th : threads) {
    th.join();
  }
  em.Stop();
  for (auto& w : workers) {
    w->Stop();
  }

  const uint64_t baseline_inserted = RunBaseline(clients, seconds);
  std::printf("\n# baseline inserted over same window: %llu (append/baseline = %.2f)\n",
              static_cast<unsigned long long>(baseline_inserted),
              static_cast<double>(inserted) / static_cast<double>(baseline_inserted));

  // Shape checks on the steady state (the pipeline needs ~3 epochs before
  // the first merge can legally run, a visible fraction of this scaled-down
  // window): over the second half of the run, the merge rate must keep pace
  // with the insert rate, and deletions must have started and trail merges.
  const double late_inserts = static_cast<double>(inserted - mid_inserted);
  const double late_merges = static_cast<double>(merged - mid_merged);
  const bool merge_keeps_pace = late_merges > 0.5 * late_inserts;
  const bool deletion_follows = deleted > 0 && deleted <= merged;
  const double tp_fraction =
      static_cast<double>(inserted) / static_cast<double>(baseline_inserted);
  std::printf("# steady-state merge/insert rate=%.2f deleted<=merged=%s "
              "append/baseline=%.2f\n",
              late_inserts > 0 ? late_merges / late_inserts : 0.0,
              deletion_follows ? "yes" : "no", tp_fraction);
  const bool pass = merge_keeps_pace && deletion_follows && tp_fraction > 0.1;
  std::printf("# shape-check: merge-keeps-pace=%s deletes-follow-merges=%s "
              "throughput-fraction-ok=%s\n",
              merge_keeps_pace ? "PASS" : "FAIL", deletion_follows ? "PASS" : "FAIL",
              tp_fraction > 0.1 ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
