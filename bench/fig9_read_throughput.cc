// Figure 9 (point queries): maximum read throughput vs dataset size, for
// MiniCrypt / encrypted-baseline / vanilla clients, on disk- and SSD-backed
// servers. 100% uniform reads (modified YCSB), 3-node cluster, RF=3.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

struct Point {
  double raw_mb;
  double throughput;
};

int Main() {
  // Cache calibration: with RF = 3, every node mirrors the full table and
  // reads round-robin over replicas, so a system spills out of memory when
  // its at-rest bytes exceed ONE node's cache. At 6 MB/node: the encrypted
  // baseline (ratio ~1.7) spills past ~10 MB raw, vanilla (server block
  // compression ~2.4) past ~15 MB, MiniCrypt (ratio ~4.2) only past ~25 MB.
  const double scale = BenchScale();
  const size_t cache_per_node = static_cast<size_t>(6.0 * scale * 1024 * 1024);
  const std::vector<double> raw_mbs = {4, 8, 12, 16, 20, 24};
  const std::vector<std::string> systems = {"minicrypt", "baseline", "vanilla"};
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");

  std::printf("# Figure 9 (point queries): throughput (ops/s) vs dataset size\n");
  std::printf("# cache/node=%.1fMB, latency_scale=%.2f, pack=50 rows\n",
              cache_per_node / 1048576.0, LatencyScale());

  std::map<std::string, std::map<std::string, std::vector<Point>>> results;
  for (MediaKind media : {MediaKind::kSsd, MediaKind::kDisk}) {
    std::printf("\n%-6s %-9s", "media", "raw_MB");
    for (const auto& s : systems) {
      std::printf(" %-12s", s.c_str());
    }
    std::printf(" %-10s\n", "mc_atrest_MB");
    for (double raw_mb : raw_mbs) {
      const auto row_count =
          static_cast<uint64_t>(raw_mb * scale * 1024 * 1024 / 1100.0);
      const auto rows = ConvivaRows(row_count);
      std::printf("%-6s %-9.1f", MediaName(media), raw_mb * scale);
      double at_rest_mb = 0;
      std::vector<std::string> metric_lines;
      for (const auto& system : systems) {
        Cluster cluster(PaperCluster(media, cache_per_node));
        MiniCryptOptions options;
        options.pack_rows = 50;
        auto facade = MakeSystem(system, &cluster, options, key);
        PreloadAndWarm(*facade, cluster, options, rows);
        if (system == "minicrypt") {
          at_rest_mb = static_cast<double>(cluster.TableAtRestBytes(options.table)) / 1048576.0;
        }

        DriverConfig config;
        config.threads = 12;
        config.warmup_micros = 300'000;
        config.run_micros = static_cast<uint64_t>(1'200'000 * scale);
        const DriverResult r = RunClosedLoop(config, [&](int thread, uint64_t index) {
          thread_local UniformChooser chooser(row_count,
                                              0x9d0f + static_cast<uint64_t>(thread));
          return facade->Get(chooser.Next()).ok();
        });
        std::printf(" %-12.0f", r.throughput_ops_s);
        std::fflush(stdout);
        results[MediaName(media)][system].push_back(Point{raw_mb, r.throughput_ops_s});
        // Per-cell latency attribution (cache / media / network / decrypt /
        // decompress — see docs/METRICS.md); printed after the table row so
        // the columns stay aligned.
        metric_lines.push_back("# metrics " + std::string(MediaName(media)) + " raw_MB=" +
                               std::to_string(raw_mb * scale) + " " + system + " " +
                               MetricsJson());
      }
      std::printf(" %-10.1f\n", at_rest_mb);
      for (const auto& line : metric_lines) {
        std::printf("%s\n", line.c_str());
      }
    }
  }

  // --- Client pack cache axis: Zipfian point reads, cache on vs off ----------
  // A skewed read mix keeps a small hot set of packs; with the client-side
  // decrypted-pack cache on (ttl=0, fully coherent), repeat reads pay only a
  // ~40-byte version probe instead of transfer + decrypt + decompress of the
  // whole pack. Uniform reads over a large table would barely hit; Zipfian is
  // the regime the cache is for.
  std::printf("\n# client pack cache: zipfian point reads, ssd\n");
  std::printf("%-10s %-12s %-10s\n", "cache", "ops/s", "hit_rate");
  const double cache_raw_mb = 12 * scale;
  const auto cache_row_count = static_cast<uint64_t>(cache_raw_mb * 1024 * 1024 / 1100.0);
  const auto cache_rows = ConvivaRows(cache_row_count);
  double cache_off_ops = 0, cache_on_ops = 0, cache_hit_rate = 0;
  for (const bool cache_on : {false, true}) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, cache_per_node));
    MiniCryptOptions options;
    options.pack_rows = 50;
    if (cache_on) {
      options.cache_capacity_bytes = 64u << 20;  // ttl=0: fully coherent
    }
    MiniCryptFacade facade(&cluster, options, key);
    PreloadAndWarm(facade, cluster, options, cache_rows);

    DriverConfig config;
    config.threads = 12;
    config.warmup_micros = 300'000;
    config.run_micros = static_cast<uint64_t>(1'200'000 * scale);
    const DriverResult r = RunClosedLoop(config, [&](int thread, uint64_t index) {
      thread_local ZipfianChooser chooser(cache_row_count, /*knob=*/0.0,
                                          0x21f + static_cast<uint64_t>(thread));
      return facade.Get(chooser.Next()).ok();
    });
    double hit_rate = 0;
    if (cache_on) {
      const PackCacheStats cs = facade.generic().pack_cache()->Stats();
      hit_rate = cs.hits + cs.misses > 0
                     ? static_cast<double>(cs.hits) / static_cast<double>(cs.hits + cs.misses)
                     : 0.0;
      cache_on_ops = r.throughput_ops_s;
      cache_hit_rate = hit_rate;
    } else {
      cache_off_ops = r.throughput_ops_s;
    }
    std::printf("%-10s %-12.0f %-10.2f\n", cache_on ? "on" : "off", r.throughput_ops_s,
                hit_rate);
    std::fflush(stdout);
    std::printf("# metrics ssd zipfian cache=%s %s\n", cache_on ? "on" : "off",
                MetricsJson().c_str());
  }
  const double cache_speedup = cache_off_ops > 0 ? cache_on_ops / cache_off_ops : 0.0;
  std::printf("# cache speedup: %.1fx at hit rate %.2f\n", cache_speedup, cache_hit_rate);

  // --- Checksum-verification overhead guard ----------------------------------
  // SSTable format v2 re-verifies every block's CRC32 on each fetch, cached
  // copies included (docs/FORMATS.md). That must stay in the noise on the
  // read path: same uniform workload with verification off vs on, in the
  // in-memory regime where the CRC is the largest relative cost (out of
  // memory, media latency dwarfs it). Gate: < 5% ops/s regression.
  std::printf("\n# checksum verification overhead: uniform point reads, ssd\n");
  std::printf("%-10s %-12s\n", "verify", "ops/s");
  const double crc_raw_mb = 8 * scale;
  const auto crc_row_count = static_cast<uint64_t>(crc_raw_mb * 1024 * 1024 / 1100.0);
  const auto crc_rows = ConvivaRows(crc_row_count);
  double crc_off_ops = 0, crc_on_ops = 0;
  for (const bool verify : {false, true}) {
    ClusterOptions copts = PaperCluster(MediaKind::kSsd, cache_per_node);
    copts.engine.sstable.verify_checksums = verify;
    Cluster cluster(copts);
    MiniCryptOptions options;
    options.pack_rows = 50;
    MiniCryptFacade facade(&cluster, options, key);
    PreloadAndWarm(facade, cluster, options, crc_rows);

    DriverConfig config;
    config.threads = 12;
    config.warmup_micros = 300'000;
    config.run_micros = static_cast<uint64_t>(1'200'000 * scale);
    const DriverResult r = RunClosedLoop(config, [&](int thread, uint64_t index) {
      thread_local UniformChooser chooser(crc_row_count, 0x7c5 + static_cast<uint64_t>(thread));
      return facade.Get(chooser.Next()).ok();
    });
    (verify ? crc_on_ops : crc_off_ops) = r.throughput_ops_s;
    std::printf("%-10s %-12.0f\n", verify ? "on" : "off", r.throughput_ops_s);
    std::fflush(stdout);
  }
  const double crc_regression = crc_off_ops > 0 ? 1.0 - crc_on_ops / crc_off_ops : 1.0;
  std::printf("# checksum overhead: %+.1f%% ops/s (off=%.0f on=%.0f, gate <5%%)\n",
              crc_regression * 100.0, crc_off_ops, crc_on_ops);

  // Shape checks (paper §8.1.1): once the baseline spills out of memory,
  // MiniCrypt holds a large advantage; the collapse is sharper on disk; the
  // vanilla curve sits between baseline and MiniCrypt at the large end.
  auto last = [&](const char* media, const std::string& system) {
    return results[media][system].back().throughput;
  };
  auto first = [&](const char* media, const std::string& system) {
    return results[media][system].front().throughput;
  };
  const double disk_gain = last("disk", "minicrypt") / last("disk", "baseline");
  const double ssd_gain = last("ssd", "minicrypt") / last("ssd", "baseline");
  // Vanilla sits mid-crossover at the sweep's largest SSD point; the paper's
  // "up to 6.2x" is likewise the best point over the sweep, so take the max
  // across media.
  const double vanilla_gain = std::max(last("ssd", "minicrypt") / last("ssd", "vanilla"),
                                       last("disk", "minicrypt") / last("disk", "vanilla"));
  const bool baseline_wins_small = first("ssd", "baseline") > first("ssd", "minicrypt") * 0.85;
  const double disk_drop = first("disk", "baseline") / last("disk", "baseline");
  const double ssd_drop = first("ssd", "baseline") / last("ssd", "baseline");

  std::printf("\n# gains at largest size: disk=%.1fx ssd=%.1fx vs-vanilla(ssd)=%.1fx\n",
              disk_gain, ssd_gain, vanilla_gain);
  std::printf("# baseline collapse factor: disk=%.1fx ssd=%.1fx\n", disk_drop, ssd_drop);
  const bool beats_vanilla = vanilla_gain > 1.5;
  const bool cache_pass = cache_speedup >= 2.0 && cache_hit_rate >= 0.8;
  const bool crc_pass = crc_regression < 0.05;
  const bool pass = disk_gain > 5.0 && ssd_gain > 1.5 && beats_vanilla &&
                    disk_drop > ssd_drop && baseline_wins_small && cache_pass && crc_pass;
  std::printf(
      "# shape-check: minicrypt-wins-out-of-memory=%s beats-vanilla=%s "
      "disk-cliff-sharper-than-ssd=%s baseline-wins-in-memory=%s "
      "cache-2x-zipfian=%s checksum-overhead-under-5pct=%s\n",
      (disk_gain > 5.0 && ssd_gain > 1.5) ? "PASS" : "FAIL",
      beats_vanilla ? "PASS" : "FAIL", disk_drop > ssd_drop ? "PASS" : "FAIL",
      baseline_wins_small ? "PASS" : "FAIL", cache_pass ? "PASS" : "FAIL",
      crc_pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
