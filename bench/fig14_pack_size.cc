// Figure 14: read throughput versus pack size, and the pack-size tuner of
// §8.3. Sweeps candidate pack sizes on a dataset sized so that small packs
// spill out of memory while larger packs fit; the optimum should be near the
// smallest pack size whose compressed data fits in memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/tuner.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  // Every node mirrors the table (see fig9 calibration note): at 16 MB raw,
  // single-row packs (~10.7 MB at rest) overflow the 6 MB/node cache, while
  // 50-row packs (~4 MB at rest) fit.
  const double scale = BenchScale();
  const size_t cache_per_node = static_cast<size_t>(6.0 * scale * 1024 * 1024);
  const auto row_count = static_cast<uint64_t>(16.0 * scale * 1024 * 1024 / 1100.0);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);

  std::vector<uint64_t> read_keys;
  UniformChooser chooser(row_count, 777);
  for (int i = 0; i < 20000; ++i) {
    read_keys.push_back(chooser.Next());
  }

  MiniCryptOptions options;
  PackSizeTuner::Config config;
  config.candidate_pack_rows = {1, 5, 10, 25, 50, 100, 250};
  config.client_threads = 8;
  config.run_micros = static_cast<uint64_t>(900'000 * scale);
  // Mirrored replicas: the effective memory is ONE node's cache.
  config.memory_budget_bytes = cache_per_node;
  PackSizeTuner tuner(options, key, config);

  std::printf("# Figure 14: pack size vs maximum read throughput (disk profile)\n");
  std::printf("# raw=%.1fMB cache/node=%.1fMB\n", 16.0 * scale,
              static_cast<double>(cache_per_node) / 1048576.0);
  auto report = tuner.Run(
      [&] {
        return std::make_unique<Cluster>(PaperCluster(MediaKind::kDisk, cache_per_node));
      },
      rows, read_keys);
  if (!report.ok()) {
    std::fprintf(stderr, "tuner failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-14s %-12s %-12s\n", "pack_rows", "throughput", "ratio", "atrest_MB");
  for (const auto& p : report->points) {
    std::printf("%-10zu %-14.0f %-12.2f %-12.1f\n", p.pack_rows, p.throughput_ops_s,
                p.compression_ratio, static_cast<double>(p.at_rest_bytes) / 1048576.0);
  }
  std::printf("\n# tuner picks pack_rows=%zu; fits-in-memory heuristic says %zu\n",
              report->best_pack_rows, report->heuristic_pack_rows);

  // Shape checks: tiny packs (poor ratio, data spills) lose to mid-size
  // packs, and the empirical optimum is at or after the heuristic point.
  double tiny_tp = 0;
  double best_tp = 0;
  for (const auto& p : report->points) {
    if (p.pack_rows == 1) {
      tiny_tp = p.throughput_ops_s;
    }
    best_tp = std::max(best_tp, p.throughput_ops_s);
  }
  const bool mid_beats_tiny = best_tp > tiny_tp * 2.0;
  const bool heuristic_close = report->heuristic_pack_rows != 0 &&
                               report->best_pack_rows >= report->heuristic_pack_rows / 5;
  std::printf("# shape-check: optimal-pack-beats-single-row=%s "
              "optimum-near-fits-in-memory-heuristic=%s\n",
              mid_beats_tiny ? "PASS" : "FAIL", heuristic_close ? "PASS" : "FAIL");
  return (mid_beats_tiny && heuristic_close) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
