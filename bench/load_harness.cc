// Open-loop load harness: drives the async cluster API with N simulated
// Poisson clients (src/workload/loadgen.h) against the paper's 3-node RF=3
// ring at QUORUM, and emits a schema-versioned BENCH_load_<rev>.json with
// coordinated-omission-free p50/p99/p999 latency and goodput per op class.
// bench/check_regression.py gates the p99 cells against the committed
// baseline (lower is better). See docs/LOAD_TESTING.md.
//
//   load_harness [--revision=REV] [--out=PATH] [--clients=N]
//                [--duration-s=S] [--seed=N] [--nodes=N]
//                [--bootstrap-mid-load] [--rotate-mid-load] [--smoke]
//
// --smoke shrinks the run (fewer clients, shorter window, smaller keyspace)
// for the CI perf job; the full default sustains 1000 open-loop clients.
// --nodes overrides the paper's 3-node ring (e.g. 32 for the scale smoke);
// --bootstrap-mid-load adds one node halfway through the measured window, so
// the latency gate covers streaming + the dual-apply ownership flip under
// open-loop traffic (docs/LOAD_TESTING.md). --rotate-mid-load preloads a
// MiniCrypt pack table on the same ring and runs an epoch key rotation
// (announce -> repack -> verify -> retire, docs/KEY_ROTATION.md) halfway
// through the window, so the gate also covers the rotator's re-seal sweep
// competing with open-loop traffic for the same nodes and media.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/generic_client.h"
#include "src/crypto/keyring.h"
#include "src/kvstore/cluster.h"
#include "src/workload/loadgen.h"

namespace minicrypt {
namespace {

void JsonEscapeAppend(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// A latency cell: ns_per_op/mb_per_s are 0 so the normalized-throughput gate
// skips it; check_regression.py gates p99_us directly instead.
void AppendLatencyCell(std::string* json, const std::string& name, const Histogram& h,
                       uint64_t count, double goodput_ops_s, bool last) {
  *json += "    {\"name\": \"";
  JsonEscapeAppend(json, name);
  *json += "\", \"bytes_per_op\": 0, \"ns_per_op\": 0, \"mb_per_s\": 0";
  *json += ", \"p50_us\": " + FormatDouble(h.Percentile(0.50));
  *json += ", \"p99_us\": " + FormatDouble(h.Percentile(0.99));
  *json += ", \"p999_us\": " + FormatDouble(h.Percentile(0.999));
  *json += ", \"goodput_ops_s\": " + FormatDouble(goodput_ops_s);
  *json += ", \"iterations\": " + std::to_string(count);
  *json += last ? "}\n" : "},\n";
}

}  // namespace

int LoadHarnessMain(int argc, char** argv) {
  std::string revision = "dev";
  std::string out_path;
  bool smoke = false;
  int nodes = 0;  // 0 = the paper's 3-node ring
  bool bootstrap_mid_load = false;
  bool rotate_mid_load = false;
  LoadGenOptions lopts;
  lopts.clients = 1000;
  lopts.per_client_ops_s = 8.0;
  lopts.duration_micros = 3'000'000;
  lopts.warmup_micros = 500'000;
  lopts.keyspace = 10'000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--revision=", 0) == 0) {
      revision = arg.substr(strlen("--revision="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(strlen("--out="));
    } else if (arg.rfind("--clients=", 0) == 0) {
      lopts.clients = std::atoi(std::string(arg.substr(strlen("--clients="))).c_str());
    } else if (arg.rfind("--duration-s=", 0) == 0) {
      lopts.duration_micros = static_cast<uint64_t>(
          std::atof(std::string(arg.substr(strlen("--duration-s="))).c_str()) * 1e6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      lopts.seed = std::strtoull(std::string(arg.substr(strlen("--seed="))).c_str(), nullptr, 0);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      nodes = std::atoi(std::string(arg.substr(strlen("--nodes="))).c_str());
    } else if (arg == "--bootstrap-mid-load") {
      bootstrap_mid_load = true;
    } else if (arg == "--rotate-mid-load") {
      rotate_mid_load = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: load_harness [--revision=REV] [--out=PATH] [--clients=N] "
                   "[--duration-s=S] [--seed=N] [--nodes=N] [--bootstrap-mid-load] "
                   "[--rotate-mid-load] [--smoke]\n");
      return 2;
    }
  }
  if (smoke) {
    lopts.clients = 200;
    lopts.duration_micros = 1'000'000;
    lopts.warmup_micros = 250'000;
    lopts.keyspace = 2'000;
  }
  if (out_path.empty()) {
    out_path = "BENCH_load_" + revision + ".json";
  }

  // The paper ring at QUORUM, with the async pool sized for open-loop burst
  // absorption: arrivals keep coming while earlier ops wait on media/network,
  // so the queue bound is the overload valve, not a throughput limit.
  ClusterOptions copts = PaperCluster(MediaKind::kSsd, 64 << 20);
  copts.consistency = Consistency::kQuorum;
  copts.async_api_threads = 16;
  copts.async_queue_limit = 16'384;
  if (nodes > 0) {
    copts.node_count = nodes;
  }
  Cluster cluster(copts);
  Status s = cluster.CreateTable(lopts.table);
  if (!s.ok()) {
    std::fprintf(stderr, "create table failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload the exact key layout the generator probes, so reads never miss.
  const std::string value(lopts.value_bytes, 'v');
  for (uint64_t k = 0; k < lopts.keyspace; ++k) {
    Row row;
    row.cells["v"] = Cell{value, 0, false};
    s = cluster.Write(lopts.table, LoadPartitionFor(k, lopts.partitions), LoadClusteringFor(k),
                      row);
    if (!s.ok()) {
      std::fprintf(stderr, "preload failed at key %llu: %s\n",
                   static_cast<unsigned long long>(k), s.ToString().c_str());
      return 1;
    }
  }
  // A MiniCrypt pack table on the same ring for the mid-load rotation: the
  // rotator's re-seal sweep then competes with the open-loop traffic for the
  // same nodes, media queues, and async pool.
  auto ring = Keyring::FromMaster(SymmetricKey::FromSeed("load-rotate"));
  MiniCryptOptions mc_options;
  mc_options.pack_rows = 32;
  mc_options.hash_partitions = 4;
  constexpr uint64_t kPackKeyspace = 512;
  std::unique_ptr<GenericClient> rotator;
  if (rotate_mid_load) {
    rotator = std::make_unique<GenericClient>(&cluster, mc_options, ring);
    s = rotator->CreateTable();
    if (!s.ok()) {
      std::fprintf(stderr, "create pack table failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (uint64_t k = 0; k < kPackKeyspace; ++k) {
      s = rotator->Put(k, "pack-value-" + std::to_string(k));
      if (!s.ok()) {
        std::fprintf(stderr, "pack preload failed at key %llu: %s\n",
                     static_cast<unsigned long long>(k), s.ToString().c_str());
        return 1;
      }
    }
  }
  s = cluster.FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  cluster.ResetPerfCounters();
  MetricsRegistry::Instance().ResetAll();

  std::fprintf(stderr,
               "[load] clients=%d rate=%.0f ops/s window=%.1fs warmup=%.1fs keyspace=%llu%s\n",
               lopts.clients, lopts.clients * lopts.per_client_ops_s,
               static_cast<double>(lopts.duration_micros) / 1e6,
               static_cast<double>(lopts.warmup_micros) / 1e6,
               static_cast<unsigned long long>(lopts.keyspace), smoke ? " (smoke)" : "");
  // Mid-load bootstrap: fire roughly halfway through the measured window so
  // streaming and the quiesced ownership flips overlap peak traffic. Aborted
  // writes re-resolve and retry inside the coordinator, so the open-loop
  // histogram absorbs the flip as latency, not as errors.
  std::thread bootstrapper;
  std::atomic<int> bootstrap_ok{-1};  // -1 = not requested
  if (bootstrap_mid_load) {
    bootstrapper = std::thread([&] {
      std::this_thread::sleep_for(
          std::chrono::microseconds(lopts.warmup_micros + lopts.duration_micros / 2));
      Status bs = cluster.BootstrapNode().status();
      for (int attempt = 0; attempt < 16 && cluster.Topology().inflight; ++attempt) {
        bs = cluster.ResumeTopology();
        if (bs.ok()) {
          break;
        }
      }
      bootstrap_ok.store(bs.ok() && !cluster.Topology().inflight ? 1 : 0);
    });
  }
  // Mid-load rotation: the full announce -> repack -> verify -> retire
  // protocol against live cluster contention. Unavailable pauses (foreground
  // wins the LWT gate; the rotation record is durable) are resumed in place.
  std::thread rotate_thread;
  std::atomic<int> rotate_ok{-1};  // -1 = not requested
  if (rotate_mid_load) {
    rotate_thread = std::thread([&] {
      std::this_thread::sleep_for(
          std::chrono::microseconds(lopts.warmup_micros + lopts.duration_micros / 2));
      Status rs = rotator->RotateKeys();
      for (int attempt = 0; attempt < 16 && !rs.ok(); ++attempt) {
        rs = rotator->RotateKeys();
      }
      rotate_ok.store(rs.ok() ? 1 : 0);
    });
  }
  const LoadGenResult result = RunOpenLoop(cluster, lopts);
  if (bootstrapper.joinable()) {
    bootstrapper.join();
  }
  if (rotate_thread.joinable()) {
    rotate_thread.join();
  }
  if (rotate_mid_load) {
    std::fprintf(stderr, "[load] rotation mid-load: ok=%d epoch=%llu retired_below=%llu\n",
                 rotate_ok.load(), static_cast<unsigned long long>(ring->current_epoch()),
                 static_cast<unsigned long long>(ring->retired_below()));
    if (rotate_ok.load() != 1) {
      std::fprintf(stderr, "[load] FAIL: mid-load key rotation did not complete\n");
      return 1;
    }
    // Spot-check that rotated packs still serve their preloaded rows.
    for (uint64_t k = 0; k < kPackKeyspace; k += kPackKeyspace / 8) {
      auto got = rotator->Get(k);
      if (!got.ok() || *got != "pack-value-" + std::to_string(k)) {
        std::fprintf(stderr, "[load] FAIL: key %llu unreadable after rotation: %s\n",
                     static_cast<unsigned long long>(k), got.status().ToString().c_str());
        return 1;
      }
    }
  }
  if (bootstrap_mid_load) {
    std::fprintf(stderr, "[load] bootstrap mid-load: ok=%d serving=%zu\n", bootstrap_ok.load(),
                 cluster.ServingNodes().size());
    if (bootstrap_ok.load() != 1) {
      std::fprintf(stderr, "[load] FAIL: mid-load bootstrap did not complete\n");
      return 1;
    }
  }
  std::fprintf(stderr,
               "[load] offered=%llu ok=%llu errors=%llu rejected=%llu drained=%d\n"
               "[load] goodput=%.0f ops/s p50=%.0fus p99=%.0fus p999=%.0fus\n",
               static_cast<unsigned long long>(result.offered),
               static_cast<unsigned long long>(result.ok),
               static_cast<unsigned long long>(result.errors),
               static_cast<unsigned long long>(result.rejected), result.drained ? 1 : 0,
               result.goodput_ops_s, result.P50Micros(), result.P99Micros(),
               result.P999Micros());
  if (!result.drained) {
    std::fprintf(stderr, "[load] FAIL: drain timed out with callbacks outstanding\n");
    return 1;
  }
  if (result.ok == 0) {
    std::fprintf(stderr, "[load] FAIL: no operation completed successfully\n");
    return 1;
  }

  // Calibration cell so check_regression.py accepts the file and can reason
  // about machine speed alongside the latency cells.
  CellStats cal;
  {
    const std::string src(1 << 20, 'm');
    std::string dst(1 << 20, '\0');
    cal = MeasureCell(
        [&] {
          std::memcpy(dst.data(), src.data(), src.size());
          asm volatile("" : : "r"(dst.data()) : "memory");
        },
        src.size(), /*min_seconds=*/0.1);
  }

  std::string json = "{\n";
  json += "  \"schema\": \"mc-bench-v1\",\n";
  json += "  \"revision\": \"";
  JsonEscapeAppend(&json, revision);
  json += "\",\n";
  json += "  \"dispatch_level\": \"load\",\n";
  json += "  \"nodes\": " + std::to_string(static_cast<int>(cluster.NodeCount())) + ",\n";
  json += "  \"bootstrap_ok\": " + std::to_string(bootstrap_ok.load()) + ",\n";
  json += "  \"rotate_ok\": " + std::to_string(rotate_ok.load()) + ",\n";
  json += "  \"clients\": " + std::to_string(lopts.clients) + ",\n";
  json += "  \"offered_ops\": " + std::to_string(result.offered) + ",\n";
  json += "  \"errors\": " + std::to_string(result.errors) + ",\n";
  json += "  \"rejected\": " + std::to_string(result.rejected) + ",\n";
  json += "  \"goodput_ops_s\": " + FormatDouble(result.goodput_ops_s) + ",\n";
  json += "  \"cells\": [\n";
  json += "    {\"name\": \"calibration.memcpy_1m\", \"bytes_per_op\": " +
          std::to_string(1 << 20) + ", \"ns_per_op\": " + FormatDouble(cal.ns_per_op) +
          ", \"mb_per_s\": " + FormatDouble(cal.mb_per_s) +
          ", \"p50_ns\": " + FormatDouble(cal.p50_ns) +
          ", \"p99_ns\": " + FormatDouble(cal.p99_ns) +
          ", \"allocs_per_op\": " + FormatDouble(cal.allocs_per_op) +
          ", \"iterations\": " + std::to_string(cal.iterations) + "},\n";
  AppendLatencyCell(&json, "load.latency.all", result.latency, result.ok,
                    result.goodput_ops_s, /*last=*/false);
  AppendLatencyCell(&json, "load.latency.read", result.read_latency, result.read_latency.count(),
                    0.0, /*last=*/false);
  AppendLatencyCell(&json, "load.latency.write", result.write_latency,
                    result.write_latency.count(), 0.0, /*last=*/false);
  AppendLatencyCell(&json, "load.latency.range", result.range_latency,
                    result.range_latency.count(), 0.0, /*last=*/true);
  json += "  ]\n}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace minicrypt

int main(int argc, char** argv) { return minicrypt::LoadHarnessMain(argc, argv); }
