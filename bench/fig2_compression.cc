// Figure 2 (+ its summary table): compression ratio vs rows-per-pack for six
// datasets and five codecs. Also prints, per dataset: total rows, average
// value size, maximum ratio (whole dataset as one blob), and the rows/pack
// needed to reach >= 75% of that maximum with zlib.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/compress/compressor.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

// Ratio of raw bytes to compressed bytes when the rows are grouped into
// packs of `rows_per_pack` (0 = the whole dataset in one blob).
double PackRatio(const std::vector<std::string>& rows, const Compressor& codec,
                 size_t rows_per_pack) {
  const size_t group = rows_per_pack == 0 ? rows.size() : rows_per_pack;
  size_t raw = 0;
  size_t compressed = 0;
  std::string pack;
  for (size_t i = 0; i < rows.size(); i += group) {
    pack.clear();
    for (size_t j = i; j < std::min(rows.size(), i + group); ++j) {
      pack += rows[j];
      raw += rows[j].size();
    }
    auto out = codec.Compress(pack);
    if (!out.ok()) {
      std::fprintf(stderr, "compress failed: %s\n", out.status().ToString().c_str());
      std::abort();
    }
    compressed += out->size();
  }
  return static_cast<double>(raw) / static_cast<double>(compressed);
}

int Main() {
  const auto row_count = static_cast<uint64_t>(600 * BenchScale());
  const std::vector<size_t> pack_sizes = {1, 2, 5, 10, 20, 50, 100, 200};

  std::printf("# Figure 2: compression ratio vs rows per pack\n");
  std::printf("# datasets are synthetic stand-ins (see DESIGN.md substitutions)\n");
  std::printf("%-10s %-11s", "dataset", "codec");
  for (size_t n : pack_sizes) {
    std::printf(" n=%-6zu", n);
  }
  std::printf(" %-8s\n", "full");

  struct Summary {
    uint64_t rows;
    double avg_value_bytes;
    double max_ratio;          // zlib, whole dataset
    size_t rows_for_75pct;     // zlib
  };
  std::map<std::string, Summary> summaries;
  bool monotone_trend = true;

  for (std::string_view name : AllDatasetNames()) {
    auto dataset = MakeDataset(name, 4242);
    std::vector<std::string> rows;
    rows.reserve(row_count);
    size_t raw = 0;
    for (uint64_t i = 0; i < row_count; ++i) {
      rows.push_back(dataset->Row(i));
      raw += rows.back().size();
    }
    for (std::string_view codec_name : AllCompressorNames()) {
      const Compressor* codec = FindCompressor(codec_name);
      std::printf("%-10s %-11s", std::string(name).c_str(),
                  std::string(codec_name).c_str());
      double prev = 0.0;
      for (size_t n : pack_sizes) {
        const double ratio = PackRatio(rows, *codec, n);
        std::printf(" %-8.2f", ratio);
        if (n >= 5 && ratio + 0.15 < prev) {
          monotone_trend = false;  // allow tiny noise; big regressions fail
        }
        prev = std::max(prev, ratio);
      }
      const double full = PackRatio(rows, *codec, 0);
      std::printf(" %-8.2f\n", full);

      if (codec_name == "zlib") {
        Summary s;
        s.rows = row_count;
        s.avg_value_bytes = static_cast<double>(raw) / static_cast<double>(row_count);
        s.max_ratio = full;
        s.rows_for_75pct = 0;
        for (size_t n : pack_sizes) {
          if (PackRatio(rows, *codec, n) >= 0.75 * full) {
            s.rows_for_75pct = n;
            break;
          }
        }
        summaries[std::string(name)] = s;
      }
    }
  }

  std::printf("\n# Figure 2 summary table (zlib)\n");
  std::printf("%-10s %-8s %-12s %-10s %-14s\n", "dataset", "rows", "avg_value_B", "max_ratio",
              "rows_for_75pct");
  bool small_packs_suffice = true;
  for (const auto& [name, s] : summaries) {
    std::printf("%-10s %-8llu %-12.0f %-10.2f %-14zu\n", name.c_str(),
                static_cast<unsigned long long>(s.rows), s.avg_value_bytes, s.max_ratio,
                s.rows_for_75pct);
    if (s.rows_for_75pct == 0 || s.rows_for_75pct > 100) {
      small_packs_suffice = false;
    }
  }

  std::printf(
      "# shape-check: ratio-rises-then-plateaus=%s  <=100-rows-reach-75%%-of-max=%s\n",
      monotone_trend ? "PASS" : "FAIL", small_packs_suffice ? "PASS" : "FAIL");
  return (monotone_trend && small_packs_suffice) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
