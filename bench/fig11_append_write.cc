// Figure 11: APPEND-mode 100% write throughput versus client count, starting
// from an empty database. The encrypted baseline does blind single-row
// inserts; MiniCrypt APPEND does the same fast insert but its background
// mergers compete for the same server, so its curve settles below the
// baseline at high client counts (the paper reports ~40% of baseline).

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"
#include "src/workload/driver.h"

namespace minicrypt {
namespace {

MiniCryptOptions AppendOptions() {
  MiniCryptOptions options;
  options.table = "ts";
  options.pack_rows = 50;
  options.epoch_micros = 600'000;
  options.t_delta_micros = 100'000;
  options.t_drift_micros = 100'000;
  options.heartbeat_micros = 100'000;
  options.client_timeout_micros = 3'000'000;
  options.merge_period_micros = 150'000;
  return options;
}

int Main() {
  const double scale = BenchScale();
  const std::vector<int> client_counts = {1, 2, 4, 8, 16};
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  auto dataset = MakeDataset("conviva", 1);

  std::printf("# Figure 11: APPEND-mode 100%% write throughput (ops/s) vs clients, SSD\n");
  std::printf("%-18s", "clients");
  for (int c : client_counts) {
    std::printf(" %-10d", c);
  }
  std::printf("\n");

  std::vector<double> baseline_tp;
  std::vector<double> append_tp;

  // Baseline: blind single-row inserts of roughly-increasing keys.
  std::printf("%-18s", "baseline");
  for (int clients : client_counts) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    MiniCryptOptions options = AppendOptions();
    EncryptedBaselineClient baseline(&cluster, options, key);
    (void)baseline.CreateTable();
    std::atomic<uint64_t> next_key{0};
    DriverConfig driver;
    driver.threads = clients;
    driver.run_micros = static_cast<uint64_t>(1'000'000 * scale);
    const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
      const uint64_t k = next_key.fetch_add(1, std::memory_order_relaxed);
      return baseline.Put(k, dataset->Row(k % 4096)).ok();
    });
    std::printf(" %-10.0f", r.throughput_ops_s);
    std::fflush(stdout);
    baseline_tp.push_back(r.throughput_ops_s);
  }
  std::printf("\n");

  // MiniCrypt APPEND: one client object per thread, each with a live
  // heartbeat + merger; one EM replica drives epochs.
  std::printf("%-18s", "mc-append");
  for (int clients : client_counts) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    MiniCryptOptions options = AppendOptions();
    EmService em(&cluster, options, "em0");
    (void)em.Bootstrap();
    (void)em.Tick();
    em.Start(100'000);

    std::vector<std::unique_ptr<AppendClient>> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.push_back(std::make_unique<AppendClient>(&cluster, options, key,
                                                       "client-" + std::to_string(c)));
      (void)workers.back()->Register();
      workers.back()->Start();
    }
    std::atomic<uint64_t> next_key{0};
    DriverConfig driver;
    driver.threads = clients;
    driver.run_micros = static_cast<uint64_t>(1'000'000 * scale);
    const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
      const uint64_t k = next_key.fetch_add(1, std::memory_order_relaxed);
      return workers[static_cast<size_t>(thread)]->Put(k, dataset->Row(k % 4096)).ok();
    });
    em.Stop();
    for (auto& w : workers) {
      w->Stop();
    }
    std::printf(" %-10.0f", r.throughput_ops_s);
    std::fflush(stdout);
    append_tp.push_back(r.throughput_ops_s);
  }
  std::printf("\n");

  // Shape checks: APPEND keeps up at low client counts (>= ~40% of baseline
  // everywhere, close at 1 client), and both scale with clients.
  const double low_ratio = append_tp.front() / baseline_tp.front();
  double min_ratio = 1e9;
  for (size_t i = 0; i < append_tp.size(); ++i) {
    min_ratio = std::min(min_ratio, append_tp[i] / baseline_tp[i]);
  }
  std::printf("\n# append/baseline: at-1-client=%.2f min-over-sweep=%.2f\n", low_ratio,
              min_ratio);
  const bool pass = low_ratio > 0.5 && min_ratio > 0.25;
  std::printf("# shape-check: append-near-baseline-when-few-clients=%s "
              "merge-overhead-bounded=%s\n",
              low_ratio > 0.5 ? "PASS" : "FAIL", min_ratio > 0.25 ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
