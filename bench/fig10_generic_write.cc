// Figure 10: GENERIC-mode write throughput on a preloaded database, versus
// client count. Three systems: the encrypted baseline (blind single-row
// writes), MiniCrypt with update-if (the shipped protocol), and MiniCrypt
// with blind pack writes (the ablation the paper uses to show the cost is
// dominated by the extra read, not the lightweight transaction). Both a
// uniform and a skewed (zipfian knob 0.2) workload are run.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  const double scale = BenchScale();
  const auto row_count = static_cast<uint64_t>(8.0 * scale * 1024 * 1024 / 1100.0);
  const std::vector<int> client_counts = {1, 2, 4, 8, 16};
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);

  struct Config {
    const char* label;
    const char* system;   // baseline | minicrypt
    bool blind;
    double zipf_knob;     // < 0 -> uniform
  };
  const std::vector<Config> configs = {
      {"baseline-uniform", "baseline", false, -1.0},
      {"mc-updateif-uniform", "minicrypt", false, -1.0},
      {"mc-blind-uniform", "minicrypt", true, -1.0},
      {"mc-updateif-zipf0.2", "minicrypt", false, 0.2},
  };

  std::printf("# Figure 10: 100%% write throughput (ops/s), preloaded %.1f MB DB, SSD\n",
              8.0 * scale);
  std::printf("%-22s", "clients");
  for (int c : client_counts) {
    std::printf(" %-10d", c);
  }
  std::printf("\n");

  std::map<std::string, std::vector<double>> results;
  for (const Config& config : configs) {
    std::printf("%-22s", config.label);
    for (int clients : client_counts) {
      Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
      MiniCryptOptions options;
      options.pack_rows = 50;
      options.blind_pack_writes = config.blind;
      auto facade = MakeSystem(config.system, &cluster, options, key);
      PreloadAndWarm(*facade, cluster, options, rows);

      DriverConfig driver;
      driver.threads = clients;
      driver.warmup_micros = 150'000;
      driver.run_micros = static_cast<uint64_t>(900'000 * scale);
      const double knob = config.zipf_knob;
      const DriverResult r = RunClosedLoop(driver, [&](int thread, uint64_t index) {
        thread_local std::unique_ptr<KeyChooser> chooser;
        if (chooser == nullptr) {
          const auto seed = 0xfe11 + static_cast<uint64_t>(thread);
          if (knob < 0) {
            chooser = std::make_unique<UniformChooser>(row_count, seed);
          } else {
            chooser = std::make_unique<ZipfianChooser>(row_count, knob, seed);
          }
        }
        return facade->Put(chooser->Next(), "updated-value-" + std::to_string(index)).ok();
      });
      std::printf(" %-10.0f", r.throughput_ops_s);
      std::fflush(stdout);
      results[config.label].push_back(r.throughput_ops_s);
    }
    std::printf("\n");
  }

  // Shape checks (paper §8.2): the baseline's blind writes dominate; the
  // MiniCrypt cost is mostly the extra read (blind variant is not much
  // faster than update-if); skew has little effect.
  double base_over_mc = 0;
  double blind_over_updateif = 0;
  double skew_effect = 0;
  for (size_t i = 0; i < client_counts.size(); ++i) {
    base_over_mc = std::max(base_over_mc,
                            results["baseline-uniform"][i] / results["mc-updateif-uniform"][i]);
    blind_over_updateif =
        std::max(blind_over_updateif,
                 results["mc-blind-uniform"][i] / results["mc-updateif-uniform"][i]);
    skew_effect = std::max(
        skew_effect, std::abs(results["mc-updateif-zipf0.2"][i] -
                              results["mc-updateif-uniform"][i]) /
                         results["mc-updateif-uniform"][i]);
  }
  std::printf("\n# baseline/minicrypt max ratio: %.1fx; blind/update-if max ratio: %.2fx; "
              "max skew effect: %.0f%%\n",
              base_over_mc, blind_over_updateif, skew_effect * 100.0);
  const bool pass = base_over_mc > 2.0 && blind_over_updateif < 2.0 && skew_effect < 0.5;
  std::printf(
      "# shape-check: baseline-much-faster=%s extra-read-dominates-not-lwt=%s "
      "skew-negligible=%s\n",
      base_over_mc > 2.0 ? "PASS" : "FAIL", blind_over_updateif < 2.0 ? "PASS" : "FAIL",
      skew_effect < 0.5 ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
