// §8.4 network bandwidth: bytes shipped to the client per query, for point
// reads and range scans, across the three systems. MiniCrypt's point-read
// overhead is (pack bytes / compression ratio) per query; for ranges it ships
// *fewer* bytes than either comparison client because the packs stay
// compressed on the wire.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  const auto row_count = static_cast<uint64_t>(4.0 * BenchScale() * 1024 * 1024 / 1100.0);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);
  const int point_queries = 400;
  const int range_queries = 25;
  // Paper-size ranges: short ranges are dominated by the per-partition
  // boundary pack, see the fig9_range note.
  const uint64_t range_len = 1000;

  std::printf("# 8.4 network bandwidth: average bytes to client per query\n");
  std::printf("%-12s %-16s %-16s\n", "system", "point_B/query", "range_B/query");

  double point_bytes[3] = {};
  double range_bytes[3] = {};
  const char* systems[3] = {"minicrypt", "baseline", "vanilla"};
  for (int s = 0; s < 3; ++s) {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    MiniCryptOptions options;
    options.pack_rows = 50;
    auto facade = MakeSystem(systems[s], &cluster, options, key);
    PreloadAndWarm(*facade, cluster, options, rows);

    UniformChooser chooser(row_count, 99);
    cluster.ResetPerfCounters();
    for (int q = 0; q < point_queries; ++q) {
      (void)facade->Get(chooser.Next());
    }
    point_bytes[s] = static_cast<double>(cluster.stats().bytes_to_client.load()) /
                     point_queries;

    cluster.ResetPerfCounters();
    for (int q = 0; q < range_queries; ++q) {
      const uint64_t hi = chooser.Next();
      const uint64_t lo = hi >= range_len ? hi - range_len + 1 : 0;
      (void)facade->GetRange(lo, hi);
    }
    range_bytes[s] = static_cast<double>(cluster.stats().bytes_to_client.load()) /
                     range_queries;
    std::printf("%-12s %-16.0f %-16.0f\n", systems[s], point_bytes[s], range_bytes[s]);
  }

  // Shape checks: point reads cost MiniCrypt ~pack/ratio per query (more
  // than the baseline's single compressed row); range scans cost MiniCrypt
  // the least of the three.
  const bool point_overhead = point_bytes[0] > point_bytes[1];
  const bool range_wins = range_bytes[0] < range_bytes[1] && range_bytes[0] < range_bytes[2];
  std::printf("\n# point overhead vs baseline: %.1fx; range savings vs vanilla: %.1fx\n",
              point_bytes[0] / point_bytes[1], range_bytes[2] / range_bytes[0]);
  std::printf("# shape-check: point-pays-pack-overhead=%s range-ships-least-bytes=%s\n",
              point_overhead ? "PASS" : "FAIL", range_wins ? "PASS" : "FAIL");
  return (point_overhead && range_wins) ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
