// §8.2 append-mode latency table: single-threaded read and write latency on
// a preloaded database, MiniCrypt APPEND vs encrypted baseline. Paper:
// writes nearly identical (both are blind appends); MiniCrypt reads pay a
// premium because a miss may probe several epochs.

#include <atomic>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

int Main() {
  const double scale = BenchScale();
  const auto row_count = static_cast<uint64_t>(5.0 * scale * 1024 * 1024 / 1100.0);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const auto rows = ConvivaRows(row_count);
  auto dataset = MakeDataset("conviva", 1);

  MiniCryptOptions options;
  options.table = "ts";
  options.pack_rows = 50;
  options.epoch_micros = 800'000;
  options.t_delta_micros = 100'000;
  options.t_drift_micros = 100'000;

  std::printf("# 8.2 latency table: single-threaded append-mode ops, %.1f MB preload, SSD\n",
              5.0 * scale);
  std::printf("%-12s %-14s %-14s\n", "system", "read_mean_us", "write_mean_us");

  double base_read = 0;
  double base_write = 0;
  double mc_read = 0;
  double mc_write = 0;

  {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    EncryptedBaselineClient baseline(&cluster, options, key);
    (void)baseline.CreateTable();
    (void)baseline.BulkLoad(rows);
    (void)cluster.FlushAll();
    cluster.WarmCaches(options.table);
    std::atomic<uint64_t> frontier{row_count};
    DriverConfig config;
    config.threads = 1;
    config.warmup_micros = 150'000;
    config.run_micros = static_cast<uint64_t>(1'000'000 * scale);
    const DriverResult reads = RunClosedLoop(config, [&](int thread, uint64_t index) {
      thread_local UniformChooser chooser(row_count, 7);
      return baseline.Get(chooser.Next()).ok();
    });
    const DriverResult writes = RunClosedLoop(config, [&](int thread, uint64_t index) {
      const uint64_t k = frontier.fetch_add(1, std::memory_order_relaxed);
      return baseline.Put(k, dataset->Row(k % 4096)).ok();
    });
    base_read = reads.latency.Mean();
    base_write = writes.latency.Mean();
    std::printf("%-12s %-14.1f %-14.1f\n", "baseline", base_read, base_write);
  }

  {
    Cluster cluster(PaperCluster(MediaKind::kSsd, 64 * 1024 * 1024));
    EmService em(&cluster, options, "em0");
    (void)em.Bootstrap();
    (void)em.Tick();
    PreloadAppendPacks(cluster, options, key, rows);
    (void)cluster.FlushAll();
    cluster.WarmCaches(options.table);
    em.Start(150'000);
    AppendClient client(&cluster, options, key, "c0");
    (void)client.Register();
    client.Start();
    std::atomic<uint64_t> frontier{row_count};
    DriverConfig config;
    config.threads = 1;
    config.warmup_micros = 150'000;
    config.run_micros = static_cast<uint64_t>(1'000'000 * scale);
    const DriverResult reads = RunClosedLoop(config, [&](int thread, uint64_t index) {
      thread_local UniformChooser chooser(row_count, 7);
      return client.Get(chooser.Next()).ok();
    });
    const DriverResult writes = RunClosedLoop(config, [&](int thread, uint64_t index) {
      const uint64_t k = frontier.fetch_add(1, std::memory_order_relaxed);
      return client.Put(k, dataset->Row(k % 4096)).ok();
    });
    em.Stop();
    client.Stop();
    mc_read = reads.latency.Mean();
    mc_write = writes.latency.Mean();
    std::printf("%-12s %-14.1f %-14.1f\n", "mc-append", mc_read, mc_write);
  }

  // Shape checks (paper: writes 0.718 vs 0.781 ms — near parity; reads 1.103
  // vs 1.743 ms — bounded premium).
  const double write_ratio = mc_write / base_write;
  const double read_ratio = mc_read / base_read;
  std::printf("\n# write ratio=%.2f (paper ~1.09), read ratio=%.2f (paper ~1.58)\n",
              write_ratio, read_ratio);
  const bool pass = write_ratio < 1.7 && read_ratio < 3.5;
  std::printf("# shape-check: writes-near-parity=%s read-premium-bounded=%s\n",
              write_ratio < 1.7 ? "PASS" : "FAIL", read_ratio < 3.5 ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace minicrypt

int main() { return minicrypt::Main(); }
