file(REMOVE_RECURSE
  "CMakeFiles/fig10_generic_write.dir/fig10_generic_write.cc.o"
  "CMakeFiles/fig10_generic_write.dir/fig10_generic_write.cc.o.d"
  "fig10_generic_write"
  "fig10_generic_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_generic_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
