# Empty dependencies file for fig10_generic_write.
# This may be replaced when dependencies are built.
