# Empty dependencies file for fig2_compression.
# This may be replaced when dependencies are built.
