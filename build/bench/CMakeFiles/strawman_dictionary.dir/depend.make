# Empty dependencies file for strawman_dictionary.
# This may be replaced when dependencies are built.
