file(REMOVE_RECURSE
  "CMakeFiles/strawman_dictionary.dir/strawman_dictionary.cc.o"
  "CMakeFiles/strawman_dictionary.dir/strawman_dictionary.cc.o.d"
  "strawman_dictionary"
  "strawman_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strawman_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
