# Empty compiler generated dependencies file for fig9_read_throughput.
# This may be replaced when dependencies are built.
