
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_read_throughput.cc" "bench/CMakeFiles/fig9_read_throughput.dir/fig9_read_throughput.cc.o" "gcc" "bench/CMakeFiles/fig9_read_throughput.dir/fig9_read_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mc_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mc_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
