# Empty compiler generated dependencies file for network_bandwidth.
# This may be replaced when dependencies are built.
