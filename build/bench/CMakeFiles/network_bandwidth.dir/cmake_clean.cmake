file(REMOVE_RECURSE
  "CMakeFiles/network_bandwidth.dir/network_bandwidth.cc.o"
  "CMakeFiles/network_bandwidth.dir/network_bandwidth.cc.o.d"
  "network_bandwidth"
  "network_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
