# Empty compiler generated dependencies file for fig11_append_write.
# This may be replaced when dependencies are built.
