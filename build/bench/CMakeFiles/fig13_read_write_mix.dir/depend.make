# Empty dependencies file for fig13_read_write_mix.
# This may be replaced when dependencies are built.
