file(REMOVE_RECURSE
  "CMakeFiles/fig13_read_write_mix.dir/fig13_read_write_mix.cc.o"
  "CMakeFiles/fig13_read_write_mix.dir/fig13_read_write_mix.cc.o.d"
  "fig13_read_write_mix"
  "fig13_read_write_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_read_write_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
