file(REMOVE_RECURSE
  "CMakeFiles/fig9_range_throughput.dir/fig9_range_throughput.cc.o"
  "CMakeFiles/fig9_range_throughput.dir/fig9_range_throughput.cc.o.d"
  "fig9_range_throughput"
  "fig9_range_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_range_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
