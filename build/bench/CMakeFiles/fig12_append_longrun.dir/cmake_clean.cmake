file(REMOVE_RECURSE
  "CMakeFiles/fig12_append_longrun.dir/fig12_append_longrun.cc.o"
  "CMakeFiles/fig12_append_longrun.dir/fig12_append_longrun.cc.o.d"
  "fig12_append_longrun"
  "fig12_append_longrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_append_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
