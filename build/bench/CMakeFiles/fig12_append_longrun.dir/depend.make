# Empty dependencies file for fig12_append_longrun.
# This may be replaced when dependencies are built.
