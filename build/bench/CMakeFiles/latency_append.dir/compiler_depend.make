# Empty compiler generated dependencies file for latency_append.
# This may be replaced when dependencies are built.
