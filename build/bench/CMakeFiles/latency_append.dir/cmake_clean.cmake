file(REMOVE_RECURSE
  "CMakeFiles/latency_append.dir/latency_append.cc.o"
  "CMakeFiles/latency_append.dir/latency_append.cc.o.d"
  "latency_append"
  "latency_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
