# Empty dependencies file for latency_point.
# This may be replaced when dependencies are built.
