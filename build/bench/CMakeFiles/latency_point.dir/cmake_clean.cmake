file(REMOVE_RECURSE
  "CMakeFiles/latency_point.dir/latency_point.cc.o"
  "CMakeFiles/latency_point.dir/latency_point.cc.o.d"
  "latency_point"
  "latency_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
