# Empty dependencies file for fig14_pack_size.
# This may be replaced when dependencies are built.
