file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_packs.dir/multi_tenant_packs.cpp.o"
  "CMakeFiles/multi_tenant_packs.dir/multi_tenant_packs.cpp.o.d"
  "multi_tenant_packs"
  "multi_tenant_packs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_packs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
