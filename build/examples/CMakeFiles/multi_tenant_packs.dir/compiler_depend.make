# Empty compiler generated dependencies file for multi_tenant_packs.
# This may be replaced when dependencies are built.
