# Empty dependencies file for timeseries_append.
# This may be replaced when dependencies are built.
