# Empty compiler generated dependencies file for pack_tuning.
# This may be replaced when dependencies are built.
