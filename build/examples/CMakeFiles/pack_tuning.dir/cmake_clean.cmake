file(REMOVE_RECURSE
  "CMakeFiles/pack_tuning.dir/pack_tuning.cpp.o"
  "CMakeFiles/pack_tuning.dir/pack_tuning.cpp.o.d"
  "pack_tuning"
  "pack_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
