
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_proxy.cc" "src/core/CMakeFiles/mc_core.dir/access_proxy.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/access_proxy.cc.o.d"
  "/root/repo/src/core/append/append_client.cc" "src/core/CMakeFiles/mc_core.dir/append/append_client.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/append/append_client.cc.o.d"
  "/root/repo/src/core/append/em_service.cc" "src/core/CMakeFiles/mc_core.dir/append/em_service.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/append/em_service.cc.o.d"
  "/root/repo/src/core/append/epoch.cc" "src/core/CMakeFiles/mc_core.dir/append/epoch.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/append/epoch.cc.o.d"
  "/root/repo/src/core/baseline_client.cc" "src/core/CMakeFiles/mc_core.dir/baseline_client.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/baseline_client.cc.o.d"
  "/root/repo/src/core/generic_client.cc" "src/core/CMakeFiles/mc_core.dir/generic_client.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/generic_client.cc.o.d"
  "/root/repo/src/core/key_codec.cc" "src/core/CMakeFiles/mc_core.dir/key_codec.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/key_codec.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/mc_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/options.cc.o.d"
  "/root/repo/src/core/pack.cc" "src/core/CMakeFiles/mc_core.dir/pack.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/pack.cc.o.d"
  "/root/repo/src/core/pack_crypter.cc" "src/core/CMakeFiles/mc_core.dir/pack_crypter.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/pack_crypter.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/mc_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mc_kvstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
