# Empty compiler generated dependencies file for mc_core.
# This may be replaced when dependencies are built.
