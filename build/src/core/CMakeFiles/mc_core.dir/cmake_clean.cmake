file(REMOVE_RECURSE
  "CMakeFiles/mc_core.dir/access_proxy.cc.o"
  "CMakeFiles/mc_core.dir/access_proxy.cc.o.d"
  "CMakeFiles/mc_core.dir/append/append_client.cc.o"
  "CMakeFiles/mc_core.dir/append/append_client.cc.o.d"
  "CMakeFiles/mc_core.dir/append/em_service.cc.o"
  "CMakeFiles/mc_core.dir/append/em_service.cc.o.d"
  "CMakeFiles/mc_core.dir/append/epoch.cc.o"
  "CMakeFiles/mc_core.dir/append/epoch.cc.o.d"
  "CMakeFiles/mc_core.dir/baseline_client.cc.o"
  "CMakeFiles/mc_core.dir/baseline_client.cc.o.d"
  "CMakeFiles/mc_core.dir/generic_client.cc.o"
  "CMakeFiles/mc_core.dir/generic_client.cc.o.d"
  "CMakeFiles/mc_core.dir/key_codec.cc.o"
  "CMakeFiles/mc_core.dir/key_codec.cc.o.d"
  "CMakeFiles/mc_core.dir/options.cc.o"
  "CMakeFiles/mc_core.dir/options.cc.o.d"
  "CMakeFiles/mc_core.dir/pack.cc.o"
  "CMakeFiles/mc_core.dir/pack.cc.o.d"
  "CMakeFiles/mc_core.dir/pack_crypter.cc.o"
  "CMakeFiles/mc_core.dir/pack_crypter.cc.o.d"
  "CMakeFiles/mc_core.dir/tuner.cc.o"
  "CMakeFiles/mc_core.dir/tuner.cc.o.d"
  "libmc_core.a"
  "libmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
