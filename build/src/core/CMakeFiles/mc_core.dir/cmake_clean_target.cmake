file(REMOVE_RECURSE
  "libmc_core.a"
)
