file(REMOVE_RECURSE
  "CMakeFiles/mc_kvstore.dir/block_cache.cc.o"
  "CMakeFiles/mc_kvstore.dir/block_cache.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/bloom.cc.o"
  "CMakeFiles/mc_kvstore.dir/bloom.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/cluster.cc.o"
  "CMakeFiles/mc_kvstore.dir/cluster.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/commit_log.cc.o"
  "CMakeFiles/mc_kvstore.dir/commit_log.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/media.cc.o"
  "CMakeFiles/mc_kvstore.dir/media.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/memtable.cc.o"
  "CMakeFiles/mc_kvstore.dir/memtable.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/node.cc.o"
  "CMakeFiles/mc_kvstore.dir/node.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/ring.cc.o"
  "CMakeFiles/mc_kvstore.dir/ring.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/row.cc.o"
  "CMakeFiles/mc_kvstore.dir/row.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/sstable.cc.o"
  "CMakeFiles/mc_kvstore.dir/sstable.cc.o.d"
  "CMakeFiles/mc_kvstore.dir/storage_engine.cc.o"
  "CMakeFiles/mc_kvstore.dir/storage_engine.cc.o.d"
  "libmc_kvstore.a"
  "libmc_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
