file(REMOVE_RECURSE
  "libmc_kvstore.a"
)
