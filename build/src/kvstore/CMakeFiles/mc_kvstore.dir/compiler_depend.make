# Empty compiler generated dependencies file for mc_kvstore.
# This may be replaced when dependencies are built.
