
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/block_cache.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/block_cache.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/block_cache.cc.o.d"
  "/root/repo/src/kvstore/bloom.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/bloom.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/bloom.cc.o.d"
  "/root/repo/src/kvstore/cluster.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/cluster.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/cluster.cc.o.d"
  "/root/repo/src/kvstore/commit_log.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/commit_log.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/commit_log.cc.o.d"
  "/root/repo/src/kvstore/media.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/media.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/media.cc.o.d"
  "/root/repo/src/kvstore/memtable.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/memtable.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/memtable.cc.o.d"
  "/root/repo/src/kvstore/node.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/node.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/node.cc.o.d"
  "/root/repo/src/kvstore/ring.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/ring.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/ring.cc.o.d"
  "/root/repo/src/kvstore/row.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/row.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/row.cc.o.d"
  "/root/repo/src/kvstore/sstable.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/sstable.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/sstable.cc.o.d"
  "/root/repo/src/kvstore/storage_engine.cc" "src/kvstore/CMakeFiles/mc_kvstore.dir/storage_engine.cc.o" "gcc" "src/kvstore/CMakeFiles/mc_kvstore.dir/storage_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
