file(REMOVE_RECURSE
  "CMakeFiles/mc_compress.dir/bitstream.cc.o"
  "CMakeFiles/mc_compress.dir/bitstream.cc.o.d"
  "CMakeFiles/mc_compress.dir/bwt.cc.o"
  "CMakeFiles/mc_compress.dir/bwt.cc.o.d"
  "CMakeFiles/mc_compress.dir/bzip2_like.cc.o"
  "CMakeFiles/mc_compress.dir/bzip2_like.cc.o.d"
  "CMakeFiles/mc_compress.dir/huffman.cc.o"
  "CMakeFiles/mc_compress.dir/huffman.cc.o.d"
  "CMakeFiles/mc_compress.dir/lz4_like.cc.o"
  "CMakeFiles/mc_compress.dir/lz4_like.cc.o.d"
  "CMakeFiles/mc_compress.dir/lzma_like.cc.o"
  "CMakeFiles/mc_compress.dir/lzma_like.cc.o.d"
  "CMakeFiles/mc_compress.dir/registry.cc.o"
  "CMakeFiles/mc_compress.dir/registry.cc.o.d"
  "CMakeFiles/mc_compress.dir/snappy_like.cc.o"
  "CMakeFiles/mc_compress.dir/snappy_like.cc.o.d"
  "CMakeFiles/mc_compress.dir/strawman.cc.o"
  "CMakeFiles/mc_compress.dir/strawman.cc.o.d"
  "CMakeFiles/mc_compress.dir/zlib_compressor.cc.o"
  "CMakeFiles/mc_compress.dir/zlib_compressor.cc.o.d"
  "libmc_compress.a"
  "libmc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
