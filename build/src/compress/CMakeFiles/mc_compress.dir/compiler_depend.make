# Empty compiler generated dependencies file for mc_compress.
# This may be replaced when dependencies are built.
