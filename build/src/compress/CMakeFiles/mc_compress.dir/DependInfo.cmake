
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitstream.cc" "src/compress/CMakeFiles/mc_compress.dir/bitstream.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/bitstream.cc.o.d"
  "/root/repo/src/compress/bwt.cc" "src/compress/CMakeFiles/mc_compress.dir/bwt.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/bwt.cc.o.d"
  "/root/repo/src/compress/bzip2_like.cc" "src/compress/CMakeFiles/mc_compress.dir/bzip2_like.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/bzip2_like.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/mc_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/lz4_like.cc" "src/compress/CMakeFiles/mc_compress.dir/lz4_like.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/lz4_like.cc.o.d"
  "/root/repo/src/compress/lzma_like.cc" "src/compress/CMakeFiles/mc_compress.dir/lzma_like.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/lzma_like.cc.o.d"
  "/root/repo/src/compress/registry.cc" "src/compress/CMakeFiles/mc_compress.dir/registry.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/registry.cc.o.d"
  "/root/repo/src/compress/snappy_like.cc" "src/compress/CMakeFiles/mc_compress.dir/snappy_like.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/snappy_like.cc.o.d"
  "/root/repo/src/compress/strawman.cc" "src/compress/CMakeFiles/mc_compress.dir/strawman.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/strawman.cc.o.d"
  "/root/repo/src/compress/zlib_compressor.cc" "src/compress/CMakeFiles/mc_compress.dir/zlib_compressor.cc.o" "gcc" "src/compress/CMakeFiles/mc_compress.dir/zlib_compressor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
