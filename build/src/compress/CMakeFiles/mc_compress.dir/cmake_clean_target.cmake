file(REMOVE_RECURSE
  "libmc_compress.a"
)
