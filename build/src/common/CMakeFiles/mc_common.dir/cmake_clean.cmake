file(REMOVE_RECURSE
  "CMakeFiles/mc_common.dir/coding.cc.o"
  "CMakeFiles/mc_common.dir/coding.cc.o.d"
  "CMakeFiles/mc_common.dir/histogram.cc.o"
  "CMakeFiles/mc_common.dir/histogram.cc.o.d"
  "CMakeFiles/mc_common.dir/logging.cc.o"
  "CMakeFiles/mc_common.dir/logging.cc.o.d"
  "CMakeFiles/mc_common.dir/random.cc.o"
  "CMakeFiles/mc_common.dir/random.cc.o.d"
  "CMakeFiles/mc_common.dir/status.cc.o"
  "CMakeFiles/mc_common.dir/status.cc.o.d"
  "CMakeFiles/mc_common.dir/thread_util.cc.o"
  "CMakeFiles/mc_common.dir/thread_util.cc.o.d"
  "libmc_common.a"
  "libmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
