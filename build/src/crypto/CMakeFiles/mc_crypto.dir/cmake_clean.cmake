file(REMOVE_RECURSE
  "CMakeFiles/mc_crypto.dir/crypto.cc.o"
  "CMakeFiles/mc_crypto.dir/crypto.cc.o.d"
  "CMakeFiles/mc_crypto.dir/ope.cc.o"
  "CMakeFiles/mc_crypto.dir/ope.cc.o.d"
  "CMakeFiles/mc_crypto.dir/padding.cc.o"
  "CMakeFiles/mc_crypto.dir/padding.cc.o.d"
  "libmc_crypto.a"
  "libmc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
