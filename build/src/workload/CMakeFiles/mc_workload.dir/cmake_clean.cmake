file(REMOVE_RECURSE
  "CMakeFiles/mc_workload.dir/datasets.cc.o"
  "CMakeFiles/mc_workload.dir/datasets.cc.o.d"
  "CMakeFiles/mc_workload.dir/driver.cc.o"
  "CMakeFiles/mc_workload.dir/driver.cc.o.d"
  "libmc_workload.a"
  "libmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
