file(REMOVE_RECURSE
  "CMakeFiles/access_proxy_test.dir/access_proxy_test.cc.o"
  "CMakeFiles/access_proxy_test.dir/access_proxy_test.cc.o.d"
  "access_proxy_test"
  "access_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
