file(REMOVE_RECURSE
  "CMakeFiles/storage_engine_test.dir/storage_engine_test.cc.o"
  "CMakeFiles/storage_engine_test.dir/storage_engine_test.cc.o.d"
  "storage_engine_test"
  "storage_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
