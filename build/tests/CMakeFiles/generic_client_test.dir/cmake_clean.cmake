file(REMOVE_RECURSE
  "CMakeFiles/generic_client_test.dir/generic_client_test.cc.o"
  "CMakeFiles/generic_client_test.dir/generic_client_test.cc.o.d"
  "generic_client_test"
  "generic_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
