# Empty dependencies file for generic_client_test.
# This may be replaced when dependencies are built.
