# Empty compiler generated dependencies file for model_check_test.
# This may be replaced when dependencies are built.
