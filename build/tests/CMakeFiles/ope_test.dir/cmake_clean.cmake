file(REMOVE_RECURSE
  "CMakeFiles/ope_test.dir/ope_test.cc.o"
  "CMakeFiles/ope_test.dir/ope_test.cc.o.d"
  "ope_test"
  "ope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
