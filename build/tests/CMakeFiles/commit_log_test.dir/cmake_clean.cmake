file(REMOVE_RECURSE
  "CMakeFiles/commit_log_test.dir/commit_log_test.cc.o"
  "CMakeFiles/commit_log_test.dir/commit_log_test.cc.o.d"
  "commit_log_test"
  "commit_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
