file(REMOVE_RECURSE
  "CMakeFiles/append_test.dir/append_test.cc.o"
  "CMakeFiles/append_test.dir/append_test.cc.o.d"
  "append_test"
  "append_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
