#include "src/compress/compressor.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/compress/strawman.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

// Parameterized round-trip suite covering every general-purpose codec plus
// the RLE strawman.
class CodecRoundTrip : public ::testing::TestWithParam<std::string> {
 protected:
  const Compressor* codec() const {
    const Compressor* c = FindCompressor(GetParam());
    EXPECT_NE(c, nullptr);
    return c;
  }

  void ExpectRoundTrip(const std::string& input) {
    auto compressed = codec()->Compress(input);
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    auto restored = codec()->Decompress(*compressed);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(*restored, input);
  }
};

TEST_P(CodecRoundTrip, Empty) { ExpectRoundTrip(""); }

TEST_P(CodecRoundTrip, SingleByte) { ExpectRoundTrip("x"); }

TEST_P(CodecRoundTrip, AllByteValues) {
  std::string input;
  for (int rep = 0; rep < 3; ++rep) {
    for (int b = 0; b < 256; ++b) {
      input.push_back(static_cast<char>(b));
    }
  }
  ExpectRoundTrip(input);
}

TEST_P(CodecRoundTrip, LongRun) { ExpectRoundTrip(std::string(100000, 'a')); }

TEST_P(CodecRoundTrip, AlternatingRuns) {
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input.append(i % 2 == 0 ? "aaaabbbb" : "ccc");
  }
  ExpectRoundTrip(input);
}

TEST_P(CodecRoundTrip, RandomIncompressible) {
  Rng rng(101);
  ExpectRoundTrip(rng.Bytes(64 * 1024));
}

TEST_P(CodecRoundTrip, RandomSizesProperty) {
  Rng rng(202);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = rng.Uniform(3000);
    std::string input;
    // Mixed compressibility: runs, random bytes, repeated motifs.
    while (input.size() < n) {
      switch (rng.Uniform(3)) {
        case 0:
          input.append(rng.Uniform(40) + 1, static_cast<char>('a' + rng.Uniform(4)));
          break;
        case 1:
          input += rng.Bytes(rng.Uniform(30) + 1);
          break;
        default:
          input += "the quick brown fox ";
          break;
      }
    }
    input.resize(n);
    ExpectRoundTrip(input);
  }
}

TEST_P(CodecRoundTrip, DatasetSamples) {
  for (std::string_view name : {"conviva", "wiki"}) {
    auto dataset = MakeDataset(name, 77);
    std::string input;
    for (int i = 0; i < 30; ++i) {
      input += dataset->Row(static_cast<uint64_t>(i));
    }
    ExpectRoundTrip(input);
  }
}

TEST_P(CodecRoundTrip, TruncatedInputNeverYieldsWrongData) {
  const std::string input = std::string(1000, 'q') + "tail entropy 123";
  auto compressed = codec()->Compress(input);
  ASSERT_TRUE(compressed.ok());
  // Every strict prefix must fail — or, when the dropped bytes were pure
  // framing slack (possible for range-coder flush bytes), still decode to
  // exactly the original. Silent wrong output is the only forbidden outcome.
  for (size_t cut : {size_t{0}, size_t{1}, compressed->size() / 2, compressed->size() - 1}) {
    auto out = codec()->Decompress(std::string_view(compressed->data(), cut));
    if (out.ok()) {
      EXPECT_EQ(*out, input) << "cut=" << cut << " silently decoded to wrong data";
    }
  }
}

TEST_P(CodecRoundTrip, CompressibleDataShrinks) {
  auto dataset = MakeDataset("conviva", 3);
  std::string input;
  for (int i = 0; i < 100; ++i) {
    input += dataset->Row(static_cast<uint64_t>(i));
  }
  auto compressed = codec()->Compress(input);
  ASSERT_TRUE(compressed.ok());
  if (GetParam() != "rle") {  // byte-RLE legitimately cannot compress this
    // Conviva-like rows are ~12% incompressible tokens; even the fast LZ
    // codecs must still recover the cross-row field-name redundancy.
    EXPECT_LT(static_cast<double>(compressed->size()),
              static_cast<double>(input.size()) * 0.6)
        << GetParam() << " ratio too poor on pack-like data";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values("snappylike", "lz4like", "zlib", "zlib9",
                                           "bzip2like", "lzmalike", "rle"),
                         [](const auto& info) { return info.param; });

TEST(Registry, KnownNamesResolve) {
  for (std::string_view name : AllCompressorNames()) {
    const Compressor* c = FindCompressor(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->Name(), name);
  }
  EXPECT_EQ(FindCompressor("nope"), nullptr);
  EXPECT_NE(DefaultCompressor(), nullptr);
  EXPECT_EQ(DefaultCompressor()->Name(), "zlib");
}

TEST(Registry, SurveyOrderHasFiveCodecs) {
  // Figure 2 examines exactly five algorithms.
  EXPECT_EQ(AllCompressorNames().size(), 5u);
}

TEST(CodecComparison, BwtFamilyBeatsFastLzOnText) {
  auto dataset = MakeDataset("wiki", 5);
  std::string input;
  for (int i = 0; i < 60; ++i) {
    input += dataset->Row(static_cast<uint64_t>(i));
  }
  auto bwt = FindCompressor("bzip2like")->Compress(input);
  auto fast = FindCompressor("snappylike")->Compress(input);
  ASSERT_TRUE(bwt.ok());
  ASSERT_TRUE(fast.ok());
  // The slow/high-ratio end of the survey must actually deliver more ratio.
  EXPECT_LT(bwt->size(), fast->size());
}

TEST(Dictionary, InternEncodeDecode) {
  DictionaryEncoder dict;
  const uint32_t a = dict.Intern("female");
  const uint32_t b = dict.Intern("male");
  EXPECT_EQ(dict.Intern("female"), a);  // idempotent
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.DistinctValues(), 2u);
  auto code = dict.Encode("female");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->size(), dict.CodeWidth());
  auto value = dict.Decode(*code);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "female");
  EXPECT_TRUE(dict.Encode("unknown").status().IsNotFound());
}

TEST(Dictionary, CodeWidthGrowsWithCardinality) {
  DictionaryEncoder dict;
  for (int i = 0; i < 300; ++i) {
    dict.Intern("value-" + std::to_string(i));
  }
  EXPECT_EQ(dict.CodeWidth(), 2u);
  EXPECT_GT(dict.TableBytes(), 300u * 8);  // table carries every distinct value
}

TEST(Dictionary, PoorRatioOnHighCardinalityData) {
  // Paper §2.4: dictionary encoding achieved only ~1.6 overall on Conviva
  // because most columns are high-cardinality. Model one such column.
  DictionaryEncoder dict;
  auto dataset = MakeDataset("conviva", 9);
  size_t raw = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string row = dataset->Row(static_cast<uint64_t>(i));
    raw += row.size();
    dict.Intern(row);  // every row distinct -> table ~= data
  }
  // Encoded data shrinks to code width, but the client-held table is as big
  // as the data itself — the paper's "80% of the compressed data" problem.
  EXPECT_GT(dict.TableBytes(), raw / 2);
}

}  // namespace
}  // namespace minicrypt
