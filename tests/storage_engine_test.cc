#include "src/kvstore/storage_engine.h"

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/common/random.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value, uint64_t ts) {
  Row row;
  row.cells["v"] = Cell{std::move(value), ts, false};
  return row;
}

class StorageEngineTest : public ::testing::Test {
 protected:
  StorageEngineTest() : cache_(1 << 20) { Recreate(); }

  void Recreate(size_t flush_bytes = 16 * 1024, int compaction_trigger = 4) {
    StorageEngineOptions opts;
    opts.memtable_flush_bytes = flush_bytes;
    opts.compaction_trigger = compaction_trigger;
    opts.sstable.block_bytes = 512;
    engine_ = std::make_unique<StorageEngine>(opts, &cache_, &media_,
                                              std::make_unique<MemoryLogSink>());
  }

  BlockCache cache_;
  NullMedia media_;
  std::unique_ptr<StorageEngine> engine_;
  uint64_t ts_ = 0;
};

TEST_F(StorageEngineTest, GetFromMemtable) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(5), ValueRow("five", ++ts_)).ok());
  auto row = engine_->Get("p1", EncodeKey64(5));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->cells.at("v").value, "five");
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(6)).has_value());
  EXPECT_FALSE(engine_->Get("p2", EncodeKey64(5)).has_value());
}

TEST_F(StorageEngineTest, GetAfterFlush) {
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(
        engine_->Apply("p1", EncodeKey64(k), ValueRow("v" + std::to_string(k), ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_EQ(engine_->MemtableBytes(), 0u);
  EXPECT_GE(engine_->SstableCount(), 1u);
  for (uint64_t k = 0; k < 100; ++k) {
    auto row = engine_->Get("p1", EncodeKey64(k));
    ASSERT_TRUE(row.has_value()) << k;
    EXPECT_EQ(row->cells.at("v").value, "v" + std::to_string(k));
  }
}

TEST_F(StorageEngineTest, NewerCellWinsAcrossFlushBoundary) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("old", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("new", ++ts_)).ok());
  auto row = engine_->Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->cells.at("v").value, "new");
  ASSERT_TRUE(engine_->Flush().ok());
  row = engine_->Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->cells.at("v").value, "new");
}

TEST_F(StorageEngineTest, CompactionPreservesNewestAndDropsShadowed) {
  Recreate(/*flush_bytes=*/16 * 1024, /*compaction_trigger=*/3);
  for (int round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k),
                                 ValueRow("r" + std::to_string(round), ++ts_))
                      .ok());
    }
    ASSERT_TRUE(engine_->Flush().ok());
  }
  EXPECT_LT(engine_->SstableCount(), 3u);  // compaction collapsed the runs
  for (uint64_t k = 0; k < 50; ++k) {
    auto row = engine_->Get("p1", EncodeKey64(k));
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(row->cells.at("v").value, "r4");
  }
}

TEST_F(StorageEngineTest, TombstoneHidesRowAndSurvivesCompaction) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("x", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  Row tomb;
  tomb.cells["v"] = Cell{"", ++ts_, true};
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), tomb).ok());
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(1)).has_value());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(1)).has_value());
}

TEST_F(StorageEngineTest, FloorBasics) {
  for (uint64_t k : {10, 20, 30}) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*DecodeKey64(floor->first), 20u);
  floor = engine_->Floor("p1", EncodeKey64(30));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*DecodeKey64(floor->first), 30u);  // inclusive
  EXPECT_FALSE(engine_->Floor("p1", EncodeKey64(9)).has_value());
  EXPECT_FALSE(engine_->Floor("p2", EncodeKey64(25)).has_value());
}

TEST_F(StorageEngineTest, FloorAcrossMemtableAndSstables) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(10), ValueRow("a", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), ValueRow("b", ++ts_)).ok());
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*DecodeKey64(floor->first), 20u);  // memtable candidate wins
  floor = engine_->Floor("p1", EncodeKey64(15));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*DecodeKey64(floor->first), 10u);  // sstable candidate wins
}

TEST_F(StorageEngineTest, FloorSkipsFullyDeletedRows) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(10), ValueRow("keep", ++ts_)).ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), ValueRow("kill", ++ts_)).ok());
  Row tomb;
  tomb.cells["v"] = Cell{"", ++ts_, true};
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), tomb).ok());
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*DecodeKey64(floor->first), 10u);
}

TEST_F(StorageEngineTest, FloorDoesNotCrossPartitions) {
  ASSERT_TRUE(engine_->Apply("alpha", EncodeKey64(10), ValueRow("a", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_FALSE(engine_->Floor("beta", EncodeKey64(99)).has_value());
}

TEST_F(StorageEngineTest, ScanOrderedAndBounded) {
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k * 2),
                               ValueRow(std::to_string(k * 2), ++ts_))
                    .ok());
    if (k == 20) {
      ASSERT_TRUE(engine_->Flush().ok());
    }
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(engine_
                  ->Scan("p1", EncodeKey64(10), EncodeKey64(30), 0,
                         [&](std::string_view clustering, const Row& row) {
                           seen.push_back(*DecodeKey64(clustering));
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 11u);  // 10,12,...,30 inclusive
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 10 + 2 * i);
  }
}

TEST_F(StorageEngineTest, ScanHonorsLimit) {
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  int count = 0;
  ASSERT_TRUE(engine_
                  ->Scan("p1", EncodeKey64(0), EncodeKey64(100), 5,
                         [&](std::string_view clustering, const Row& row) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 5);
}

TEST_F(StorageEngineTest, PartitionTombstoneHidesOlderData) {
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(engine_->Apply("epoch3", EncodeKey64(k), ValueRow("old", ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->ApplyPartitionTombstone("epoch3", ++ts_).ok());
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_FALSE(engine_->Get("epoch3", EncodeKey64(k)).has_value());
  }
  int scanned = 0;
  ASSERT_TRUE(engine_
                  ->Scan("epoch3", EncodeKey64(0), EncodeKey64(100), 0,
                         [&](std::string_view clustering, const Row& row) {
                           ++scanned;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, 0);
  // Writes after the tombstone are visible again.
  ASSERT_TRUE(engine_->Apply("epoch3", EncodeKey64(4), ValueRow("new", ++ts_)).ok());
  auto row = engine_->Get("epoch3", EncodeKey64(4));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->cells.at("v").value, "new");
}

TEST_F(StorageEngineTest, PartitionTombstoneSurvivesFlushAndCompaction) {
  Recreate(/*flush_bytes=*/16 * 1024, /*compaction_trigger=*/2);
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(engine_->Apply("e1", EncodeKey64(k), ValueRow("old", ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->ApplyPartitionTombstone("e1", ++ts_).ok());
  ASSERT_TRUE(engine_->Flush().ok());  // triggers compaction at 2 tables
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_FALSE(engine_->Get("e1", EncodeKey64(k)).has_value());
  }
}

TEST_F(StorageEngineTest, CommitLogReplayRestoresMemtable) {
  auto sink = std::make_unique<MemoryLogSink>();
  LogSink* raw_sink = sink.get();
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  StorageEngine first(opts, &cache_, &media_, std::move(sink));
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(1), ValueRow("crashsafe", 1)).ok());
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(2), ValueRow("also", 2)).ok());

  // Simulate a crash: build a second engine over a sink holding the same
  // bytes and replay.
  std::string log_bytes;
  ASSERT_TRUE(raw_sink->ReadAll(&log_bytes).ok());
  auto sink2 = std::make_unique<MemoryLogSink>();
  ASSERT_TRUE(sink2->Append(log_bytes).ok());
  StorageEngine second(opts, &cache_, &media_, std::move(sink2));
  ASSERT_TRUE(second.RecoverFromLog().ok());
  auto row = second.Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->cells.at("v").value, "crashsafe");
  EXPECT_TRUE(second.Get("p1", EncodeKey64(2)).has_value());
}

TEST_F(StorageEngineTest, CommitLogReplayStopsAtTornRecord) {
  auto sink = std::make_unique<MemoryLogSink>();
  LogSink* raw_sink = sink.get();
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  StorageEngine first(opts, &cache_, &media_, std::move(sink));
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(1), ValueRow("intact", 1)).ok());
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(2), ValueRow("torn", 2)).ok());

  std::string log_bytes;
  ASSERT_TRUE(raw_sink->ReadAll(&log_bytes).ok());
  log_bytes.resize(log_bytes.size() - 3);  // tear the tail record
  auto sink2 = std::make_unique<MemoryLogSink>();
  ASSERT_TRUE(sink2->Append(log_bytes).ok());
  StorageEngine second(opts, &cache_, &media_, std::move(sink2));
  ASSERT_TRUE(second.RecoverFromLog().ok());
  EXPECT_TRUE(second.Get("p1", EncodeKey64(1)).has_value());
  EXPECT_FALSE(second.Get("p1", EncodeKey64(2)).has_value());
}

TEST_F(StorageEngineTest, AutomaticFlushOnThreshold) {
  Recreate(/*flush_bytes=*/2048);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow(std::string(64, 'x'), ++ts_)).ok());
  }
  EXPECT_GE(engine_->SstableCount(), 1u);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(engine_->Get("p1", EncodeKey64(k)).has_value()) << k;
  }
}

}  // namespace
}  // namespace minicrypt
