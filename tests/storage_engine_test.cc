#include "src/kvstore/storage_engine.h"

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value, uint64_t ts) {
  Row row;
  row.cells["v"] = Cell{std::move(value), ts, false};
  return row;
}

class StorageEngineTest : public ::testing::Test {
 protected:
  StorageEngineTest() : cache_(1 << 20) { Recreate(); }

  void Recreate(size_t flush_bytes = 16 * 1024, int compaction_trigger = 4) {
    StorageEngineOptions opts;
    opts.memtable_flush_bytes = flush_bytes;
    opts.compaction_trigger = compaction_trigger;
    opts.sstable.block_bytes = 512;
    engine_ = std::make_unique<StorageEngine>(opts, &cache_, &media_,
                                              std::make_unique<MemoryLogSink>());
  }

  BlockCache cache_;
  NullMedia media_;
  std::unique_ptr<StorageEngine> engine_;
  uint64_t ts_ = 0;
};

TEST_F(StorageEngineTest, GetFromMemtable) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(5), ValueRow("five", ++ts_)).ok());
  auto row = engine_->Get("p1", EncodeKey64(5));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "five");
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(6)).ok());
  EXPECT_FALSE(engine_->Get("p2", EncodeKey64(5)).ok());
}

TEST_F(StorageEngineTest, GetAfterFlush) {
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(
        engine_->Apply("p1", EncodeKey64(k), ValueRow("v" + std::to_string(k), ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_EQ(engine_->MemtableBytes(), 0u);
  EXPECT_GE(engine_->SstableCount(), 1u);
  for (uint64_t k = 0; k < 100; ++k) {
    auto row = engine_->Get("p1", EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, "v" + std::to_string(k));
  }
}

TEST_F(StorageEngineTest, NewerCellWinsAcrossFlushBoundary) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("old", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("new", ++ts_)).ok());
  auto row = engine_->Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "new");
  ASSERT_TRUE(engine_->Flush().ok());
  row = engine_->Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "new");
}

TEST_F(StorageEngineTest, CompactionPreservesNewestAndDropsShadowed) {
  Recreate(/*flush_bytes=*/16 * 1024, /*compaction_trigger=*/3);
  for (int round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k),
                                 ValueRow("r" + std::to_string(round), ++ts_))
                      .ok());
    }
    ASSERT_TRUE(engine_->Flush().ok());
  }
  EXPECT_LT(engine_->SstableCount(), 3u);  // compaction collapsed the runs
  for (uint64_t k = 0; k < 50; ++k) {
    auto row = engine_->Get("p1", EncodeKey64(k));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->cells.at("v").value, "r4");
  }
}

TEST_F(StorageEngineTest, TombstoneHidesRowAndSurvivesCompaction) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), ValueRow("x", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  Row tomb;
  tomb.cells["v"] = Cell{"", ++ts_, true};
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(1), tomb).ok());
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(1)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_FALSE(engine_->Get("p1", EncodeKey64(1)).ok());
}

TEST_F(StorageEngineTest, FloorBasics) {
  for (uint64_t k : {10, 20, 30}) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(*DecodeKey64(floor->first), 20u);
  floor = engine_->Floor("p1", EncodeKey64(30));
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(*DecodeKey64(floor->first), 30u);  // inclusive
  EXPECT_FALSE(engine_->Floor("p1", EncodeKey64(9)).ok());
  EXPECT_FALSE(engine_->Floor("p2", EncodeKey64(25)).ok());
}

TEST_F(StorageEngineTest, FloorAcrossMemtableAndSstables) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(10), ValueRow("a", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), ValueRow("b", ++ts_)).ok());
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(*DecodeKey64(floor->first), 20u);  // memtable candidate wins
  floor = engine_->Floor("p1", EncodeKey64(15));
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(*DecodeKey64(floor->first), 10u);  // sstable candidate wins
}

TEST_F(StorageEngineTest, FloorSkipsFullyDeletedRows) {
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(10), ValueRow("keep", ++ts_)).ok());
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), ValueRow("kill", ++ts_)).ok());
  Row tomb;
  tomb.cells["v"] = Cell{"", ++ts_, true};
  ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(20), tomb).ok());
  auto floor = engine_->Floor("p1", EncodeKey64(25));
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(*DecodeKey64(floor->first), 10u);
}

TEST_F(StorageEngineTest, FloorDoesNotCrossPartitions) {
  ASSERT_TRUE(engine_->Apply("alpha", EncodeKey64(10), ValueRow("a", ++ts_)).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_FALSE(engine_->Floor("beta", EncodeKey64(99)).ok());
}

TEST_F(StorageEngineTest, ScanOrderedAndBounded) {
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k * 2),
                               ValueRow(std::to_string(k * 2), ++ts_))
                    .ok());
    if (k == 20) {
      ASSERT_TRUE(engine_->Flush().ok());
    }
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(engine_
                  ->Scan("p1", EncodeKey64(10), EncodeKey64(30), 0,
                         [&](std::string_view clustering, const Row& row) {
                           seen.push_back(*DecodeKey64(clustering));
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 11u);  // 10,12,...,30 inclusive
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 10 + 2 * i);
  }
}

TEST_F(StorageEngineTest, ScanHonorsLimit) {
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  int count = 0;
  ASSERT_TRUE(engine_
                  ->Scan("p1", EncodeKey64(0), EncodeKey64(100), 5,
                         [&](std::string_view clustering, const Row& row) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 5);
}

TEST_F(StorageEngineTest, PartitionTombstoneHidesOlderData) {
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(engine_->Apply("epoch3", EncodeKey64(k), ValueRow("old", ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->ApplyPartitionTombstone("epoch3", ++ts_).ok());
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_FALSE(engine_->Get("epoch3", EncodeKey64(k)).ok());
  }
  int scanned = 0;
  ASSERT_TRUE(engine_
                  ->Scan("epoch3", EncodeKey64(0), EncodeKey64(100), 0,
                         [&](std::string_view clustering, const Row& row) {
                           ++scanned;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, 0);
  // Writes after the tombstone are visible again.
  ASSERT_TRUE(engine_->Apply("epoch3", EncodeKey64(4), ValueRow("new", ++ts_)).ok());
  auto row = engine_->Get("epoch3", EncodeKey64(4));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "new");
}

TEST_F(StorageEngineTest, PartitionTombstoneSurvivesFlushAndCompaction) {
  Recreate(/*flush_bytes=*/16 * 1024, /*compaction_trigger=*/2);
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(engine_->Apply("e1", EncodeKey64(k), ValueRow("old", ++ts_)).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  ASSERT_TRUE(engine_->ApplyPartitionTombstone("e1", ++ts_).ok());
  ASSERT_TRUE(engine_->Flush().ok());  // triggers compaction at 2 tables
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_FALSE(engine_->Get("e1", EncodeKey64(k)).ok());
  }
}

TEST_F(StorageEngineTest, CommitLogReplayRestoresMemtable) {
  auto sink = std::make_unique<MemoryLogSink>();
  LogSink* raw_sink = sink.get();
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  StorageEngine first(opts, &cache_, &media_, std::move(sink));
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(1), ValueRow("crashsafe", 1)).ok());
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(2), ValueRow("also", 2)).ok());

  // Simulate a crash: build a second engine over a sink holding the same
  // bytes and replay.
  std::string log_bytes;
  ASSERT_TRUE(raw_sink->ReadAll(&log_bytes).ok());
  auto sink2 = std::make_unique<MemoryLogSink>();
  ASSERT_TRUE(sink2->Append(log_bytes).ok());
  StorageEngine second(opts, &cache_, &media_, std::move(sink2));
  ASSERT_TRUE(second.RecoverFromLog().ok());
  auto row = second.Get("p1", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "crashsafe");
  EXPECT_TRUE(second.Get("p1", EncodeKey64(2)).ok());
}

TEST_F(StorageEngineTest, CommitLogReplayStopsAtTornRecord) {
  auto sink = std::make_unique<MemoryLogSink>();
  LogSink* raw_sink = sink.get();
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  StorageEngine first(opts, &cache_, &media_, std::move(sink));
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(1), ValueRow("intact", 1)).ok());
  ASSERT_TRUE(first.Apply("p1", EncodeKey64(2), ValueRow("torn", 2)).ok());

  std::string log_bytes;
  ASSERT_TRUE(raw_sink->ReadAll(&log_bytes).ok());
  log_bytes.resize(log_bytes.size() - 3);  // tear the tail record
  auto sink2 = std::make_unique<MemoryLogSink>();
  ASSERT_TRUE(sink2->Append(log_bytes).ok());
  StorageEngine second(opts, &cache_, &media_, std::move(sink2));
  ASSERT_TRUE(second.RecoverFromLog().ok());
  EXPECT_TRUE(second.Get("p1", EncodeKey64(1)).ok());
  EXPECT_FALSE(second.Get("p1", EncodeKey64(2)).ok());
}

TEST_F(StorageEngineTest, AutomaticFlushOnThreshold) {
  Recreate(/*flush_bytes=*/2048);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(engine_->Apply("p1", EncodeKey64(k), ValueRow(std::string(64, 'x'), ++ts_)).ok());
  }
  EXPECT_GE(engine_->SstableCount(), 1u);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(engine_->Get("p1", EncodeKey64(k)).ok()) << k;
  }
}

TEST_F(StorageEngineTest, CrashWithoutTornTailRecoversEverything) {
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  StorageEngine engine(opts, &cache_, &media_, std::make_unique<MemoryLogSink>());
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(engine.Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  ASSERT_TRUE(engine.Crash(/*tear_draw=*/0).ok());
  // The memtable is gone until recovery replays the log.
  EXPECT_EQ(engine.MemtableBytes(), 0u);
  EXPECT_TRUE(engine.Get("p1", EncodeKey64(0)).status().IsNotFound());
  ASSERT_TRUE(engine.RecoverFromLog().ok());
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_TRUE(engine.Get("p1", EncodeKey64(k)).ok()) << k;
  }
}

TEST_F(StorageEngineTest, CrashTearsUnsyncedTailAndRecoveryKeepsAPrefix) {
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  opts.commitlog_sync_every_appends = 1000;  // everything sits in the unsynced tail
  StorageEngine engine(opts, &cache_, &media_, std::make_unique<MemoryLogSink>());
  constexpr uint64_t kRows = 20;
  for (uint64_t k = 0; k < kRows; ++k) {
    ASSERT_TRUE(engine.Apply("p1", EncodeKey64(k), ValueRow("v", ++ts_)).ok());
  }
  // A 37-byte tear lands mid-record near the tail (records are larger than
  // 2 bytes, smaller than 37, so at least one but not all are lost).
  ASSERT_TRUE(engine.Crash(/*tear_draw=*/37).ok());
  ASSERT_TRUE(engine.RecoverFromLog().ok());
  uint64_t recovered = 0;
  while (recovered < kRows && engine.Get("p1", EncodeKey64(recovered)).ok()) {
    ++recovered;
  }
  EXPECT_GE(recovered, 1u);
  EXPECT_LT(recovered, kRows);  // the torn tail lost at least one record
  // Strictly a prefix: nothing after the first missing key survived.
  for (uint64_t k = recovered; k < kRows; ++k) {
    EXPECT_TRUE(engine.Get("p1", EncodeKey64(k)).status().IsNotFound()) << k;
  }
  // Post-recovery writes append cleanly and survive an immediate clean crash.
  ASSERT_TRUE(engine.Apply("p1", EncodeKey64(100), ValueRow("fresh", ++ts_)).ok());
  ASSERT_TRUE(engine.Crash(/*tear_draw=*/0).ok());
  ASSERT_TRUE(engine.RecoverFromLog().ok());
  EXPECT_TRUE(engine.Get("p1", EncodeKey64(100)).ok());
  EXPECT_EQ(recovered, [&] {
    uint64_t again = 0;
    while (again < kRows && engine.Get("p1", EncodeKey64(again)).ok()) ++again;
    return again;
  }());
}

TEST_F(StorageEngineTest, CorruptBlockReadsErrorAndScrubQuarantines) {
  FaultInjector injector(0xC0);
  injector.SetRate(FaultPoint::kMediaCorruption, 1.0);
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  opts.sstable.block_bytes = 512;
  opts.fault_injector = &injector;
  StorageEngine engine(opts, &cache_, &media_, std::make_unique<MemoryLogSink>());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(engine.Apply("p1", EncodeKey64(k), ValueRow("v" + std::to_string(k), ++ts_)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());  // rate 1.0: every block of the table is corrupted
  ASSERT_EQ(engine.SstableCount(), 1u);

  // Detection, not silence: every read of the table reports Corruption —
  // never NotFound, never bad data.
  Counter* detected = MetricsRegistry::Instance().GetCounter("storage.corruption.detected");
  const uint64_t detected_before = detected->Value();
  for (uint64_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(engine.Get("p1", EncodeKey64(k)).status().IsCorruption()) << k;
  }
  EXPECT_GT(detected->Value(), detected_before);

  // Scrub phase 1 marks the table but keeps it in the read set.
  std::vector<QuarantinedRange> ranges;
  ASSERT_TRUE(engine.Scrub(&ranges).ok());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_GT(ranges[0].blocks, 0u);
  EXPECT_EQ(ranges[0].entries, 50u);
  EXPECT_LE(ranges[0].smallest, ranges[0].largest);
  EXPECT_EQ(engine.QuarantinedCount(), 1u);
  EXPECT_EQ(engine.SstableCount(), 1u);
  EXPECT_TRUE(engine.Get("p1", EncodeKey64(0)).status().IsCorruption());

  // Phase 2 (after the cluster would have re-streamed the range) removes it.
  EXPECT_EQ(engine.DropQuarantined(), 1u);
  EXPECT_EQ(engine.QuarantinedCount(), 0u);
  EXPECT_EQ(engine.SstableCount(), 0u);

  // Scrub is idempotent on a clean engine.
  ranges.clear();
  ASSERT_TRUE(engine.Scrub(&ranges).ok());
  EXPECT_TRUE(ranges.empty());
}

TEST_F(StorageEngineTest, CompactionSkipsWhenAnInputTableIsCorrupt) {
  FaultInjector injector(0xC1);
  injector.Script(FaultPoint::kMediaCorruption, 1);  // corrupt one block of the first flush
  StorageEngineOptions opts;
  opts.memtable_flush_bytes = 1 << 20;
  opts.compaction_trigger = 2;
  opts.sstable.block_bytes = 256;
  opts.fault_injector = &injector;
  StorageEngine engine(opts, &cache_, &media_, std::make_unique<MemoryLogSink>());
  Counter* skipped = MetricsRegistry::Instance().GetCounter("engine.compaction.skipped_corrupt");
  const uint64_t skipped_before = skipped->Value();
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(engine.Apply("p1", EncodeKey64(k), ValueRow("a", ++ts_)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  for (uint64_t k = 40; k < 80; ++k) {
    ASSERT_TRUE(engine.Apply("p1", EncodeKey64(k), ValueRow("b", ++ts_)).ok());
  }
  // This flush reaches the compaction trigger; the merge hits the corrupt
  // block and backs out without failing the flush.
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.SstableCount(), 2u);  // not compacted
  EXPECT_GT(skipped->Value(), skipped_before);
  // Rows outside the corrupt block still read fine.
  EXPECT_TRUE(engine.Get("p1", EncodeKey64(79)).ok());
}

}  // namespace
}  // namespace minicrypt
