// The async request pipeline at the coordinator/replica boundary: concurrent
// replica fan-out (the ISSUE acceptance check: a QUORUM write's wall-clock
// beats the sum of its injected per-replica delays), the Async* entry points,
// bounded-admission overload behavior, and Quiesce's settle guarantee.

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/kvstore/cluster.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedMicros(SteadyClock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   SteadyClock::now() - start)
                                   .count());
}

// Zero-network 3-node RF=3 ring; all latency comes from injected faults.
ClusterOptions RingOptions(FaultInjector* injector, Consistency consistency) {
  ClusterOptions options = ClusterOptions::ForTest();
  options.node_count = 3;
  options.replication_factor = 3;
  options.consistency = consistency;
  options.fault_injector = injector;
  return options;
}

Row OneCell(const std::string& value) {
  Row row;
  row.cells["v"] = Cell{value, 0, false};
  return row;
}

TEST(AsyncClusterTest, QuorumWriteFansOutConcurrently) {
  // Every replica leg gets a delay spike in [20ms, 80ms]. Serial fan-out
  // would take the SUM of the three spikes; concurrent fan-out takes ~the
  // max. The spike magnitudes are seeded draws, so read the actual sum from
  // the delay counter instead of assuming it.
  FaultInjector injector(/*seed=*/7);
  injector.SetRate(FaultPoint::kReplicaDelay, 1.0);
  injector.set_latency_spike_base_micros(20'000);
  Cluster cluster(RingOptions(&injector, Consistency::kQuorum));
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  Counter* delay_sum = MetricsRegistry::Instance().GetCounter("cluster.replica.delay_micros");
  const uint64_t before = delay_sum->Value();
  const SteadyClock::time_point start = SteadyClock::now();
  ASSERT_TRUE(cluster.Write("t", "p", "c", OneCell("x")).ok());
  const uint64_t wall_micros = ElapsedMicros(start);
  cluster.Quiesce();  // settle the straggler leg so the counter is final

  EXPECT_EQ(injector.trips(FaultPoint::kReplicaDelay), 3u);
  const uint64_t injected_sum = delay_sum->Value() - before;
  ASSERT_GE(injected_sum, 3u * 20'000u);
  // Concurrency bound: the sum exceeds the slowest leg by >= 2 * base
  // (2 more legs at >= 20ms each), so a concurrent coordinator — which waits
  // for roughly the slowest quorum leg — must come in well under the sum.
  EXPECT_LT(wall_micros, injected_sum - 20'000u)
      << "QUORUM write took the serial sum of replica delays";

  // And the write is a real quorum write: all three replicas converge.
  cluster.Quiesce();
  for (int node = 0; node < 3; ++node) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u) << "node " << node;
    EXPECT_EQ((*rows)[0].second.cells.at("v").value, "x") << "node " << node;
  }
}

TEST(AsyncClusterTest, QuiesceSettlesStragglerLegs) {
  // CL=ONE returns on the first ack while two delayed legs are still in
  // flight; Quiesce must wait them out so audits see settled state.
  FaultInjector injector(/*seed=*/11);
  injector.SetRate(FaultPoint::kReplicaDelay, 1.0);
  injector.set_latency_spike_base_micros(5'000);
  Cluster cluster(RingOptions(&injector, Consistency::kOne));
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.Write("t", "p", "c" + std::to_string(i), OneCell("v")).ok());
  }
  cluster.Quiesce();
  for (int node = 0; node < 3; ++node) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 8u) << "node " << node;
  }
  EXPECT_EQ(cluster.PendingHints(0) + cluster.PendingHints(1) + cluster.PendingHints(2), 0u);
}

TEST(AsyncClusterTest, AsyncEntryPointsCompleteFutures) {
  Cluster cluster(ClusterOptions::ForTest());
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  ASSERT_TRUE(cluster.AsyncMutate("t", "p", "c1", OneCell("v1")).get().ok());
  ASSERT_TRUE(cluster.AsyncMutate("t", "p", "c2", OneCell("v2")).get().ok());

  auto cell = cluster.AsyncReadFloorCell("t", "p", "c1", "v").get();
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell->first, "c1");
  EXPECT_EQ(cell->second, "v1");

  auto range = cluster.AsyncGetRange("t", "p", "c1", "c2", 0).get();
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 2u);
  EXPECT_EQ((*range)[0].first, "c1");
  EXPECT_EQ((*range)[1].first, "c2");
}

TEST(AsyncClusterTest, AsyncCallbacksRunOffCallerThread) {
  Cluster cluster(ClusterOptions::ForTest());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  const std::thread::id caller = std::this_thread::get_id();
  std::promise<std::thread::id> ran_on;
  cluster.AsyncMutate("t", "p", "c", OneCell("v"),
                      [&ran_on](Status s) {
                        ASSERT_TRUE(s.ok());
                        ran_on.set_value(std::this_thread::get_id());
                      });
  EXPECT_NE(ran_on.get_future().get(), caller);
}

TEST(AsyncClusterTest, BoundedAdmissionRejectsWithUnavailable) {
  // One async worker, queue depth one, and every write pinned to a >= 20ms
  // injected delay: a burst of 10 must overflow the bounded queue, and every
  // overflow completes immediately with Unavailable instead of queueing
  // without bound. Every callback fires exactly once either way.
  FaultInjector injector(/*seed=*/3);
  injector.SetRate(FaultPoint::kReplicaDelay, 1.0);
  injector.set_latency_spike_base_micros(20'000);
  ClusterOptions options = ClusterOptions::ForTest();
  options.fault_injector = &injector;
  options.async_api_threads = 1;
  options.async_queue_limit = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  constexpr int kBurst = 10;
  std::vector<std::future<Status>> results;
  results.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    results.push_back(cluster.AsyncMutate("t", "p", "c" + std::to_string(i), OneCell("v")));
  }
  int ok = 0;
  int rejected = 0;
  for (std::future<Status>& f : results) {
    const Status s = f.get();
    if (s.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GE(ok, 1);        // the worker drains what was admitted
  EXPECT_GE(rejected, 1);  // the burst overflowed the bounded queue
}

TEST(AsyncClusterTest, SynchronousFanoutModeStaysSerial) {
  // replica_fanout_threads = 0 is the deterministic mode the seed-replay
  // chaos test pins: legs run inline in replica order on the caller.
  FaultInjector injector(/*seed=*/5);
  injector.SetRate(FaultPoint::kReplicaDelay, 1.0);
  injector.set_latency_spike_base_micros(2'000);
  ClusterOptions options = RingOptions(&injector, Consistency::kQuorum);
  options.replica_fanout_threads = 0;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  Counter* delay_sum = MetricsRegistry::Instance().GetCounter("cluster.replica.delay_micros");
  const uint64_t before = delay_sum->Value();
  const SteadyClock::time_point start = SteadyClock::now();
  ASSERT_TRUE(cluster.Write("t", "p", "c", OneCell("x")).ok());
  const uint64_t wall_micros = ElapsedMicros(start);
  const uint64_t injected_sum = delay_sum->Value() - before;
  EXPECT_EQ(injector.trips(FaultPoint::kReplicaDelay), 3u);
  // Serial mode pays the whole sum on the caller thread.
  EXPECT_GE(wall_micros, injected_sum);
}

}  // namespace
}  // namespace minicrypt
