// Model-based property tests: long random operation sequences against an
// in-memory reference model. Single-threaded sequences must match the model
// exactly (packs, splits, partitions and codecs are all invisible at the API
// level); multi-threaded sequences must converge to a state where every key
// has a value one of the writers actually wrote.
//
// The ModelCheckChaos suite runs the same workload under deterministic fault
// injection (docs/TESTING.md): media errors, latency spikes, commit-log
// failures, ambiguous LWTs, replica drops/delays, node flaps, and clock skew,
// then heals, quiesces, and checks the durability/integrity/convergence
// invariants. Override MC_CHAOS_SEED / MC_CHAOS_ITERS to replay or extend.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/core/generic_client.h"
#include "src/crypto/crypto.h"
#include "src/index/secondary_index.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

struct ModelParams {
  size_t pack_rows;
  int hash_partitions;
  std::string codec;
  bool encrypt_pack_ids;
};

class ModelCheck : public ::testing::TestWithParam<ModelParams> {};

TEST_P(ModelCheck, RandomSequenceMatchesReferenceModel) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("model");
  MiniCryptOptions options;
  options.pack_rows = GetParam().pack_rows;
  options.hash_partitions = GetParam().hash_partitions;
  options.codec = GetParam().codec;
  options.encrypt_pack_ids = GetParam().encrypt_pack_ids;
  options.packid_bucket_width = 16;
  ASSERT_TRUE(options.Validate().ok());

  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  std::map<uint64_t, std::string> model;
  Rng rng(0xC0FFEE);
  const uint64_t keyspace = 400;
  for (int op = 0; op < 1500; ++op) {
    const uint64_t k = rng.Uniform(keyspace);
    const int kind = static_cast<int>(rng.Uniform(10));
    if (kind < 6) {  // put
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(client.Put(k, value).ok()) << "op " << op;
      model[k] = value;
    } else if (kind < 8) {  // delete
      ASSERT_TRUE(client.Delete(k).ok()) << "op " << op;
      model.erase(k);
    } else {  // get
      auto got = client.Get(k);
      auto it = model.find(k);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << "op " << op << " key " << k;
      } else {
        ASSERT_TRUE(got.ok()) << "op " << op << " key " << k;
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  // Final full audit.
  for (uint64_t k = 0; k < keyspace; ++k) {
    auto got = client.Get(k);
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << k;
    } else {
      ASSERT_TRUE(got.ok()) << k;
      EXPECT_EQ(*got, it->second) << k;
    }
  }
  // Range audit (skip in encrypted-packID mode, which refuses ranges).
  if (!options.encrypt_pack_ids) {
    auto rows = client.GetRange(0, keyspace);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), model.size());
    auto expected = model.begin();
    for (const auto& [k, v] : *rows) {
      EXPECT_EQ(k, expected->first);
      EXPECT_EQ(v, expected->second);
      ++expected;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelCheck,
    ::testing::Values(ModelParams{4, 1, "zlib", false},
                      ModelParams{8, 4, "zlib", false},
                      ModelParams{50, 8, "lz4like", false},
                      ModelParams{5, 2, "snappylike", false},
                      ModelParams{16, 2, "zlib", true}),
    [](const auto& info) {
      const ModelParams& p = info.param;
      return "pack" + std::to_string(p.pack_rows) + "_part" +
             std::to_string(p.hash_partitions) + "_" + p.codec +
             (p.encrypt_pack_ids ? "_encids" : "");
    });

TEST(ModelCheckConcurrent, WritersConvergeToWrittenValues) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("model");
  MiniCryptOptions options;
  options.pack_rows = 6;
  options.hash_partitions = 2;

  GenericClient setup(&cluster, options, key);
  ASSERT_TRUE(setup.CreateTable().ok());

  constexpr int kThreads = 6;
  constexpr uint64_t kKeyspace = 120;
  // Each thread records the last value it wrote (or tombstone) per key.
  std::vector<std::map<uint64_t, std::string>> last_write(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster, options, key);
      Rng rng(static_cast<uint64_t>(t) * 31 + 1);
      for (int op = 0; op < 150; ++op) {
        const uint64_t k = rng.Uniform(kKeyspace);
        if (rng.Bernoulli(0.85)) {
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          ASSERT_TRUE(worker.Put(k, value).ok());
          last_write[static_cast<size_t>(t)][k] = value;
        } else {
          ASSERT_TRUE(worker.Delete(k).ok());
          last_write[static_cast<size_t>(t)][k] = "";  // tombstone marker
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // Every readable value must be the final write of *some* thread for that
  // key (no resurrected, torn, or invented values), and a key is NotFound
  // only if at least one thread's final op on it was a delete.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = setup.Get(k);
    bool some_writer_touched = false;
    bool some_final_delete = false;
    bool value_matches_some_final = false;
    for (const auto& writes : last_write) {
      auto it = writes.find(k);
      if (it == writes.end()) {
        continue;
      }
      some_writer_touched = true;
      if (it->second.empty()) {
        some_final_delete = true;
      } else if (got.ok() && *got == it->second) {
        value_matches_some_final = true;
      }
    }
    if (!some_writer_touched) {
      EXPECT_TRUE(got.status().IsNotFound()) << k;
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_some_final) << "key " << k << " holds value '" << *got
                                            << "' no thread finally wrote";
    } else {
      EXPECT_TRUE(some_final_delete) << "key " << k << " vanished without a final delete";
    }
  }
}

// --- Chaos harness -----------------------------------------------------------

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("MC_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5EEDC0DEULL;
}

int ChaosIters() {
  if (const char* env = std::getenv("MC_CHAOS_ITERS")) {
    return std::atoi(env);
  }
  return 220;
}

// Every fault point at a nonzero rate. Rates are tuned so a few hundred ops
// see each fault several times while the bounded retry budget still wins.
void ArmAllFaultPoints(FaultInjector* injector) {
  injector->SetRate(FaultPoint::kMediaReadError, 0.02);
  injector->SetRate(FaultPoint::kMediaWriteError, 0.01);
  injector->SetRate(FaultPoint::kMediaLatency, 0.05);
  injector->SetRate(FaultPoint::kCommitLogAppend, 0.008);
  injector->SetRate(FaultPoint::kLwtAmbiguous, 0.01);
  injector->SetRate(FaultPoint::kReplicaDrop, 0.02);
  injector->SetRate(FaultPoint::kReplicaDelay, 0.05);
  injector->SetRate(FaultPoint::kNodeFlap, 0.02);
  injector->SetRate(FaultPoint::kClockSkew, 0.2);
  injector->set_latency_spike_base_micros(200);
  injector->set_clock_skew_max_steps(32);
}

ClusterOptions ChaosClusterOptions(SimulatedClock* clock, FaultInjector* injector) {
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.node_count = 3;
  copts.replication_factor = 3;
  copts.consistency = Consistency::kQuorum;
  copts.clock = clock;
  copts.fault_injector = injector;
  // Real (but light) media so kMediaLatency has a surface; all charges are
  // virtual-clock advances.
  MediaProfile media;
  media.seek_micros = 20;
  media.bytes_per_micro_read = 500.0;
  media.bytes_per_micro_write = 500.0;
  media.queue_depth = 8;
  copts.media = media;
  // Small memtables + eager compaction so flush/compaction/media paths run.
  copts.engine.memtable_flush_bytes = 32 * 1024;
  copts.engine.compaction_trigger = 4;
  return copts;
}

MiniCryptOptions ChaosClientOptions(uint64_t jitter_seed) {
  MiniCryptOptions options;
  options.pack_rows = 4;  // frequent splits
  options.hash_partitions = 2;
  options.max_put_retries = 96;
  options.retry_backoff_base_micros = 50;
  options.retry_backoff_max_micros = 4'000;
  options.retry_jitter_seed = jitter_seed;
  return options;
}

Row SideValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

// One client op as the reference model sees it.
struct ChaosOp {
  bool is_delete = false;
  std::string value;
};

// Per-(thread, key) history: the last acknowledged op plus every unacked
// (ambiguous) op issued after it. Any of these may be the key's final state;
// anything older cannot be (it is followed by an op that definitely applied).
struct KeyTrack {
  std::optional<ChaosOp> last_acked;
  std::vector<ChaosOp> unacked;
};
using ThreadTrack = std::map<uint64_t, KeyTrack>;

void RecordOp(ThreadTrack* track, uint64_t key, bool is_delete, const std::string& value,
              const Status& s) {
  KeyTrack& kt = (*track)[key];
  if (s.ok()) {
    kt.last_acked = ChaosOp{is_delete, value};
    kt.unacked.clear();
  } else if (s.IsUnavailable() || s.IsAborted() || s.IsCorruption()) {
    // Corruption surfaces when every vote-capable replica erred on the
    // internal read; the op did not apply, but admitting it as an unacked
    // candidate only loosens the final-state check, never weakens it.
    kt.unacked.push_back(ChaosOp{is_delete, value});
  } else {
    ADD_FAILURE() << "unexpected status for key " << key << ": " << s.ToString();
  }
}

// Invariant (b): on every replica of every data partition, each stored pack
// must round-trip (hash matches, decryption + decompression succeed), hold
// no key below its packID, and be internally sorted. Keys at or beyond the
// *next* packID are permitted: an interrupted split (paper Figure 6, between
// steps 3 and 5) or a hint-replayed under-replicated pack leaves stale
// duplicates of a later pack's range behind. Those copies are harmless —
// floor routing (and the range query's authoritative-pack dedup) never
// surfaces them — and always stale-or-equal, since any write newer than the
// covering pack would have been routed to that pack. Because the audit's
// anti-entropy sweep re-touches every pack, no pack may remain oversized,
// which bounds how long such duplicates can survive under real traffic.
void CheckPackIntegrity(Cluster* cluster, const PackCrypter& crypter,
                        const MiniCryptOptions& options) {
  for (int p = 0; p < options.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    for (int node : cluster->ReplicaNodesFor(partition)) {
      auto rows = cluster->DebugPartitionRows(node, options.table, partition);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      for (size_t i = 0; i < rows->size(); ++i) {
        const auto& [id, row] = (*rows)[i];
        auto v = row.cells.find("v");
        auto h = row.cells.find("h");
        ASSERT_TRUE(v != row.cells.end() && h != row.cells.end())
            << "pack row missing cells (node " << node << ", partition " << partition << ")";
        EXPECT_EQ(Sha256(v->second.value), h->second.value)
            << "stored hash does not match envelope (node " << node << ")";
        auto pack = crypter.Open(v->second.value, id);
        ASSERT_TRUE(pack.ok()) << "pack fails decryption on node " << node << ": "
                               << pack.status().ToString() << " (epoch "
                               << PackCrypter::EnvelopeEpoch(v->second.value) << ", sha_ok "
                               << (Sha256(v->second.value) == h->second.value) << ", id "
                               << id << ")";
        const auto& entries = pack->entries();
        EXPECT_LE(entries.size(), options.EffectiveMaxKeys())
            << "pack " << i << " still oversized after the anti-entropy sweep (node " << node
            << ", partition " << partition << ")";
        for (size_t j = 0; j < entries.size(); ++j) {
          EXPECT_GE(entries[j].key, id) << "key below its packID on node " << node;
          if (j > 0) {
            EXPECT_LT(entries[j - 1].key, entries[j].key) << "pack not sorted on node " << node;
          }
        }
      }
    }
  }
}

// Invariant (d): after heal + hint replay, all replicas of a partition hold
// byte-identical rows (values, timestamps, tombstone flags).
std::string SerializeReplica(Cluster* cluster, int node, std::string_view table,
                             std::string_view partition) {
  auto rows = cluster->DebugPartitionRows(node, table, partition);
  if (!rows.ok()) {
    return "error: " + rows.status().ToString();
  }
  std::string out;
  for (const auto& [id, row] : *rows) {
    out += id;
    out += '\x01';
    for (const auto& [name, cell] : row.cells) {
      out += name;
      out += '\x02';
      out += cell.value;
      out += '\x02';
      out += std::to_string(cell.timestamp);
      out += '\x02';
      out += cell.tombstone ? '1' : '0';
      out += '\x03';
    }
    out += '\x04';
  }
  return out;
}

void CheckReplicaConvergence(Cluster* cluster, std::string_view table,
                             std::string_view partition) {
  const std::vector<int> nodes = cluster->ReplicaNodesFor(partition);
  ASSERT_FALSE(nodes.empty());
  const std::string reference = SerializeReplica(cluster, nodes[0], table, partition);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_EQ(reference, SerializeReplica(cluster, nodes[i], table, partition))
        << "replicas " << nodes[0] << " and " << nodes[i] << " diverged on " << table << "/"
        << partition;
  }
}

// Shared body for the chaos invariant suite. With `shared_cache` set, every
// worker (and the audit reader) routes reads through one process-wide
// decrypted-pack cache in fully-coherent mode (ttl=0), and the run checks a
// fifth invariant on top of the four fault-tolerance ones:
//
// Invariant (e), staleness: a read must never return a value older than the
// reader's own previously acknowledged write to the same key. Values carry a
// "t<thread>#<op>" tag, so whenever a Get returns a value this thread wrote,
// its op number must be >= the thread's last acked op on that key. With
// ttl=0 the version probe revalidates against the server floor on every
// cached read, so this holds even while other threads rewrite the pack.
//
// With `use_async` set, the side-table leg of the workload goes through the
// async pipeline (AsyncMutate / AsyncReadFloorCell / AsyncGetRange futures)
// instead of the synchronous entry points, so the same five invariants are
// re-verified with the executor, concurrent replica fan-out, and early quorum
// ack in the request path.
void RunInvariantsUnderFire(bool shared_cache, bool use_async = false) {
  const uint64_t seed = ChaosSeed();
  const int iters = ChaosIters();
  std::fprintf(stderr,
               "[chaos] seed=0x%llx iters=%d cache=%d async=%d (set MC_CHAOS_SEED to replay)\n",
               static_cast<unsigned long long>(seed), iters, shared_cache ? 1 : 0,
               use_async ? 1 : 0);

  SimulatedClock clock;
  FaultInjector injector(seed);
  ArmAllFaultPoints(&injector);

  Cluster cluster(ChaosClusterOptions(&clock, &injector));
  const SymmetricKey key = SymmetricKey::FromSeed("chaos");
  const MiniCryptOptions base_options = ChaosClientOptions(seed + 1);

  std::shared_ptr<PackCache> cache;
  if (shared_cache) {
    cache = std::make_shared<PackCache>(/*capacity_bytes=*/4u << 20, /*ttl_micros=*/0, &clock);
  }

  GenericClient setup(&cluster, base_options, key);
  ASSERT_TRUE(setup.CreateTable().ok());
  ASSERT_TRUE(cluster.CreateTable("side").ok());

  constexpr int kThreads = 4;
  constexpr uint64_t kKeyspace = 96;
  std::vector<ThreadTrack> tracks(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MiniCryptOptions options = ChaosClientOptions(seed ^ (0x9E3779B97F4A7C15ULL * (t + 1)));
      GenericClient worker(&cluster, options, key, cache);
      ThreadTrack& track = tracks[static_cast<size_t>(t)];
      // Invariant (e) bookkeeping: op number of this thread's last acked
      // put/delete per key. Unacked (ambiguous) ops don't advance it.
      std::map<uint64_t, int> own_acked_op;
      const std::string own_tag = "t" + std::to_string(t) + "#";
      Rng rng(seed + 100 + static_cast<uint64_t>(t));
      for (int op = 0; op < iters; ++op) {
        if (op % 4 == 0) {
          cluster.ChaosTick();
        }
        const uint64_t k = rng.Uniform(kKeyspace);
        const int kind = static_cast<int>(rng.Uniform(100));
        if (kind < 50) {  // put
          const std::string value =
              "t" + std::to_string(t) + "#" + std::to_string(op);
          const Status s = worker.Put(k, value);
          RecordOp(&track, k, /*is_delete=*/false, value, s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 65) {  // delete
          const Status s = worker.Delete(k);
          RecordOp(&track, k, /*is_delete=*/true, "", s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 85) {  // get: status admissibility + own-write staleness
          auto got = worker.Get(k);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsUnavailable() || s.IsAborted())
              << s.ToString();
          if (got.ok() && got->rfind(own_tag, 0) == 0) {
            const int read_op = std::atoi(got->c_str() + own_tag.size());
            auto acked = own_acked_op.find(k);
            if (acked != own_acked_op.end()) {
              EXPECT_GE(read_op, acked->second)
                  << "stale read: key " << k << " returned own value '" << *got
                  << "' older than this thread's acked op " << acked->second;
            }
          }
        } else if (kind < 92) {  // narrow range
          const Status s = worker.GetRange(k, k + 8).status();
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted()) << s.ToString();
        } else {  // plain (non-LWT) write on a side table: exercises kClockSkew
          const std::string ck = EncodeKey64(1000 * static_cast<uint64_t>(t) + rng.Uniform(8));
          if (!use_async) {
            const Status s =
                cluster.Write("side", "sp", ck, SideValueRow("s" + std::to_string(op)));
            EXPECT_TRUE(s.ok() || s.IsUnavailable()) << s.ToString();
          } else {
            // Async leg: the same traffic through the pipelined entry points,
            // interleaved with async probes of what it wrote.
            const Status s =
                cluster.AsyncMutate("side", "sp", ck, SideValueRow("s" + std::to_string(op)))
                    .get();
            EXPECT_TRUE(s.ok() || s.IsUnavailable()) << s.ToString();
            if (rng.Bernoulli(0.5)) {
              auto probe = cluster.AsyncReadFloorCell("side", "sp", ck, "v").get();
              const Status ps = probe.status();
              EXPECT_TRUE(ps.ok() || ps.IsNotFound() || ps.IsUnavailable() || ps.IsAborted())
                  << ps.ToString();
            } else {
              auto scan = cluster.AsyncGetRange("side", "sp", "", ck, /*limit=*/8).get();
              const Status rs = scan.status();
              EXPECT_TRUE(rs.ok() || rs.IsNotFound() || rs.IsUnavailable() || rs.IsAborted())
                  << rs.ToString();
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // Heal, quiesce, and audit.
  injector.Heal();
  cluster.HealAllNodes();
  cluster.ReplayAllHints();
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.PendingHints(n), 0u) << "node " << n << " still has hints after heal";
  }
  SCOPED_TRACE("chaos seed 0x" + std::to_string(seed) + " — rerun with MC_CHAOS_SEED");

  // Invariants (a) + (c): every acked write durable; final value admissible.
  // The audit reader shares the cache too: with ttl=0 its reads must agree
  // with an uncached reader, so the audit itself re-verifies coherence.
  GenericClient reader(&cluster, base_options, key, cache);
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << "key " << k << ": " << got.status().ToString();
    bool acked_put_candidate = false;
    bool delete_candidate = false;
    bool value_matches_candidate = false;
    bool touched = false;
    for (const ThreadTrack& track : tracks) {
      auto it = track.find(k);
      if (it == track.end()) {
        continue;
      }
      touched = true;
      const KeyTrack& kt = it->second;
      std::vector<const ChaosOp*> candidates;
      if (kt.last_acked.has_value()) {
        candidates.push_back(&*kt.last_acked);
      }
      for (const ChaosOp& op : kt.unacked) {
        candidates.push_back(&op);
      }
      if (kt.last_acked.has_value() && !kt.last_acked->is_delete) {
        acked_put_candidate = true;
      }
      for (const ChaosOp* op : candidates) {
        if (op->is_delete) {
          delete_candidate = true;
        } else if (got.ok() && *got == op->value) {
          value_matches_candidate = true;
        }
      }
    }
    if (!touched) {
      EXPECT_TRUE(got.status().IsNotFound()) << "untouched key " << k << " has a value";
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_candidate)
          << "key " << k << " holds '" << *got << "', which no thread could have written last";
    } else {
      // NotFound: fine unless an acked put is necessarily the final op.
      EXPECT_TRUE(delete_candidate || !acked_put_candidate)
          << "key " << k << " lost an acknowledged put";
    }
  }

  // Anti-entropy pass: one benign mutate per key re-touches every pack,
  // completing any split abandoned when a thread exhausted its retry budget
  // mid-outage (such a pack would otherwise keep a stale, shadowed copy of
  // its right half — legal for reads, but flagged by the strict integrity
  // check below). Values are rewritten verbatim, so the semantic state the
  // audit above checked is unchanged.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    if (got.ok()) {
      ASSERT_TRUE(reader.Put(k, *got).ok());
    } else {
      ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
      const Status s = reader.Delete(k);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  }

  // Invariant (b): pack integrity on every replica.
  const PackCrypter crypter(base_options, key);
  CheckPackIntegrity(&cluster, crypter, base_options);

  // Invariant (d): replicas converge after hint replay.
  for (int p = 0; p < base_options.hash_partitions; ++p) {
    CheckReplicaConvergence(&cluster, base_options.table, PartitionLabel(p));
  }
  CheckReplicaConvergence(&cluster, "side", "sp");

  // The run must actually have exercised the fault points.
  for (const FaultPoint point :
       {FaultPoint::kMediaReadError, FaultPoint::kMediaWriteError, FaultPoint::kMediaLatency,
        FaultPoint::kCommitLogAppend, FaultPoint::kLwtAmbiguous, FaultPoint::kReplicaDrop,
        FaultPoint::kReplicaDelay, FaultPoint::kNodeFlap, FaultPoint::kClockSkew}) {
    EXPECT_GT(injector.trips(point), 0u)
        << FaultPointName(point) << " never fired; " << injector.Summary();
  }

  // A cache-enabled chaos run that never hit (or never invalidated) the
  // cache would vacuously pass; require that both paths actually ran.
  if (shared_cache) {
    const PackCacheStats cs = cache->Stats();
    EXPECT_GT(cs.hits, 0u) << "chaos run never served from the shared cache";
    EXPECT_GT(cs.invalidations + cs.misses, 0u);
  }
}

TEST(ModelCheckChaos, InvariantsHoldUnderFire) { RunInvariantsUnderFire(/*shared_cache=*/false); }

TEST(ModelCheckChaos, InvariantsHoldUnderFireWithSharedCache) {
  RunInvariantsUnderFire(/*shared_cache=*/true);
}

TEST(ModelCheckChaos, InvariantsHoldUnderFireViaAsyncPipeline) {
  RunInvariantsUnderFire(/*shared_cache=*/false, /*use_async=*/true);
}

// --- Secondary-index chaos ----------------------------------------------------
//
// Indexed traffic under the full fault mix plus the two index-protocol fault
// points (kIndexSplit aborts drains/splits mid-structure, kIndexPersist skips
// the post-commit truncation). The index's contract under fire: a successful
// GetRangeByValue returns exactly the live rows whose attribute lies in range
// — never a stale candidate (read-time verification filters them) and never a
// missing live row (index-first maintenance keeps the index a superset, and
// every abandoned drain leaves its entries in the buffers). The final audit
// uses the primary table's surviving rows as the differential oracle.
TEST(ModelCheckChaos, SecondaryIndexInvariantsUnderFire) {
  const uint64_t seed = ChaosSeed();
  SimulatedClock clock;
  FaultInjector injector(seed);

  Cluster cluster(ChaosClusterOptions(&clock, &injector));
  const SymmetricKey key = SymmetricKey::FromSeed("chaos-index");
  const MiniCryptOptions base_options = ChaosClientOptions(seed);
  SecondaryIndexOptions iopts;
  iopts.leakage = IndexLeakage::kQueriedOrder;
  iopts.leaf_rows = 5;

  constexpr uint64_t kKeyspace = 64;
  constexpr uint64_t kAttrDomain = 32;
  constexpr int kThreads = 4;
  // A fixed pool of query ranges: the manifest's region count stays bounded
  // by the number of distinct ranges ever drained (checked below), however
  // often chaos retries them.
  constexpr uint64_t kQueryRanges[][2] = {{0, 6},   {5, 11},  {12, 18},
                                          {20, 26}, {27, 31}, {0, kAttrDomain - 1}};

  // Clients (and the idempotent backing-table setup) are built before any
  // fault rate is armed: index creation is plumbing, not the protocol under
  // test, and a flaked CreateIndex would abort the run without proving
  // anything.
  std::vector<std::unique_ptr<GenericClient>> workers;
  {
    GenericClient setup(&cluster, base_options, key);
    ASSERT_TRUE(setup.CreateTable().ok());
    ASSERT_TRUE(setup.CreateIndex(iopts).ok());
  }
  for (int t = 0; t < kThreads; ++t) {
    MiniCryptOptions options = base_options;
    options.retry_jitter_seed = seed ^ (0xABC00u + static_cast<uint64_t>(t));
    workers.push_back(std::make_unique<GenericClient>(&cluster, options, key));
    ASSERT_TRUE(workers.back()->CreateIndex(iopts).ok());
  }

  ArmAllFaultPoints(&injector);
  injector.SetRate(FaultPoint::kIndexSplit, 0.08);
  injector.SetRate(FaultPoint::kIndexPersist, 0.08);
  // At least one of each must land whatever the seed draws, so the audit
  // below is never vacuous.
  injector.Script(FaultPoint::kIndexSplit, 1);
  injector.Script(FaultPoint::kIndexPersist, 1);

  const int iters = ChaosIters();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient& worker = *workers[static_cast<size_t>(t)];
      Rng rng(seed * 31 + static_cast<uint64_t>(t));
      for (int op = 0; op < iters; ++op) {
        if (t == 0 && op % 16 == 0) {
          cluster.ChaosTick();
        }
        const uint64_t k = rng.Uniform(kKeyspace);
        const int kind = static_cast<int>(rng.Uniform(100));
        if (kind < 55) {  // indexed put
          const uint64_t attr = rng.Uniform(kAttrDomain);
          const Status s = worker.Put(
              k, EncodeIndexedValue(attr, "t" + std::to_string(t) + ":" + std::to_string(op)));
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsCorruption())
              << s.ToString();
        } else if (kind < 70) {  // delete
          const Status s = worker.Delete(k);
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsCorruption())
              << s.ToString();
        } else {  // by-value range: admissible status; successes well-formed
          const auto& q = kQueryRanges[rng.Uniform(std::size(kQueryRanges))];
          auto got = worker.GetRangeByValue(q[0], q[1]);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsCorruption())
              << s.ToString();
          if (got.ok()) {
            // Every returned row is verified: its value's attribute must lie
            // in range, and primary keys ascend without duplicates. (Exact
            // row sets are only checkable once writers quiesce — see the
            // final audit.)
            for (size_t i = 0; i < got->size(); ++i) {
              const auto attr = DecodeIndexedAttr((*got)[i].second);
              ASSERT_TRUE(attr.has_value()) << "unindexable row verified into a result";
              EXPECT_GE(*attr, q[0]);
              EXPECT_LE(*attr, q[1]);
              if (i > 0) {
                EXPECT_LT((*got)[i - 1].first, (*got)[i].first)
                    << "by-value result not strictly ascending by primary key";
              }
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  injector.Heal();
  cluster.HealAllNodes();
  cluster.ReplayAllHints();
  SCOPED_TRACE("chaos seed 0x" + std::to_string(seed) + " — rerun with MC_CHAOS_SEED");

  // Differential audit: whatever rows survived on the primary table are the
  // oracle. Every pooled range, plus the full domain, must come back
  // byte-identical through the index path.
  GenericClient reader(&cluster, base_options, key);
  ASSERT_TRUE(reader.CreateIndex(iopts).ok());
  auto rows = reader.GetRange(0, kKeyspace);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<std::pair<uint64_t, uint64_t>> audits;
  for (const auto& q : kQueryRanges) {
    audits.emplace_back(q[0], q[1]);
  }
  audits.emplace_back(0, ~0ULL);
  for (const auto& [lo, hi] : audits) {
    std::vector<std::pair<uint64_t, std::string>> expect;
    for (const auto& [pk, value] : *rows) {
      const auto attr = DecodeIndexedAttr(value);
      if (attr.has_value() && *attr >= lo && *attr <= hi) {
        expect.emplace_back(pk, value);
      }
    }
    auto got = reader.GetRangeByValue(lo, hi);
    ASSERT_TRUE(got.ok()) << "[" << lo << ", " << hi << "]: " << got.status().ToString();
    EXPECT_EQ(*got, expect) << "index answer diverged from primary-table oracle for ["
                            << lo << ", " << hi << "]";
  }

  // Leakage bound survives chaos: drains retried under faults must merge into
  // existing regions, never mint extra ones beyond the distinct ranges asked.
  auto regions = reader.index()->SortedRegions();
  ASSERT_TRUE(regions.ok()) << regions.status().ToString();
  EXPECT_LE(*regions, std::size(kQueryRanges));

  // The run must actually have exercised the index protocol fault points.
  EXPECT_GT(injector.trips(FaultPoint::kIndexSplit), 0u)
      << "index_split never fired; " << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kIndexPersist), 0u)
      << "index_persist never fired; " << injector.Summary();
}

// --- Key-rotation chaos -------------------------------------------------------
//
// A rotator loops RotateKeys against the full fault mix plus the two rotation
// protocol points (kRotatePersist fails stage-edge persists, kRotateReseal
// crashes the rotator between opening and re-sealing a pack) while four
// ring-sharing writers hammer the same table. Every injected failure pauses
// the rotation mid-protocol; the next call must resume from the durable
// record. The audit re-verifies the standard five invariants — in particular
// (a): no write the rotator raced with may be lost to a re-seal — and two
// rotation-specific ones: after the healed rotation completes, every stored
// pack on every replica carries an epoch at or above the retirement floor,
// and every one still opens through the shared keyring.
TEST(ModelCheckChaos, KeyRotationScheduleHoldsInvariants) {
  const uint64_t seed = ChaosSeed();
  const int iters = ChaosIters();
  std::fprintf(stderr, "[chaos] rotation seed=0x%llx iters=%d (set MC_CHAOS_SEED to replay)\n",
               static_cast<unsigned long long>(seed), iters);

  SimulatedClock clock;
  FaultInjector injector(seed);

  Cluster cluster(ChaosClusterOptions(&clock, &injector));
  const SymmetricKey key = SymmetricKey::FromSeed("chaos-rotate");
  auto ring = Keyring::FromMaster(key);
  const MiniCryptOptions base_options = ChaosClientOptions(seed);

  constexpr int kThreads = 4;
  constexpr uint64_t kKeyspace = 96;

  // Clients (and the table) are built before any fault rate is armed: setup
  // is plumbing, not the protocol under test. All of them — workers, rotator,
  // audit reader — share one keyring, exactly like one customer's clients.
  std::vector<std::unique_ptr<GenericClient>> workers;
  {
    GenericClient setup(&cluster, base_options, ring);
    ASSERT_TRUE(setup.CreateTable().ok());
    for (uint64_t k = 0; k < kKeyspace; k += 3) {  // rotation must find real packs
      ASSERT_TRUE(setup.Put(k, "seed#" + std::to_string(k)).ok());
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    MiniCryptOptions options = base_options;
    options.retry_jitter_seed = seed ^ (0x407A7Eu + static_cast<uint64_t>(t));
    workers.push_back(std::make_unique<GenericClient>(&cluster, options, ring));
  }
  GenericClient rotator(&cluster, base_options, ring);

  ArmAllFaultPoints(&injector);
  injector.SetRate(FaultPoint::kRotatePersist, 0.08);
  injector.SetRate(FaultPoint::kRotateReseal, 0.08);
  // At least one of each must land whatever the seed draws, so the resume
  // path below is never vacuously exercised.
  injector.Script(FaultPoint::kRotatePersist, 1);
  injector.Script(FaultPoint::kRotateReseal, 1);

  std::vector<ThreadTrack> tracks(kThreads);
  std::atomic<bool> workers_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient& worker = *workers[static_cast<size_t>(t)];
      ThreadTrack& track = tracks[static_cast<size_t>(t)];
      std::map<uint64_t, int> own_acked_op;
      const std::string own_tag = "t" + std::to_string(t) + "#";
      Rng rng(seed + 500 + static_cast<uint64_t>(t));
      for (int op = 0; op < iters; ++op) {
        if (op % 4 == 0) {
          cluster.ChaosTick();
        }
        const uint64_t k = rng.Uniform(kKeyspace);
        const int kind = static_cast<int>(rng.Uniform(100));
        // A read can fetch an envelope, lose the CPU while the rotator
        // re-seals that pack and retires the old epoch, then open the stale
        // bytes: a typed KeyUnavailable, not data loss. The op did not apply,
        // so the tracker files it with the other did-not-apply outcomes.
        const auto retriable = [](const Status& s) {
          return s.IsKeyUnavailable() ? Status::Unavailable("stale epoch in hand") : s;
        };
        if (kind < 50) {  // put
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          const Status s = worker.Put(k, value);
          RecordOp(&track, k, /*is_delete=*/false, value, retriable(s));
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 65) {  // delete
          const Status s = worker.Delete(k);
          RecordOp(&track, k, /*is_delete=*/true, "", retriable(s));
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 90) {  // get: admissible status + own-write staleness
          auto got = worker.Get(k);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsUnavailable() || s.IsAborted() ||
                      s.IsKeyUnavailable())
              << s.ToString();
          if (got.ok() && got->rfind(own_tag, 0) == 0) {
            const int read_op = std::atoi(got->c_str() + own_tag.size());
            auto acked = own_acked_op.find(k);
            if (acked != own_acked_op.end()) {
              EXPECT_GE(read_op, acked->second)
                  << "stale read during rotation: key " << k << " returned own value '"
                  << *got << "' older than this thread's acked op " << acked->second;
            }
          }
        } else {  // narrow range
          const Status s = worker.GetRange(k, k + 8).status();
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsKeyUnavailable())
              << s.ToString();
        }
      }
    });
  }

  // The rotator: keep rotating (and resuming paused rotations) until the
  // writers quiesce. Injected persist failures and reseal crashes surface as
  // Unavailable / Aborted; anything else is a protocol bug.
  std::atomic<int> rotations_completed{0};
  std::thread rotator_thread([&] {
    while (!workers_done.load()) {
      const Status s = rotator.RotateKeys();
      if (s.ok()) {
        rotations_completed.fetch_add(1);
      } else {
        EXPECT_TRUE(s.IsUnavailable() || s.IsAborted()) << s.ToString();
      }
      std::this_thread::yield();
    }
  });

  for (auto& th : threads) {
    th.join();
  }
  workers_done.store(true);
  rotator_thread.join();

  injector.Heal();
  cluster.HealAllNodes();
  cluster.ReplayAllHints();
  SCOPED_TRACE("chaos seed 0x" + std::to_string(seed) + " — rerun with MC_CHAOS_SEED");

  // Drive any paused rotation to completion on the healed cluster, so the
  // audit below sees a quiesced window [retired_below, current].
  {
    Status s = rotator.RotateKeys();
    for (int attempt = 0; attempt < 64 && !s.ok(); ++attempt) {
      s = rotator.RotateKeys();
    }
    ASSERT_TRUE(s.ok()) << "rotation did not converge on a healed cluster: " << s.ToString();
    rotations_completed.fetch_add(1);
  }
  auto final_record = rotator.RotationState();
  ASSERT_TRUE(final_record.ok()) << final_record.status().ToString();
  EXPECT_EQ(final_record->stage, KeyRotationState::kStageIdle);
  EXPECT_GE(ring->retired_below(), 1u) << "no epoch was ever retired";
  EXPECT_GE(rotations_completed.load(), 1);

  // Invariants (a) + (c): every acked write durable, every value admissible.
  GenericClient reader(&cluster, base_options, ring);
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << "key " << k << ": " << got.status().ToString();
    bool acked_put_candidate = false;
    bool delete_candidate = false;
    bool value_matches_candidate = false;
    bool touched = false;
    const bool preloaded = (k % 3 == 0);
    if (preloaded && got.ok() && *got == "seed#" + std::to_string(k)) {
      value_matches_candidate = true;  // nobody overwrote the seed value
    }
    for (const ThreadTrack& track : tracks) {
      auto it = track.find(k);
      if (it == track.end()) {
        continue;
      }
      touched = true;
      const KeyTrack& kt = it->second;
      if (kt.last_acked.has_value() && !kt.last_acked->is_delete) {
        acked_put_candidate = true;
      }
      std::vector<const ChaosOp*> candidates;
      if (kt.last_acked.has_value()) {
        candidates.push_back(&*kt.last_acked);
      }
      for (const ChaosOp& op : kt.unacked) {
        candidates.push_back(&op);
      }
      for (const ChaosOp* op : candidates) {
        if (op->is_delete) {
          delete_candidate = true;
        } else if (got.ok() && *got == op->value) {
          value_matches_candidate = true;
        }
      }
    }
    if (!touched && !preloaded) {
      EXPECT_TRUE(got.status().IsNotFound()) << "untouched key " << k << " has a value";
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_candidate)
          << "key " << k << " holds '" << *got
          << "', which no writer (nor the preload) could have written last";
    } else {
      EXPECT_TRUE(delete_candidate || (!acked_put_candidate && !preloaded))
          << "key " << k << " lost an acknowledged put across the rotation";
    }
  }

  // Anti-entropy re-touch (see RunInvariantsUnderFire) before the strict
  // integrity check.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    if (got.ok()) {
      ASSERT_TRUE(reader.Put(k, *got).ok());
    } else {
      ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
      const Status s = reader.Delete(k);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  }

  // Invariant (b) plus the rotation-specific pair: the ring-sharing crypter
  // must open every stored pack (so nothing is readable only through a
  // retired epoch), and every envelope's stamped epoch must sit at or above
  // the retirement floor.
  const PackCrypter crypter(base_options, ring);
  CheckPackIntegrity(&cluster, crypter, base_options);
  const uint64_t floor = ring->retired_below();
  for (int p = 0; p < base_options.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    for (int node : cluster.ReplicaNodesFor(partition)) {
      auto rows = cluster.DebugPartitionRows(node, base_options.table, partition);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      for (const auto& [id, row] : *rows) {
        auto v = row.cells.find("v");
        ASSERT_TRUE(v != row.cells.end());
        EXPECT_GE(PackCrypter::EnvelopeEpoch(v->second.value), floor)
            << "pack " << id << " on node " << node << " still sealed below the retirement"
            << " floor after rotation completed";
      }
    }
    // Invariant (d), including the reserved partition holding the record.
    CheckReplicaConvergence(&cluster, base_options.table, partition);
  }
  CheckReplicaConvergence(&cluster, base_options.table, "rotation");

  // The run must actually have exercised the rotation protocol fault points.
  EXPECT_GT(injector.trips(FaultPoint::kRotatePersist), 0u)
      << "rotate_persist never fired; " << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kRotateReseal), 0u)
      << "rotate_reseal never fired; " << injector.Summary();
}

// --- Crash & corruption schedule ---------------------------------------------
//
// The second first-class chaos mode (docs/TESTING.md): instead of the
// network-ish faults above, this schedule crashes whole nodes (memtable gone,
// commit log torn mid-record), flips bits in at-rest blocks as they are
// written, and runs the repair machinery — restart + log replay, scrub +
// rebuild-from-peers, Merkle anti-entropy — concurrently with client traffic.
// The final audit re-verifies all five invariants and additionally proves the
// acceptance property: a corrupted block is never served as data (it is
// detected, quarantined, and rebuilt; the counters must show all three).
// Override MC_CHAOS_SEED / MC_CHAOS_ITERS / MC_CHAOS_CRASH_PERIOD to replay,
// extend, or change the crash cadence.

int ChaosCrashPeriod() {
  if (const char* env = std::getenv("MC_CHAOS_CRASH_PERIOD")) {
    return std::atoi(env);
  }
  return 50;
}

void ArmCrashCorruptionFaults(FaultInjector* injector) {
  // Rate 1.0 makes every CrashNode tear-draw count as a trip, so the audit
  // can assert the schedule actually crashed (the draw itself is taken — and
  // replayable — regardless of the rate).
  injector->SetRate(FaultPoint::kCrash, 1.0);
  injector->SetRate(FaultPoint::kMediaLatency, 0.05);
  injector->set_latency_spike_base_micros(200);
  // kMediaCorruption is deliberately NOT rate-armed: the controller scripts
  // one flip per crash cycle instead. A background rate can corrupt the same
  // row's block on two replicas before any scrub runs, and RF=3 cannot
  // survive two simultaneously corrupted copies of a row in any design (the
  // only remaining copy may be the crash-stale one, whose pack a later
  // read-modify-write then launders under a fresh timestamp). One scripted
  // flip per cycle, scrubbed within the same cycle, keeps the cluster in the
  // single-fault regime where the durability invariant is provable.
}

TEST(ModelCheckChaos, CrashCorruptionScheduleHoldsInvariants) {
  const uint64_t seed = ChaosSeed();
  const int iters = ChaosIters();
  const int crash_period = ChaosCrashPeriod();
  std::fprintf(stderr,
               "[chaos] crash+corruption seed=0x%llx iters=%d period=%d "
               "(set MC_CHAOS_SEED / MC_CHAOS_CRASH_PERIOD to replay)\n",
               static_cast<unsigned long long>(seed), iters, crash_period);

  SimulatedClock clock;
  FaultInjector injector(seed);
  ArmCrashCorruptionFaults(&injector);

  ClusterOptions copts = ChaosClusterOptions(&clock, &injector);
  copts.engine.commitlog_sync_every_appends = 4;  // crashes tear real unsynced tails
  copts.engine.sstable.block_bytes = 1024;        // more blocks: more corruption surface
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("crash-chaos");
  const MiniCryptOptions base_options = ChaosClientOptions(seed + 1);
  GenericClient setup(&cluster, base_options, key);
  ASSERT_TRUE(setup.CreateTable().ok());

  Counter* detected = MetricsRegistry::Instance().GetCounter("storage.corruption.detected");
  Counter* rebuilt = MetricsRegistry::Instance().GetCounter("scrub.blocks_rebuilt");
  const uint64_t detected_before = detected->Value();
  const uint64_t rebuilt_before = rebuilt->Value();

  constexpr int kThreads = 4;
  constexpr uint64_t kKeyspace = 96;
  std::vector<ThreadTrack> tracks(kThreads);
  std::atomic<long> ops_done{0};
  std::atomic<bool> workers_done{false};
  std::atomic<int> crash_cycles{0};

  // The controller serializes crash -> restart -> repair cycles on op-count
  // intervals drawn from the seed. It only crashes when the whole ring is up,
  // and restart drains the crashed node's hints before the next cycle — so
  // every QUORUM-acked write sits on at least two intact replicas when the
  // next crash lands, and any quorum read still intersects its write quorum.
  std::thread controller([&] {
    Rng crng(seed ^ 0xC4A5401ULL);
    uint64_t corruption_scripted = 0;
    auto wait_ops = [&](long delta) {
      const long target = ops_done.load(std::memory_order_relaxed) + delta;
      while (ops_done.load(std::memory_order_relaxed) < target && !workers_done.load()) {
        std::this_thread::yield();
      }
    };
    while (!workers_done.load()) {
      wait_ops(crash_period + static_cast<long>(crng.Uniform(
                                  static_cast<uint64_t>(crash_period) + 1)));
      if (workers_done.load()) {
        break;
      }
      const int node = static_cast<int>(crng.Uniform(3));
      if (!cluster.CrashNode(node).ok()) {
        continue;  // raced shutdown; never true mid-run (only we take nodes down)
      }
      wait_ops(5 + static_cast<long>(crng.Uniform(15)));  // outage traffic queues hints
      EXPECT_TRUE(cluster.RestartNode(node).ok());
      crash_cycles.fetch_add(1);
      // One corrupt block in flight at a time (see ArmCrashCorruptionFaults):
      // arm the next flip only once the previous one has fired — and been
      // scrubbed by the unconditional pass below within its own cycle.
      if (injector.trips(FaultPoint::kMediaCorruption) == corruption_scripted) {
        injector.Script(FaultPoint::kMediaCorruption, 1);
        ++corruption_scripted;
      }
      // Force memtables to at-rest form: the workload rewrites packs in place
      // and rarely crosses the flush threshold on its own, and only flushed
      // blocks are corruption surface for the build-time bit flips.
      EXPECT_TRUE(cluster.FlushAll().ok());
      // Scrub every cycle so the scripted flip is detected and rebuilt before
      // the next one can be armed; anti-entropy runs concurrently with live
      // traffic on a random subset of cycles.
      for (int n = 0; n < 3; ++n) {
        auto r = cluster.ScrubNode(n);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
      if (crng.Bernoulli(0.4)) {
        EXPECT_TRUE(cluster.AntiEntropyRepair(base_options.table).ok());
      }
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MiniCryptOptions options = ChaosClientOptions(seed ^ (0x9E3779B97F4A7C15ULL * (t + 1)));
      GenericClient worker(&cluster, options, key);
      ThreadTrack& track = tracks[static_cast<size_t>(t)];
      std::map<uint64_t, int> own_acked_op;
      const std::string own_tag = "t" + std::to_string(t) + "#";
      Rng rng(seed + 100 + static_cast<uint64_t>(t));
      for (int op = 0; op < iters; ++op) {
        ops_done.fetch_add(1, std::memory_order_relaxed);
        const uint64_t k = rng.Uniform(kKeyspace);
        const int kind = static_cast<int>(rng.Uniform(100));
        if (kind < 50) {  // put
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          const Status s = worker.Put(k, value);
          RecordOp(&track, k, /*is_delete=*/false, value, s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 65) {  // delete
          const Status s = worker.Delete(k);
          RecordOp(&track, k, /*is_delete=*/true, "", s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 90) {  // get: never corrupt data, never own-stale
          auto got = worker.Get(k);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsUnavailable() || s.IsAborted() ||
                      s.IsCorruption())
              << s.ToString();
          if (got.ok() && got->rfind(own_tag, 0) == 0) {
            const int read_op = std::atoi(got->c_str() + own_tag.size());
            auto acked = own_acked_op.find(k);
            if (acked != own_acked_op.end()) {
              EXPECT_GE(read_op, acked->second)
                  << "stale read: key " << k << " returned own value '" << *got
                  << "' older than this thread's acked op " << acked->second;
            }
          }
        } else {  // narrow range
          const Status s = worker.GetRange(k, k + 8).status();
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsCorruption())
              << s.ToString();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  workers_done.store(true);
  controller.join();

  // Tiny MC_CHAOS_ITERS overrides may finish before the first cycle; the
  // schedule must still contain at least one crash.
  if (crash_cycles.load() == 0) {
    ASSERT_TRUE(cluster.CrashNode(0).ok());
    ASSERT_TRUE(cluster.RestartNode(0).ok());
  }
  // Likewise the schedule must contain at least one corrupted block, even on
  // a run whose scripted flips never found a block build (e.g. tiny
  // MC_CHAOS_ITERS): script one onto a throwaway partition and flush it to
  // at-rest form (the audit's scrub must then rebuild it). An armed-but-idle
  // controller script may also fire on this flush; both flips land before the
  // audit's scrub loop, and every row is at-rest intact on all replicas at
  // this point, so any rebuild has an intact source.
  if (injector.trips(FaultPoint::kMediaCorruption) == 0) {
    Row backstop;
    backstop.cells["v"] = Cell{"corruption-backstop", 0, false};
    ASSERT_TRUE(
        cluster.Write(base_options.table, "zz-backstop", EncodeKey64(0), backstop).ok());
    injector.Script(FaultPoint::kMediaCorruption, 1);
    ASSERT_TRUE(cluster.FlushAll().ok());
    ASSERT_GE(injector.trips(FaultPoint::kMediaCorruption), 1u);
  }

  // Final audit: stop injecting, restart whatever is down, drain hints, scrub
  // every node until nothing is left to rebuild, then one Merkle repair pass.
  injector.Heal();
  for (int n = 0; n < 3; ++n) {
    if (cluster.IsNodeDown(n)) {
      ASSERT_TRUE(cluster.RestartNode(n).ok());
    }
  }
  cluster.ReplayAllHints();
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.PendingHints(n), 0u) << "node " << n << " still has hints after heal";
  }
  size_t scrub_pass = 0;
  for (int pass = 0; pass < 6; ++pass) {
    scrub_pass = 0;
    for (int n = 0; n < 3; ++n) {
      auto r = cluster.ScrubNode(n);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      scrub_pass += *r;
    }
    if (scrub_pass == 0) {
      break;
    }
  }
  EXPECT_EQ(scrub_pass, 0u) << "scrub did not converge with injection healed";
  ASSERT_TRUE(cluster.AntiEntropyRepair(base_options.table).ok());
  SCOPED_TRACE("crash chaos seed 0x" + std::to_string(seed) + " — rerun with MC_CHAOS_SEED");

  // Invariants (a) + (c): every acked write durable, final value admissible.
  GenericClient reader(&cluster, base_options, key);
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << "key " << k << ": " << got.status().ToString();
    bool acked_put_candidate = false;
    bool delete_candidate = false;
    bool value_matches_candidate = false;
    bool touched = false;
    for (const ThreadTrack& track : tracks) {
      auto it = track.find(k);
      if (it == track.end()) {
        continue;
      }
      touched = true;
      const KeyTrack& kt = it->second;
      std::vector<const ChaosOp*> candidates;
      if (kt.last_acked.has_value()) {
        candidates.push_back(&*kt.last_acked);
      }
      for (const ChaosOp& op : kt.unacked) {
        candidates.push_back(&op);
      }
      if (kt.last_acked.has_value() && !kt.last_acked->is_delete) {
        acked_put_candidate = true;
      }
      for (const ChaosOp* op : candidates) {
        if (op->is_delete) {
          delete_candidate = true;
        } else if (got.ok() && *got == op->value) {
          value_matches_candidate = true;
        }
      }
    }
    if (!touched) {
      EXPECT_TRUE(got.status().IsNotFound()) << "untouched key " << k << " has a value";
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_candidate)
          << "key " << k << " holds '" << *got << "', which no thread could have written last";
    } else {
      EXPECT_TRUE(delete_candidate || !acked_put_candidate)
          << "key " << k << " lost an acknowledged put";
    }
  }

  // Anti-entropy mutate pass (see RunInvariantsUnderFire) so the strict pack
  // integrity check below cannot trip on a split abandoned mid-outage.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    if (got.ok()) {
      ASSERT_TRUE(reader.Put(k, *got).ok());
    } else {
      ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
      const Status s = reader.Delete(k);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  }

  // Invariant (b): pack integrity on every replica.
  const PackCrypter crypter(base_options, key);
  CheckPackIntegrity(&cluster, crypter, base_options);
  // Invariant (d): replicas converge.
  for (int p = 0; p < base_options.hash_partitions; ++p) {
    CheckReplicaConvergence(&cluster, base_options.table, PartitionLabel(p));
  }

  // The schedule must actually have crashed, corrupted, detected, and
  // rebuilt — otherwise the run proved nothing.
  EXPECT_GT(injector.trips(FaultPoint::kCrash), 0u) << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kMediaCorruption), 0u) << injector.Summary();
  EXPECT_GT(detected->Value(), detected_before) << "no corrupt block was ever detected";
  EXPECT_GT(rebuilt->Value(), rebuilt_before) << "scrub never rebuilt a quarantined block";
}

// --- Topology churn schedule -------------------------------------------------
//
// The third first-class chaos mode (docs/TESTING.md): a controller thread
// bootstraps, decommissions, and rebalances the ring while client traffic
// runs at QUORUM, interleaved with node crashes (torn commit logs) and one
// scripted block corruption per cycle. kTopologyPersist / kStreamInterrupt
// are both rate-armed and scripted, so membership ops park mid-state-machine
// and must be driven home by ResumeTopology. The worker loop checks
// read-your-own-acked-writes continuously across ownership flips; the final
// audit re-verifies all five invariants on whatever ring the churn left
// behind. Override MC_CHAOS_NODES to change the starting ring size.

int ChaosNodes() {
  if (const char* env = std::getenv("MC_CHAOS_NODES")) {
    return std::atoi(env);
  }
  return 8;
}

// Drives a parked topology op to completion: restart crashed participants,
// then ResumeTopology, bounded. Ops that abort before parking (a plan-edge
// persist fault) leave nothing inflight and need no resume.
void DriveTopologyToCompletion(Cluster* cluster) {
  for (int attempt = 0; attempt < 64 && cluster->Topology().inflight; ++attempt) {
    for (int n = 0; n < static_cast<int>(cluster->NodeCount()); ++n) {
      if (cluster->NodeMembership(n) != MembershipState::kRemoved && cluster->IsNodeDown(n)) {
        (void)cluster->RestartNode(n);
      }
    }
    if (cluster->ResumeTopology().ok()) {
      break;
    }
  }
  EXPECT_FALSE(cluster->Topology().inflight) << "topology op did not converge under resume";
}

TEST(ModelCheckChaos, TopologyChurnScheduleHoldsInvariants) {
  const uint64_t seed = ChaosSeed();
  const int iters = ChaosIters();
  const int start_nodes = ChaosNodes();
  const int period = ChaosCrashPeriod();
  std::fprintf(stderr,
               "[chaos] topology churn seed=0x%llx iters=%d nodes=%d period=%d "
               "(set MC_CHAOS_SEED / MC_CHAOS_NODES to replay)\n",
               static_cast<unsigned long long>(seed), iters, start_nodes, period);

  SimulatedClock clock;
  FaultInjector injector(seed);
  injector.SetRate(FaultPoint::kCrash, 1.0);  // every tear-draw counts as a trip
  injector.SetRate(FaultPoint::kMediaLatency, 0.03);
  injector.set_latency_spike_base_micros(200);
  injector.SetRate(FaultPoint::kTopologyPersist, 0.04);
  injector.SetRate(FaultPoint::kStreamInterrupt, 0.04);
  // Deterministic floor for the resume machinery regardless of seed: the
  // first persist edge and the first stream session each trip once.
  injector.Script(FaultPoint::kTopologyPersist, 1);
  injector.Script(FaultPoint::kStreamInterrupt, 1);

  ClusterOptions copts = ChaosClusterOptions(&clock, &injector);
  copts.node_count = start_nodes;
  copts.engine.commitlog_sync_every_appends = 4;  // crashes tear real unsynced tails
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("topology-chaos");
  const MiniCryptOptions base_options = ChaosClientOptions(seed + 1);
  GenericClient setup(&cluster, base_options, key);
  ASSERT_TRUE(setup.CreateTable().ok());

  constexpr int kThreads = 4;
  constexpr uint64_t kKeyspace = 96;
  std::vector<ThreadTrack> tracks(kThreads);
  std::atomic<long> ops_done{0};
  std::atomic<bool> workers_done{false};
  std::atomic<int> topology_ops{0};

  // The controller owns the node lifecycle (no ChaosTick flaps): every cycle
  // runs one membership change (rotating bootstrap / decommission /
  // rebalance), then one crash->restart with a torn log, then one scripted
  // block corruption flushed to at-rest form and scrubbed — all while the
  // workers keep QUORUM traffic flowing.
  std::thread controller([&] {
    Rng crng(seed ^ 0x70B0C4A5ULL);
    uint64_t corruption_scripted = 0;
    int cycle = 0;
    auto wait_ops = [&](long delta) {
      const long target = ops_done.load(std::memory_order_relaxed) + delta;
      while (ops_done.load(std::memory_order_relaxed) < target && !workers_done.load()) {
        std::this_thread::yield();
      }
    };
    while (!workers_done.load()) {
      wait_ops(period +
               static_cast<long>(crng.Uniform(static_cast<uint64_t>(period) + 1)));
      if (workers_done.load()) {
        break;
      }
      // 1) Membership churn under live traffic. A fault-parked op is resumed
      // to completion within its own cycle, so cycles never overlap.
      const int kind = cycle % 3;
      if (kind == 0) {
        if (!cluster.BootstrapNode().ok()) {
          DriveTopologyToCompletion(&cluster);
        }
        topology_ops.fetch_add(1);
      } else if (kind == 1) {
        const std::vector<int> serving = cluster.ServingNodes();
        if (serving.size() > static_cast<size_t>(copts.replication_factor) + 1) {
          const int victim = serving[crng.Uniform(serving.size())];
          if (!cluster.DecommissionNode(victim).ok()) {
            DriveTopologyToCompletion(&cluster);
          }
          topology_ops.fetch_add(1);
        }
      } else {
        if (!cluster.RebalanceTokens(4).ok()) {
          DriveTopologyToCompletion(&cluster);
        }
        topology_ops.fetch_add(1);
      }
      // 2) Crash -> outage traffic -> restart (log replay + hint drain).
      const std::vector<int> serving = cluster.ServingNodes();
      const int node = serving[crng.Uniform(serving.size())];
      if (cluster.CrashNode(node).ok()) {
        wait_ops(5 + static_cast<long>(crng.Uniform(15)));
        EXPECT_TRUE(cluster.RestartNode(node).ok());
      }
      // 3) One corrupt block in flight at a time (see the crash schedule).
      if (injector.trips(FaultPoint::kMediaCorruption) == corruption_scripted) {
        injector.Script(FaultPoint::kMediaCorruption, 1);
        ++corruption_scripted;
      }
      EXPECT_TRUE(cluster.FlushAll().ok());
      for (int n : cluster.ServingNodes()) {
        auto r = cluster.ScrubNode(n);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
      ++cycle;
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MiniCryptOptions options = ChaosClientOptions(seed ^ (0x9E3779B97F4A7C15ULL * (t + 1)));
      GenericClient worker(&cluster, options, key);
      ThreadTrack& track = tracks[static_cast<size_t>(t)];
      std::map<uint64_t, int> own_acked_op;
      const std::string own_tag = "t" + std::to_string(t) + "#";
      Rng rng(seed + 100 + static_cast<uint64_t>(t));
      for (int op = 0; op < iters; ++op) {
        ops_done.fetch_add(1, std::memory_order_relaxed);
        const uint64_t k = rng.Uniform(kKeyspace);
        const int kind = static_cast<int>(rng.Uniform(100));
        if (kind < 50) {  // put
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          const Status s = worker.Put(k, value);
          RecordOp(&track, k, /*is_delete=*/false, value, s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 65) {  // delete
          const Status s = worker.Delete(k);
          RecordOp(&track, k, /*is_delete=*/true, "", s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else if (kind < 90) {  // get: admissible status, never own-stale
          auto got = worker.Get(k);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsUnavailable() || s.IsAborted() ||
                      s.IsCorruption())
              << s.ToString();
          if (got.ok() && got->rfind(own_tag, 0) == 0) {
            const int read_op = std::atoi(got->c_str() + own_tag.size());
            auto acked = own_acked_op.find(k);
            if (acked != own_acked_op.end()) {
              EXPECT_GE(read_op, acked->second)
                  << "stale read across a topology flip: key " << k << " returned own value '"
                  << *got << "' older than this thread's acked op " << acked->second;
            }
          }
        } else {  // narrow range
          const Status s = worker.GetRange(k, k + 8).status();
          EXPECT_TRUE(s.ok() || s.IsUnavailable() || s.IsAborted() || s.IsCorruption())
              << s.ToString();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  workers_done.store(true);
  controller.join();

  // Tiny MC_CHAOS_ITERS overrides may finish before the first cycle; the
  // schedule must still contain one membership change (the scripted persist
  // and stream faults fire on it) and one corrupted block.
  if (topology_ops.load() == 0) {
    // The scripted plan-edge persist fault aborts the first attempt with
    // nothing inflight; keep trying until a node actually joins so the
    // stream path (and its scripted interrupt) runs too.
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (cluster.BootstrapNode().ok()) {
        break;
      }
      DriveTopologyToCompletion(&cluster);
      if (cluster.ServingNodes().size() > static_cast<size_t>(start_nodes)) {
        break;
      }
    }
    ASSERT_GT(cluster.ServingNodes().size(), static_cast<size_t>(start_nodes));
    topology_ops.fetch_add(1);
  }
  if (injector.trips(FaultPoint::kCrash) == 0) {
    const int node = cluster.ServingNodes().front();
    ASSERT_TRUE(cluster.CrashNode(node).ok());
    ASSERT_TRUE(cluster.RestartNode(node).ok());
  }
  if (injector.trips(FaultPoint::kMediaCorruption) == 0) {
    Row backstop;
    backstop.cells["v"] = Cell{"corruption-backstop", 0, false};
    ASSERT_TRUE(
        cluster.Write(base_options.table, "zz-backstop", EncodeKey64(0), backstop).ok());
    injector.Script(FaultPoint::kMediaCorruption, 1);
    ASSERT_TRUE(cluster.FlushAll().ok());
  }

  // Final audit: stop injecting, restart whatever is down (retired nodes stay
  // down forever), drain hints, scrub serving nodes to convergence, one
  // Merkle repair pass — then re-verify the five invariants.
  injector.Heal();
  for (int n = 0; n < static_cast<int>(cluster.NodeCount()); ++n) {
    if (cluster.NodeMembership(n) != MembershipState::kRemoved && cluster.IsNodeDown(n)) {
      ASSERT_TRUE(cluster.RestartNode(n).ok());
    }
  }
  cluster.ReplayAllHints();
  for (int n = 0; n < static_cast<int>(cluster.NodeCount()); ++n) {
    if (cluster.NodeMembership(n) != MembershipState::kRemoved) {
      EXPECT_EQ(cluster.PendingHints(n), 0u) << "node " << n << " still has hints after heal";
    }
  }
  size_t scrub_pass = 0;
  for (int pass = 0; pass < 6; ++pass) {
    scrub_pass = 0;
    for (int n : cluster.ServingNodes()) {
      auto r = cluster.ScrubNode(n);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      scrub_pass += *r;
    }
    if (scrub_pass == 0) {
      break;
    }
  }
  EXPECT_EQ(scrub_pass, 0u) << "scrub did not converge with injection healed";
  ASSERT_TRUE(cluster.AntiEntropyRepair(base_options.table).ok());
  SCOPED_TRACE("topology chaos seed 0x" + std::to_string(seed) + " — rerun with MC_CHAOS_SEED");

  // Invariants (a) + (c): every acked write durable across membership churn,
  // final value admissible.
  GenericClient reader(&cluster, base_options, key);
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << "key " << k << ": " << got.status().ToString();
    bool acked_put_candidate = false;
    bool delete_candidate = false;
    bool value_matches_candidate = false;
    bool touched = false;
    for (const ThreadTrack& track : tracks) {
      auto it = track.find(k);
      if (it == track.end()) {
        continue;
      }
      touched = true;
      const KeyTrack& kt = it->second;
      std::vector<const ChaosOp*> candidates;
      if (kt.last_acked.has_value()) {
        candidates.push_back(&*kt.last_acked);
      }
      for (const ChaosOp& op : kt.unacked) {
        candidates.push_back(&op);
      }
      if (kt.last_acked.has_value() && !kt.last_acked->is_delete) {
        acked_put_candidate = true;
      }
      for (const ChaosOp* op : candidates) {
        if (op->is_delete) {
          delete_candidate = true;
        } else if (got.ok() && *got == op->value) {
          value_matches_candidate = true;
        }
      }
    }
    if (!touched) {
      EXPECT_TRUE(got.status().IsNotFound()) << "untouched key " << k << " has a value";
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_candidate)
          << "key " << k << " holds '" << *got << "', which no thread could have written last";
    } else {
      EXPECT_TRUE(delete_candidate || !acked_put_candidate)
          << "key " << k << " lost an acknowledged put across membership churn";
    }
  }

  // Anti-entropy mutate pass (see RunInvariantsUnderFire) so the strict pack
  // integrity check below cannot trip on a split abandoned mid-outage.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    if (got.ok()) {
      ASSERT_TRUE(reader.Put(k, *got).ok());
    } else {
      ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
      const Status s = reader.Delete(k);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  }

  // Invariant (b): pack integrity on every replica of the churned ring.
  const PackCrypter crypter(base_options, key);
  CheckPackIntegrity(&cluster, crypter, base_options);
  // Invariant (d): replicas converge on the final ownership map.
  for (int p = 0; p < base_options.hash_partitions; ++p) {
    CheckReplicaConvergence(&cluster, base_options.table, PartitionLabel(p));
  }

  // The schedule must actually have churned membership, crashed, parked a
  // topology op on a persist fault, interrupted a stream, and corrupted a
  // block — otherwise the run proved nothing about elasticity under faults.
  EXPECT_GT(topology_ops.load(), 0);
  EXPECT_GT(injector.trips(FaultPoint::kCrash), 0u) << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kTopologyPersist), 0u) << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kStreamInterrupt), 0u) << injector.Summary();
  EXPECT_GT(injector.trips(FaultPoint::kMediaCorruption), 0u) << injector.Summary();
}

// Acceptance: on a 32-node ring, decommissioning a loaded node under live
// QUORUM traffic completes, and the five invariants hold afterward — no
// acked write lost (a), packs intact on every replica (b), final values
// admissible (c), replicas converged (d), and no reader ever saw a value
// older than its own acked write (e, checked inline by the workers).
TEST(ModelCheckChaos, ThirtyTwoNodeDecommissionUnderLoadHoldsInvariants) {
  SimulatedClock clock;
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.node_count = 32;
  copts.replication_factor = 3;
  copts.consistency = Consistency::kQuorum;
  copts.clock = &clock;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("scale-decommission");
  MiniCryptOptions options;
  options.pack_rows = 4;
  options.hash_partitions = 4;
  GenericClient setup(&cluster, options, key);
  ASSERT_TRUE(setup.CreateTable().ok());

  constexpr uint64_t kKeyspace = 96;
  for (uint64_t k = 0; k < kKeyspace; ++k) {  // the victim must hold real data
    ASSERT_TRUE(setup.Put(k, "seed#" + std::to_string(k)).ok());
  }

  constexpr int kThreads = 2;
  std::vector<ThreadTrack> tracks(kThreads);
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster, options, key);
      ThreadTrack& track = tracks[static_cast<size_t>(t)];
      std::map<uint64_t, int> own_acked_op;
      const std::string own_tag = "t" + std::to_string(t) + "#";
      Rng rng(0x32DEC0 + static_cast<uint64_t>(t));
      while (!start.load()) {
        std::this_thread::yield();
      }
      for (int op = 0; op < 120; ++op) {
        const uint64_t k = rng.Uniform(kKeyspace);
        if (rng.Bernoulli(0.7)) {
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          const Status s = worker.Put(k, value);
          RecordOp(&track, k, /*is_delete=*/false, value, s);
          if (s.ok()) {
            own_acked_op[k] = op;
          }
        } else {
          auto got = worker.Get(k);
          const Status s = got.status();
          EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsUnavailable() || s.IsAborted())
              << s.ToString();
          if (got.ok() && got->rfind(own_tag, 0) == 0) {
            const int read_op = std::atoi(got->c_str() + own_tag.size());
            auto acked = own_acked_op.find(k);
            if (acked != own_acked_op.end()) {
              EXPECT_GE(read_op, acked->second) << "stale own read during decommission, key "
                                                << k;
            }
          }
        }
      }
    });
  }

  start.store(true);
  constexpr int kVictim = 7;
  ASSERT_TRUE(cluster.DecommissionNode(kVictim).ok());
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(cluster.NodeMembership(kVictim), MembershipState::kRemoved);
  EXPECT_EQ(cluster.ServingNodes().size(), 31u);
  EXPECT_FALSE(cluster.RingSnapshot().Contains(kVictim));
  cluster.ReplayAllHints();

  // (a) + (c): every key readable with an admissible value; preloaded keys
  // that nobody overwrote must still hold their seed value.
  GenericClient reader(&cluster, options, key);
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = reader.Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << " lost in decommission: "
                          << got.status().ToString();
    bool admissible = (*got == "seed#" + std::to_string(k));
    for (const ThreadTrack& track : tracks) {
      auto it = track.find(k);
      if (it == track.end()) {
        continue;
      }
      if (it->second.last_acked.has_value() && *got == it->second.last_acked->value) {
        admissible = true;
      }
      for (const ChaosOp& op : it->second.unacked) {
        if (*got == op.value) {
          admissible = true;
        }
      }
    }
    EXPECT_TRUE(admissible) << "key " << k << " holds unexplained value '" << *got << "'";
  }

  // (b) + (d): pack integrity and replica convergence on the 31-node ring,
  // with no replica set referencing the retired node.
  const PackCrypter crypter(options, key);
  CheckPackIntegrity(&cluster, crypter, options);
  for (int p = 0; p < options.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    for (int node : cluster.ReplicaNodesFor(partition)) {
      EXPECT_NE(node, kVictim);
    }
    CheckReplicaConvergence(&cluster, options.table, partition);
  }
}

// Satellite: same seed => identical fault schedule and identical final state.
// A failing chaos run can therefore be replayed exactly via MC_CHAOS_SEED.
// With `with_topology`, a bootstrap runs mid-sequence: its kTopologyPersist /
// kStreamInterrupt draws join the recorded schedule and its deterministic
// resume loop must replay identically too. With `with_index`, puts carry
// indexed values, by-value range queries join the op mix, and the
// kIndexSplit / kIndexPersist draws of the index's drain/split/seal protocols
// join the recorded schedule; the final state includes the by-value answers.
// With `with_rotation`, a key rotation runs mid-sequence: its kRotatePersist /
// kRotateReseal draws join the schedule, its bounded resume loop must replay
// identically, and the final keyring window + durable rotation record join
// the state fingerprint.
std::pair<std::string, std::string> RunSingleThreadedChaos(uint64_t seed, int ops,
                                                           bool with_topology = false,
                                                           bool with_index = false,
                                                           bool with_rotation = false) {
  SimulatedClock clock;
  FaultInjector injector(seed);
  injector.set_record_schedule(true);
  ArmAllFaultPoints(&injector);
  if (with_topology) {
    injector.SetRate(FaultPoint::kTopologyPersist, 0.3);
    injector.SetRate(FaultPoint::kStreamInterrupt, 0.3);
    // At least one of each must land whatever the seed draws, so the
    // recorded schedule always exercises the park/resume path.
    injector.Script(FaultPoint::kTopologyPersist, 1);
    injector.Script(FaultPoint::kStreamInterrupt, 1);
  }
  if (with_index) {
    injector.SetRate(FaultPoint::kIndexSplit, 0.2);
    injector.SetRate(FaultPoint::kIndexPersist, 0.2);
    injector.Script(FaultPoint::kIndexSplit, 1);
    injector.Script(FaultPoint::kIndexPersist, 1);
  }
  if (with_rotation) {
    injector.SetRate(FaultPoint::kRotatePersist, 0.2);
    injector.SetRate(FaultPoint::kRotateReseal, 0.2);
    injector.Script(FaultPoint::kRotatePersist, 1);
    injector.Script(FaultPoint::kRotateReseal, 1);
  }

  ClusterOptions copts = ChaosClusterOptions(&clock, &injector);
  // Seed-exact replay needs a deterministic fault-ordinal stream. Concurrent
  // replica legs claim engine-level ordinals (kCommitLogAppend, kMediaLatency)
  // in thread-scheduling order, so this test — and only this test — pins the
  // fan-out back to synchronous replica-order execution (docs/CONCURRENCY.md).
  copts.replica_fanout_threads = 0;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("chaos-repro");
  const MiniCryptOptions options = ChaosClientOptions(seed + 7);
  GenericClient client(&cluster, options, key);
  EXPECT_TRUE(client.CreateTable().ok());
  constexpr uint64_t kIndexAttrDomain = 24;
  if (with_index) {
    SecondaryIndexOptions iopts;
    iopts.leakage = IndexLeakage::kQueriedOrder;
    iopts.leaf_rows = 4;
    EXPECT_TRUE(client.CreateIndex(iopts).ok());
  }

  constexpr uint64_t kKeyspace = 48;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    if (op % 3 == 0) {
      cluster.ChaosTick();
    }
    if (with_topology && op == ops / 2) {
      // One membership change mid-sequence. Its persist edges and stream
      // sessions draw fault ordinals like any other point; the bounded
      // resume loop (heal flapped nodes, resume, repeat) is deterministic,
      // so the whole bootstrap replays exactly under the same seed.
      (void)cluster.BootstrapNode();
      for (int attempt = 0; attempt < 32 && cluster.Topology().inflight; ++attempt) {
        cluster.HealAllNodes();
        if (cluster.ResumeTopology().ok()) {
          break;
        }
      }
      EXPECT_FALSE(cluster.Topology().inflight) << "seeded bootstrap did not converge";
    }
    if (with_rotation && op == ops / 2) {
      // One epoch rotation mid-sequence. Every injected pause (failed stage
      // persist, reseal crash) is resumed by the next call; progress is
      // durable, so the loop converges, and each attempt draws its fault
      // ordinals deterministically — the whole rotation replays exactly.
      Status rs = client.RotateKeys();
      for (int attempt = 0; attempt < 64 && !rs.ok(); ++attempt) {
        EXPECT_TRUE(rs.IsUnavailable() || rs.IsAborted()) << rs.ToString();
        rs = client.RotateKeys();
      }
      EXPECT_TRUE(rs.ok()) << "seeded rotation did not converge: " << rs.ToString();
    }
    const uint64_t k = rng.Uniform(kKeyspace);
    const int kind = static_cast<int>(rng.Uniform(10));
    if (kind < 6) {
      const std::string value = "v" + std::to_string(op);
      (void)client.Put(k, with_index ? EncodeIndexedValue(k % kIndexAttrDomain, value) : value);
    } else if (kind < 8) {
      (void)client.Delete(k);
    } else if (with_index && kind == 9) {
      // By-value queries drive the lazy-sort drains whose kIndexSplit /
      // kIndexPersist draws this test replays. Only the with_index op stream
      // consumes this extra rng draw, so the legacy streams are untouched.
      const uint64_t lo = rng.Uniform(kIndexAttrDomain);
      (void)client.GetRangeByValue(lo, lo + 5);
    } else {
      (void)client.Get(k);
    }
  }
  injector.Heal();
  cluster.HealAllNodes();
  cluster.ReplayAllHints();

  std::string state;
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = client.Get(k);
    state += got.ok() ? *got : "~";
    state += ';';
  }
  if (with_index) {
    // Fold the healed by-value answers into the state fingerprint: replayed
    // runs must agree on what the index serves, not just the primary rows.
    for (uint64_t lo = 0; lo < kIndexAttrDomain; lo += 6) {
      auto got = client.GetRangeByValue(lo, lo + 5);
      EXPECT_TRUE(got.ok()) << got.status().ToString();
      state += "R" + std::to_string(lo) + ":";
      if (got.ok()) {
        for (const auto& [pk, value] : *got) {
          state += std::to_string(pk) + "=" + value + ",";
        }
      } else {
        state += "!";
      }
      state += ';';
    }
  }
  if (with_rotation) {
    // Replayed runs must agree on the keyring window and the durable record,
    // not just the row values the rotated packs decrypt to.
    auto record = client.RotationState();
    EXPECT_TRUE(record.ok()) << record.status().ToString();
    state += "K" + std::to_string(client.keyring()->current_epoch()) + "/" +
             std::to_string(client.keyring()->retired_below()) + "/" +
             (record.ok() ? std::to_string(record->stage) + "." +
                                std::to_string(record->retired_below)
                          : "!") +
             ";";
  }
  return {injector.ScheduleString(), state};
}

TEST(ModelCheckChaos, SameSeedReplaysScheduleAndState) {
  const auto first = RunSingleThreadedChaos(0xD5EED, 160);
  const auto second = RunSingleThreadedChaos(0xD5EED, 160);
  EXPECT_EQ(first.first, second.first) << "fault schedule not reproducible";
  EXPECT_EQ(first.second, second.second) << "final state not reproducible";
  EXPECT_FALSE(first.first.empty());

  const auto other = RunSingleThreadedChaos(0xD5EEE, 160);
  EXPECT_NE(first.first, other.first) << "different seeds produced identical schedules";
}

TEST(ModelCheckChaos, SameSeedReplaysTopologyScheduleAndState) {
  const auto first = RunSingleThreadedChaos(0x70D05EEDULL, 160, /*with_topology=*/true);
  const auto second = RunSingleThreadedChaos(0x70D05EEDULL, 160, /*with_topology=*/true);
  EXPECT_EQ(first.first, second.first) << "topology fault schedule not reproducible";
  EXPECT_EQ(first.second, second.second) << "final state not reproducible";
  // The schedule must actually contain topology fault draws — an empty
  // "topology_persist:" section would mean the bootstrap never drew faults
  // and the test proved nothing about replaying them.
  EXPECT_EQ(first.first.find("topology_persist:;"), std::string::npos);
}

TEST(ModelCheckChaos, SameSeedReplaysIndexScheduleAndState) {
  const auto first =
      RunSingleThreadedChaos(0x1DE75EEDULL, 160, /*with_topology=*/false, /*with_index=*/true);
  const auto second =
      RunSingleThreadedChaos(0x1DE75EEDULL, 160, /*with_topology=*/false, /*with_index=*/true);
  EXPECT_EQ(first.first, second.first) << "index fault schedule not reproducible";
  EXPECT_EQ(first.second, second.second) << "final state (incl. by-value answers) not reproducible";
  // Non-vacuity: both index protocol points must appear in the recorded
  // schedule with at least one draw, mirroring the topology check above.
  EXPECT_EQ(first.first.find("index_split:;"), std::string::npos);
  EXPECT_EQ(first.first.find("index_persist:;"), std::string::npos);
}

TEST(ModelCheckChaos, SameSeedReplaysRotationScheduleAndState) {
  const auto first = RunSingleThreadedChaos(0x407A7E5EEDULL, 160, /*with_topology=*/false,
                                            /*with_index=*/false, /*with_rotation=*/true);
  const auto second = RunSingleThreadedChaos(0x407A7E5EEDULL, 160, /*with_topology=*/false,
                                             /*with_index=*/false, /*with_rotation=*/true);
  EXPECT_EQ(first.first, second.first) << "rotation fault schedule not reproducible";
  EXPECT_EQ(first.second, second.second)
      << "final state (incl. keyring window + rotation record) not reproducible";
  // Non-vacuity: both rotation protocol points must appear in the recorded
  // schedule with at least one draw, and the fingerprint must show the
  // rotation actually advanced the epoch window.
  EXPECT_EQ(first.first.find("rotate_persist:;"), std::string::npos);
  EXPECT_EQ(first.first.find("rotate_reseal:;"), std::string::npos);
  EXPECT_NE(first.second.find("K1/1/0.1;"), std::string::npos)
      << "fingerprint does not show a completed rotation to epoch 1: " << first.second;
}

}  // namespace
}  // namespace minicrypt
