// Model-based property tests: long random operation sequences against an
// in-memory reference model. Single-threaded sequences must match the model
// exactly (packs, splits, partitions and codecs are all invisible at the API
// level); multi-threaded sequences must converge to a state where every key
// has a value one of the writers actually wrote.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/random.h"
#include "src/core/generic_client.h"

namespace minicrypt {
namespace {

struct ModelParams {
  size_t pack_rows;
  int hash_partitions;
  std::string codec;
  bool encrypt_pack_ids;
};

class ModelCheck : public ::testing::TestWithParam<ModelParams> {};

TEST_P(ModelCheck, RandomSequenceMatchesReferenceModel) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("model");
  MiniCryptOptions options;
  options.pack_rows = GetParam().pack_rows;
  options.hash_partitions = GetParam().hash_partitions;
  options.codec = GetParam().codec;
  options.encrypt_pack_ids = GetParam().encrypt_pack_ids;
  options.packid_bucket_width = 16;
  ASSERT_TRUE(options.Validate().ok());

  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  std::map<uint64_t, std::string> model;
  Rng rng(0xC0FFEE);
  const uint64_t keyspace = 400;
  for (int op = 0; op < 1500; ++op) {
    const uint64_t k = rng.Uniform(keyspace);
    const int kind = static_cast<int>(rng.Uniform(10));
    if (kind < 6) {  // put
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(client.Put(k, value).ok()) << "op " << op;
      model[k] = value;
    } else if (kind < 8) {  // delete
      ASSERT_TRUE(client.Delete(k).ok()) << "op " << op;
      model.erase(k);
    } else {  // get
      auto got = client.Get(k);
      auto it = model.find(k);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << "op " << op << " key " << k;
      } else {
        ASSERT_TRUE(got.ok()) << "op " << op << " key " << k;
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  // Final full audit.
  for (uint64_t k = 0; k < keyspace; ++k) {
    auto got = client.Get(k);
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << k;
    } else {
      ASSERT_TRUE(got.ok()) << k;
      EXPECT_EQ(*got, it->second) << k;
    }
  }
  // Range audit (skip in encrypted-packID mode, which refuses ranges).
  if (!options.encrypt_pack_ids) {
    auto rows = client.GetRange(0, keyspace);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), model.size());
    auto expected = model.begin();
    for (const auto& [k, v] : *rows) {
      EXPECT_EQ(k, expected->first);
      EXPECT_EQ(v, expected->second);
      ++expected;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelCheck,
    ::testing::Values(ModelParams{4, 1, "zlib", false},
                      ModelParams{8, 4, "zlib", false},
                      ModelParams{50, 8, "lz4like", false},
                      ModelParams{5, 2, "snappylike", false},
                      ModelParams{16, 2, "zlib", true}),
    [](const auto& info) {
      const ModelParams& p = info.param;
      return "pack" + std::to_string(p.pack_rows) + "_part" +
             std::to_string(p.hash_partitions) + "_" + p.codec +
             (p.encrypt_pack_ids ? "_encids" : "");
    });

TEST(ModelCheckConcurrent, WritersConvergeToWrittenValues) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("model");
  MiniCryptOptions options;
  options.pack_rows = 6;
  options.hash_partitions = 2;

  GenericClient setup(&cluster, options, key);
  ASSERT_TRUE(setup.CreateTable().ok());

  constexpr int kThreads = 6;
  constexpr uint64_t kKeyspace = 120;
  // Each thread records the last value it wrote (or tombstone) per key.
  std::vector<std::map<uint64_t, std::string>> last_write(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster, options, key);
      Rng rng(static_cast<uint64_t>(t) * 31 + 1);
      for (int op = 0; op < 150; ++op) {
        const uint64_t k = rng.Uniform(kKeyspace);
        if (rng.Bernoulli(0.85)) {
          const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
          ASSERT_TRUE(worker.Put(k, value).ok());
          last_write[static_cast<size_t>(t)][k] = value;
        } else {
          ASSERT_TRUE(worker.Delete(k).ok());
          last_write[static_cast<size_t>(t)][k] = "";  // tombstone marker
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // Every readable value must be the final write of *some* thread for that
  // key (no resurrected, torn, or invented values), and a key is NotFound
  // only if at least one thread's final op on it was a delete.
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    auto got = setup.Get(k);
    bool some_writer_touched = false;
    bool some_final_delete = false;
    bool value_matches_some_final = false;
    for (const auto& writes : last_write) {
      auto it = writes.find(k);
      if (it == writes.end()) {
        continue;
      }
      some_writer_touched = true;
      if (it->second.empty()) {
        some_final_delete = true;
      } else if (got.ok() && *got == it->second) {
        value_matches_some_final = true;
      }
    }
    if (!some_writer_touched) {
      EXPECT_TRUE(got.status().IsNotFound()) << k;
    } else if (got.ok()) {
      EXPECT_TRUE(value_matches_some_final) << "key " << k << " holds value '" << *got
                                            << "' no thread finally wrote";
    } else {
      EXPECT_TRUE(some_final_delete) << "key " << k << " vanished without a final delete";
    }
  }
}

}  // namespace
}  // namespace minicrypt
