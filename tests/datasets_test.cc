#include "src/workload/datasets.h"

#include <gtest/gtest.h>

#include "src/compress/compressor.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace minicrypt {
namespace {

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, DeterministicPerSeedAndIndex) {
  auto a = MakeDataset(GetParam(), 42);
  auto b = MakeDataset(GetParam(), 42);
  auto c = MakeDataset(GetParam(), 43);
  ASSERT_NE(a, nullptr);
  for (uint64_t i : {0ULL, 1ULL, 999ULL}) {
    EXPECT_EQ(a->Row(i), b->Row(i));
  }
  EXPECT_NE(a->Row(0), c->Row(0));
  EXPECT_NE(a->Row(0), a->Row(1));
}

TEST_P(DatasetTest, RowSizeNearNominal) {
  auto dataset = MakeDataset(GetParam(), 7);
  size_t total = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    total += dataset->Row(i).size();
  }
  const double avg = static_cast<double>(total) / 50.0;
  const double nominal = static_cast<double>(dataset->ApproxRowBytes());
  EXPECT_GT(avg, nominal * 0.5);
  EXPECT_LT(avg, nominal * 2.0);
}

// The property Figure 2 rests on: packing a moderate number of rows recovers
// most of the whole-dataset compression ratio, and beats single-row
// compression clearly.
TEST_P(DatasetTest, PackCompressionBeatsSingleRow) {
  auto dataset = MakeDataset(GetParam(), 11);
  const Compressor* zlib = FindCompressor("zlib");
  const int rows = 256;

  size_t raw = 0;
  size_t single_compressed = 0;
  std::string packed;
  for (int i = 0; i < rows; ++i) {
    const std::string row = dataset->Row(static_cast<uint64_t>(i));
    raw += row.size();
    single_compressed += zlib->Compress(row)->size();
    packed += row;
  }
  const double single_ratio =
      static_cast<double>(raw) / static_cast<double>(single_compressed);
  // 50-row packs.
  size_t pack50_compressed = 0;
  for (int start = 0; start < rows; start += 50) {
    std::string pack;
    for (int i = start; i < std::min(rows, start + 50); ++i) {
      pack += dataset->Row(static_cast<uint64_t>(i));
    }
    pack50_compressed += zlib->Compress(pack)->size();
  }
  const double pack_ratio = static_cast<double>(raw) / static_cast<double>(pack50_compressed);
  const double full_ratio =
      static_cast<double>(raw) / static_cast<double>(zlib->Compress(packed)->size());

  EXPECT_GT(pack_ratio, single_ratio * 1.3)
      << GetParam() << ": packs must recover cross-row redundancy";
  EXPECT_GE(full_ratio * 1.05, pack_ratio) << "whole-dataset ratio is the ceiling";
  EXPECT_GT(pack_ratio, full_ratio * 0.55)
      << GetParam() << ": 50-row packs should recover most of the ceiling";
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::Values("conviva", "genomics", "twitter", "gas", "wiki",
                                           "github"),
                         [](const auto& info) { return info.param; });

TEST(Datasets, ConvivaMatchesPaperProfile) {
  // Paper: ~1100-byte rows; single-row ratio ~1.6; 50-row packs ~4.5.
  auto dataset = MakeDataset("conviva", 1);
  const Compressor* zlib = FindCompressor("zlib");
  size_t raw = 0;
  size_t single = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string row = dataset->Row(static_cast<uint64_t>(i));
    raw += row.size();
    single += zlib->Compress(row)->size();
  }
  const double avg_row = static_cast<double>(raw) / 200.0;
  EXPECT_GT(avg_row, 900.0);
  EXPECT_LT(avg_row, 1400.0);
  const double single_ratio = static_cast<double>(raw) / static_cast<double>(single);
  EXPECT_GT(single_ratio, 1.2);
  EXPECT_LT(single_ratio, 2.2);

  size_t packed = 0;
  for (int start = 0; start < 200; start += 50) {
    std::string pack;
    for (int i = start; i < start + 50; ++i) {
      pack += dataset->Row(static_cast<uint64_t>(i));
    }
    packed += zlib->Compress(pack)->size();
  }
  const double pack_ratio = static_cast<double>(raw) / static_cast<double>(packed);
  EXPECT_GT(pack_ratio, 3.0);
}

TEST(Datasets, UnknownNameReturnsNull) { EXPECT_EQ(MakeDataset("nope", 1), nullptr); }

TEST(Datasets, MaterializeRowsKeysAreSequential) {
  auto dataset = MakeDataset("gas", 2);
  const auto rows = MaterializeRows(*dataset, 10);
  ASSERT_EQ(rows.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rows[i].first, i);
    EXPECT_FALSE(rows[i].second.empty());
  }
}

TEST(Driver, ClosedLoopCountsOpsAndLatency) {
  DriverConfig config;
  config.threads = 2;
  config.run_micros = 100'000;
  std::atomic<uint64_t> side_effect{0};
  const DriverResult result = RunClosedLoop(config, [&](int thread, uint64_t index) {
    side_effect.fetch_add(1, std::memory_order_relaxed);
    return index % 10 != 0;  // inject some "errors"
  });
  EXPECT_GT(result.total_ops, 100u);
  EXPECT_GT(result.errors, 0u);
  EXPECT_LT(result.errors, result.total_ops);
  EXPECT_GT(result.throughput_ops_s, 0.0);
  EXPECT_EQ(result.latency.count(), result.total_ops);
  EXPECT_GE(side_effect.load(), result.total_ops);
}

TEST(Ycsb, LatestWindowTracksFrontier) {
  std::atomic<uint64_t> frontier{100};
  LatestWindowChooser chooser(&frontier, 10, 3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = chooser.Next();
    EXPECT_GE(k, 90u);
    EXPECT_LT(k, 100u);
  }
  frontier = 1000;
  bool above = false;
  for (int i = 0; i < 200; ++i) {
    above |= chooser.Next() >= 990;
  }
  EXPECT_TRUE(above);
}

TEST(Ycsb, ZipfianKnobMapsToSkew) {
  // knob 0 -> heavily skewed; knob 1 -> near uniform (paper Figure 10).
  ZipfianChooser skewed(1000, 0.0, 5);
  ZipfianChooser uniform(1000, 1.0, 5);
  int skew_low = 0;
  int uni_low = 0;
  for (int i = 0; i < 5000; ++i) {
    skew_low += skewed.Next() < 10 ? 1 : 0;
    uni_low += uniform.Next() < 10 ? 1 : 0;
  }
  EXPECT_GT(skew_low, uni_low * 5);
}

}  // namespace
}  // namespace minicrypt
