// Property and regression tests for the elastic consistent-hash ring:
// ownership is a total partition of the token space, membership changes move
// only minimal ranges, replica sets stay rf-distinct under churn, vnode load
// spread stays bounded, and placement for known keys is pinned so rebalancing
// work can never silently reshuffle the ring's hash function or walk order.

#include "src/kvstore/ring.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace minicrypt {
namespace {

// Deterministic mixer for churn sequences (no std::rand: seeded, portable).
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Key(int i) { return "key-" + std::to_string(i); }

TEST(RingTest, OwnershipIsTotalPartitionOfTokenSpace) {
  HashRing ring(16);
  for (int i = 0; i < 6; ++i) {
    ring.AddNode(i);
  }
  const auto dump = ring.TokenDump();
  ASSERT_EQ(dump.size(), 6u * 16u);  // no token collisions among these labels
  std::set<int> members(ring.node_ids().begin(), ring.node_ids().end());
  for (size_t i = 0; i < dump.size(); ++i) {
    // Token order is strictly ascending (a std::map walk) and every token has
    // exactly one live owner: the ranges (prev, token] tile the space with no
    // gap or overlap by construction.
    if (i > 0) {
      EXPECT_LT(dump[i - 1].first, dump[i].first);
    }
    EXPECT_TRUE(members.count(dump[i].second)) << "token owned by non-member";
  }
  // Every key resolves to an owner: the walk wraps past the last token.
  for (int k = 0; k < 1000; ++k) {
    EXPECT_NE(ring.PrimaryOwner(Key(k)), -1);
  }
}

TEST(RingTest, AddNodeMovesOnlyRangesTheNewNodeGains) {
  HashRing ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.AddNode(i);
  }
  std::map<std::string, int> before;
  for (int k = 0; k < 4000; ++k) {
    before[Key(k)] = ring.PrimaryOwner(Key(k));
  }
  ring.AddNode(5);
  size_t moved = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.PrimaryOwner(key);
    if (now != owner) {
      // Minimal movement: a key may change primary owner only by moving TO
      // the new node — never get shuffled between pre-existing nodes.
      EXPECT_EQ(now, 5) << key << " reshuffled between old nodes";
      ++moved;
    }
  }
  // The new node takes roughly 1/6 of primary ownership; it must take
  // something, and far less than everything.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, before.size() / 2);
}

TEST(RingTest, RemoveNodeMovesOnlyTheRemovedNodesRanges) {
  HashRing ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.AddNode(i);
  }
  std::map<std::string, int> before;
  for (int k = 0; k < 4000; ++k) {
    before[Key(k)] = ring.PrimaryOwner(Key(k));
  }
  ring.RemoveNode(2);
  for (const auto& [key, owner] : before) {
    const int now = ring.PrimaryOwner(key);
    if (owner != 2) {
      // Keys the departed node never owned keep their primary owner.
      EXPECT_EQ(now, owner) << key << " moved though node 2 never owned it";
    } else {
      EXPECT_NE(now, 2);
    }
  }
}

TEST(RingTest, ReplicaSetsStayDistinctAcrossArbitraryChurn) {
  constexpr int kRf = 3;
  HashRing ring(16);
  std::set<int> alive;
  int next_id = 0;
  for (int i = 0; i < 4; ++i) {
    ring.AddNode(next_id);
    alive.insert(next_id++);
  }
  uint64_t rng = 0xC0FFEEULL;
  for (int step = 0; step < 60; ++step) {
    const uint64_t draw = SplitMix64(rng);
    if ((draw % 2 == 0 || alive.size() <= static_cast<size_t>(kRf)) && alive.size() < 12) {
      ring.AddNode(next_id);
      alive.insert(next_id++);
    } else {
      const auto victim = std::next(alive.begin(), static_cast<long>(draw % alive.size()));
      ring.RemoveNode(*victim);
      alive.erase(victim);
    }
    for (int k = 0; k < 200; ++k) {
      const std::vector<int> replicas = ring.Replicas(Key(k), kRf);
      const size_t want = std::min(static_cast<size_t>(kRf), alive.size());
      ASSERT_EQ(replicas.size(), want) << "step " << step;
      std::set<int> distinct(replicas.begin(), replicas.end());
      EXPECT_EQ(distinct.size(), replicas.size()) << "duplicate replica at step " << step;
      for (int id : replicas) {
        EXPECT_TRUE(alive.count(id)) << "dead node " << id << " in replica set, step " << step;
      }
    }
  }
}

TEST(RingTest, VnodeLoadSpreadIsBounded) {
  constexpr int kNodes = 8;
  constexpr int kRf = 3;
  constexpr int kKeys = 10000;
  HashRing ring(16);
  for (int i = 0; i < kNodes; ++i) {
    ring.AddNode(i);
  }
  std::map<int, int> load;
  for (int k = 0; k < kKeys; ++k) {
    for (int id : ring.Replicas(Key(k), kRf)) {
      ++load[id];
    }
  }
  ASSERT_EQ(load.size(), static_cast<size_t>(kNodes));  // nobody starves
  const double mean = static_cast<double>(kKeys) * kRf / kNodes;
  for (const auto& [id, count] : load) {
    // 16 mixed vnodes bound the spread at roughly 1.7x/0.4x of the mean for
    // this deterministic key population (measured ~1.31x / ~0.78x; headroom
    // left for future vnode-count or hash-order tweaks).
    EXPECT_LT(count, mean * 1.7) << "node " << id << " overloaded";
    EXPECT_GT(count, mean * 0.4) << "node " << id << " starved";
  }
}

TEST(RingTest, MoveTokenReassignsExactlyOneRange) {
  HashRing ring(16);
  for (int i = 0; i < 4; ++i) {
    ring.AddNode(i);
  }
  const std::vector<uint64_t> donor_tokens = ring.TokensOf(0);
  ASSERT_FALSE(donor_tokens.empty());
  const uint64_t token = donor_tokens.front();

  EXPECT_FALSE(ring.MoveToken(token, 9)) << "move to a non-member must fail";
  EXPECT_FALSE(ring.MoveToken(token ^ 1, 1)) << "move of an unplanted token must fail";
  EXPECT_FALSE(ring.MoveToken(ring.TokensOf(1).front(), 1)) << "self-move must fail";

  std::map<std::string, int> before;
  for (int k = 0; k < 4000; ++k) {
    before[Key(k)] = ring.PrimaryOwner(Key(k));
  }
  ASSERT_TRUE(ring.MoveToken(token, 1));
  EXPECT_EQ(ring.TokensOf(0).size(), donor_tokens.size() - 1);
  const auto dump = ring.TokenDump();
  const bool moved_is_ring_min = dump.front().first == token;
  const uint64_t ring_max = dump.back().first;
  for (const auto& [key, owner] : before) {
    const int now = ring.PrimaryOwner(key);
    if (now != owner) {
      // Only the range ending at the moved token changes hands, 0 -> 1.
      EXPECT_EQ(owner, 0);
      EXPECT_EQ(now, 1);
      const uint64_t t = HashRing::Token(key);
      // The moved range is (prev, token]; when token is the ring minimum it
      // also covers the wraparound tail above the largest token.
      EXPECT_TRUE(t <= token || (moved_is_ring_min && t > ring_max));
    }
  }
}

TEST(RingTest, FullyRebalancedAwayMemberLeavesReplicaWalk) {
  HashRing ring(4);
  ring.AddNode(0);
  ring.AddNode(1);
  ring.AddNode(2);
  // Drain node 2 of every token; it stays a member but owns nothing.
  for (uint64_t token : ring.TokensOf(2)) {
    ASSERT_TRUE(ring.MoveToken(token, 0));
  }
  EXPECT_TRUE(ring.Contains(2));
  EXPECT_TRUE(ring.TokensOf(2).empty());
  for (int k = 0; k < 500; ++k) {
    const std::vector<int> replicas = ring.Replicas(Key(k), 3);
    // want caps at the token-owning node count; the walk must terminate and
    // never surface the drained member.
    ASSERT_EQ(replicas.size(), 2u);
    for (int id : replicas) {
      EXPECT_NE(id, 2);
    }
  }
}

// --- Pinned placement (regression guard for satellite #4) --------------------
//
// These constants freeze the ring's hash function, vnode labels, and walk
// order. Rebalancing features must move placement only through explicit
// MoveToken/membership calls — if this test breaks, client data placed by an
// older build is no longer where a newer build looks for it.

TEST(RingTest, TokenFunctionIsPinned) {
  EXPECT_EQ(HashRing::Token("alpha"), 0xf7cb6dc3c90ba7a5ULL);
  EXPECT_EQ(HashRing::Token("beta"), 0x20bd57f724dc18b2ULL);
  EXPECT_EQ(HashRing::Token("gamma"), 0xdb8d36cccece99b5ULL);
  EXPECT_EQ(HashRing::Token("delta"), 0x5a427208817f1da8ULL);
  EXPECT_EQ(HashRing::Token("user-42"), 0xa39532c7ab051e8dULL);
  EXPECT_EQ(HashRing::Token("pack-0007"), 0x4d4ac87af5e3c585ULL);
}

TEST(RingTest, PlannedTokensArePinnedAndStableAcrossRuns) {
  const std::vector<uint64_t> plan = HashRing::PlanTokens(0, 16);
  ASSERT_EQ(plan.size(), 16u);
  EXPECT_EQ(plan.front(), 0xd8ceb2e559ce5a34ULL);
  EXPECT_EQ(plan.back(), 0x0c9cee18afb33698ULL);
  // The plan is a pure function: re-deriving after a "restart" matches, which
  // is what makes persisted bootstrap plans crash-resumable.
  EXPECT_EQ(plan, HashRing::PlanTokens(0, 16));
  // AddNode is exactly AddNodeWithTokens(PlanTokens(...)).
  HashRing a(16);
  a.AddNode(0);
  HashRing b(16);
  b.AddNodeWithTokens(0, plan);
  EXPECT_EQ(a.TokenDump(), b.TokenDump());
}

TEST(RingTest, ReplicaSetsForKnownKeysArePinned) {
  HashRing ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.AddNode(i);
  }
  using V = std::vector<int>;
  EXPECT_EQ(ring.Replicas("alpha", 3), (V{4, 1, 2}));
  EXPECT_EQ(ring.Replicas("beta", 3), (V{0, 3, 1}));
  EXPECT_EQ(ring.Replicas("gamma", 3), (V{2, 1, 0}));
  EXPECT_EQ(ring.Replicas("delta", 3), (V{0, 4, 3}));
  EXPECT_EQ(ring.Replicas("user-42", 3), (V{1, 3, 0}));
  EXPECT_EQ(ring.Replicas("pack-0007", 3), (V{2, 0, 4}));
}

}  // namespace
}  // namespace minicrypt
