#include "src/kvstore/cluster.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/coding.h"
#include "src/kvstore/ring.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_(MakeOptions()) { EXPECT_TRUE(cluster_.CreateTable("t").ok()); }

  static ClusterOptions MakeOptions() {
    ClusterOptions o = ClusterOptions::ForTest();
    o.node_count = 3;
    o.replication_factor = 3;
    return o;
  }

  Cluster cluster_;
};

TEST_F(ClusterTest, WriteThenReadBack) {
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(1), ValueRow("hello")).ok());
  auto row = cluster_.Read("t", "p1", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "hello");
}

TEST_F(ClusterTest, ReadMissingIsNotFound) {
  EXPECT_TRUE(cluster_.Read("t", "p1", EncodeKey64(42)).status().IsNotFound());
}

TEST_F(ClusterTest, UnknownTableRejected) {
  EXPECT_EQ(cluster_.Write("nope", "p", EncodeKey64(1), ValueRow("x")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClusterTest, LastWriteWins) {
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(1), ValueRow("first")).ok());
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(1), ValueRow("second")).ok());
  auto row = cluster_.Read("t", "p1", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "second");
}

TEST_F(ClusterTest, InsertIfNotExistsSemantics) {
  EXPECT_TRUE(
      cluster_.WriteIf("t", "p1", EncodeKey64(7), ValueRow("a"), LwtCondition::NotExists())
          .ok());
  Row current;
  const Status second = cluster_.WriteIf("t", "p1", EncodeKey64(7), ValueRow("b"),
                                         LwtCondition::NotExists(), &current);
  EXPECT_TRUE(second.IsConditionFailed());
  EXPECT_EQ(current.cells.at("v").value, "a");
  auto row = cluster_.Read("t", "p1", EncodeKey64(7));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "a");
}

TEST_F(ClusterTest, UpdateIfCellEqualsSemantics) {
  Row initial;
  initial.cells["v"] = Cell{"val", 0, false};
  initial.cells["h"] = Cell{"hash1", 0, false};
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(9), initial).ok());

  Row update;
  update.cells["v"] = Cell{"val2", 0, false};
  update.cells["h"] = Cell{"hash2", 0, false};
  EXPECT_TRUE(cluster_
                  .WriteIf("t", "p1", EncodeKey64(9), update,
                           LwtCondition::CellEquals("h", "hash1"))
                  .ok());
  // Stale token now fails.
  EXPECT_TRUE(cluster_
                  .WriteIf("t", "p1", EncodeKey64(9), update,
                           LwtCondition::CellEquals("h", "hash1"))
                  .IsConditionFailed());
  // Fresh token succeeds.
  Row update3;
  update3.cells["v"] = Cell{"val3", 0, false};
  update3.cells["h"] = Cell{"hash3", 0, false};
  EXPECT_TRUE(cluster_
                  .WriteIf("t", "p1", EncodeKey64(9), update3,
                           LwtCondition::CellEquals("h", "hash2"))
                  .ok());
}

TEST_F(ClusterTest, UpdateIfOnMissingRowFails) {
  EXPECT_TRUE(cluster_
                  .WriteIf("t", "p1", EncodeKey64(404), ValueRow("x"),
                           LwtCondition::CellEquals("h", "whatever"))
                  .IsConditionFailed());
  EXPECT_TRUE(cluster_
                  .WriteIf("t", "p1", EncodeKey64(404), ValueRow("x"),
                           LwtCondition::RowExists())
                  .IsConditionFailed());
}

TEST_F(ClusterTest, ConcurrentLwtExactlyOneWinner) {
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Status s = cluster_.WriteIf("t", "race", EncodeKey64(1),
                                        ValueRow("winner-" + std::to_string(t)),
                                        LwtCondition::NotExists());
      if (s.ok()) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(cluster_.stats().lwt_failures.load(), static_cast<uint64_t>(kThreads - 1));
}

TEST_F(ClusterTest, ReadFloorMatchesSemantics) {
  for (uint64_t k : {100, 200, 300}) {
    ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(k), ValueRow(std::to_string(k))).ok());
  }
  auto f = cluster_.ReadFloor("t", "p1", EncodeKey64(250));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*DecodeKey64(f->first), 200u);
  EXPECT_TRUE(cluster_.ReadFloor("t", "p1", EncodeKey64(50)).status().IsNotFound());
}

TEST_F(ClusterTest, ReadRangeInclusiveAndSorted) {
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(k * 5), ValueRow("x")).ok());
  }
  auto rows = cluster_.ReadRange("t", "p1", EncodeKey64(10), EncodeKey64(50));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 9u);  // 10,15,...,50
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LT((*rows)[i - 1].first, (*rows)[i].first);
  }
}

TEST_F(ClusterTest, DeleteRowHidesCells) {
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(5), ValueRow("x")).ok());
  ASSERT_TRUE(cluster_.DeleteRow("t", "p1", EncodeKey64(5), {"v"}).ok());
  EXPECT_TRUE(cluster_.Read("t", "p1", EncodeKey64(5)).status().IsNotFound());
}

TEST_F(ClusterTest, DeletePartitionDropsEverything) {
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster_.Write("t", "victim", EncodeKey64(k), ValueRow("x")).ok());
  }
  ASSERT_TRUE(cluster_.Write("t", "survivor", EncodeKey64(1), ValueRow("y")).ok());
  ASSERT_TRUE(cluster_.DeletePartition("t", "victim").ok());
  auto rows = cluster_.ReadRange("t", "victim", EncodeKey64(0), EncodeKey64(~0ULL));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_TRUE(cluster_.Read("t", "survivor", EncodeKey64(1)).ok());
}

TEST_F(ClusterTest, QuorumReadSeesNewestReplicaState) {
  ClusterOptions o = MakeOptions();
  o.consistency = Consistency::kQuorum;
  Cluster quorum(o);
  ASSERT_TRUE(quorum.CreateTable("t").ok());
  ASSERT_TRUE(quorum.Write("t", "p", EncodeKey64(1), ValueRow("q")).ok());
  auto row = quorum.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "q");
}

TEST_F(ClusterTest, StatsCountersAdvance) {
  ASSERT_TRUE(cluster_.Write("t", "p1", EncodeKey64(1), ValueRow("x")).ok());
  (void)cluster_.Read("t", "p1", EncodeKey64(1));
  EXPECT_GE(cluster_.stats().writes.load(), 1u);
  EXPECT_GE(cluster_.stats().reads.load(), 1u);
  EXPECT_GT(cluster_.stats().bytes_to_client.load(), 0u);
  cluster_.ResetPerfCounters();
  EXPECT_EQ(cluster_.stats().reads.load(), 0u);
}

TEST(HashRing, ReplicasAreDistinctAndStable) {
  HashRing ring(16);
  ring.AddNode(0);
  ring.AddNode(1);
  ring.AddNode(2);
  const auto r1 = ring.Replicas("partition-a", 3);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_NE(r1[0], r1[1]);
  EXPECT_NE(r1[1], r1[2]);
  EXPECT_NE(r1[0], r1[2]);
  EXPECT_EQ(r1, ring.Replicas("partition-a", 3));  // deterministic
}

TEST(HashRing, RfLargerThanNodesReturnsAll) {
  HashRing ring(8);
  ring.AddNode(0);
  ring.AddNode(1);
  EXPECT_EQ(ring.Replicas("x", 5).size(), 2u);
}

TEST(HashRing, LoadSpreadsAcrossNodes) {
  HashRing ring(32);
  for (int n = 0; n < 4; ++n) {
    ring.AddNode(n);
  }
  std::array<int, 4> counts{};
  for (int i = 0; i < 4000; ++i) {
    counts[static_cast<size_t>(ring.Replicas("part" + std::to_string(i), 1)[0])]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 400);  // each node owns a sizeable share
  }
}

TEST(HashRing, RemoveNodeReassigns) {
  HashRing ring(16);
  ring.AddNode(0);
  ring.AddNode(1);
  ring.RemoveNode(0);
  for (int i = 0; i < 100; ++i) {
    const auto replicas = ring.Replicas("k" + std::to_string(i), 1);
    ASSERT_EQ(replicas.size(), 1u);
    EXPECT_EQ(replicas[0], 1);
  }
}

}  // namespace
}  // namespace minicrypt
