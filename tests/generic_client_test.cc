#include "src/core/generic_client.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/crypto/ope.h"

namespace minicrypt {
namespace {

class GenericClientTest : public ::testing::Test {
 protected:
  GenericClientTest()
      : cluster_(ClusterOptions::ForTest()), key_(SymmetricKey::FromSeed("tenant")) {
    options_.pack_rows = 4;          // small packs so splits happen fast
    options_.hash_partitions = 2;
    client_ = std::make_unique<GenericClient>(&cluster_, options_, key_);
    EXPECT_TRUE(client_->CreateTable().ok());
  }

  Cluster cluster_;
  SymmetricKey key_;
  MiniCryptOptions options_;
  std::unique_ptr<GenericClient> client_;
};

TEST_F(GenericClientTest, PutGetRoundTrip) {
  ASSERT_TRUE(client_->Put(1, "one").ok());
  ASSERT_TRUE(client_->Put(2, "two").ok());
  auto v = client_->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "one");
  v = client_->Get(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "two");
}

TEST_F(GenericClientTest, GetMissingKeyIsNotFound) {
  ASSERT_TRUE(client_->Put(10, "x").ok());
  EXPECT_TRUE(client_->Get(11).status().IsNotFound());
  EXPECT_TRUE(client_->Get(9).status().IsNotFound());
}

TEST_F(GenericClientTest, OverwriteUpdatesValue) {
  ASSERT_TRUE(client_->Put(5, "v1").ok());
  ASSERT_TRUE(client_->Put(5, "v2").ok());
  auto v = client_->Get(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");
}

TEST_F(GenericClientTest, DeleteRemovesKeyButPackRemains) {
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(client_->Put(k, "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(client_->Delete(2).ok());
  EXPECT_TRUE(client_->Get(2).status().IsNotFound());
  EXPECT_TRUE(client_->Get(1).ok());
  EXPECT_TRUE(client_->Get(3).ok());
  // Deleting a key whose pack does not exist is a no-op.
  EXPECT_TRUE(client_->Delete(999999).ok());
}

TEST_F(GenericClientTest, DeleteEntirePackLeavesEmptyPackReadable) {
  // Paper §5.3: packs are never removed, even when empty.
  for (uint64_t k = 100; k < 104; ++k) {
    ASSERT_TRUE(client_->Put(k, "x").ok());
  }
  for (uint64_t k = 100; k < 104; ++k) {
    ASSERT_TRUE(client_->Delete(k).ok());
  }
  for (uint64_t k = 100; k < 104; ++k) {
    EXPECT_TRUE(client_->Get(k).status().IsNotFound());
  }
  // New inserts into the (empty but present) pack work.
  ASSERT_TRUE(client_->Put(102, "back").ok());
  auto v = client_->Get(102);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "back");
}

TEST_F(GenericClientTest, ManyInsertsTriggerSplitsAndStayReadable) {
  const uint64_t n = 500;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(client_->Put(k * 7 % n, "val-" + std::to_string(k * 7 % n)).ok());
  }
  EXPECT_GT(client_->stats().splits.load(), 0u);
  for (uint64_t k = 0; k < n; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "val-" + std::to_string(k));
  }
}

TEST_F(GenericClientTest, BulkLoadThenReadEverything) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 300; ++k) {
    rows.emplace_back(k, "bulk-" + std::to_string(k));
  }
  ASSERT_TRUE(client_->BulkLoad(rows).ok());
  for (uint64_t k = 0; k < 300; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "bulk-" + std::to_string(k));
  }
}

TEST_F(GenericClientTest, RangeQueryInclusiveBounds) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 200; ++k) {
    rows.emplace_back(k, std::to_string(k));
  }
  ASSERT_TRUE(client_->BulkLoad(rows).ok());
  auto out = client_->GetRange(50, 120);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 71u);
  EXPECT_EQ(out->front().first, 50u);
  EXPECT_EQ(out->back().first, 120u);
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i].first, (*out)[i - 1].first + 1);  // sorted, contiguous
  }
}

TEST_F(GenericClientTest, RangeQueryPartialOverlapAndEmpty) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 100; k < 150; ++k) {
    rows.emplace_back(k, "x");
  }
  ASSERT_TRUE(client_->BulkLoad(rows).ok());
  auto out = client_->GetRange(0, 105);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);  // 100..105
  out = client_->GetRange(500, 600);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_FALSE(client_->GetRange(10, 5).ok());
}

TEST_F(GenericClientTest, RangeAfterMutationsSeesLatest) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 50; ++k) {
    rows.emplace_back(k, "old");
  }
  ASSERT_TRUE(client_->BulkLoad(rows).ok());
  ASSERT_TRUE(client_->Put(25, "new").ok());
  ASSERT_TRUE(client_->Delete(26).ok());
  auto out = client_->GetRange(20, 30);
  ASSERT_TRUE(out.ok());
  std::map<uint64_t, std::string> got(out->begin(), out->end());
  EXPECT_EQ(got.at(25), "new");
  EXPECT_EQ(got.count(26), 0u);
  EXPECT_EQ(got.size(), 10u);
}

// The paper's central write-safety property (§5.1): concurrent clients
// updating different keys in the same pack must not overwrite each other.
TEST_F(GenericClientTest, ConcurrentPutsToSamePackNoLostUpdates) {
  // Preload one pack's worth of keys so every writer lands in one pack.
  options_.pack_rows = 64;
  options_.hash_partitions = 1;
  GenericClient loader(&cluster_, options_, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 16; ++k) {
    rows.emplace_back(k, "initial");
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient writer(&cluster_, options_, key_);
      ASSERT_TRUE(writer.Put(static_cast<uint64_t>(t), "from-" + std::to_string(t)).ok());
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    auto v = loader.Get(static_cast<uint64_t>(t));
    ASSERT_TRUE(v.ok()) << t;
    EXPECT_EQ(*v, "from-" + std::to_string(t)) << "lost update for key " << t;
  }
  for (uint64_t k = kThreads; k < 16; ++k) {
    auto v = loader.Get(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "initial");
  }
}

TEST_F(GenericClientTest, ConcurrentMixedMutationsConverge) {
  options_.pack_rows = 8;
  options_.hash_partitions = 2;
  GenericClient loader(&cluster_, options_, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 64; ++k) {
    rows.emplace_back(k, "init");
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster_, options_, key_);
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int op = 0; op < 60; ++op) {
        const uint64_t key = rng.Uniform(96);  // includes fresh inserts
        if (rng.Bernoulli(0.8)) {
          ASSERT_TRUE(worker.Put(key, "t" + std::to_string(t)).ok());
        } else {
          ASSERT_TRUE(worker.Delete(key).ok());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Convergence check: every key is either readable or NotFound, and reads
  // are self-consistent across two passes (no torn packs).
  for (uint64_t k = 0; k < 96; ++k) {
    auto first = loader.Get(k);
    auto second = loader.Get(k);
    EXPECT_EQ(first.ok(), second.ok()) << k;
    if (first.ok()) {
      EXPECT_EQ(*first, *second);
    } else {
      EXPECT_TRUE(first.status().IsNotFound());
    }
  }
}

// Paper §5.2: a client dying between the right-insert and the left-update
// leaves the store fully readable, and the next writer completes the split.
TEST_F(GenericClientTest, ClientCrashMidSplitIsRecoverable) {
  options_.pack_rows = 4;
  options_.hash_partitions = 1;
  GenericClient writer(&cluster_, options_, key_);
  // Fill one pack past max_keys (6) without triggering a split: bulk load
  // puts everything in one pack when pack_rows is raised for the loader.
  MiniCryptOptions big = options_;
  big.pack_rows = 16;
  GenericClient loader(&cluster_, big, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 8; ++k) {
    rows.emplace_back(k, "v" + std::to_string(k));
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  // The next put sees size 8 > max_keys 6 and starts a split that "crashes"
  // after inserting the right half.
  writer.set_split_fail_point(GenericClient::SplitFailPoint::kAfterRightInsert);
  EXPECT_TRUE(writer.Put(3, "during-crash").IsAborted());
  writer.set_split_fail_point(GenericClient::SplitFailPoint::kNone);

  // Every key is still readable (right-half keys now come from the new pack;
  // left-half keys from the stale original).
  for (uint64_t k = 0; k < 8; ++k) {
    auto v = writer.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k << " lost after crashed split";
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  // A healthy writer completes the split and the update.
  ASSERT_TRUE(writer.Put(3, "after-recovery").ok());
  auto v = writer.Get(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "after-recovery");
  for (uint64_t k = 0; k < 8; ++k) {
    if (k != 3) {
      auto other = writer.Get(k);
      ASSERT_TRUE(other.ok());
      EXPECT_EQ(*other, "v" + std::to_string(k));
    }
  }
}

// While a crashed split leaves the right half duplicated in the original
// pack, range queries must route every key to its authoritative pack (the
// one a floor query would pick) — otherwise they surface stale values and
// resurrect deleted keys from the shadowed copy.
TEST_F(GenericClientTest, RangeQueryIgnoresStaleShadowsAfterCrashedSplit) {
  options_.pack_rows = 4;
  options_.hash_partitions = 1;
  GenericClient writer(&cluster_, options_, key_);
  MiniCryptOptions big = options_;
  big.pack_rows = 16;
  GenericClient loader(&cluster_, big, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 8; ++k) {
    rows.emplace_back(k, "v" + std::to_string(k));
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  writer.set_split_fail_point(GenericClient::SplitFailPoint::kAfterRightInsert);
  EXPECT_TRUE(writer.Put(3, "during-crash").IsAborted());
  writer.set_split_fail_point(GenericClient::SplitFailPoint::kNone);

  // Mutate only right-half keys so the stale left pack stays untouched:
  // update one key and delete another. Both route to the new right pack,
  // leaving outdated copies shadowed in the original.
  ASSERT_TRUE(writer.Put(6, "fresh").ok());
  ASSERT_TRUE(writer.Delete(7).ok());

  auto range = writer.GetRange(0, 7);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range->size(), 7u) << "range leaked shadowed duplicates";
  for (uint64_t k = 0; k < 7; ++k) {
    EXPECT_EQ((*range)[k].first, k);
    EXPECT_EQ((*range)[k].second, k == 6 ? "fresh" : "v" + std::to_string(k));
  }
}

TEST_F(GenericClientTest, ConcurrentSplittersProduceOneConsistentOutcome) {
  options_.pack_rows = 4;
  options_.hash_partitions = 1;
  MiniCryptOptions big = options_;
  big.pack_rows = 32;
  GenericClient loader(&cluster_, big, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 12; ++k) {
    rows.emplace_back(k, "v");
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  // Several writers race; each first sees the oversized pack and splits.
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster_, options_, key_);
      ASSERT_TRUE(worker.Put(static_cast<uint64_t>(t), "w" + std::to_string(t)).ok());
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (uint64_t k = 0; k < 12; ++k) {
    auto v = loader.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k < 6 ? "w" + std::to_string(k) : "v");
  }
}

TEST_F(GenericClientTest, EncryptedPackIdsMode) {
  MiniCryptOptions enc = options_;
  enc.table = "enc_table";
  enc.encrypt_pack_ids = true;
  enc.packid_bucket_width = 10;
  GenericClient client(&cluster_, enc, key_);
  ASSERT_TRUE(client.CreateTable().ok());

  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 100; ++k) {
    rows.emplace_back(k, "e" + std::to_string(k));
  }
  ASSERT_TRUE(client.BulkLoad(rows).ok());
  for (uint64_t k = 0; k < 100; ++k) {
    auto v = client.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "e" + std::to_string(k));
  }
  // Writes (including fresh keys) work through the PRF ids.
  ASSERT_TRUE(client.Put(42, "updated").ok());
  ASSERT_TRUE(client.Put(250, "fresh-bucket").ok());
  EXPECT_EQ(*client.Get(42), "updated");
  EXPECT_EQ(*client.Get(250), "fresh-bucket");
  // Range queries are refused in this mode (paper §2.5).
  EXPECT_FALSE(client.GetRange(0, 10).ok());
  // Stored clustering keys must not reveal key order: check that the stored
  // ids for adjacent buckets are not byte-adjacent (PRF output).
  auto r1 = cluster_.ReadRange("enc_table", PartitionLabel(0), "", std::string(64, '\xff'));
  ASSERT_TRUE(r1.ok());
  for (const auto& [id, row] : *r1) {
    EXPECT_EQ(id.size(), kSha256Bytes);  // PRF images, not 8-byte keys
  }
}

TEST_F(GenericClientTest, OpePackIdsModeSupportsEverythingIncludingRanges) {
  MiniCryptOptions ope = options_;
  ope.table = "ope_table";
  ope.ope_pack_ids = true;
  ope.pack_rows = 4;
  GenericClient client(&cluster_, ope, key_);
  ASSERT_TRUE(client.CreateTable().ok());

  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 120; ++k) {
    rows.emplace_back(k, "o" + std::to_string(k));
  }
  ASSERT_TRUE(client.BulkLoad(rows).ok());
  for (uint64_t k = 0; k < 120; k += 7) {
    auto v = client.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "o" + std::to_string(k));
  }
  // Mutations, including inserts that trigger splits, keep working.
  for (uint64_t k = 200; k < 230; ++k) {
    ASSERT_TRUE(client.Put(k, "new" + std::to_string(k)).ok());
  }
  EXPECT_EQ(*client.Get(215), "new215");
  ASSERT_TRUE(client.Delete(210).ok());
  EXPECT_TRUE(client.Get(210).status().IsNotFound());

  // Range queries work on OPE images (the §2.5 OPE trade-off).
  auto range = client.GetRange(50, 69);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 20u);
  EXPECT_EQ(range->front().first, 50u);
  EXPECT_EQ(range->back().first, 69u);

  // Stored packIDs are 12-byte OPE images, not plaintext keys.
  auto stored = cluster_.ReadRange("ope_table", PartitionLabel(0), "",
                                   std::string(16, '\xff'));
  ASSERT_TRUE(stored.ok());
  ASSERT_FALSE(stored->empty());
  for (const auto& [id, row] : *stored) {
    EXPECT_EQ(id.size(), kOpeCiphertextBytes);
  }
}

TEST_F(GenericClientTest, MultiGetMatchesSequentialGetsAcrossPacks) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 300; ++k) {
    rows.emplace_back(k, "m" + std::to_string(k));
  }
  ASSERT_TRUE(client_->BulkLoad(rows).ok());  // pack_rows=4: many packs

  // A batch that spans pack (and partition) boundaries in arbitrary order.
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 300; k += 13) {
    keys.push_back(k);
  }
  keys.push_back(299);
  keys.push_back(0);
  auto out = client_->MultiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto expect = client_->Get(keys[i]);
    ASSERT_TRUE(out[i].ok()) << "key " << keys[i];
    EXPECT_EQ(*out[i], *expect) << "key " << keys[i];
  }
  EXPECT_EQ(client_->stats().multigets.load(), 1u);
}

TEST_F(GenericClientTest, MultiGetDuplicateAndMissingKeys) {
  ASSERT_TRUE(client_->Put(100, "x").ok());
  ASSERT_TRUE(client_->Put(200, "y").ok());

  // Empty batch: empty result, nothing fetched.
  EXPECT_TRUE(client_->MultiGet({}).empty());

  // Duplicates share one lookup but each slot gets its own answer; keys
  // below the smallest pack and absent from their pack are both NotFound,
  // exactly like sequential Gets.
  std::vector<uint64_t> keys = {100, 5, 100, 150, 200, 200, 99999};
  auto out = client_->MultiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto expect = client_->Get(keys[i]);
    ASSERT_EQ(out[i].ok(), expect.ok()) << "key " << keys[i];
    if (expect.ok()) {
      EXPECT_EQ(*out[i], *expect) << "key " << keys[i];
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound()) << "key " << keys[i];
    }
  }
}

// A crashed split leaves the right half duplicated in the original pack;
// MultiGet's descending floor descent must route every key to the pack a
// sequential Get would pick, never the stale shadow.
TEST_F(GenericClientTest, MultiGetAfterCrashedSplitMatchesSequentialGets) {
  options_.pack_rows = 4;
  options_.hash_partitions = 1;
  GenericClient writer(&cluster_, options_, key_);
  MiniCryptOptions big = options_;
  big.pack_rows = 16;
  GenericClient loader(&cluster_, big, key_);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 8; ++k) {
    rows.emplace_back(k, "v" + std::to_string(k));
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());

  writer.set_split_fail_point(GenericClient::SplitFailPoint::kAfterRightInsert);
  EXPECT_TRUE(writer.Put(3, "during-crash").IsAborted());
  writer.set_split_fail_point(GenericClient::SplitFailPoint::kNone);
  // Mutations routed to the new right pack leave shadowed stale copies in
  // the original; key 9 has never existed.
  ASSERT_TRUE(writer.Put(6, "fresh").ok());
  ASSERT_TRUE(writer.Delete(7).ok());

  std::vector<uint64_t> keys = {0, 1, 2, 3, 4, 5, 6, 7, 9};
  auto out = writer.MultiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto expect = writer.Get(keys[i]);
    ASSERT_EQ(out[i].ok(), expect.ok()) << "key " << keys[i];
    if (expect.ok()) {
      EXPECT_EQ(*out[i], *expect) << "key " << keys[i];
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound()) << "key " << keys[i];
    }
  }
}

TEST_F(GenericClientTest, MultiGetEncryptedPackIdsMode) {
  MiniCryptOptions enc = options_;
  enc.table = "enc_mget";
  enc.encrypt_pack_ids = true;
  enc.packid_bucket_width = 10;
  GenericClient client(&cluster_, enc, key_);
  ASSERT_TRUE(client.CreateTable().ok());
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 60; ++k) {
    rows.emplace_back(k, "e" + std::to_string(k));
  }
  ASSERT_TRUE(client.BulkLoad(rows).ok());

  // One batch over several buckets, with duplicates and a key from an empty
  // bucket (bucket 10 was never written).
  std::vector<uint64_t> keys = {3, 17, 17, 42, 59, 105};
  auto out = client.MultiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto expect = client.Get(keys[i]);
    ASSERT_EQ(out[i].ok(), expect.ok()) << "key " << keys[i];
    if (expect.ok()) {
      EXPECT_EQ(*out[i], *expect) << "key " << keys[i];
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound()) << "key " << keys[i];
    }
  }
}

// Pins the stats contract: CreateTable starts a fresh counter epoch, and
// put_retries counts every scheduled retry under one convention whether the
// trigger was contention, a split, or a transient Unavailable.
TEST_F(GenericClientTest, StatsResetOnCreateTableAndUnifiedPutRetries) {
  ASSERT_TRUE(client_->Put(1, "a").ok());
  ASSERT_TRUE(client_->Put(2, "b").ok());
  (void)client_->Get(1);
  (void)client_->MultiGet({1, 2});
  EXPECT_GT(client_->stats().puts.load(), 0u);
  EXPECT_GT(client_->stats().gets.load(), 0u);
  EXPECT_GT(client_->stats().multigets.load(), 0u);

  // Re-creating the table wipes the data *and* the counters.
  ASSERT_TRUE(client_->CreateTable().ok());
  EXPECT_EQ(client_->stats().puts.load(), 0u);
  EXPECT_EQ(client_->stats().gets.load(), 0u);
  EXPECT_EQ(client_->stats().multigets.load(), 0u);
  EXPECT_EQ(client_->stats().put_retries.load(), 0u);
  EXPECT_EQ(client_->stats().splits.load(), 0u);

  // Force a split-then-retry: an oversized pack makes the next Put split
  // first and go around the mutate loop again. That scheduled retry must
  // land in put_retries (the same counter contention retries use).
  options_.table = "stats_retry";
  options_.pack_rows = 4;
  options_.hash_partitions = 1;
  MiniCryptOptions big = options_;
  big.pack_rows = 16;
  GenericClient loader(&cluster_, big, key_);
  ASSERT_TRUE(loader.CreateTable().ok());
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 8; ++k) {
    rows.emplace_back(k, "v" + std::to_string(k));
  }
  ASSERT_TRUE(loader.BulkLoad(rows).ok());
  GenericClient writer(&cluster_, options_, key_);
  ASSERT_TRUE(writer.Put(3, "post-split").ok());
  EXPECT_GT(writer.stats().splits.load(), 0u);
  EXPECT_GE(writer.stats().put_retries.load(), 1u);
}

TEST_F(GenericClientTest, OptionsValidation) {
  MiniCryptOptions bad;
  bad.pack_rows = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = MiniCryptOptions();
  bad.codec = "not-a-codec";
  EXPECT_FALSE(bad.Validate().ok());
  bad = MiniCryptOptions();
  bad.epoch_micros = 1;
  EXPECT_FALSE(bad.Validate().ok());
  MiniCryptOptions good;
  EXPECT_TRUE(good.Validate().ok());
  EXPECT_EQ(good.EffectiveMaxKeys(), 75u);  // ceil(1.5 * 50)
}

}  // namespace
}  // namespace minicrypt
