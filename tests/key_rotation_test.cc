// Epoch-based online key rotation (docs/KEY_ROTATION.md): keyring epoch
// window + pins, envelope v2 routing and AAD splice rejection, and the
// crash-resumable RotateKeys state machine, including resume at every
// persist/reseal edge and rotation racing concurrent foreground writers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/coding.h"
#include "src/compress/compressor.h"
#include "src/core/generic_client.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/keyring.h"
#include "src/crypto/padding.h"
#include "src/kvstore/fault_injector.h"

namespace minicrypt {
namespace {

bool SameKey(const SymmetricKey& a, const SymmetricKey& b) {
  return a.size() == b.size() && std::memcmp(a.data(), b.data(), a.size()) == 0;
}

// Get that folds an error into the returned string, so EXPECT_EQ failures
// show the status instead of aborting the test early.
std::string GetValue(GenericClient* client, uint64_t key) {
  auto got = client->Get(key);
  return got.ok() ? *got : "<" + got.status().ToString() + ">";
}

// --- Keyring ------------------------------------------------------------------

TEST(Keyring, EpochZeroMatchesLegacySingleKeyDerivation) {
  const SymmetricKey master = SymmetricKey::FromSeed("tenant");
  Keyring ring(master);
  auto k0 = ring.KeyFor(0, "pack:mc_data");
  ASSERT_TRUE(k0.ok());
  // Pre-rotation envelopes were sealed under master.Derive(purpose); epoch 0
  // must reproduce that key byte-for-byte or legacy data stops opening.
  EXPECT_TRUE(SameKey(*k0, master.Derive("pack:mc_data")));
}

TEST(Keyring, EpochsDeriveIndependentKeys) {
  Keyring ring(SymmetricKey::FromSeed("tenant"));
  ring.AnnounceEpoch(2);
  auto k0 = ring.KeyFor(0, "pack:t");
  auto k1 = ring.KeyFor(1, "pack:t");
  auto k2 = ring.KeyFor(2, "pack:t");
  ASSERT_TRUE(k0.ok() && k1.ok() && k2.ok());
  EXPECT_FALSE(SameKey(*k0, *k1));
  EXPECT_FALSE(SameKey(*k1, *k2));
  EXPECT_FALSE(SameKey(*k0, *k2));
  // Purposes stay domain-separated within an epoch.
  auto other = ring.KeyFor(1, "pack:u");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(SameKey(*k1, *other));
}

TEST(Keyring, AnnounceIsForwardOnlyAndIdempotent) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  EXPECT_EQ(ring.current_epoch(), 0u);
  ring.AnnounceEpoch(3);
  EXPECT_EQ(ring.current_epoch(), 3u);
  ring.AnnounceEpoch(1);  // replayed resume: no-op
  ring.AnnounceEpoch(3);
  EXPECT_EQ(ring.current_epoch(), 3u);
}

TEST(Keyring, RetireBelowDropsOldEpochsWithTypedError) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  ring.AnnounceEpoch(2);
  ASSERT_TRUE(ring.KeyFor(0, "pack:t").ok());
  ASSERT_TRUE(ring.RetireBelow(2).ok());
  EXPECT_EQ(ring.retired_below(), 2u);
  auto gone = ring.KeyFor(0, "pack:t");
  ASSERT_FALSE(gone.ok());
  EXPECT_TRUE(gone.status().IsKeyUnavailable()) << gone.status().ToString();
  EXPECT_TRUE(ring.KeyFor(2, "pack:t").ok());
  // Lowering the floor is a silent no-op (replayed resume record).
  EXPECT_TRUE(ring.RetireBelow(1).ok());
  EXPECT_EQ(ring.retired_below(), 2u);
}

TEST(Keyring, RetiringTheSealingEpochIsRejected) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  ring.AnnounceEpoch(1);
  EXPECT_FALSE(ring.RetireBelow(2).ok());
}

TEST(Keyring, FutureEpochIsKeyUnavailable) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  auto future = ring.KeyFor(5, "pack:t");
  ASSERT_FALSE(future.ok());
  EXPECT_TRUE(future.status().IsKeyUnavailable());
}

TEST(Keyring, PinsHoldTheDrainBarrier) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  Keyring::Pin pin = ring.PinCurrent();
  EXPECT_EQ(pin.epoch(), 0u);
  ring.AnnounceEpoch(1);
  // An in-flight epoch-0 seal blocks draining below 1...
  EXPECT_FALSE(ring.WaitForDrainBelow(1, /*timeout_millis=*/5));
  // ...but not draining below its own epoch.
  EXPECT_TRUE(ring.WaitForDrainBelow(0, /*timeout_millis=*/5));
  Keyring::Pin moved = std::move(pin);  // the lease follows the move
  EXPECT_FALSE(ring.WaitForDrainBelow(1, /*timeout_millis=*/5));
  moved = Keyring::Pin();  // release
  EXPECT_TRUE(ring.WaitForDrainBelow(1, /*timeout_millis=*/5));
}

TEST(Keyring, DrainWakesABlockedWaiter) {
  Keyring ring(SymmetricKey::FromSeed("t"));
  auto pin = std::make_unique<Keyring::Pin>(ring.PinCurrent());
  ring.AnnounceEpoch(1);
  std::atomic<bool> drained{false};
  std::thread waiter([&] {
    drained.store(ring.WaitForDrainBelow(1, /*timeout_millis=*/60'000));
  });
  pin.reset();  // releasing the last old-epoch pin must wake the waiter
  waiter.join();
  EXPECT_TRUE(drained.load());
}

// --- Envelope v2 + AAD --------------------------------------------------------

Pack MakePack() {
  Pack pack;
  for (uint64_t k = 0; k < 8; ++k) {
    pack.Upsert(EncodeKey64(k), "value-" + std::to_string(k));
  }
  return pack;
}

TEST(EnvelopeV2, SealStampsTheCurrentEpoch) {
  MiniCryptOptions options;
  auto ring = Keyring::FromMaster(SymmetricKey::FromSeed("t"));
  const PackCrypter crypter(options, ring);
  auto sealed = crypter.Seal(MakePack(), "pid");
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->epoch, 0u);
  EXPECT_EQ(PackCrypter::EnvelopeEpoch(sealed->envelope), 0u);
  ring->AnnounceEpoch(7);
  auto sealed7 = crypter.Seal(MakePack(), "pid");
  ASSERT_TRUE(sealed7.ok());
  EXPECT_EQ(PackCrypter::EnvelopeEpoch(sealed7->envelope), 7u);
  auto opened = crypter.Open(sealed7->envelope, "pid");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->size(), 8u);
}

TEST(EnvelopeV2, LegacyV1EnvelopeStillOpensAsEpochZero) {
  MiniCryptOptions options;
  const SymmetricKey master = SymmetricKey::FromSeed("tenant");
  // A pre-keyring envelope: serialize -> compress -> pad -> GCM under
  // master.Derive("pack:<table>"), no header, no AAD.
  const Pack pack = MakePack();
  const Compressor* codec = FindCompressor(options.codec);
  ASSERT_NE(codec, nullptr);
  auto compressed = codec->Compress(pack.Serialize());
  ASSERT_TRUE(compressed.ok());
  auto legacy = AesGcmEncrypt(master.Derive("pack:" + options.table),
                              options.padding.Pad(*compressed));
  ASSERT_TRUE(legacy.ok());

  EXPECT_EQ(PackCrypter::EnvelopeEpoch(*legacy), 0u);
  const PackCrypter crypter(options, master);
  auto opened = crypter.Open(*legacy, "any-context");  // v1 predates AAD binding
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->Find(EncodeKey64(3)).value_or(""), "value-3");
}

TEST(EnvelopeV2, RetiredEpochFailsTypedNotAsMacFailure) {
  MiniCryptOptions options;
  auto ring = Keyring::FromMaster(SymmetricKey::FromSeed("t"));
  const PackCrypter crypter(options, ring);
  auto old = crypter.Seal(MakePack(), "pid");
  ASSERT_TRUE(old.ok());
  old->pin = Keyring::Pin();  // the write "landed"; release the lease
  ring->AnnounceEpoch(1);
  ASSERT_TRUE(ring->RetireBelow(1).ok());
  auto opened = crypter.Open(old->envelope, "pid");
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsKeyUnavailable()) << opened.status().ToString();
}

TEST(EnvelopeV2, UnknownFutureEpochFailsTyped) {
  MiniCryptOptions options;
  auto sealer_ring = Keyring::FromMaster(SymmetricKey::FromSeed("t"));
  sealer_ring->AnnounceEpoch(4);
  const PackCrypter sealer(options, sealer_ring);
  auto sealed = sealer.Seal(MakePack(), "pid");
  ASSERT_TRUE(sealed.ok());
  // A reader that has not seen the announcement cannot serve epoch 4.
  const PackCrypter reader(options, SymmetricKey::FromSeed("t"));
  auto opened = reader.Open(sealed->envelope, "pid");
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsKeyUnavailable()) << opened.status().ToString();
}

TEST(EnvelopeV2, AadRejectsCrossTableCrossPackIdAndCrossEpochSplices) {
  MiniCryptOptions options;
  const SymmetricKey master = SymmetricKey::FromSeed("tenant");
  const PackCrypter crypter(options, master);
  auto sealed = crypter.Seal(MakePack(), "pack-17");
  ASSERT_TRUE(sealed.ok());

  // Same envelope presented under a different packID: tag check fails.
  auto wrong_id = crypter.Open(sealed->envelope, "pack-18");
  ASSERT_FALSE(wrong_id.ok());
  EXPECT_TRUE(wrong_id.status().IsCorruption()) << wrong_id.status().ToString();

  // Same envelope spliced into another table (same master key).
  MiniCryptOptions other_table = options;
  other_table.table = "mc_other";
  const PackCrypter other(other_table, master);
  auto cross_table = other.Open(sealed->envelope, "pack-17");
  ASSERT_FALSE(cross_table.ok());
  EXPECT_TRUE(cross_table.status().IsCorruption());

  // Header rewritten to claim a different (still-available) epoch: the AAD
  // binds the epoch, so the unauthenticated header cannot lie.
  auto ring = Keyring::FromMaster(master);
  ring->AnnounceEpoch(1);
  const PackCrypter epochal(options, ring);
  auto e1 = epochal.Seal(MakePack(), "pack-17");
  ASSERT_TRUE(e1.ok());
  ASSERT_EQ(PackCrypter::EnvelopeEpoch(e1->envelope), 1u);
  std::string forged = e1->envelope;
  forged[4 + 7] = '\0';  // big-endian epoch tail: claim epoch 0
  ASSERT_EQ(PackCrypter::EnvelopeEpoch(forged), 0u);
  auto cross_epoch = epochal.Open(forged, "pack-17");
  ASSERT_FALSE(cross_epoch.ok());
  EXPECT_TRUE(cross_epoch.status().IsCorruption());

  // The genuine article still opens.
  EXPECT_TRUE(crypter.Open(sealed->envelope, "pack-17").ok());
}

// --- RotateKeys end to end ----------------------------------------------------

class KeyRotationTest : public ::testing::Test {
 protected:
  KeyRotationTest() : key_(SymmetricKey::FromSeed("tenant")) {
    options_.pack_rows = 4;  // small packs: several packs per partition
    options_.hash_partitions = 2;
    options_.retry_backoff_base_micros = 0;  // tests never wall-sleep
  }

  // Every stored pack on the cluster, as (partition, packID, envelope).
  std::vector<std::tuple<std::string, std::string, std::string>> StoredPacks(Cluster* cluster) {
    std::vector<std::tuple<std::string, std::string, std::string>> out;
    const std::string hi(64, '\xff');
    for (int p = 0; p < options_.hash_partitions; ++p) {
      const std::string partition = PartitionLabel(p);
      auto rows = cluster->ReadRange(options_.table, partition, "", hi);
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
      if (!rows.ok()) {
        continue;
      }
      for (const auto& [id, row] : *rows) {
        auto v = row.cells.find("v");
        EXPECT_TRUE(v != row.cells.end());
        if (v != row.cells.end()) {
          out.emplace_back(partition, id, v->second.value);
        }
      }
    }
    return out;
  }

  SymmetricKey key_;
  MiniCryptOptions options_;
};

TEST_F(KeyRotationTest, RotationResealsEveryPackAndRetiresTheOldEpoch) {
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }

  ASSERT_TRUE(client.RotateKeys().ok());
  EXPECT_EQ(ring->current_epoch(), 1u);
  EXPECT_EQ(ring->retired_below(), 1u);

  // After retirement no live pack may be readable only by the retired epoch:
  // every stored envelope must carry epoch >= 1 and open under the keyring.
  const PackCrypter crypter(options_, ring);
  size_t packs = 0;
  for (const auto& [partition, id, envelope] : StoredPacks(&cluster)) {
    EXPECT_GE(PackCrypter::EnvelopeEpoch(envelope), 1u) << "partition " << partition;
    EXPECT_TRUE(crypter.Open(envelope, id).ok());
    ++packs;
  }
  EXPECT_GT(packs, 4u);  // small packs: the table really is spread over many

  // Data survives, and post-rotation writes land under the new epoch.
  for (uint64_t k = 0; k < 40; ++k) {
    auto v = client.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  ASSERT_TRUE(client.Put(1000, "fresh").ok());
  EXPECT_EQ(GetValue(&client, 1000), "fresh");

  auto rs = client.RotationState();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->stage, KeyRotationState::kStageIdle);
  EXPECT_EQ(rs->retired_below, 1u);
}

TEST_F(KeyRotationTest, SecondRotationAdvancesTheWindowAgain) {
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(client.Put(k, "x").ok());
  }
  ASSERT_TRUE(client.RotateKeys().ok());
  ASSERT_TRUE(client.RotateKeys().ok());
  EXPECT_EQ(ring->current_epoch(), 2u);
  EXPECT_EQ(ring->retired_below(), 2u);
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_TRUE(client.Get(k).ok()) << k;
  }
}

TEST_F(KeyRotationTest, StragglerClientGetsTypedKeyUnavailableAfterRotation) {
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(client.Put(k, "x").ok());
  }
  ASSERT_TRUE(client.RotateKeys().ok());

  // A client still on the pre-rotation keyring (fresh FromMaster at epoch 0)
  // must fail typed — not with a misleading MAC failure — when it meets an
  // epoch-1 envelope.
  GenericClient straggler(&cluster, options_, key_);
  auto got = straggler.Get(3);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsKeyUnavailable()) << got.status().ToString();
  // A client sharing the rotated keyring reads fine.
  GenericClient peer(&cluster, options_, ring);
  EXPECT_TRUE(peer.Get(3).ok());
}

TEST_F(KeyRotationTest, PersistFailurePausesAndResumeCompletes) {
  FaultInjector injector(0xA11CE);
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }

  injector.Script(FaultPoint::kRotatePersist, 1);
  auto paused = client.RotateKeys();
  ASSERT_FALSE(paused.ok());
  EXPECT_TRUE(paused.IsUnavailable()) << paused.ToString();
  EXPECT_EQ(injector.trips(FaultPoint::kRotatePersist), 1u);

  // Resume from the durable record: the rotation completes.
  ASSERT_TRUE(client.RotateKeys().ok());
  EXPECT_EQ(ring->retired_below(), 1u);
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_EQ(GetValue(&client, k), "v" + std::to_string(k)) << k;
  }
}

TEST_F(KeyRotationTest, ResealCrashPausesAndResumeCompletes) {
  FaultInjector injector(0xBADC0DE);
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }

  injector.Script(FaultPoint::kRotateReseal, 2);  // crash mid-range, second pack
  auto crashed = client.RotateKeys();
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(crashed.IsAborted()) << crashed.ToString();

  // A *different* client resumes from the persisted cursor (the crashed one
  // is gone) and drives the rotation to completion.
  GenericClient successor(&cluster, options_, Keyring::FromMaster(key_));
  ASSERT_TRUE(successor.RotateKeys().ok());
  for (const auto& [partition, id, envelope] : StoredPacks(&cluster)) {
    EXPECT_GE(PackCrypter::EnvelopeEpoch(envelope), 1u) << "partition " << partition;
  }
  for (uint64_t k = 0; k < 30; ++k) {
    EXPECT_EQ(GetValue(&successor, k), "v" + std::to_string(k)) << k;
  }
}

TEST_F(KeyRotationTest, RotationSurvivesACrashAtEveryStateEdge) {
  FaultInjector injector(0xD15EA5E);
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  auto ring = Keyring::FromMaster(key_);
  GenericClient client(&cluster, options_, ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }

  // Kill the next persist (or reseal) on every attempt, alternating between
  // the two fault points, until the rotation has no edge left to crash on.
  // Each failed attempt must leave a consistent durable state the next
  // attempt can resume from; the loop bounds how many edges there can be.
  int crashes = 0;
  bool done = false;
  for (int attempt = 0; attempt < 64 && !done; ++attempt) {
    if (attempt % 2 == 0) {
      injector.Script(FaultPoint::kRotatePersist, 1);
    } else {
      injector.Script(FaultPoint::kRotateReseal, 1);
    }
    const Status s = client.RotateKeys();
    if (s.ok()) {
      done = true;
    } else {
      ASSERT_TRUE(s.IsUnavailable() || s.IsAborted()) << s.ToString();
      ++crashes;
    }
  }
  ASSERT_TRUE(done) << "rotation never completed across resumes";
  EXPECT_GT(crashes, 3);  // non-vacuous: several distinct edges were hit
  EXPECT_EQ(ring->retired_below(), 1u);
  for (const auto& [partition, id, envelope] : StoredPacks(&cluster)) {
    EXPECT_GE(PackCrypter::EnvelopeEpoch(envelope), 1u);
  }
  for (uint64_t k = 0; k < 30; ++k) {
    EXPECT_EQ(GetValue(&client, k), "v" + std::to_string(k)) << k;
  }
}

TEST_F(KeyRotationTest, RotationUnderConcurrentWritersLosesNoAckedWrite) {
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(key_);
  GenericClient rotator(&cluster, options_, ring);
  ASSERT_TRUE(rotator.CreateTable().ok());
  for (uint64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(rotator.Put(k, "seed").ok());
  }

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 120;
  std::vector<std::map<uint64_t, std::string>> acked(kThreads);
  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      MiniCryptOptions opts = options_;
      opts.retry_jitter_seed = 1000 + static_cast<uint64_t>(t);
      GenericClient worker(&cluster, opts, ring);
      while (!start.load()) {
        std::this_thread::yield();
      }
      for (int op = 0; op < kOpsPerThread; ++op) {
        // Per-thread key slice: the last acked value per key is exact.
        const uint64_t k = static_cast<uint64_t>(t) * 1000 + (op % 16);
        const std::string value = "t" + std::to_string(t) + "#" + std::to_string(op);
        if (worker.Put(k, value).ok()) {
          acked[static_cast<size_t>(t)][k] = value;
        }
      }
    });
  }
  start.store(true);
  // Rotate while the writers hammer the table; drive through pauses.
  Status rot = Status::Unavailable("never ran");
  for (int attempt = 0; attempt < 16 && !rot.ok(); ++attempt) {
    rot = rotator.RotateKeys();
  }
  for (auto& th : writers) {
    th.join();
  }
  ASSERT_TRUE(rot.ok()) << rot.ToString();

  // No acked write may have been lost to a concurrent re-seal: the LWT hash
  // gate forces the rotator to re-read any pack a writer moved under it.
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [k, value] : acked[static_cast<size_t>(t)]) {
      auto got = rotator.Get(k);
      ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
      EXPECT_EQ(*got, value) << "key " << k;
    }
  }
  // Writers kept sealing at the (old) epoch mid-rotation; the verify sweep
  // must still have converged every pack to the target.
  for (const auto& [partition, id, envelope] : StoredPacks(&cluster)) {
    EXPECT_GE(PackCrypter::EnvelopeEpoch(envelope), 1u);
  }
}

TEST_F(KeyRotationTest, RotationStateRowIsInvisibleToRangeQueries) {
  Cluster cluster(ClusterOptions::ForTest());
  GenericClient client(&cluster, options_, Keyring::FromMaster(key_));
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(client.Put(k, "x").ok());
  }
  ASSERT_TRUE(client.RotateKeys().ok());
  // The persisted state machine row lives in the reserved "rotation"
  // partition, which no data query ever touches.
  auto range = client.GetRange(0, 1 << 20);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 20u);
}

}  // namespace
}  // namespace minicrypt
