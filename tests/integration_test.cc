// End-to-end integration tests: the full MiniCrypt stack (generic + append)
// over a multi-node cluster with realistic-ish settings, plus the compression
// phenomenon the whole system exists for.

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"
#include "src/core/baseline_client.h"
#include "src/core/generic_client.h"
#include "src/core/tuner.h"
#include "src/workload/datasets.h"

namespace minicrypt {
namespace {

ClusterOptions ThreeNodeOptions() {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  o.engine.memtable_flush_bytes = 64 * 1024;
  o.engine.compaction_trigger = 4;
  return o;
}

TEST(Integration, GenericClientOverThreeNodeClusterWithConvivaData) {
  Cluster cluster(ThreeNodeOptions());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 50;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  auto dataset = MakeDataset("conviva", 99);
  const auto rows = MaterializeRows(*dataset, 600);
  ASSERT_TRUE(client.BulkLoad(rows).ok());
  ASSERT_TRUE(cluster.FlushAll().ok());

  // Every row readable through the pack path.
  for (uint64_t k = 0; k < 600; k += 37) {
    auto v = client.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, rows[k].second);
  }
  // Range query crosses pack and partition boundaries.
  auto range = client.GetRange(100, 199);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 100u);

  // The headline claim: MiniCrypt's at-rest footprint is several times
  // smaller than the encrypted baseline's.
  MiniCryptOptions base_options;
  base_options.table = "baseline";
  EncryptedBaselineClient baseline(&cluster, base_options, key);
  ASSERT_TRUE(baseline.CreateTable().ok());
  ASSERT_TRUE(baseline.BulkLoad(rows).ok());
  ASSERT_TRUE(cluster.FlushAll().ok());

  const size_t mc_bytes = cluster.TableAtRestBytes(options.table);
  const size_t base_bytes = cluster.TableAtRestBytes("baseline");
  ASSERT_GT(mc_bytes, 0u);
  ASSERT_GT(base_bytes, 0u);
  EXPECT_GT(static_cast<double>(base_bytes) / static_cast<double>(mc_bytes), 2.0)
      << "pack compression should beat per-row compression by >2x on Conviva-like data";
}

TEST(Integration, AppendPipelineEndToEndOnTimeSeries) {
  SimulatedClock clock(1'000'000'000);
  Cluster cluster(ThreeNodeOptions());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.table = "timeseries";
  options.pack_rows = 25;
  options.epoch_micros = 1'000'000;
  options.t_delta_micros = 100'000;
  options.t_drift_micros = 50'000;
  options.client_timeout_micros = 100'000'000;

  EmService em(&cluster, options, "em", &clock);
  ASSERT_TRUE(em.Bootstrap().ok());
  ASSERT_TRUE(em.Tick().ok());
  AppendClient writer(&cluster, options, key, "w1", &clock);
  ASSERT_TRUE(writer.Register().ok());

  auto dataset = MakeDataset("gas", 5);
  uint64_t next_key = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(writer.Put(next_key, dataset->Row(next_key)).ok());
      ++next_key;
    }
    clock.Advance(options.epoch_micros + 1000);
    ASSERT_TRUE(writer.HeartbeatOnce().ok());
    ASSERT_TRUE(em.Tick().ok());
    ASSERT_TRUE(writer.HeartbeatOnce().ok());
    ASSERT_TRUE(writer.MergeOnce().ok());
    ASSERT_TRUE(writer.DeleteMergedOnce().ok());
  }
  EXPECT_GT(writer.stats().epochs_merged.load(), 0u);
  EXPECT_GT(writer.stats().packs_written.load(), 0u);

  // Every key written remains readable through whichever path now holds it.
  for (uint64_t k = 0; k < next_key; k += 13) {
    auto v = writer.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    EXPECT_EQ(*v, dataset->Row(k));
  }
}

TEST(Integration, TunerPicksAReasonablePackSize) {
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.hash_partitions = 2;

  auto dataset = MakeDataset("conviva", 21);
  const auto rows = MaterializeRows(*dataset, 400);
  std::vector<uint64_t> read_keys;
  for (uint64_t k = 0; k < 400; k += 3) {
    read_keys.push_back(k);
  }

  PackSizeTuner::Config config;
  config.candidate_pack_rows = {1, 10, 50};
  config.run_micros = 120'000;
  config.client_threads = 2;
  PackSizeTuner tuner(options, key, config);
  auto report = tuner.Run(
      [] {
        auto cluster = std::make_unique<Cluster>(ClusterOptions::ForTest());
        return cluster;
      },
      rows, read_keys);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->points.size(), 3u);
  for (const auto& point : report->points) {
    EXPECT_GT(point.throughput_ops_s, 0.0);
    EXPECT_GT(point.compression_ratio, 0.5);
  }
  // Ratio must improve monotonically with pack size on this data.
  EXPECT_GT(report->points[2].compression_ratio, report->points[0].compression_ratio);
  EXPECT_NE(report->best_pack_rows, 0u);
}

TEST(Integration, ClusterSurvivesManyTablesAndDrops) {
  Cluster cluster(ThreeNodeOptions());
  const SymmetricKey key = SymmetricKey::FromSeed("t");
  for (int i = 0; i < 5; ++i) {
    MiniCryptOptions options;
    options.table = "table" + std::to_string(i);
    options.pack_rows = 8;
    GenericClient client(&cluster, options, key);
    ASSERT_TRUE(client.CreateTable().ok());
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(client.Put(k, "x").ok());
    }
    ASSERT_TRUE(client.Get(25).ok());
  }
  ASSERT_TRUE(cluster.DropTable("table3").ok());
  MiniCryptOptions options;
  options.table = "table3";
  GenericClient client(&cluster, options, key);
  EXPECT_FALSE(client.Get(25).ok());  // table gone
  options.table = "table4";
  GenericClient alive(&cluster, options, key);
  EXPECT_TRUE(alive.Get(25).ok());  // others untouched
}

}  // namespace
}  // namespace minicrypt
