#include "src/kvstore/sstable.h"

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/kvstore/bloom.h"
#include "src/kvstore/memtable.h"
#include "src/kvstore/row.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 1, false};
  return row;
}

std::shared_ptr<Sstable> BuildTable(int entries, bool compression = false,
                                    Media* media = nullptr) {
  SstableOptions opts;
  opts.block_bytes = 256;
  opts.server_compression = compression;
  SstableBuilder builder(1, opts);
  for (int i = 0; i < entries; ++i) {
    builder.Add(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                ValueRow("value-" + std::to_string(i * 10)));
  }
  return builder.Finish(media);
}

TEST(Sstable, GetFindsEveryKey) {
  auto table = BuildTable(200);
  EXPECT_EQ(table->entry_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto row = table->Get(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                          nullptr, nullptr);
    ASSERT_TRUE(row.has_value()) << i;
    EXPECT_EQ(row->cells.at("v").value, "value-" + std::to_string(i * 10));
  }
  EXPECT_FALSE(table->Get(EncodeRowKey("p1", EncodeKey64(5)), nullptr, nullptr).has_value());
  EXPECT_FALSE(table->Get(EncodeRowKey("p2", EncodeKey64(10)), nullptr, nullptr).has_value());
}

TEST(Sstable, FloorWithinAndAcrossBlocks) {
  auto table = BuildTable(200);
  const std::string prefix = PartitionPrefix("p1");
  // Exact hit.
  auto fk = table->FloorKey(prefix, EncodeRowKey("p1", EncodeKey64(500)), nullptr, nullptr);
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 500u);
  // Between keys.
  fk = table->FloorKey(prefix, EncodeRowKey("p1", EncodeKey64(505)), nullptr, nullptr);
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 500u);
  // Below the smallest.
  EXPECT_FALSE(
      table->FloorKey(prefix, EncodeRowKey("p1", EncodeKey64(0)), nullptr, nullptr)
          .has_value() &&
      *DecodeKey64(
          DecodeRowKey(*table->FloorKey(prefix, EncodeRowKey("p1", EncodeKey64(0)), nullptr,
                                        nullptr))
              ->clustering) != 0);
  // Above the largest.
  fk = table->FloorKey(prefix, EncodeRowKey("p1", EncodeKey64(99999)), nullptr, nullptr);
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 1990u);
}

TEST(Sstable, FloorRespectsPartitionPrefix) {
  SstableOptions opts;
  opts.block_bytes = 128;
  SstableBuilder builder(2, opts);
  builder.Add(EncodeRowKey("aa", EncodeKey64(100)), ValueRow("x"));
  builder.Add(EncodeRowKey("bb", EncodeKey64(1)), ValueRow("y"));
  auto table = builder.Finish(nullptr);
  // Floor for partition "bb" below its only key must not leak "aa"'s rows.
  EXPECT_FALSE(table->FloorKey(PartitionPrefix("bb"), EncodeRowKey("bb", EncodeKey64(0)),
                               nullptr, nullptr)
                   .has_value());
}

TEST(Sstable, ScanRange) {
  auto table = BuildTable(100);
  std::vector<uint64_t> seen;
  ASSERT_TRUE(table
                  ->Scan(EncodeRowKey("p1", EncodeKey64(200)),
                         EncodeRowKey("p1", EncodeKey64(400)),
                         [&](std::string_view key, const Row& row) {
                           seen.push_back(*DecodeKey64(DecodeRowKey(key)->clustering));
                           return true;
                         },
                         nullptr, nullptr)
                  .ok());
  ASSERT_EQ(seen.size(), 21u);
  EXPECT_EQ(seen.front(), 200u);
  EXPECT_EQ(seen.back(), 400u);
}

TEST(Sstable, ScanEarlyStop) {
  auto table = BuildTable(100);
  int count = 0;
  ASSERT_TRUE(table
                  ->Scan(EncodeRowKey("p1", EncodeKey64(0)),
                         EncodeRowKey("p1", EncodeKey64(10000)),
                         [&](std::string_view key, const Row& row) { return ++count < 7; },
                         nullptr, nullptr)
                  .ok());
  EXPECT_EQ(count, 7);
}

TEST(Sstable, BloomFilterSkipsAbsentKeys) {
  auto table = BuildTable(500);
  int false_positives = 0;
  for (uint64_t k = 1; k < 2000; k += 2) {  // odd keys were never inserted
    if (table->MayContain(EncodeRowKey("p1", EncodeKey64(k)))) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, 100);  // ~1% expected at 10 bits/key; allow 10%
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(
        table->MayContain(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10)))));
  }
}

TEST(Sstable, ServerCompressionShrinksAtRestAndRoundTrips) {
  auto plain = BuildTable(300, /*compression=*/false);
  auto compressed = BuildTable(300, /*compression=*/true);
  EXPECT_LT(compressed->at_rest_bytes(), plain->at_rest_bytes());
  for (int i = 0; i < 300; ++i) {
    auto row = compressed->Get(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                               nullptr, nullptr);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(row->cells.at("v").value, "value-" + std::to_string(i * 10));
  }
}

TEST(Sstable, ReadsChargeMediaOnCacheMissOnly) {
  NullMedia media;
  auto table = BuildTable(300, false, &media);
  const uint64_t writes = media.stats().writes.load();
  EXPECT_GE(writes, 1u);  // the flush write

  BlockCache cache(1 << 20);
  (void)table->Get(EncodeRowKey("p1", EncodeKey64(100)), &cache, &media);
  const uint64_t after_first = media.stats().reads.load();
  EXPECT_GE(after_first, 1u);
  (void)table->Get(EncodeRowKey("p1", EncodeKey64(100)), &cache, &media);
  EXPECT_EQ(media.stats().reads.load(), after_first);  // cache hit: no media read
}

TEST(BloomFilter, SerializeRoundTrip) {
  BloomFilter f(100, 10);
  f.Add("alpha");
  f.Add("beta");
  BloomFilter g = BloomFilter::Deserialize(f.Serialize());
  EXPECT_TRUE(g.MayContain("alpha"));
  EXPECT_TRUE(g.MayContain("beta"));
  EXPECT_FALSE(g.MayContain("gamma") && g.MayContain("delta") && g.MayContain("epsilon") &&
               g.MayContain("zeta"));
}

TEST(Memtable, FloorAndAccounting) {
  Memtable mem;
  Row row = ValueRow("x");
  mem.Apply(EncodeRowKey("p", EncodeKey64(10)), row);
  mem.Apply(EncodeRowKey("p", EncodeKey64(30)), row);
  EXPECT_GT(mem.ApproxBytes(), 0u);
  auto fk = mem.FloorKey(PartitionPrefix("p"), EncodeRowKey("p", EncodeKey64(20)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 10u);
  EXPECT_FALSE(mem.FloorKey(PartitionPrefix("p"), EncodeRowKey("p", EncodeKey64(5)))
                   .has_value());
  EXPECT_FALSE(mem.FloorKey(PartitionPrefix("q"), EncodeRowKey("q", EncodeKey64(50)))
                   .has_value());
  mem.Clear();
  EXPECT_EQ(mem.ApproxBytes(), 0u);
  EXPECT_TRUE(mem.empty());
}

TEST(RowKey, EncodeDecodeRoundTrip) {
  const std::string_view clustering("cluster\x00key", 11);  // embedded NUL
  const std::string encoded = EncodeRowKey("part-with-bytes\x01", clustering);
  auto decoded = DecodeRowKey(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->partition, "part-with-bytes\x01");
  EXPECT_EQ(decoded->clustering, clustering);
}

TEST(RowKey, PartitionRowsAreContiguous) {
  // All keys of one partition share a prefix no other partition's keys can
  // interleave with.
  const std::string a1 = EncodeRowKey("a", EncodeKey64(1));
  const std::string a2 = EncodeRowKey("a", EncodeKey64(99999));
  const std::string ab = EncodeRowKey("ab", EncodeKey64(0));
  EXPECT_TRUE(ab < a1 || ab > a2);
}

TEST(RowMerge, NewerTimestampWins) {
  Row base;
  base.cells["v"] = Cell{"old", 5, false};
  Row update;
  update.cells["v"] = Cell{"new", 9, false};
  update.cells["extra"] = Cell{"e", 9, false};
  base.MergeNewer(update);
  EXPECT_EQ(base.cells.at("v").value, "new");
  EXPECT_EQ(base.cells.size(), 2u);
  Row stale;
  stale.cells["v"] = Cell{"stale", 3, false};
  base.MergeNewer(stale);
  EXPECT_EQ(base.cells.at("v").value, "new");
}

}  // namespace
}  // namespace minicrypt
