#include "src/kvstore/sstable.h"

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/kvstore/bloom.h"
#include "src/kvstore/fault_injector.h"
#include "src/kvstore/memtable.h"
#include "src/kvstore/row.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 1, false};
  return row;
}

// Unwraps the Result layer (no I/O error expected in these tests), leaving
// the presence/absence optional the assertions care about.
std::optional<Row> GetRow(const std::shared_ptr<Sstable>& table, const std::string& key) {
  auto row = table->Get(key, nullptr, nullptr);
  EXPECT_TRUE(row.ok()) << row.status().ToString();
  return row.ok() ? *row : std::nullopt;
}

std::optional<std::string> Floor(const std::shared_ptr<Sstable>& table, std::string_view prefix,
                                 const std::string& key) {
  auto fk = table->FloorKey(prefix, key, nullptr, nullptr);
  EXPECT_TRUE(fk.ok()) << fk.status().ToString();
  return fk.ok() ? *fk : std::nullopt;
}

std::shared_ptr<Sstable> BuildTable(int entries, bool compression = false,
                                    Media* media = nullptr) {
  SstableOptions opts;
  opts.block_bytes = 256;
  opts.server_compression = compression;
  SstableBuilder builder(1, opts);
  for (int i = 0; i < entries; ++i) {
    builder.Add(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                ValueRow("value-" + std::to_string(i * 10)));
  }
  return builder.Finish(media);
}

TEST(Sstable, GetFindsEveryKey) {
  auto table = BuildTable(200);
  EXPECT_EQ(table->entry_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto row = GetRow(table, EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))));
    ASSERT_TRUE(row.has_value()) << i;
    EXPECT_EQ(row->cells.at("v").value, "value-" + std::to_string(i * 10));
  }
  EXPECT_FALSE(GetRow(table, EncodeRowKey("p1", EncodeKey64(5))).has_value());
  EXPECT_FALSE(GetRow(table, EncodeRowKey("p2", EncodeKey64(10))).has_value());
}

TEST(Sstable, FloorWithinAndAcrossBlocks) {
  auto table = BuildTable(200);
  const std::string prefix = PartitionPrefix("p1");
  // Exact hit.
  auto fk = Floor(table, prefix, EncodeRowKey("p1", EncodeKey64(500)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 500u);
  // Between keys.
  fk = Floor(table, prefix, EncodeRowKey("p1", EncodeKey64(505)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 500u);
  // At the smallest: the floor is the key itself.
  fk = Floor(table, prefix, EncodeRowKey("p1", EncodeKey64(0)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 0u);
  // Above the largest.
  fk = Floor(table, prefix, EncodeRowKey("p1", EncodeKey64(99999)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 1990u);
}

TEST(Sstable, FloorRespectsPartitionPrefix) {
  SstableOptions opts;
  opts.block_bytes = 128;
  SstableBuilder builder(2, opts);
  builder.Add(EncodeRowKey("aa", EncodeKey64(100)), ValueRow("x"));
  builder.Add(EncodeRowKey("bb", EncodeKey64(1)), ValueRow("y"));
  auto table = builder.Finish(nullptr);
  // Floor for partition "bb" below its only key must not leak "aa"'s rows.
  EXPECT_FALSE(
      Floor(table, PartitionPrefix("bb"), EncodeRowKey("bb", EncodeKey64(0))).has_value());
}

TEST(Sstable, ScanRange) {
  auto table = BuildTable(100);
  std::vector<uint64_t> seen;
  ASSERT_TRUE(table
                  ->Scan(EncodeRowKey("p1", EncodeKey64(200)),
                         EncodeRowKey("p1", EncodeKey64(400)),
                         [&](std::string_view key, const Row& row) {
                           seen.push_back(*DecodeKey64(DecodeRowKey(key)->clustering));
                           return true;
                         },
                         nullptr, nullptr)
                  .ok());
  ASSERT_EQ(seen.size(), 21u);
  EXPECT_EQ(seen.front(), 200u);
  EXPECT_EQ(seen.back(), 400u);
}

TEST(Sstable, ScanEarlyStop) {
  auto table = BuildTable(100);
  int count = 0;
  ASSERT_TRUE(table
                  ->Scan(EncodeRowKey("p1", EncodeKey64(0)),
                         EncodeRowKey("p1", EncodeKey64(10000)),
                         [&](std::string_view key, const Row& row) { return ++count < 7; },
                         nullptr, nullptr)
                  .ok());
  EXPECT_EQ(count, 7);
}

TEST(Sstable, BloomFilterSkipsAbsentKeys) {
  auto table = BuildTable(500);
  int false_positives = 0;
  for (uint64_t k = 1; k < 2000; k += 2) {  // odd keys were never inserted
    if (table->MayContain(EncodeRowKey("p1", EncodeKey64(k)))) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, 100);  // ~1% expected at 10 bits/key; allow 10%
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(
        table->MayContain(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10)))));
  }
}

TEST(Sstable, ServerCompressionShrinksAtRestAndRoundTrips) {
  auto plain = BuildTable(300, /*compression=*/false);
  auto compressed = BuildTable(300, /*compression=*/true);
  EXPECT_LT(compressed->at_rest_bytes(), plain->at_rest_bytes());
  for (int i = 0; i < 300; ++i) {
    auto row =
        GetRow(compressed, EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))));
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(row->cells.at("v").value, "value-" + std::to_string(i * 10));
  }
}

TEST(Sstable, ReadsChargeMediaOnCacheMissOnly) {
  NullMedia media;
  auto table = BuildTable(300, false, &media);
  const uint64_t writes = media.stats().writes.load();
  EXPECT_GE(writes, 1u);  // the flush write

  BlockCache cache(1 << 20);
  (void)table->Get(EncodeRowKey("p1", EncodeKey64(100)), &cache, &media);
  const uint64_t after_first = media.stats().reads.load();
  EXPECT_GE(after_first, 1u);
  (void)table->Get(EncodeRowKey("p1", EncodeKey64(100)), &cache, &media);
  EXPECT_EQ(media.stats().reads.load(), after_first);  // cache hit: no media read
}

TEST(Sstable, VerifyChecksumsPassesOnCleanTable) {
  EXPECT_TRUE(BuildTable(200)->VerifyChecksums(nullptr).ok());
  EXPECT_TRUE(BuildTable(200, /*compression=*/true)->VerifyChecksums(nullptr).ok());
}

TEST(Sstable, InjectedBitFlipIsDetectedNeverReturned) {
  FaultInjector fi(0xC0FFEE);
  fi.SetRate(FaultPoint::kMediaCorruption, 1.0);  // flip one bit in every block
  SstableOptions opts;
  opts.block_bytes = 256;
  opts.table = "packs";
  SstableBuilder builder(7, opts);
  for (int i = 0; i < 100; ++i) {
    builder.Add(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                ValueRow("value-" + std::to_string(i * 10)));
  }
  auto table = builder.Finish(nullptr, &fi);
  EXPECT_GT(fi.trips(FaultPoint::kMediaCorruption), 0u);

  // Every read of a corrupted block must surface as Corruption, never data.
  for (int i = 0; i < 100; ++i) {
    auto row = table->Get(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                          nullptr, nullptr);
    ASSERT_FALSE(row.ok());
    EXPECT_TRUE(row.status().IsCorruption());
    // The message names table, sstable, and block for operators.
    EXPECT_NE(row.status().message().find("table 'packs'"), std::string::npos)
        << row.status().ToString();
    EXPECT_NE(row.status().message().find("sstable #7"), std::string::npos);
    EXPECT_NE(row.status().message().find("block "), std::string::npos);
  }
  // Scrub finds the same corruption without the cache.
  EXPECT_TRUE(table->VerifyChecksums(nullptr).IsCorruption());
}

TEST(Sstable, SingleCorruptBlockOnlyPoisonsItsOwnKeys) {
  FaultInjector fi(99);
  // One scripted flip: only the 3rd block goes bad.
  fi.Script(FaultPoint::kMediaCorruption, 3);
  SstableOptions opts;
  opts.block_bytes = 256;
  opts.table = "t";
  SstableBuilder builder(1, opts);
  for (int i = 0; i < 200; ++i) {
    builder.Add(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                ValueRow("value-" + std::to_string(i * 10)));
  }
  auto table = builder.Finish(nullptr, &fi);
  ASSERT_EQ(fi.trips(FaultPoint::kMediaCorruption), 1u);
  ASSERT_GT(table->block_count(), 3u);

  int ok_reads = 0;
  int corrupt_reads = 0;
  for (int i = 0; i < 200; ++i) {
    auto row = table->Get(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i * 10))),
                          nullptr, nullptr);
    if (row.ok()) {
      ASSERT_TRUE(row->has_value());
      EXPECT_EQ((*row)->cells.at("v").value, "value-" + std::to_string(i * 10));
      ++ok_reads;
    } else {
      EXPECT_TRUE(row.status().IsCorruption());
      ++corrupt_reads;
    }
  }
  EXPECT_GT(ok_reads, 0);       // intact blocks keep serving
  EXPECT_GT(corrupt_reads, 0);  // the flipped block always errors
  EXPECT_TRUE(table->VerifyChecksums(nullptr).IsCorruption());
}

TEST(Sstable, VerifyChecksumsCoversBlocksTheReadPathSkips) {
  // verify_checksums=false models a store with checksums off on the hot
  // path; scrub must still catch the rot via the footer's CRC copies.
  FaultInjector fi(5);
  fi.SetRate(FaultPoint::kMediaCorruption, 1.0);
  SstableOptions opts;
  opts.block_bytes = 256;
  opts.verify_checksums = false;
  SstableBuilder builder(1, opts);
  for (int i = 0; i < 50; ++i) {
    builder.Add(EncodeRowKey("p1", EncodeKey64(static_cast<uint64_t>(i))), ValueRow("x"));
  }
  auto table = builder.Finish(nullptr, &fi);
  EXPECT_TRUE(table->VerifyChecksums(nullptr).IsCorruption());
}

TEST(BloomFilter, SerializeRoundTrip) {
  BloomFilter f(100, 10);
  f.Add("alpha");
  f.Add("beta");
  BloomFilter g = BloomFilter::Deserialize(f.Serialize());
  EXPECT_TRUE(g.MayContain("alpha"));
  EXPECT_TRUE(g.MayContain("beta"));
  EXPECT_FALSE(g.MayContain("gamma") && g.MayContain("delta") && g.MayContain("epsilon") &&
               g.MayContain("zeta"));
}

TEST(Memtable, FloorAndAccounting) {
  Memtable mem;
  Row row = ValueRow("x");
  mem.Apply(EncodeRowKey("p", EncodeKey64(10)), row);
  mem.Apply(EncodeRowKey("p", EncodeKey64(30)), row);
  EXPECT_GT(mem.ApproxBytes(), 0u);
  auto fk = mem.FloorKey(PartitionPrefix("p"), EncodeRowKey("p", EncodeKey64(20)));
  ASSERT_TRUE(fk.has_value());
  EXPECT_EQ(*DecodeKey64(DecodeRowKey(*fk)->clustering), 10u);
  EXPECT_FALSE(mem.FloorKey(PartitionPrefix("p"), EncodeRowKey("p", EncodeKey64(5)))
                   .has_value());
  EXPECT_FALSE(mem.FloorKey(PartitionPrefix("q"), EncodeRowKey("q", EncodeKey64(50)))
                   .has_value());
  mem.Clear();
  EXPECT_EQ(mem.ApproxBytes(), 0u);
  EXPECT_TRUE(mem.empty());
}

TEST(RowKey, EncodeDecodeRoundTrip) {
  const std::string_view clustering("cluster\x00key", 11);  // embedded NUL
  const std::string encoded = EncodeRowKey("part-with-bytes\x01", clustering);
  auto decoded = DecodeRowKey(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->partition, "part-with-bytes\x01");
  EXPECT_EQ(decoded->clustering, clustering);
}

TEST(RowKey, PartitionRowsAreContiguous) {
  // All keys of one partition share a prefix no other partition's keys can
  // interleave with.
  const std::string a1 = EncodeRowKey("a", EncodeKey64(1));
  const std::string a2 = EncodeRowKey("a", EncodeKey64(99999));
  const std::string ab = EncodeRowKey("ab", EncodeKey64(0));
  EXPECT_TRUE(ab < a1 || ab > a2);
}

TEST(RowMerge, NewerTimestampWins) {
  Row base;
  base.cells["v"] = Cell{"old", 5, false};
  Row update;
  update.cells["v"] = Cell{"new", 9, false};
  update.cells["extra"] = Cell{"e", 9, false};
  base.MergeNewer(update);
  EXPECT_EQ(base.cells.at("v").value, "new");
  EXPECT_EQ(base.cells.size(), 2u);
  Row stale;
  stale.cells["v"] = Cell{"stale", 3, false};
  base.MergeNewer(stale);
  EXPECT_EQ(base.cells.at("v").value, "new");
}

}  // namespace
}  // namespace minicrypt
