// Unit + end-to-end coverage for the client-side decrypted-pack cache:
// capacity eviction, version-mismatch revalidation, invalidate-on-ambiguous
// LWT outcomes, cross-client sharing, and the TTL fast path.

#include "src/core/pack_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/core/generic_client.h"
#include "src/core/key_codec.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/keyring.h"
#include "src/kvstore/cluster.h"
#include "src/kvstore/fault_injector.h"

namespace minicrypt {
namespace {

std::shared_ptr<const Pack> OneKeyPack(uint64_t key, std::string value) {
  auto pack = Pack::FromSorted({Pack::Entry{EncodeKey64(key), std::move(value)}});
  EXPECT_TRUE(pack.ok());
  return std::make_shared<const Pack>(std::move(*pack));
}

// --- Pure unit tests ---------------------------------------------------------

TEST(PackCache, DisabledCacheNoOps) {
  SimulatedClock clock;
  PackCache cache(/*capacity_bytes=*/0, /*ttl_micros=*/0, &clock);
  EXPECT_FALSE(cache.enabled());
  cache.Put("t", "p", EncodeKey64(1), OneKeyPack(1, "v"), "h1");
  EXPECT_EQ(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h1"), nullptr);
  EXPECT_FALSE(cache.Floor("t", "p", EncodeKey64(1), false).has_value());
  EXPECT_EQ(cache.Stats().bytes_used, 0u);
}

TEST(PackCache, FloorRoutesWithinScopeOnly) {
  SimulatedClock clock;
  PackCache cache(1 << 20, 0, &clock, /*shards=*/1);
  cache.Put("t", "p0", EncodeKey64(10), OneKeyPack(10, "a"), "h10");
  cache.Put("t", "p0", EncodeKey64(20), OneKeyPack(20, "b"), "h20");

  // Floor picks the greatest cached packID <= the key.
  auto f = cache.Floor("t", "p0", EncodeKey64(15), false);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, EncodeKey64(10));
  f = cache.Floor("t", "p0", EncodeKey64(25), false);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, EncodeKey64(20));
  // Below the smallest cached id: no candidate.
  EXPECT_FALSE(cache.Floor("t", "p0", EncodeKey64(5), false).has_value());
  // Other partitions and tables never bleed into this scope.
  EXPECT_FALSE(cache.Floor("t", "p1", EncodeKey64(15), false).has_value());
  EXPECT_FALSE(cache.Floor("u", "p0", EncodeKey64(15), false).has_value());
}

TEST(PackCache, CapacityEvictionDropsLeastRecentlyUsed) {
  SimulatedClock clock;
  // Room for roughly two single-entry packs (one shard: deterministic LRU).
  PackCache cache(512, 0, &clock, /*shards=*/1);
  cache.Put("t", "p", EncodeKey64(1), OneKeyPack(1, "a"), "h1");
  cache.Put("t", "p", EncodeKey64(2), OneKeyPack(2, "b"), "h2");
  // Touch pack 1 so pack 2 becomes the LRU victim.
  ASSERT_NE(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h1"), nullptr);
  cache.Put("t", "p", EncodeKey64(3), OneKeyPack(3, "c"), "h3");

  const PackCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 512u);
  // The victim is gone; recently used/inserted entries survive.
  EXPECT_EQ(cache.ValidateAndGet("t", "p", EncodeKey64(2), "h2"), nullptr);
  EXPECT_NE(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h1"), nullptr);
  EXPECT_NE(cache.ValidateAndGet("t", "p", EncodeKey64(3), "h3"), nullptr);
}

TEST(PackCache, ValidateAndGetDropsVersionMismatch) {
  SimulatedClock clock;
  PackCache cache(1 << 20, 0, &clock);
  cache.Put("t", "p", EncodeKey64(1), OneKeyPack(1, "old"), "h-old");

  // Matching hash: hit + revalidation.
  EXPECT_NE(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h-old"), nullptr);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().revalidations, 1u);

  // Server moved to a newer version: mismatch drops the entry.
  EXPECT_EQ(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h-new"), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  // Entry is really gone — even the old hash cannot bring it back.
  EXPECT_EQ(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h-old"), nullptr);
  EXPECT_FALSE(cache.Floor("t", "p", EncodeKey64(1), false).has_value());
}

TEST(PackCache, TtlFreshnessFollowsClock) {
  SimulatedClock clock;
  PackCache cache(1 << 20, /*ttl_micros=*/1000, &clock);
  cache.Put("t", "p", EncodeKey64(1), OneKeyPack(1, "v"), "h1");

  EXPECT_TRUE(cache.Floor("t", "p", EncodeKey64(1), /*only_fresh=*/true).has_value());
  clock.Advance(1001);
  EXPECT_FALSE(cache.Floor("t", "p", EncodeKey64(1), /*only_fresh=*/true).has_value());
  // A revalidation refreshes the TTL stamp.
  EXPECT_NE(cache.ValidateAndGet("t", "p", EncodeKey64(1), "h1"), nullptr);
  EXPECT_TRUE(cache.Floor("t", "p", EncodeKey64(1), /*only_fresh=*/true).has_value());
}

// --- End-to-end through GenericClient ---------------------------------------

MiniCryptOptions CachedOptions() {
  MiniCryptOptions o;
  o.pack_rows = 4;
  o.hash_partitions = 1;  // all keys share a partition: deterministic routing
  o.cache_capacity_bytes = 1 << 20;
  return o;
}

TEST(PackCacheClient, RepeatGetsHitAndShipFewerBytes) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  GenericClient client(&cluster, CachedOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_NE(client.pack_cache(), nullptr);

  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(client.Get(0).ok());  // ensures the pack is cached + validated
  const uint64_t bytes_before = cluster.stats().bytes_to_client.load();
  for (int i = 0; i < 8; ++i) {
    auto v = client.Get(2);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v2");
  }
  const uint64_t probe_bytes = cluster.stats().bytes_to_client.load() - bytes_before;
  const PackCacheStats stats = client.pack_cache()->Stats();
  EXPECT_GE(stats.hits, 8u);
  EXPECT_GE(stats.revalidations, 8u);
  // 8 probes shipped ~8 * (floor id + hash) — far less than one envelope.
  EXPECT_LT(probe_bytes, 8 * 100u);
}

TEST(PackCacheClient, StaleCacheRevalidatesAfterForeignWrite) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  GenericClient cached(&cluster, CachedOptions(), key);
  // A writer with no cache of its own, standing in for "another machine".
  MiniCryptOptions plain = CachedOptions();
  plain.cache_capacity_bytes = 0;
  GenericClient writer(&cluster, plain, key);
  ASSERT_TRUE(cached.CreateTable().ok());

  ASSERT_TRUE(cached.Put(1, "v1").ok());
  ASSERT_TRUE(cached.Get(1).ok());  // warm

  ASSERT_TRUE(writer.Put(1, "v2").ok());  // moves the pack's LWT version

  auto v = cached.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");  // the probe caught the mismatch and refetched
  const PackCacheStats stats = cached.pack_cache()->Stats();
  EXPECT_GE(stats.invalidations, 1u);

  // The refreshed entry now revalidates cleanly.
  const uint64_t hits_before = stats.hits;
  ASSERT_TRUE(cached.Get(1).ok());
  EXPECT_GT(cached.pack_cache()->Stats().hits, hits_before);
}

TEST(PackCacheClient, AmbiguousLwtInvalidatesThenRecovers) {
  FaultInjector injector(0xCAC4E);
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  GenericClient client(&cluster, CachedOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());

  ASSERT_TRUE(client.Put(1, "first").ok());
  ASSERT_TRUE(client.Get(1).ok());  // warm the cache

  // The conditional update applies but the coordinator reports a timeout:
  // the client must drop its cached image before re-reading.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Put(1, "second").ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 1u);
  EXPECT_GE(client.pack_cache()->Stats().invalidations, 1u);

  auto v = client.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "second");
}

TEST(PackCacheClient, TwoClientsShareOneCache) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  const MiniCryptOptions options = CachedOptions();
  auto shared = std::make_shared<PackCache>(options.cache_capacity_bytes,
                                            options.cache_ttl_micros,
                                            cluster.options().clock);
  GenericClient a(&cluster, options, key, shared);
  GenericClient b(&cluster, options, key, shared);
  ASSERT_TRUE(a.CreateTable().ok());
  ASSERT_EQ(a.pack_cache().get(), b.pack_cache().get());

  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(a.Put(k, "from-a").ok());
  }
  // a's writes populated the shared cache; b's first read revalidates the
  // shared entry instead of fetching the envelope.
  const PackCacheStats before = shared->Stats();
  auto v = b.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "from-a");
  EXPECT_GT(shared->Stats().hits, before.hits);

  // Coherence flows both ways: b's write updates the shared entry, a reads it.
  ASSERT_TRUE(b.Put(1, "from-b").ok());
  v = a.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "from-b");
}

TEST(PackCacheClient, TtlServesWithoutTouchingTheServer) {
  SimulatedClock clock;
  ClusterOptions copts = ClusterOptions::ForTest();
  copts.clock = &clock;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options = CachedOptions();
  options.cache_ttl_micros = 1'000'000;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  ASSERT_TRUE(client.Put(1, "v").ok());
  ASSERT_TRUE(client.Get(1).ok());  // validated-now entry

  const uint64_t reads_before = cluster.stats().reads.load();
  for (int i = 0; i < 5; ++i) {
    auto v = client.Get(1);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v");
  }
  // TTL-fresh serves perform zero server reads.
  EXPECT_EQ(cluster.stats().reads.load(), reads_before);
  EXPECT_GE(client.pack_cache()->Stats().ttl_hits, 5u);

  // Past the TTL the client probes again.
  clock.Advance(options.cache_ttl_micros + 1);
  ASSERT_TRUE(client.Get(1).ok());
  EXPECT_GT(cluster.stats().reads.load(), reads_before);

  // A TTL-fresh pack must not answer NotFound for a key it never covered
  // without confirming against the server: key 2 was written by a peer the
  // cache never saw.
  MiniCryptOptions plain = options;
  plain.cache_capacity_bytes = 0;
  plain.cache_ttl_micros = 0;
  GenericClient writer(&cluster, plain, key);
  ASSERT_TRUE(client.Get(1).ok());  // re-validate so the entry is TTL-fresh
  ASSERT_TRUE(writer.Put(2, "new").ok());
  auto v = client.Get(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "new");
}

// --- Cache coherence across key rotation -------------------------------------

TEST(PackCacheClient, RotationResealIsAMissAndRefetchNeverStalePlaintext) {
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(SymmetricKey::FromSeed("tenant"));
  GenericClient cached(&cluster, CachedOptions(), ring);
  ASSERT_TRUE(cached.CreateTable().ok());
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(cached.Put(k, "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(cached.Get(1).ok());  // warm + validated

  // The stored pack before rotation: capture its envelope hash.
  auto rows = cluster.ReadRange(CachedOptions().table, PartitionLabel(0), "",
                                std::string(64, '\xff'));
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  const std::string pack_id = (*rows)[0].first;
  const std::string old_hash = (*rows)[0].second.cells.at("h").value;
  EXPECT_EQ(PackCrypter::EnvelopeEpoch((*rows)[0].second.cells.at("v").value), 0u);

  // Rotate through a cacheless peer sharing the keyring (the usual shape:
  // the rotator is an operator job, not the serving client).
  MiniCryptOptions plain = CachedOptions();
  plain.cache_capacity_bytes = 0;
  GenericClient rotator(&cluster, plain, ring);
  ASSERT_TRUE(rotator.RotateKeys().ok());

  // The re-seal moved the envelope hash and the epoch.
  auto after = cluster.Read(CachedOptions().table, PartitionLabel(0), pack_id);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->cells.at("h").value, old_hash);
  EXPECT_EQ(PackCrypter::EnvelopeEpoch(after->cells.at("v").value), 1u);

  // The cached client's next read probes, sees the hash mismatch, and
  // refetches — it can never serve the retired-epoch entry as current.
  const PackCacheStats before = cached.pack_cache()->Stats();
  auto v = cached.Get(1);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "v1");
  const PackCacheStats stats = cached.pack_cache()->Stats();
  EXPECT_GT(stats.invalidations, before.invalidations);
  // The refreshed (epoch-1) entry revalidates cleanly from here on.
  const uint64_t hits_before = stats.hits;
  ASSERT_TRUE(cached.Get(1).ok());
  EXPECT_GT(cached.pack_cache()->Stats().hits, hits_before);
}

TEST(PackCacheClient, RotatorsOwnCacheStaysCoherentWhileResealing) {
  // The rotator itself may run with a cache: CacheAfterWrite on every
  // re-seal keeps its entries in lockstep with the stored hash, so reads
  // right after rotation revalidate instead of refetching envelopes.
  Cluster cluster(ClusterOptions::ForTest());
  auto ring = Keyring::FromMaster(SymmetricKey::FromSeed("tenant"));
  GenericClient client(&cluster, CachedOptions(), ring);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(client.RotateKeys().ok());
  const uint64_t misses_before = client.pack_cache()->Stats().misses;
  for (uint64_t k = 0; k < 12; ++k) {
    auto v = client.Get(k);
    ASSERT_TRUE(v.ok()) << k << ": " << v.status().ToString();
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  EXPECT_EQ(client.pack_cache()->Stats().misses, misses_before);
}

}  // namespace
}  // namespace minicrypt
