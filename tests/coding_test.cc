#include "src/common/coding.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/random.h"

namespace minicrypt {
namespace {

TEST(Varint, RoundTripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ULL << 32) - 1,
                            1ULL << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    std::string_view in = buf;
    auto out = GetVarint64(&in);
    ASSERT_TRUE(out.ok()) << v;
    EXPECT_EQ(*out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Varint, RoundTripRandom) {
  Rng rng(42);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so every encoded length is hit.
    const uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  std::string_view in = buf;
  for (uint64_t expected : values) {
    auto out = GetVarint64(&in);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(Varint, TruncatedIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    EXPECT_TRUE(GetVarint64(&in).status().IsCorruption()) << cut;
  }
}

TEST(Varint, OverlongIsCorruption) {
  // 11 continuation bytes can never be a valid 64-bit varint.
  std::string buf(11, '\x80');
  std::string_view in = buf;
  EXPECT_TRUE(GetVarint64(&in).status().IsCorruption());
}

TEST(Fixed, RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in = buf;
  auto a = GetFixed32(&in);
  auto b = GetFixed64(&in);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0xdeadbeefu);
  EXPECT_EQ(*b, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(LengthPrefixed, RoundTripIncludingBinary) {
  std::string buf;
  const std::string payload("\x00\x01\xff hello \x80", 11);
  PutLengthPrefixed(&buf, payload);
  PutLengthPrefixed(&buf, "");
  std::string_view in = buf;
  auto a = GetLengthPrefixed(&in);
  auto b = GetLengthPrefixed(&in);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, payload);
  EXPECT_TRUE(b->empty());
}

TEST(LengthPrefixed, DeclaredLengthBeyondInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 100);
  buf += "short";
  std::string_view in = buf;
  EXPECT_TRUE(GetLengthPrefixed(&in).status().IsCorruption());
}

TEST(Key64, OrderPreserving) {
  Rng rng(7);
  uint64_t prev_v = 0;
  std::string prev_e = EncodeKey64(0);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Next();
    const std::string e = EncodeKey64(v);
    EXPECT_EQ(e.size(), 8u);
    EXPECT_EQ((v < prev_v), (e < prev_e)) << v << " vs " << prev_v;
    EXPECT_EQ((v == prev_v), (e == prev_e));
    auto back = DecodeKey64(e);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    prev_v = v;
    prev_e = e;
  }
}

TEST(Key64, WrongSizeRejected) {
  EXPECT_TRUE(DecodeKey64("1234567").status().IsCorruption());
  EXPECT_TRUE(DecodeKey64("123456789").status().IsCorruption());
}

}  // namespace
}  // namespace minicrypt
