#include "src/core/pack.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/core/pack_crypter.h"

namespace minicrypt {
namespace {

Pack MakePack(std::initializer_list<uint64_t> keys) {
  std::vector<Pack::Entry> entries;
  for (uint64_t k : keys) {
    entries.push_back({EncodeKey64(k), "val-" + std::to_string(k)});
  }
  auto pack = Pack::FromSorted(std::move(entries));
  EXPECT_TRUE(pack.ok());
  return std::move(pack).value();
}

TEST(Pack, SerializeDeserializeRoundTrip) {
  const Pack pack = MakePack({1, 5, 9, 100, 1ULL << 40});
  auto back = Pack::Deserialize(pack.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 5u);
  for (uint64_t k : {1ULL, 5ULL, 9ULL, 100ULL, 1ULL << 40}) {
    auto v = back->Find(EncodeKey64(k));
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, "val-" + std::to_string(k));
  }
}

TEST(Pack, EmptyPackRoundTrip) {
  Pack empty;
  auto back = Pack::Deserialize(empty.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  EXPECT_FALSE(back->MinKey().has_value());
}

TEST(Pack, FromSortedRejectsDisorder) {
  std::vector<Pack::Entry> bad = {{EncodeKey64(5), "a"}, {EncodeKey64(3), "b"}};
  EXPECT_FALSE(Pack::FromSorted(std::move(bad)).ok());
  std::vector<Pack::Entry> dup = {{EncodeKey64(5), "a"}, {EncodeKey64(5), "b"}};
  EXPECT_FALSE(Pack::FromSorted(std::move(dup)).ok());
}

TEST(Pack, DeserializeRejectsCorruption) {
  const Pack pack = MakePack({1, 2, 3});
  std::string bytes = pack.Serialize();
  EXPECT_FALSE(Pack::Deserialize(std::string_view(bytes.data(), bytes.size() - 2)).ok());
  bytes += "extra";
  EXPECT_FALSE(Pack::Deserialize(bytes).ok());
}

TEST(Pack, UpsertKeepsOrderAndOverwrites) {
  Pack pack = MakePack({10, 30});
  EXPECT_TRUE(pack.Upsert(EncodeKey64(20), "twenty"));
  EXPECT_FALSE(pack.Upsert(EncodeKey64(20), "twenty-two"));
  EXPECT_EQ(pack.size(), 3u);
  EXPECT_EQ(*pack.Find(EncodeKey64(20)), "twenty-two");
  // Order invariant held.
  auto back = Pack::Deserialize(pack.Serialize());
  ASSERT_TRUE(back.ok());
}

TEST(Pack, EraseAndMinKeyStability) {
  Pack pack = MakePack({10, 20, 30});
  EXPECT_EQ(*DecodeKey64(*pack.MinKey()), 10u);
  EXPECT_TRUE(pack.Erase(EncodeKey64(10)));
  EXPECT_FALSE(pack.Erase(EncodeKey64(10)));
  // The pack's smallest key changes, but the stored packID (kept by the
  // client layer) does not — Erase only mutates contents.
  EXPECT_EQ(*DecodeKey64(*pack.MinKey()), 20u);
  EXPECT_TRUE(pack.Erase(EncodeKey64(20)));
  EXPECT_TRUE(pack.Erase(EncodeKey64(30)));
  EXPECT_TRUE(pack.empty());
}

TEST(Pack, SplitDeterministicHalves) {
  const Pack pack = MakePack({1, 2, 3, 4, 5});
  auto halves = pack.SplitDeterministic();
  ASSERT_TRUE(halves.ok());
  EXPECT_EQ(halves->first.size(), 3u);  // ceil(5/2)
  EXPECT_EQ(halves->second.size(), 2u);
  EXPECT_EQ(*DecodeKey64(*halves->first.MinKey()), 1u);
  EXPECT_EQ(*DecodeKey64(*halves->second.MinKey()), 4u);
  // Identical re-split (determinism demanded by paper §5.2).
  auto again = pack.SplitDeterministic();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->first.Serialize(), halves->first.Serialize());
  EXPECT_EQ(again->second.Serialize(), halves->second.Serialize());
}

TEST(Pack, SplitRejectsTinyPacks) {
  EXPECT_FALSE(MakePack({1}).SplitDeterministic().ok());
  EXPECT_TRUE(MakePack({1, 2}).SplitDeterministic().ok());
}

TEST(Pack, FindIsExactMatchOnly) {
  const Pack pack = MakePack({10, 20});
  EXPECT_FALSE(pack.Find(EncodeKey64(15)).has_value());
  EXPECT_FALSE(pack.Find(EncodeKey64(5)).has_value());
  EXPECT_FALSE(pack.Find(EncodeKey64(25)).has_value());
}

TEST(Pack, RandomizedMutationProperty) {
  Rng rng(71);
  Pack pack;
  std::map<uint64_t, std::string> model;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t key = rng.Uniform(200);
    if (rng.Bernoulli(0.7)) {
      const std::string value = "v" + std::to_string(rng.Next() & 0xFFF);
      pack.Upsert(EncodeKey64(key), value);
      model[key] = value;
    } else {
      EXPECT_EQ(pack.Erase(EncodeKey64(key)), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(pack.size(), model.size());
  for (const auto& [key, value] : model) {
    auto found = pack.Find(EncodeKey64(key));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, value);
  }
  // Serialization still canonical.
  auto back = Pack::Deserialize(pack.Serialize());
  ASSERT_TRUE(back.ok());
}

class PackCrypterTest : public ::testing::Test {
 protected:
  PackCrypterTest() : key_(SymmetricKey::FromSeed("tenant")), crypter_(MakeOptions(), key_) {}

  static MiniCryptOptions MakeOptions() {
    MiniCryptOptions o;
    o.codec = "zlib";
    return o;
  }

  SymmetricKey key_;
  PackCrypter crypter_;
};

TEST_F(PackCrypterTest, SealOpenRoundTrip) {
  const Pack pack = MakePack({1, 2, 3, 4, 5, 6, 7, 8});
  auto sealed = crypter_.Seal(pack);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->hash, Sha256(sealed->envelope));
  auto back = crypter_.Open(sealed->envelope);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Serialize(), pack.Serialize());
}

TEST_F(PackCrypterTest, EnvelopeIsEncrypted) {
  Pack pack;
  const std::string marker = "PLAINTEXT_MARKER_THAT_MUST_NOT_LEAK";
  pack.Upsert(EncodeKey64(1), marker);
  auto sealed = crypter_.Seal(pack);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->envelope.find(marker), std::string::npos);
}

TEST_F(PackCrypterTest, DifferentTableKeysDoNotInterop) {
  MiniCryptOptions other = MakeOptions();
  other.table = "other_table";
  PackCrypter other_crypter(other, key_);
  auto sealed = crypter_.Seal(MakePack({1, 2}));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(other_crypter.Open(sealed->envelope).ok());
}

TEST_F(PackCrypterTest, PaddingTiersQuantizeEnvelopeSizes) {
  MiniCryptOptions padded = MakeOptions();
  padded.padding = PaddingTiers::Exponential(1024, 6);
  PackCrypter crypter(padded, key_);
  std::set<size_t> sizes;
  Rng rng(5);
  for (int n = 1; n <= 30; ++n) {
    Pack pack;
    for (int i = 0; i < n; ++i) {
      pack.Upsert(EncodeKey64(static_cast<uint64_t>(i)), rng.Bytes(64));
    }
    auto sealed = crypter.Seal(pack);
    ASSERT_TRUE(sealed.ok());
    sizes.insert(sealed->envelope.size());
    auto back = crypter.Open(sealed->envelope);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), static_cast<size_t>(n));
  }
  // 30 distinct pack populations must land on a handful of visible sizes.
  EXPECT_LE(sizes.size(), 4u);
}

TEST_F(PackCrypterTest, SingleValueSealOpen) {
  auto sealed = crypter_.SealValue("row value bytes");
  ASSERT_TRUE(sealed.ok());
  auto back = crypter_.OpenValue(*sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "row value bytes");
}

TEST_F(PackCrypterTest, EveryRegisteredCodecWorksEndToEnd) {
  for (std::string_view codec : AllCompressorNames()) {
    MiniCryptOptions o = MakeOptions();
    o.codec = std::string(codec);
    PackCrypter crypter(o, key_);
    const Pack pack = MakePack({10, 20, 30, 40});
    auto sealed = crypter.Seal(pack);
    ASSERT_TRUE(sealed.ok()) << codec;
    auto back = crypter.Open(sealed->envelope);
    ASSERT_TRUE(back.ok()) << codec;
    EXPECT_EQ(back->Serialize(), pack.Serialize()) << codec;
  }
}

}  // namespace
}  // namespace minicrypt
