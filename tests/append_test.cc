#include "src/core/append/append_client.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/core/append/em_service.h"

namespace minicrypt {
namespace {

// APPEND-mode tests drive epochs with a simulated clock and run EM / merger
// passes synchronously, so every schedule is deterministic.
class AppendModeTest : public ::testing::Test {
 protected:
  AppendModeTest()
      : clock_(1'000'000'000),  // arbitrary epoch start
        cluster_(ClusterOptions::ForTest()),
        key_(SymmetricKey::FromSeed("tenant")) {
    options_.table = "ts_data";
    options_.pack_rows = 4;
    options_.epoch_micros = 2'000'000;
    options_.t_delta_micros = 500'000;
    options_.t_drift_micros = 200'000;
    options_.client_timeout_micros = 100'000'000;  // liveness driven manually
    EXPECT_TRUE(options_.Validate().ok());
    em_ = std::make_unique<EmService>(&cluster_, options_, "em1", &clock_);
    EXPECT_TRUE(em_->Bootstrap().ok());
    EXPECT_TRUE(em_->Tick().ok());
    EXPECT_TRUE(em_->IsMaster());
    client_ = std::make_unique<AppendClient>(&cluster_, options_, key_, "c1", &clock_);
    EXPECT_TRUE(client_->Register().ok());
  }

  // Advances time one epoch and runs the EM + client heartbeat.
  void NextEpoch() {
    clock_.Advance(options_.epoch_micros + 1000);
    ASSERT_TRUE(client_->HeartbeatOnce().ok());
    ASSERT_TRUE(em_->Tick().ok());
    ASSERT_TRUE(client_->HeartbeatOnce().ok());  // re-sync c_epoch
  }

  SimulatedClock clock_;
  Cluster cluster_;
  SymmetricKey key_;
  MiniCryptOptions options_;
  std::unique_ptr<EmService> em_;
  std::unique_ptr<AppendClient> client_;
};

TEST_F(AppendModeTest, BootstrapSeedsEpochOne) {
  auto g = em_->ReadGlobalEpoch();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, 1u);
  EXPECT_EQ(client_->local_epoch(), 1u);
}

TEST_F(AppendModeTest, EpochAdvancesWithTime) {
  NextEpoch();
  EXPECT_EQ(*em_->ReadGlobalEpoch(), 2u);
  EXPECT_EQ(client_->local_epoch(), 2u);
  // No double-advance within the same epoch window.
  ASSERT_TRUE(em_->Tick().ok());
  EXPECT_EQ(*em_->ReadGlobalEpoch(), 2u);
  NextEpoch();
  EXPECT_EQ(*em_->ReadGlobalEpoch(), 3u);
}

TEST_F(AppendModeTest, PutThenGetFromOpenEpoch) {
  ASSERT_TRUE(client_->Put(42, "fresh").ok());
  auto v = client_->Get(42);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "fresh");
  EXPECT_TRUE(client_->Get(43).status().IsNotFound());
}

TEST_F(AppendModeTest, GetAfterEpochRollsUsesStatsMinKeys) {
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(client_->Put(k, "e1-" + std::to_string(k)).ok());
  }
  NextEpoch();  // epoch 1 closes; EM records its min key
  for (uint64_t k = 10; k < 20; ++k) {
    ASSERT_TRUE(client_->Put(k, "e2-" + std::to_string(k)).ok());
  }
  NextEpoch();
  // Keys of both closed epochs remain readable pre-merge.
  for (uint64_t k = 0; k < 20; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k << ": " << v.status().ToString();
    EXPECT_EQ(*v, (k < 10 ? "e1-" : "e2-") + std::to_string(k));
  }
}

TEST_F(AppendModeTest, MergeFoldsClosedEpochIntoPacks) {
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(client_->Put(k, "v" + std::to_string(k)).ok());
  }
  NextEpoch();
  for (uint64_t k = 12; k < 24; ++k) {
    ASSERT_TRUE(client_->Put(k, "v" + std::to_string(k)).ok());
  }
  NextEpoch();
  NextEpoch();  // g_epoch = 4: epochs 1, 2 are mergeable (e + 2 <= g)
  ASSERT_TRUE(client_->MergeOnce().ok());
  EXPECT_GE(client_->stats().epochs_merged.load(), 1u);
  EXPECT_GT(client_->stats().packs_written.load(), 0u);
  // Epoch 1's keys [0, kmin(2)=12) are merged; every key still readable.
  for (uint64_t k = 0; k < 24; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k << ": " << v.status().ToString();
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  // Pack rows actually exist in epoch 0.
  auto packs = cluster_.ReadRange(options_.table, EpochPartition(kMergedEpoch), "",
                                  std::string(16, '\xff'));
  ASSERT_TRUE(packs.ok());
  EXPECT_GE(packs->size(), 3u);  // 12 keys / pack_rows 4
}

TEST_F(AppendModeTest, DeleteDropsFullyMergedEpochs) {
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (uint64_t k = 0; k < 8; ++k) {
      ASSERT_TRUE(client_->Put(static_cast<uint64_t>(epoch) * 8 + k, "x").ok());
    }
    NextEpoch();
  }
  NextEpoch();
  ASSERT_TRUE(client_->MergeOnce().ok());
  ASSERT_TRUE(client_->MergeOnce().ok());  // later epochs may unlock after first pass
  const uint64_t merged = client_->stats().epochs_merged.load();
  EXPECT_GE(merged, 2u);
  ASSERT_TRUE(client_->DeleteMergedOnce().ok());
  EXPECT_GE(client_->stats().epochs_deleted.load(), 1u);
  // All keys that were merged remain readable after their epochs are dropped.
  for (uint64_t k = 0; k < 16; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k;
  }
}

TEST_F(AppendModeTest, DuplicateMergersAreHarmless) {
  AppendClient clone(&cluster_, options_, key_, "c1", &clock_);  // same id
  ASSERT_TRUE(clone.Register().ok());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(client_->Put(k, "v" + std::to_string(k)).ok());
  }
  NextEpoch();
  for (uint64_t k = 10; k < 20; ++k) {
    ASSERT_TRUE(client_->Put(k, "w" + std::to_string(k)).ok());
  }
  NextEpoch();
  NextEpoch();
  // Both "clients" merge the same epoch; determinism + IF NOT EXISTS make the
  // second a no-op.
  ASSERT_TRUE(client_->MergeOnce().ok());
  ASSERT_TRUE(clone.MergeOnce().ok());
  auto packs = cluster_.ReadRange(options_.table, EpochPartition(kMergedEpoch), "",
                                  std::string(16, '\xff'));
  ASSERT_TRUE(packs.ok());
  EXPECT_EQ(packs->size(), 3u);  // 10 keys / 4 per pack = 3 packs, no dupes
  for (uint64_t k = 0; k < 10; ++k) {
    auto v = client_->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
}

TEST_F(AppendModeTest, OutOfOrderArrivalsWithinLagAreMergedCorrectly) {
  // Keys arrive slightly out of order across the epoch boundary (within
  // T_delta): a key smaller than epoch 2's min lands in epoch 2.
  for (uint64_t k : {0, 1, 2, 3, 4, 7, 9}) {
    ASSERT_TRUE(client_->Put(k, "a" + std::to_string(k)).ok());
  }
  NextEpoch();
  // Lagging writes: 8 (belongs near epoch 1's tail) then the new batch.
  ASSERT_TRUE(client_->Put(8, "late8").ok());
  for (uint64_t k = 10; k < 18; ++k) {
    ASSERT_TRUE(client_->Put(k, "b" + std::to_string(k)).ok());
  }
  NextEpoch();
  for (uint64_t k = 18; k < 26; ++k) {
    ASSERT_TRUE(client_->Put(k, "c" + std::to_string(k)).ok());
  }
  NextEpoch();
  NextEpoch();
  ASSERT_TRUE(client_->MergeOnce().ok());
  ASSERT_TRUE(client_->MergeOnce().ok());
  // Every key readable with the right value, including the laggard.
  auto v = client_->Get(8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "late8");
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_TRUE(client_->Get(k).ok()) << k;
  }
}

TEST_F(AppendModeTest, EmFailoverElectsNewMaster) {
  MiniCryptOptions fo = options_;
  fo.client_timeout_micros = 1'000'000;
  EmService em1(&cluster_, fo, "em-a", &clock_);
  EmService em2(&cluster_, fo, "em-b", &clock_);
  ASSERT_TRUE(em1.Bootstrap().ok());
  ASSERT_TRUE(em1.Tick().ok());
  // em1 holds mastership over the existing master row or becomes one of the
  // candidates; run em2 — it must defer while em1 is fresh.
  ASSERT_TRUE(em2.Tick().ok());
  EXPECT_FALSE(em1.IsMaster() && em2.IsMaster());

  // Let the active master's heartbeat go stale; the standby takes over.
  EmService* master = em1.IsMaster() ? &em1 : &em2;
  EmService* standby = em1.IsMaster() ? &em2 : &em1;
  (void)master;
  clock_.Advance(fo.client_timeout_micros * 3);
  ASSERT_TRUE(standby->Tick().ok());
  EXPECT_TRUE(standby->IsMaster());

  // The deposed master notices on its next tick.
  ASSERT_TRUE(master->Tick().ok());
  EXPECT_FALSE(master->IsMaster());
  // Exactly one master remains, and epochs still advance.
  clock_.Advance(fo.epoch_micros + 1000);
  ASSERT_TRUE(standby->Tick().ok());
  auto g = standby->ReadGlobalEpoch();
  ASSERT_TRUE(g.ok());
  EXPECT_GE(*g, 2u);
}

TEST_F(AppendModeTest, DeadClientEpochsReassigned) {
  MiniCryptOptions fo = options_;
  fo.client_timeout_micros = 1'000'000;
  EmService em(&cluster_, fo, "em-r", &clock_);
  ASSERT_TRUE(em.Bootstrap().ok());

  AppendClient doomed(&cluster_, fo, key_, "doomed", &clock_);
  ASSERT_TRUE(doomed.Register().ok());
  for (uint64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(doomed.Put(k, "x").ok());
  }
  // Close epochs 1 and 2 while only `doomed` is alive.
  clock_.Advance(fo.epoch_micros + 1000);
  ASSERT_TRUE(doomed.HeartbeatOnce().ok());
  ASSERT_TRUE(em.Tick().ok());
  for (uint64_t k = 6; k < 12; ++k) {
    ASSERT_TRUE(doomed.Put(k, "x").ok());
  }
  clock_.Advance(fo.epoch_micros + 1000);
  ASSERT_TRUE(doomed.HeartbeatOnce().ok());
  ASSERT_TRUE(em.Tick().ok());
  clock_.Advance(fo.epoch_micros + 1000);
  ASSERT_TRUE(doomed.HeartbeatOnce().ok());
  ASSERT_TRUE(em.Tick().ok());  // epoch 1 now mergeable; assigned to doomed

  // doomed dies; a healthy client registers; after the timeout the EM
  // reassigns doomed's epochs to it.
  AppendClient healthy(&cluster_, fo, key_, "healthy", &clock_);
  clock_.Advance(fo.client_timeout_micros * 2);
  ASSERT_TRUE(healthy.Register().ok());
  ASSERT_TRUE(em.Tick().ok());
  ASSERT_TRUE(healthy.MergeOnce().ok());
  EXPECT_GE(healthy.stats().epochs_merged.load(), 1u);
  for (uint64_t k = 0; k < 6; ++k) {
    EXPECT_TRUE(healthy.Get(k).ok()) << k;
  }
}

TEST_F(AppendModeTest, RangeQuerySpansPacksAndRawEpochs) {
  // Keys 0..11 will be merged into epoch-0 packs; 12..23 stay raw in closed
  // epochs; 24..29 sit in the open epoch. A range must see all of them once.
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(client_->Put(k, "a" + std::to_string(k)).ok());
  }
  NextEpoch();
  for (uint64_t k = 12; k < 24; ++k) {
    ASSERT_TRUE(client_->Put(k, "b" + std::to_string(k)).ok());
  }
  NextEpoch();
  NextEpoch();
  ASSERT_TRUE(client_->MergeOnce().ok());  // merges epoch 1 (keys 0..11)
  for (uint64_t k = 24; k < 30; ++k) {
    ASSERT_TRUE(client_->Put(k, "c" + std::to_string(k)).ok());
  }

  auto range = client_->GetRange(5, 27);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range->size(), 23u);  // 5..27 inclusive
  for (size_t i = 0; i < range->size(); ++i) {
    const uint64_t k = 5 + i;
    EXPECT_EQ((*range)[i].first, k);
    const char prefix = k < 12 ? 'a' : (k < 24 ? 'b' : 'c');
    EXPECT_EQ((*range)[i].second, std::string(1, prefix) + std::to_string(k));
  }
  // Bounds behaviour.
  auto empty = client_->GetRange(500, 600);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(client_->GetRange(10, 5).ok());
}

TEST_F(AppendModeTest, BackgroundThreadsSmoke) {
  // Exercise the real PeriodicTask wiring briefly (real clock inside the
  // tasks is fine; they just run their passes).
  client_->Start();
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(client_->Put(100 + k, "bg").ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client_->Stop();
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_TRUE(client_->Get(100 + k).ok());
  }
}

}  // namespace
}  // namespace minicrypt
