#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/thread_util.h"

namespace minicrypt {
namespace {

// The registry is a process-wide singleton shared by every test in this
// binary, so each test uses its own metric names and resets values up front.

TEST(MetricsRegistry, InternsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* a = registry.GetCounter("obs_test.intern.a");
  Counter* b = registry.GetCounter("obs_test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetCounter("obs_test.intern.a"));
  EXPECT_EQ(registry.GetGauge("obs_test.intern.g"), registry.GetGauge("obs_test.intern.g"));
  EXPECT_EQ(registry.GetHistogram("obs_test.intern.h"),
            registry.GetHistogram("obs_test.intern.h"));

  // ResetAll zeroes values but keeps registrations and pointers valid.
  a->Add(7);
  registry.ResetAll();
  EXPECT_EQ(a, registry.GetCounter("obs_test.intern.a"));
  EXPECT_EQ(a->Value(), 0u);
  a->Add(3);
  EXPECT_EQ(a->Value(), 3u);
}

TEST(MetricsRegistry, ConcurrentCounterIncrements) {
  Counter* counter = MetricsRegistry::Instance().GetCounter("obs_test.concurrent");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ConcurrentHistogramRecords) {
  LatencyHistogram* hist = MetricsRegistry::Instance().GetHistogram("obs_test.conc_hist");
  hist->Reset();
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        hist->Record(i + static_cast<uint64_t>(t));  // values in [1, kPerThread+5]
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  Histogram snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);
  EXPECT_EQ(snapshot.Min(), 1u);
  EXPECT_EQ(snapshot.Max(), kPerThread + kThreads - 1);
  // Mean of ~uniform [1, 20000] per thread, small per-thread offset.
  EXPECT_NEAR(snapshot.Mean(), kPerThread / 2.0, kPerThread * 0.01);
}

TEST(Histogram, MergePreservesPercentiles) {
  // Two disjoint-range histograms merged must reproduce the percentiles of
  // one histogram fed the union of the samples.
  Histogram low;
  Histogram high;
  Histogram all;
  for (uint64_t v = 1; v <= 1000; ++v) {
    low.Add(v);
    all.Add(v);
  }
  for (uint64_t v = 10000; v <= 11000; ++v) {
    high.Add(v);
    all.Add(v);
  }
  Histogram merged = low;
  merged.Merge(high);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.Min(), all.Min());
  EXPECT_EQ(merged.Max(), all.Max());
  for (double p : {0.10, 0.50, 0.90, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), all.Percentile(p)) << "p=" << p;
  }
  // The low half dominates below p≈0.48, the high half above p≈0.52.
  EXPECT_LE(merged.Percentile(0.25), 1024.0);
  EXPECT_GE(merged.Percentile(0.75), 9000.0);
}

TEST(Histogram, FromBucketCountsRoundTrip) {
  Histogram direct;
  uint64_t counts[Histogram::kBucketCount] = {};
  uint64_t sum = 0;
  for (uint64_t v : {1u, 3u, 17u, 900u, 900u, 65536u}) {
    direct.Add(v);
    counts[Histogram::BucketFor(v)]++;
    sum += v;
  }
  Histogram rebuilt =
      Histogram::FromBucketCounts(counts, Histogram::kBucketCount, sum, 1, 65536);
  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_EQ(rebuilt.sum(), direct.sum());
  EXPECT_EQ(rebuilt.Min(), direct.Min());
  EXPECT_EQ(rebuilt.Max(), direct.Max());
  for (double p : {0.05, 0.50, 0.95}) {
    EXPECT_DOUBLE_EQ(rebuilt.Percentile(p), direct.Percentile(p)) << "p=" << p;
  }

  // Empty input yields an empty histogram with zeroed min.
  uint64_t zeros[Histogram::kBucketCount] = {};
  Histogram empty = Histogram::FromBucketCounts(zeros, Histogram::kBucketCount, 0, 0, 0);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Min(), 0u);
}

TEST(ScopedSpan, TimingSanity) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  LatencyHistogram* hist = registry.GetHistogram("obs_test.span");
  hist->Reset();
  {
    OBS_SPAN("obs_test.span");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Histogram snapshot = hist->Snapshot();
  ASSERT_EQ(snapshot.count(), 1u);
  // Slept 5 ms: the recorded span must be at least that (scheduling can only
  // add time) and well under a second on any sane machine.
  EXPECT_GE(snapshot.Min(), 5000u);
  EXPECT_LT(snapshot.Min(), 1000000u);
}

TEST(ScopedSpan, DisabledRegistryIsInert) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  LatencyHistogram* hist = registry.GetHistogram("obs_test.disabled_span");
  Counter* counter = registry.GetCounter("obs_test.disabled_counter");
  hist->Reset();
  counter->Reset();
  registry.SetEnabled(false);
  {
    OBS_SPAN("obs_test.disabled_span");
    OBS_COUNTER_INC("obs_test.disabled_counter");
    OBS_COUNTER_ADD("obs_test.disabled_counter", 41);
  }
  registry.SetEnabled(true);
  EXPECT_EQ(hist->Snapshot().count(), 0u);
  EXPECT_EQ(counter->Value(), 0u);
  // Re-enabled: the same call sites work again (interned pointers survive).
  OBS_COUNTER_INC("obs_test.disabled_counter");
  EXPECT_EQ(counter->Value(), 1u);
}

TEST(MetricsRegistry, JsonSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  registry.GetCounter("obs_test.json.count")->Add(42);
  registry.GetCounter("obs_test.json.zero");  // zero-valued: must be elided
  registry.GetGauge("obs_test.json.ratio")->Set(3.5);
  LatencyHistogram* hist = registry.GetHistogram("obs_test.json.lat");
  for (uint64_t i = 0; i < 100; ++i) {
    hist->Record(100);
  }

  const std::string json = registry.ToJson();

  // Structural validity: balanced braces, quotes pair up, top-level sections
  // present in order.
  int depth = 0;
  int min_depth_after_first = 1;
  size_t quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') depth++;
    if (json[i] == '}') depth--;
    if (json[i] == '"') quotes++;
    if (i > 0 && i + 1 < json.size()) {
      min_depth_after_first = std::min(min_depth_after_first, depth);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_GE(min_depth_after_first, 1);  // one top-level object
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  // Round-trip of the values we wrote.
  EXPECT_NE(json.find("\"obs_test.json.count\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.json.ratio\":3.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.json.lat\":{\"count\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum_us\":10000"), std::string::npos) << json;
  // Zero counter elided; empty histograms elided entirely.
  EXPECT_EQ(json.find("obs_test.json.zero"), std::string::npos) << json;

  // After ResetAll the snapshot elides everything we wrote above.
  registry.ResetAll();
  const std::string after = registry.ToJson();
  EXPECT_EQ(after.find("obs_test.json.count"), std::string::npos) << after;
  EXPECT_EQ(after.find("obs_test.json.lat"), std::string::npos) << after;
}

TEST(MetricsRegistry, DerivedGaugeComputedAtSnapshotTime) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  Counter* raw = registry.GetCounter("obs_test.derived.raw");
  Counter* wire = registry.GetCounter("obs_test.derived.wire");
  // Static: the registration (and thus the lambda) outlives this test body,
  // and ToJson from any later test will invoke it again.
  static int calls;
  calls = 0;
  registry.RegisterDerivedGauge("obs_test.derived.ratio", [raw, wire] {
    ++calls;
    const uint64_t w = wire->Value();
    return w == 0 ? 0.0 : static_cast<double>(raw->Value()) / static_cast<double>(w);
  });

  // Not evaluated until a snapshot is taken; zero-valued (wire == 0) elided.
  EXPECT_EQ(calls, 0);
  std::string json = registry.ToJson();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(json.find("obs_test.derived.ratio"), std::string::npos) << json;

  raw->Add(700);
  wire->Add(200);
  json = registry.ToJson();
  EXPECT_NE(json.find("\"obs_test.derived.ratio\":3.5"), std::string::npos) << json;

  // ResetAll zeroes the source counters, so the derived value follows.
  registry.ResetAll();
  json = registry.ToJson();
  EXPECT_EQ(json.find("obs_test.derived.ratio"), std::string::npos) << json;
}

TEST(MetricsRegistry, JsonEscapesStrings) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  registry.GetCounter("obs_test.\"quoted\"\\name")->Add(1);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\\\"quoted\\\"\\\\name"), std::string::npos) << json;
  registry.ResetAll();
}

}  // namespace
}  // namespace minicrypt
