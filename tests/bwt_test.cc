#include "src/compress/bwt.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/compress/huffman.h"

namespace minicrypt {
namespace {

void ExpectBwtRoundTrip(const std::string& input) {
  const BwtResult fwd = BwtForward(input);
  ASSERT_EQ(fwd.transformed.size(), input.size());
  auto back = BwtInverse(fwd.transformed, fwd.primary_index);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, input);
}

TEST(Bwt, EmptyAndTiny) {
  ExpectBwtRoundTrip("");
  ExpectBwtRoundTrip("a");
  ExpectBwtRoundTrip("ab");
  ExpectBwtRoundTrip("aa");
}

TEST(Bwt, ClassicExample) {
  // "banana"-style inputs exercise repeated suffixes.
  ExpectBwtRoundTrip("banana");
  ExpectBwtRoundTrip("mississippi");
  ExpectBwtRoundTrip("abracadabraabracadabra");
}

TEST(Bwt, GroupsSimilarContexts) {
  // BWT of a repetitive string should contain long runs (that is the whole
  // point of the transform).
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "the cat sat on the mat. ";
  }
  const BwtResult fwd = BwtForward(input);
  size_t longest_run = 1;
  size_t run = 1;
  for (size_t i = 1; i < fwd.transformed.size(); ++i) {
    run = fwd.transformed[i] == fwd.transformed[i - 1] ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_GT(longest_run, 50u);
}

TEST(Bwt, RandomBinaryProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    ExpectBwtRoundTrip(rng.Bytes(rng.Uniform(4000) + 1));
  }
}

TEST(Bwt, AllSameByte) { ExpectBwtRoundTrip(std::string(10000, '\x00')); }

TEST(Bwt, BadPrimaryIndexRejected) {
  const BwtResult fwd = BwtForward("hello world");
  EXPECT_FALSE(BwtInverse(fwd.transformed, static_cast<uint32_t>(fwd.transformed.size() + 5))
                   .ok());
}

TEST(Mtf, RoundTrip) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string input = rng.Bytes(rng.Uniform(2000));
    EXPECT_EQ(MtfInverse(MtfForward(input)), input);
  }
}

TEST(Mtf, RunsBecomeZeros) {
  const std::string ranks = MtfForward("aaaaaabbbbbb");
  // After the first 'a' and first 'b', every repeat is rank 0.
  int zeros = 0;
  for (char c : ranks) {
    zeros += c == 0 ? 1 : 0;
  }
  EXPECT_EQ(zeros, 10);
}

TEST(Zrle, RoundTripWithLongZeroRuns) {
  std::string ranks;
  ranks.append(1000, '\x00');
  ranks.push_back('\x05');
  ranks.append(3, '\x00');
  ranks.push_back('\x07');
  const auto symbols = ZrleForward(ranks);
  // Run of 1000 zeros encodes in ~log2(1000) symbols, not 1000.
  EXPECT_LT(symbols.size(), 30u);
  auto back = ZrleInverse(symbols);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ranks);
}

TEST(Zrle, RoundTripProperty) {
  Rng rng(35);
  for (int trial = 0; trial < 30; ++trial) {
    std::string ranks;
    const size_t n = rng.Uniform(500);
    for (size_t i = 0; i < n; ++i) {
      // Skew toward zero like post-MTF data.
      ranks.push_back(rng.Bernoulli(0.7) ? '\x00' : static_cast<char>(rng.Uniform(256)));
    }
    auto back = ZrleInverse(ZrleForward(ranks));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, ranks);
  }
}

TEST(Huffman, RoundTripSkewedAlphabet) {
  std::vector<uint64_t> freqs(kZrleAlphabet, 0);
  freqs[0] = 10000;
  freqs[1] = 3000;
  freqs[7] = 500;
  freqs[200] = 1;
  const auto lengths = BuildHuffmanLengths(freqs);
  EXPECT_LE(lengths[0], lengths[200]);  // frequent symbol gets shorter code

  HuffmanEncoder enc(lengths);
  auto dec = HuffmanDecoder::Make(lengths);
  ASSERT_TRUE(dec.ok());

  const std::vector<unsigned> message = {0, 0, 1, 7, 0, 200, 1, 0, 0, 7};
  std::string bits;
  BitWriter writer(&bits);
  for (unsigned s : message) {
    enc.Encode(&writer, s);
  }
  writer.Finish();
  BitReader reader(bits);
  for (unsigned expected : message) {
    auto s = dec->Decode(&reader);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, expected);
  }
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[3] = 42;
  const auto lengths = BuildHuffmanLengths(freqs);
  EXPECT_EQ(lengths[3], 1);
  auto dec = HuffmanDecoder::Make(lengths);
  ASSERT_TRUE(dec.ok());
}

TEST(Huffman, DepthLimitHolds) {
  // Fibonacci-like frequencies force deep trees; lengths must stay <= 15.
  std::vector<uint64_t> freqs;
  uint64_t a = 1;
  uint64_t b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = BuildHuffmanLengths(freqs);
  for (uint8_t len : lengths) {
    EXPECT_LE(len, kHuffmanMaxBits);
  }
  EXPECT_TRUE(HuffmanDecoder::Make(lengths).ok());
}

TEST(Huffman, OversubscribedLengthsRejected) {
  std::vector<uint8_t> lengths = {1, 1, 1};  // Kraft sum > 1
  EXPECT_FALSE(HuffmanDecoder::Make(lengths).ok());
}

TEST(BitStream, RoundTripVariousWidths) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(0b1, 1);
  writer.Write(0b10110, 5);
  writer.Write(0xdead, 16);
  writer.Write(0x1ffffffffffffULL, 49);
  writer.Finish();
  BitReader reader(buf);
  EXPECT_EQ(*reader.Read(1), 0b1u);
  EXPECT_EQ(*reader.Read(5), 0b10110u);
  EXPECT_EQ(*reader.Read(16), 0xdeadu);
  EXPECT_EQ(*reader.Read(49), 0x1ffffffffffffULL);
}

TEST(BitStream, UnderrunReported) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(0x3, 2);
  writer.Finish();
  BitReader reader(buf);
  ASSERT_TRUE(reader.Read(8).ok());   // padded byte readable
  EXPECT_FALSE(reader.Read(8).ok());  // past the end
}

}  // namespace
}  // namespace minicrypt
