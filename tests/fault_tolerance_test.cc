// Node-outage tests: hinted handoff and read availability while a replica is
// down, and MiniCrypt continuing to serve through the outage (the paper's
// §2.5.1 point that MiniCrypt inherits the substrate's fault tolerance).

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/core/generic_client.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

ClusterOptions ThreeNodes() {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  return o;
}

TEST(FaultTolerance, ReadsServedWhileReplicaDown) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("x")).ok());
  cluster.SetNodeDown(1, true);
  EXPECT_TRUE(cluster.IsNodeDown(1));
  for (int i = 0; i < 9; ++i) {  // round-robin must skip the down node
    auto row = cluster.Read("t", "p", EncodeKey64(1));
    ASSERT_TRUE(row.ok()) << i;
    EXPECT_EQ(row->cells.at("v").value, "x");
  }
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, HintsQueuedAndReplayedOnRecovery) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("during-outage")).ok());
  }
  EXPECT_EQ(cluster.PendingHints(2), 20u);
  // Node comes back; hints replay and the node serves current data again.
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);  // force reads onto node 2
  for (uint64_t k = 0; k < 20; ++k) {
    auto row = cluster.Read("t", "p", EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, "during-outage");
  }
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, LwwPreservedAcrossHintReplay) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v1")).ok());
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v2-during-outage")).ok());
  cluster.SetNodeDown(2, false);
  // The replayed hint must not be shadowed nor resurrect v1 on node 2.
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v2-during-outage");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, MiniCryptClientUnaffectedByOutage) {
  Cluster cluster(ThreeNodes());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 8;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(client.Put(k, "pre-" + std::to_string(k)).ok());
  }
  cluster.SetNodeDown(0, true);
  // All operations, including the LWT write path, keep working.
  for (uint64_t k = 0; k < 40; k += 5) {
    EXPECT_TRUE(client.Get(k).ok()) << k;
  }
  ASSERT_TRUE(client.Put(7, "updated-during-outage").ok());
  ASSERT_TRUE(client.Delete(9).ok());
  cluster.SetNodeDown(0, false);
  // Recovered node has the outage-era mutations via hints.
  cluster.SetNodeDown(1, true);
  cluster.SetNodeDown(2, true);
  auto v = client.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "updated-during-outage");
  EXPECT_TRUE(client.Get(9).status().IsNotFound());
  cluster.SetNodeDown(1, false);
  cluster.SetNodeDown(2, false);
}

ClusterOptions QuorumThreeNodes() {
  ClusterOptions o = ThreeNodes();
  o.consistency = Consistency::kQuorum;
  return o;
}

TEST(FaultTolerance, HintsSurviveDownUpDownFlaps) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("a")).ok());
  EXPECT_EQ(cluster.PendingHints(2), 1u);
  cluster.SetNodeDown(2, false);  // first recovery replays
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  cluster.SetNodeDown(2, true);  // second outage
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(2), ValueRow("b")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("a2")).ok());
  EXPECT_EQ(cluster.PendingHints(2), 2u);
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  // Node 2 alone must now serve both epochs' writes.
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto r1 = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->cells.at("v").value, "a2");
  auto r2 = cluster.Read("t", "p", EncodeKey64(2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cells.at("v").value, "b");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, HintDrainPreservesLwwOrder) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  // Three stacked hints for the same row; replay must land on the newest.
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v1")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v2")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v3")).ok());
  EXPECT_EQ(cluster.PendingHints(2), 3u);
  cluster.SetNodeDown(2, false);
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v3");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
  // A post-recovery write must not be shadowed by anything replayed earlier.
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v4")).ok());
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v4");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, QuorumAckedWriteSurvivesPermanentReplicaLoss) {
  Cluster cluster(QuorumThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  // Write while node 2 is down: acked by the {0, 1} quorum, hinted to 2.
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("durable")).ok());
  cluster.SetNodeDown(2, false);  // hint replay catches node 2 up
  // Now lose one of the original ackers forever. The surviving quorum {1, 2}
  // must still return the write.
  cluster.SetNodeDown(0, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "durable");
}

TEST(FaultTolerance, QuorumOpsUnavailableWithMajorityDown) {
  Cluster cluster(QuorumThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(1, true);
  cluster.SetNodeDown(2, true);
  // The classic ambiguous write: one replica persisted it, the coordinator
  // reports Unavailable because the quorum did not.
  const Status s = cluster.Write("t", "p", EncodeKey64(1), ValueRow("maybe"));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_TRUE(cluster.Read("t", "p", EncodeKey64(1)).status().IsUnavailable());
  const Status lwt =
      cluster.WriteIf("t", "p", EncodeKey64(2), ValueRow("lwt"), LwtCondition::NotExists());
  EXPECT_TRUE(lwt.IsUnavailable()) << lwt.ToString();
  // Recovery drains the hints; the under-acked write converges everywhere.
  cluster.SetNodeDown(1, false);
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(1), 0u);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "maybe");
}

// Regression for the ambiguous-LWT hardening (fixed injector seed): when an
// LWT applies but the coordinator reports a timeout, the client must re-read
// and verify instead of erroring out or blind-retrying. Reverting the
// re-read-and-verify path in GenericClient::TryMutate fails this test.
TEST(FaultTolerance, AmbiguousLwtPutAndDeleteAreIdempotent) {
  FaultInjector injector(0xA11CE);
  ClusterOptions copts = ThreeNodes();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 8;
  options.hash_partitions = 1;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  // Ambiguous INSERT IF NOT EXISTS of the very first pack.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Put(1, "first").ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 1u);

  // Ambiguous conditional update of an existing pack.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Put(1, "second").ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 2u);
  auto v = client.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "second");

  // No duplicate or resurrected rows anywhere in the keyspace.
  auto rows = client.GetRange(0, 1000);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, 1u);
  EXPECT_EQ((*rows)[0].second, "second");

  // Ambiguous delete: the key must stay deleted, not resurrect on retry.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Delete(1).ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 3u);
  EXPECT_TRUE(client.Get(1).status().IsNotFound());
}

// A replica that missed a write (the coordinator dropped the message and
// queued a hint) must not serve that staleness into a quorum read: the
// coordinator merges past it and synchronously writes the merged row back
// (blocking read repair). Without this, a client verifying an ambiguous LWT
// could ack a write visible on a single replica — which a later writer
// reading a disjoint quorum would silently erase. Reverting
// Cluster::RepairContacted fails the per-replica assertions below.
TEST(FaultTolerance, QuorumReadRepairsReplicaThatMissedAWrite) {
  FaultInjector injector(0xBEEF);
  ClusterOptions copts = QuorumThreeNodes();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  // Drop the coordinator->replica message for the first replica of "p": the
  // node stays up but never sees the row; a hint is queued.
  injector.Script(FaultPoint::kReplicaDrop, 1, "t");
  Row row;
  row.cells["v"] = Cell{"val", 0, false};
  ASSERT_TRUE(cluster.WriteIf("t", "p", EncodeKey64(7), row, LwtCondition::NotExists()).ok());
  ASSERT_EQ(injector.trips(FaultPoint::kReplicaDrop), 1u);

  // One quorum floor read contacts the stale replica, merges past it, and
  // repairs it before answering.
  auto fl = cluster.ReadFloor("t", "p", EncodeKey64(9));
  ASSERT_TRUE(fl.ok()) << fl.status().ToString();
  EXPECT_EQ(fl->first, EncodeKey64(7));
  EXPECT_EQ(fl->second.cells.at("v").value, "val");

  for (int node : cluster.ReplicaNodesFor("p")) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    bool has = false;
    for (const auto& [id, r] : *rows) {
      auto v = r.cells.find("v");
      if (id == EncodeKey64(7) && v != r.cells.end() && v->second.value == "val") {
        has = true;
      }
    }
    EXPECT_TRUE(has) << "node " << node << " still missing the row after read repair";
  }
}

}  // namespace
}  // namespace minicrypt
