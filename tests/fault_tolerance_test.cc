// Node-outage tests: hinted handoff and read availability while a replica is
// down, and MiniCrypt continuing to serve through the outage (the paper's
// §2.5.1 point that MiniCrypt inherits the substrate's fault tolerance).

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/core/generic_client.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

ClusterOptions ThreeNodes() {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  return o;
}

TEST(FaultTolerance, ReadsServedWhileReplicaDown) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("x")).ok());
  cluster.SetNodeDown(1, true);
  EXPECT_TRUE(cluster.IsNodeDown(1));
  for (int i = 0; i < 9; ++i) {  // round-robin must skip the down node
    auto row = cluster.Read("t", "p", EncodeKey64(1));
    ASSERT_TRUE(row.ok()) << i;
    EXPECT_EQ(row->cells.at("v").value, "x");
  }
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, HintsQueuedAndReplayedOnRecovery) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("during-outage")).ok());
  }
  EXPECT_EQ(cluster.PendingHints(2), 20u);
  // Node comes back; hints replay and the node serves current data again.
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);  // force reads onto node 2
  for (uint64_t k = 0; k < 20; ++k) {
    auto row = cluster.Read("t", "p", EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, "during-outage");
  }
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, LwwPreservedAcrossHintReplay) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v1")).ok());
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v2-during-outage")).ok());
  cluster.SetNodeDown(2, false);
  // The replayed hint must not be shadowed nor resurrect v1 on node 2.
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v2-during-outage");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, MiniCryptClientUnaffectedByOutage) {
  Cluster cluster(ThreeNodes());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 8;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(client.Put(k, "pre-" + std::to_string(k)).ok());
  }
  cluster.SetNodeDown(0, true);
  // All operations, including the LWT write path, keep working.
  for (uint64_t k = 0; k < 40; k += 5) {
    EXPECT_TRUE(client.Get(k).ok()) << k;
  }
  ASSERT_TRUE(client.Put(7, "updated-during-outage").ok());
  ASSERT_TRUE(client.Delete(9).ok());
  cluster.SetNodeDown(0, false);
  // Recovered node has the outage-era mutations via hints.
  cluster.SetNodeDown(1, true);
  cluster.SetNodeDown(2, true);
  auto v = client.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "updated-during-outage");
  EXPECT_TRUE(client.Get(9).status().IsNotFound());
  cluster.SetNodeDown(1, false);
  cluster.SetNodeDown(2, false);
}

}  // namespace
}  // namespace minicrypt
