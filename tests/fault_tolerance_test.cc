// Node-outage tests: hinted handoff and read availability while a replica is
// down, and MiniCrypt continuing to serve through the outage (the paper's
// §2.5.1 point that MiniCrypt inherits the substrate's fault tolerance).

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/core/generic_client.h"
#include "src/kvstore/cluster.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

ClusterOptions ThreeNodes() {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  return o;
}

TEST(FaultTolerance, ReadsServedWhileReplicaDown) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("x")).ok());
  cluster.Quiesce();  // land the background replica legs before downing a node
  cluster.SetNodeDown(1, true);
  EXPECT_TRUE(cluster.IsNodeDown(1));
  for (int i = 0; i < 9; ++i) {  // round-robin must skip the down node
    auto row = cluster.Read("t", "p", EncodeKey64(1));
    ASSERT_TRUE(row.ok()) << i;
    EXPECT_EQ(row->cells.at("v").value, "x");
  }
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, HintsQueuedAndReplayedOnRecovery) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("during-outage")).ok());
  }
  EXPECT_EQ(cluster.PendingHints(2), 20u);
  // Node comes back; hints replay and the node serves current data again.
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);  // force reads onto node 2
  for (uint64_t k = 0; k < 20; ++k) {
    auto row = cluster.Read("t", "p", EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, "during-outage");
  }
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, LwwPreservedAcrossHintReplay) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v1")).ok());
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v2-during-outage")).ok());
  cluster.SetNodeDown(2, false);
  // The replayed hint must not be shadowed nor resurrect v1 on node 2.
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v2-during-outage");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, MiniCryptClientUnaffectedByOutage) {
  Cluster cluster(ThreeNodes());
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 8;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(client.Put(k, "pre-" + std::to_string(k)).ok());
  }
  cluster.SetNodeDown(0, true);
  // All operations, including the LWT write path, keep working.
  for (uint64_t k = 0; k < 40; k += 5) {
    EXPECT_TRUE(client.Get(k).ok()) << k;
  }
  ASSERT_TRUE(client.Put(7, "updated-during-outage").ok());
  ASSERT_TRUE(client.Delete(9).ok());
  cluster.SetNodeDown(0, false);
  // Recovered node has the outage-era mutations via hints.
  cluster.SetNodeDown(1, true);
  cluster.SetNodeDown(2, true);
  auto v = client.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "updated-during-outage");
  EXPECT_TRUE(client.Get(9).status().IsNotFound());
  cluster.SetNodeDown(1, false);
  cluster.SetNodeDown(2, false);
}

ClusterOptions QuorumThreeNodes() {
  ClusterOptions o = ThreeNodes();
  o.consistency = Consistency::kQuorum;
  return o;
}

TEST(FaultTolerance, HintsSurviveDownUpDownFlaps) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("a")).ok());
  EXPECT_EQ(cluster.PendingHints(2), 1u);
  cluster.SetNodeDown(2, false);  // first recovery replays
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  cluster.SetNodeDown(2, true);  // second outage
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(2), ValueRow("b")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("a2")).ok());
  EXPECT_EQ(cluster.PendingHints(2), 2u);
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  // Node 2 alone must now serve both epochs' writes.
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto r1 = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->cells.at("v").value, "a2");
  auto r2 = cluster.Read("t", "p", EncodeKey64(2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cells.at("v").value, "b");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, HintDrainPreservesLwwOrder) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(2, true);
  // Three stacked hints for the same row; replay must land on the newest.
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v1")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v2")).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v3")).ok());
  cluster.Quiesce();  // writes ack at quorum; the hint legs finish in background
  EXPECT_EQ(cluster.PendingHints(2), 3u);
  cluster.SetNodeDown(2, false);
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v3");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
  // A post-recovery write must not be shadowed by anything replayed earlier.
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("v4")).ok());
  cluster.Quiesce();  // node 2's leg may still be in flight after the quorum ack
  cluster.SetNodeDown(0, true);
  cluster.SetNodeDown(1, true);
  row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "v4");
  cluster.SetNodeDown(0, false);
  cluster.SetNodeDown(1, false);
}

TEST(FaultTolerance, QuorumAckedWriteSurvivesPermanentReplicaLoss) {
  Cluster cluster(QuorumThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  // Write while node 2 is down: acked by the {0, 1} quorum, hinted to 2.
  cluster.SetNodeDown(2, true);
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("durable")).ok());
  cluster.SetNodeDown(2, false);  // hint replay catches node 2 up
  // Now lose one of the original ackers forever. The surviving quorum {1, 2}
  // must still return the write.
  cluster.SetNodeDown(0, true);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "durable");
}

TEST(FaultTolerance, QuorumOpsUnavailableWithMajorityDown) {
  Cluster cluster(QuorumThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeDown(1, true);
  cluster.SetNodeDown(2, true);
  // The classic ambiguous write: one replica persisted it, the coordinator
  // reports Unavailable because the quorum did not.
  const Status s = cluster.Write("t", "p", EncodeKey64(1), ValueRow("maybe"));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_TRUE(cluster.Read("t", "p", EncodeKey64(1)).status().IsUnavailable());
  const Status lwt =
      cluster.WriteIf("t", "p", EncodeKey64(2), ValueRow("lwt"), LwtCondition::NotExists());
  EXPECT_TRUE(lwt.IsUnavailable()) << lwt.ToString();
  // Recovery drains the hints; the under-acked write converges everywhere.
  cluster.SetNodeDown(1, false);
  cluster.SetNodeDown(2, false);
  EXPECT_EQ(cluster.PendingHints(1), 0u);
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  auto row = cluster.Read("t", "p", EncodeKey64(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "maybe");
}

// Regression for the ambiguous-LWT hardening (fixed injector seed): when an
// LWT applies but the coordinator reports a timeout, the client must re-read
// and verify instead of erroring out or blind-retrying. Reverting the
// re-read-and-verify path in GenericClient::TryMutate fails this test.
TEST(FaultTolerance, AmbiguousLwtPutAndDeleteAreIdempotent) {
  FaultInjector injector(0xA11CE);
  ClusterOptions copts = ThreeNodes();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("tenant");
  MiniCryptOptions options;
  options.pack_rows = 8;
  options.hash_partitions = 1;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());

  // Ambiguous INSERT IF NOT EXISTS of the very first pack.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Put(1, "first").ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 1u);

  // Ambiguous conditional update of an existing pack.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Put(1, "second").ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 2u);
  cluster.Quiesce();  // converge stragglers so the one-replica probes below
                      // can't observe the pre-update pack
  auto v = client.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "second");

  // No duplicate or resurrected rows anywhere in the keyspace.
  auto rows = client.GetRange(0, 1000);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, 1u);
  EXPECT_EQ((*rows)[0].second, "second");

  // Ambiguous delete: the key must stay deleted, not resurrect on retry.
  injector.Script(FaultPoint::kLwtAmbiguous, 1);
  ASSERT_TRUE(client.Delete(1).ok());
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 3u);
  cluster.Quiesce();
  EXPECT_TRUE(client.Get(1).status().IsNotFound());
}

// A replica that missed a write (the coordinator dropped the message and
// queued a hint) must not serve that staleness into a quorum read: the
// coordinator merges past it and synchronously writes the merged row back
// (blocking read repair). Without this, a client verifying an ambiguous LWT
// could ack a write visible on a single replica — which a later writer
// reading a disjoint quorum would silently erase. Reverting
// Cluster::RepairContacted fails the per-replica assertions below.
TEST(FaultTolerance, QuorumReadRepairsReplicaThatMissedAWrite) {
  FaultInjector injector(0xBEEF);
  ClusterOptions copts = QuorumThreeNodes();
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  // Drop the coordinator->replica message for the first replica of "p": the
  // node stays up but never sees the row; a hint is queued.
  injector.Script(FaultPoint::kReplicaDrop, 1, "t");
  Row row;
  row.cells["v"] = Cell{"val", 0, false};
  ASSERT_TRUE(cluster.WriteIf("t", "p", EncodeKey64(7), row, LwtCondition::NotExists()).ok());
  ASSERT_EQ(injector.trips(FaultPoint::kReplicaDrop), 1u);

  // One quorum floor read contacts the stale replica, merges past it, and
  // repairs it before answering.
  auto fl = cluster.ReadFloor("t", "p", EncodeKey64(9));
  ASSERT_TRUE(fl.ok()) << fl.status().ToString();
  EXPECT_EQ(fl->first, EncodeKey64(7));
  EXPECT_EQ(fl->second.cells.at("v").value, "val");

  for (int node : cluster.ReplicaNodesFor("p")) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    bool has = false;
    for (const auto& [id, r] : *rows) {
      auto v = r.cells.find("v");
      if (id == EncodeKey64(7) && v != r.cells.end() && v->second.value == "val") {
        has = true;
      }
    }
    EXPECT_TRUE(has) << "node " << node << " still missing the row after read repair";
  }
}

// --- Crash-restart lifecycle -------------------------------------------------

TEST(CrashRestart, QuorumAckedWritesSurviveACrashThatTearsTheLog) {
  FaultInjector injector(0xCAFE);
  injector.SetRate(FaultPoint::kCrash, 1.0);  // make CrashNode trips assertable
  ClusterOptions copts = QuorumThreeNodes();
  copts.fault_injector = &injector;
  copts.engine.commitlog_sync_every_appends = 8;  // leave an unsynced tail at risk
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("acked")).ok());
  }
  // Crash node 1: its memtable vanishes and its log loses a seeded slice of
  // the unsynced tail.
  ASSERT_TRUE(cluster.CrashNode(1).ok());
  EXPECT_TRUE(cluster.IsNodeDown(1));
  EXPECT_GE(injector.trips(FaultPoint::kCrash), 1u);
  // The two intact replicas still form a quorum for every acked write.
  for (uint64_t k = 0; k < 30; ++k) {
    auto row = cluster.Read("t", "p", EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, "acked");
  }
  ASSERT_TRUE(cluster.RestartNode(1).ok());
  EXPECT_FALSE(cluster.IsNodeDown(1));
  EXPECT_EQ(cluster.PendingHints(1), 0u);  // restart drained the hints
  // Writes during the outage were hinted; anti-entropy closes whatever the
  // torn tail lost. After repair node 1 must hold every row, verified via the
  // debug scan so no failover can mask a hole.
  ASSERT_TRUE(cluster.AntiEntropyRepair("t").ok());
  auto rows = cluster.DebugPartitionRows(1, "t", "p");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 30u);
}

TEST(CrashRestart, RestartReplaysTheCommitLogIntoTheMemtable) {
  ClusterOptions copts = ThreeNodes();  // CL=ONE, sync_every defaults to 1
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("durable")).ok());
  }
  ASSERT_TRUE(cluster.CrashNode(0).ok());
  ASSERT_TRUE(cluster.RestartNode(0).ok());
  // Every append was synced, so node 0 alone must serve all ten rows.
  auto rows = cluster.DebugPartitionRows(0, "t", "p");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST(CrashRestart, LifecycleGuards) {
  Cluster cluster(ThreeNodes());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  EXPECT_FALSE(cluster.CrashNode(-1).ok());
  EXPECT_FALSE(cluster.CrashNode(99).ok());
  EXPECT_FALSE(cluster.RestartNode(99).ok());
  ASSERT_TRUE(cluster.CrashNode(2).ok());
  EXPECT_FALSE(cluster.CrashNode(2).ok());  // already down
  ASSERT_TRUE(cluster.RestartNode(2).ok());
  ASSERT_TRUE(cluster.RestartNode(2).ok());  // restart of an up node is a no-op
}

// --- Corruption detection and scrub ------------------------------------------

// The acceptance property: an injected corrupted block is NEVER returned to a
// client as data. With every at-rest block corrupted on every replica, reads
// either come from memtables (correct value) or fail loudly with Corruption.
TEST(Corruption, CorruptBlocksAreNeverServedAsData) {
  FaultInjector injector(0xBAD);
  injector.SetRate(FaultPoint::kMediaCorruption, 1.0);
  ClusterOptions copts = ThreeNodes();
  copts.fault_injector = &injector;
  copts.engine.memtable_flush_bytes = 2 * 1024;  // flush often so blocks exist
  copts.engine.sstable.block_bytes = 512;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(
        cluster.Write("t", "p", EncodeKey64(k), ValueRow("expected-" + std::to_string(k))).ok());
  }
  Counter* detected = MetricsRegistry::Instance().GetCounter("storage.corruption.detected");
  const uint64_t detected_before = detected->Value();
  int corrupt_errors = 0;
  for (uint64_t k = 0; k < 200; ++k) {
    auto row = cluster.Read("t", "p", EncodeKey64(k));
    if (row.ok()) {
      EXPECT_EQ(row->cells.at("v").value, "expected-" + std::to_string(k)) << k;
    } else {
      EXPECT_TRUE(row.status().IsCorruption()) << row.status().ToString();
      ++corrupt_errors;
    }
  }
  EXPECT_GT(corrupt_errors, 0);  // the schedule did corrupt flushed rows
  EXPECT_GT(detected->Value(), detected_before);
}

// A single corrupted block on one replica must be invisible to clients: the
// coordinator fails over to an intact replica.
TEST(Corruption, ReadsFailOverPastACorruptReplica) {
  FaultInjector injector(0x5C12);
  injector.Script(FaultPoint::kMediaCorruption, 1);  // one block, one replica
  ClusterOptions copts = ThreeNodes();
  copts.fault_injector = &injector;
  copts.engine.sstable.block_bytes = 512;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("v" + std::to_string(k))).ok());
  }
  ASSERT_TRUE(cluster.FlushAll().ok());
  ASSERT_EQ(injector.trips(FaultPoint::kMediaCorruption), 1u);
  // Several passes so CL=ONE round-robin contacts the corrupt replica for
  // every key at least once.
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t k = 0; k < 60; ++k) {
      auto row = cluster.Read("t", "p", EncodeKey64(k));
      ASSERT_TRUE(row.ok()) << "pass " << pass << " key " << k << ": "
                            << row.status().ToString();
      EXPECT_EQ(row->cells.at("v").value, "v" + std::to_string(k));
    }
  }
}

TEST(Corruption, ScrubNodeRebuildsQuarantinedRangesFromPeers) {
  FaultInjector injector(0x5C4B);
  injector.Script(FaultPoint::kMediaCorruption, 1);
  ClusterOptions copts = ThreeNodes();
  copts.fault_injector = &injector;
  copts.engine.sstable.block_bytes = 512;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("v" + std::to_string(k))).ok());
  }
  ASSERT_TRUE(cluster.FlushAll().ok());
  ASSERT_EQ(injector.trips(FaultPoint::kMediaCorruption), 1u);

  Counter* rebuilt = MetricsRegistry::Instance().GetCounter("scrub.blocks_rebuilt");
  const uint64_t rebuilt_before = rebuilt->Value();
  size_t total_rebuilt = 0;
  for (int node = 0; node < 3; ++node) {
    auto n = cluster.ScrubNode(node);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    total_rebuilt += *n;
  }
  EXPECT_GE(total_rebuilt, 1u);  // exactly one replica had the bad block
  EXPECT_EQ(rebuilt->Value(), rebuilt_before + total_rebuilt);

  // After scrub every replica independently holds every row with the right
  // value — the quarantined range was re-streamed before the table dropped.
  for (int node = 0; node < 3; ++node) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok()) << "node " << node << ": " << rows.status().ToString();
    ASSERT_EQ(rows->size(), 60u) << "node " << node;
    for (const auto& [key, row] : *rows) {
      EXPECT_EQ(row.cells.at("v").value, "v" + std::to_string(*DecodeKey64(key)));
    }
  }
  // A second scrub finds nothing to do.
  for (int node = 0; node < 3; ++node) {
    auto n = cluster.ScrubNode(node);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
  }
  EXPECT_FALSE(cluster.ScrubNode(99).ok());
}

// --- Merkle anti-entropy -------------------------------------------------------

TEST(AntiEntropy, RepairConvergesAReplicaThatLostItsUnsyncedTail) {
  ClusterOptions copts = ThreeNodes();
  copts.engine.commitlog_sync_every_appends = 1000;  // whole log unsynced
  FaultInjector injector(0xAE01);
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("v" + std::to_string(k))).ok());
  }
  // Node 2 crashes with everything in the unsynced tail: the writes were
  // delivered (no hints), so nothing but anti-entropy can close the gap.
  ASSERT_TRUE(cluster.CrashNode(2).ok());
  ASSERT_TRUE(cluster.RestartNode(2).ok());
  EXPECT_EQ(cluster.PendingHints(2), 0u);
  auto before = cluster.DebugPartitionRows(2, "t", "p");
  ASSERT_TRUE(before.ok());
  ASSERT_LT(before->size(), 40u) << "crash should have lost the unsynced tail";

  Counter* streamed = MetricsRegistry::Instance().GetCounter("repair.rows_streamed");
  Counter* diverged = MetricsRegistry::Instance().GetCounter("repair.ranges_diverged");
  const uint64_t streamed_before = streamed->Value();
  const uint64_t diverged_before = diverged->Value();
  ASSERT_TRUE(cluster.AntiEntropyRepair("t").ok());
  EXPECT_GT(streamed->Value(), streamed_before);
  EXPECT_GT(diverged->Value(), diverged_before);

  for (int node = 0; node < 3; ++node) {
    auto rows = cluster.DebugPartitionRows(node, "t", "p");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 40u) << "node " << node;
    for (const auto& [key, row] : *rows) {
      EXPECT_EQ(row.cells.at("v").value, "v" + std::to_string(*DecodeKey64(key)));
    }
  }
  // Converged replicas: a second pass streams nothing.
  const uint64_t streamed_mid = streamed->Value();
  ASSERT_TRUE(cluster.AntiEntropyRepair("t").ok());
  EXPECT_EQ(streamed->Value(), streamed_mid);
}

TEST(AntiEntropy, RepairPropagatesTombstonesNotJustLiveRows) {
  ClusterOptions copts = ThreeNodes();
  copts.engine.commitlog_sync_every_appends = 1000;
  // Seeded so node 0's crash draw tears at least one byte: any tear loses the
  // tail record, which below is the unsynced tombstone.
  FaultInjector injector(0xAE02);
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("live")).ok());
  ASSERT_TRUE(cluster.FlushAll().ok());  // the live row is at rest everywhere
  Row tomb;
  tomb.cells["v"] = Cell{"", 0, true};
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), tomb).ok());
  // Node 0 loses the (unsynced, memtable-only) tombstone in a crash.
  ASSERT_TRUE(cluster.CrashNode(0).ok());
  ASSERT_TRUE(cluster.RestartNode(0).ok());
  auto rows = cluster.DebugPartitionRows(0, "t", "p");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u) << "node 0 should have resurrected the row pre-repair";
  // Anti-entropy must stream the tombstone, not skip the "deleted" row.
  ASSERT_TRUE(cluster.AntiEntropyRepair("t").ok());
  rows = cluster.DebugPartitionRows(0, "t", "p");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty()) << "tombstone did not propagate to node 0";
}

}  // namespace
}  // namespace minicrypt
