#include "src/common/random.h"

#include <gtest/gtest.h>

#include <array>

namespace minicrypt {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    differs |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRangeAndCoversIt) {
  Rng rng(5);
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Uniform(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<size_t>(v)]++;
  }
  for (int c : counts) {
    // Each bucket expects 1000; allow wide slack.
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformRange(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, BytesLengthExact) {
  Rng rng(13);
  for (size_t n : {0, 1, 7, 8, 9, 100}) {
    EXPECT_EQ(rng.Bytes(n).size(), n);
  }
}

TEST(Zipfian, SkewConcentratesOnLowKeys) {
  ZipfianGenerator gen(1000, 0.99, 17);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = gen.Next();
    ASSERT_LT(v, 1000u);
    if (v < 10) {
      ++low;
    }
  }
  // With theta=0.99 the head is heavy: far more than the uniform 1%.
  EXPECT_GT(low, 2000);
}

TEST(Zipfian, LowThetaApproachesUniform) {
  ZipfianGenerator gen(1000, 0.05, 19);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (gen.Next() < 10) {
      ++low;
    }
  }
  // Near-uniform: about 1% of draws in the first 10 keys (allow 5x slack).
  EXPECT_LT(low, 500);
}

TEST(ShuffledIndices, IsAPermutation) {
  const auto idx = ShuffledIndices(100, 23);
  ASSERT_EQ(idx.size(), 100u);
  std::vector<bool> seen(100, false);
  for (uint64_t v : idx) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace minicrypt
