// Decoder robustness: every parser in the system must survive arbitrary
// bytes — returning Corruption (or, rarely, a spurious success whose output
// is at least well-formed) rather than crashing or over-allocating. These are
// deterministic fuzz-smoke sweeps, not coverage-guided fuzzing, but they run
// thousands of adversarial inputs through each decoder.

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/common/cpu_features.h"
#include "src/common/random.h"
#include "src/compress/compressor.h"
#include "src/core/pack.h"
#include "src/crypto/crypto.h"
#include "src/crypto/ope.h"
#include "src/crypto/padding.h"
#include "src/kvstore/commit_log.h"
#include "src/kvstore/row.h"

namespace minicrypt {
namespace {

std::string RandomGarbage(Rng* rng, size_t max_len) {
  return rng->Bytes(rng->Uniform(max_len + 1));
}

// Random bytes with a plausible-looking header (more likely to get past the
// first parse stage and exercise deeper code).
std::string SeededGarbage(Rng* rng, std::string_view valid_prefix, size_t max_tail) {
  std::string out(valid_prefix.substr(0, rng->Uniform(valid_prefix.size() + 1)));
  out += rng->Bytes(rng->Uniform(max_tail + 1));
  return out;
}

TEST(FuzzSmoke, CodecDecompressSurvivesGarbage) {
  Rng rng(11);
  for (std::string_view name : AllCompressorNames()) {
    const Compressor* codec = FindCompressor(name);
    const std::string valid = *codec->Compress("some perfectly ordinary payload data");
    for (int i = 0; i < 400; ++i) {
      const std::string input = i % 2 == 0 ? RandomGarbage(&rng, 300)
                                           : SeededGarbage(&rng, valid, 100);
      auto out = codec->Decompress(input);
      if (out.ok()) {
        EXPECT_LE(out->size(), 1u << 20) << name;  // no absurd allocation
      }
    }
  }
}

// The SIMD decompress fast paths must be exactly as robust as the scalar
// oracle: run the same adversarial sweep at every dispatch level the host
// supports and require identical ok/corruption verdicts (and bytes).
TEST(FuzzSmoke, CodecDecompressGarbageAgreesAcrossDispatchLevels) {
  const SimdLevel ambient = CurrentSimdLevel();
  const auto levels = SupportedSimdLevels();
  for (std::string_view name : {"lz4like", "snappylike"}) {
    const Compressor* codec = FindCompressor(name);
    Rng rng(41);
    const std::string valid = *codec->Compress("some perfectly ordinary payload data");
    for (int i = 0; i < 300; ++i) {
      const std::string input = i % 2 == 0 ? RandomGarbage(&rng, 300)
                                           : SeededGarbage(&rng, valid, 100);
      OverrideSimdLevelForTest(SimdLevel::kScalar);
      const auto scalar = codec->Decompress(input);
      for (SimdLevel level : levels) {
        OverrideSimdLevelForTest(level);
        const auto out = codec->Decompress(input);
        ASSERT_EQ(out.ok(), scalar.ok()) << name << " level " << SimdLevelName(level);
        if (out.ok()) {
          ASSERT_EQ(*out, *scalar) << name << " level " << SimdLevelName(level);
        }
      }
    }
  }
  OverrideSimdLevelForTest(ambient);
}

TEST(FuzzSmoke, PackDeserializeSurvivesGarbage) {
  Rng rng(13);
  Pack pack;
  pack.Upsert(EncodeKey64(1), "one");
  pack.Upsert(EncodeKey64(2), "two");
  const std::string valid = pack.Serialize();
  for (int i = 0; i < 1000; ++i) {
    const std::string input =
        i % 2 == 0 ? RandomGarbage(&rng, 200) : SeededGarbage(&rng, valid, 60);
    auto out = Pack::Deserialize(input);
    if (out.ok()) {
      // A spurious parse must still satisfy the sorted-unique invariant.
      const auto& entries = out->entries();
      for (size_t j = 1; j < entries.size(); ++j) {
        EXPECT_LT(entries[j - 1].key, entries[j].key);
      }
    }
  }
}

// The zero-copy adopt path must reject exactly what the copying path rejects
// and produce identical entries when both accept.
TEST(FuzzSmoke, PackFromSerializedMatchesDeserializeOnGarbage) {
  Rng rng(47);
  Pack pack;
  pack.Upsert(EncodeKey64(1), "one");
  pack.Upsert(EncodeKey64(2), "two");
  const std::string valid = pack.Serialize();
  for (int i = 0; i < 500; ++i) {
    const std::string input =
        i % 2 == 0 ? RandomGarbage(&rng, 200) : SeededGarbage(&rng, valid, 60);
    const auto copied = Pack::Deserialize(input);
    std::string adopt_me = input;
    const auto adopted = Pack::FromSerialized(std::move(adopt_me));
    ASSERT_EQ(copied.ok(), adopted.ok());
    if (copied.ok()) {
      ASSERT_EQ(copied->entries().size(), adopted->entries().size());
      for (size_t j = 0; j < copied->entries().size(); ++j) {
        EXPECT_EQ(copied->entries()[j].key, adopted->entries()[j].key);
        EXPECT_EQ(copied->entries()[j].value, adopted->entries()[j].value);
      }
    }
  }
}

TEST(FuzzSmoke, RowDecodeSurvivesGarbage) {
  Rng rng(17);
  Row row;
  row.cells["v"] = Cell{"value", 3, false};
  std::string valid;
  EncodeRow(row, &valid);
  for (int i = 0; i < 1000; ++i) {
    const std::string input =
        i % 2 == 0 ? RandomGarbage(&rng, 120) : SeededGarbage(&rng, valid, 60);
    std::string_view view = input;
    auto out = DecodeRow(&view);
    (void)out;  // must simply not crash / overallocate
  }
}

TEST(FuzzSmoke, AesDecryptSurvivesGarbage) {
  Rng rng(19);
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  for (int i = 0; i < 300; ++i) {
    auto out = AesCbcDecrypt(key, RandomGarbage(&rng, 256));
    (void)out;
  }
}

// GCM is authenticated: garbage envelopes must fail cleanly, and truncated /
// mutated real envelopes must fail, at every dispatch level.
TEST(FuzzSmoke, AesGcmDecryptSurvivesGarbage) {
  const SimdLevel ambient = CurrentSimdLevel();
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string envelope = *AesGcmEncrypt(key, "an authenticated payload");
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevelForTest(level);
    Rng rng(43);
    for (int i = 0; i < 300; ++i) {
      auto out = AesGcmDecrypt(key, RandomGarbage(&rng, 256));
      // A random envelope forging a 128-bit tag "essentially never" happens.
      EXPECT_FALSE(out.ok());
    }
    for (size_t cut = 0; cut < envelope.size(); ++cut) {
      EXPECT_FALSE(AesGcmDecrypt(key, envelope.substr(0, cut)).ok());
    }
    for (int i = 0; i < 200; ++i) {
      std::string mutated = envelope;
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
      EXPECT_FALSE(AesGcmDecrypt(key, mutated).ok());
    }
  }
  OverrideSimdLevelForTest(ambient);
}

TEST(FuzzSmoke, PaddingUnpadSurvivesGarbage) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    auto out = PaddingTiers::Unpad(RandomGarbage(&rng, 100));
    (void)out;
  }
}

TEST(FuzzSmoke, OpeDecryptSurvivesGarbage) {
  Rng rng(29);
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  for (int i = 0; i < 200; ++i) {
    auto out = ope.Decrypt(RandomGarbage(&rng, 16));
    (void)out;
  }
}

TEST(FuzzSmoke, CommitLogReplaySurvivesGarbage) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    auto sink = std::make_unique<MemoryLogSink>();
    ASSERT_TRUE(sink->Append(RandomGarbage(&rng, 400)).ok());
    CommitLog log(std::move(sink), nullptr);
    int replayed = 0;
    ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) { ++replayed; }).ok());
    // Garbage should essentially never pass the CRC.
    EXPECT_LE(replayed, 1);
  }
}

TEST(FuzzSmoke, VarintDecodersSurviveGarbage) {
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomGarbage(&rng, 24);
    std::string_view v1 = input;
    (void)GetVarint64(&v1);
    std::string_view v2 = input;
    (void)GetLengthPrefixed(&v2);
    std::string_view v3 = input;
    (void)GetFixed64(&v3);
    (void)DecodeRowKey(input);
  }
}

}  // namespace
}  // namespace minicrypt
