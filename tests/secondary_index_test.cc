// Differential and property tests for the encrypted secondary index
// (src/index/secondary_index.h; docs/INDEXING.md).
//
// The differential suite runs seeded random operation sequences against a
// plaintext shadow map and requires GetRangeByValue to be byte-identical to
// the oracle at every leakage level — while the index accumulates stale
// entries (deletes, attribute rewrites) that only read-time verification can
// hide. The POPE property suite pins the leakage contract itself: an
// unqueried buffer is never sorted, and the number of materialized sorted
// regions is bounded by the number of distinct queried ranges. The crash
// suite aborts the drain/seal/split protocols at every fail point and proves
// entries are duplicated, never lost. The fault suite drives the same
// protocols from the cluster's deterministic FaultInjector (kIndexSplit /
// kIndexPersist) and requires exact answers while the points trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/generic_client.h"
#include "src/crypto/crypto.h"
#include "src/index/secondary_index.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/workload/secondary.h"

namespace minicrypt {
namespace {

using Rows = std::vector<std::pair<uint64_t, std::string>>;

MiniCryptOptions SmallPackOptions() {
  MiniCryptOptions options;
  options.pack_rows = 6;  // frequent primary splits under the test keyspaces
  options.hash_partitions = 2;
  return options;
}

SecondaryIndexOptions IndexOptions(IndexLeakage leakage, size_t leaf_rows = 5) {
  SecondaryIndexOptions iopts;
  iopts.leakage = leakage;
  iopts.leaf_rows = leaf_rows;
  return iopts;
}

// The plaintext oracle: rows of `model` whose indexed attribute lies in
// [lo, hi], ascending by primary key — exactly what GetRangeByValue promises.
Rows OracleRows(const std::map<uint64_t, std::string>& model, uint64_t lo, uint64_t hi) {
  Rows out;
  for (const auto& [pk, value] : model) {
    const auto attr = DecodeIndexedAttr(value);
    if (attr.has_value() && *attr >= lo && *attr <= hi) {
      out.emplace_back(pk, value);
    }
  }
  return out;
}

void ExpectMatchesOracle(GenericClient* client, const std::map<uint64_t, std::string>& model,
                         uint64_t lo, uint64_t hi, std::string_view what) {
  auto got = client->GetRangeByValue(lo, hi);
  ASSERT_TRUE(got.ok()) << what << " [" << lo << ", " << hi << "]: " << got.status().ToString();
  EXPECT_EQ(*got, OracleRows(model, lo, hi)) << what << " [" << lo << ", " << hi << "]";
}

// --- Differential suite -------------------------------------------------------

class SecondaryIndexDifferential : public ::testing::TestWithParam<IndexLeakage> {};

// Seeded random interleaving of puts (including attribute rewrites), deletes,
// and range queries, each query checked byte-for-byte against the shadow map.
// Deletes and rewrites leave stale index entries behind by design
// (index-first maintenance never removes entries); the oracle match proves
// read-time verification filters every one of them, at every leakage level.
TEST_P(SecondaryIndexDifferential, RandomOpsMatchShadowOracle) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("index-diff");
  GenericClient client(&cluster, SmallPackOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(GetParam())).ok());

  constexpr uint64_t kKeyspace = 150;
  constexpr uint64_t kAttrDomain = 40;
  std::map<uint64_t, std::string> model;
  Rng rng(0x1DE7ED);  // fixed seed: a failure replays exactly
  for (int op = 0; op < 600; ++op) {
    const uint64_t pk = rng.Uniform(kKeyspace);
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 55) {  // put (rewrites draw a fresh attr, staling the old entry)
      const uint64_t attr = rng.Uniform(kAttrDomain);
      const std::string value = EncodeIndexedValue(attr, "p" + std::to_string(op));
      ASSERT_TRUE(client.Put(pk, value).ok()) << "op " << op;
      model[pk] = value;
    } else if (kind < 65) {  // delete (the index keeps the entry; reads must not)
      ASSERT_TRUE(client.Delete(pk).ok()) << "op " << op;
      model.erase(pk);
    } else if (kind < 72) {  // unindexed value: too short to decode an attribute
      ASSERT_TRUE(client.Put(pk, "raw").ok()) << "op " << op;
      model[pk] = "raw";
    } else if (kind < 88) {  // range query
      const uint64_t lo = rng.Uniform(kAttrDomain);
      const uint64_t hi = lo + rng.Uniform(8);
      ExpectMatchesOracle(&client, model, lo, hi, "mid-run range");
    } else {  // point query
      const uint64_t a = rng.Uniform(kAttrDomain);
      ExpectMatchesOracle(&client, model, a, a, "mid-run point");
    }
  }

  // Final audit: the full domain, every point, and an empty range.
  ExpectMatchesOracle(&client, model, 0, kAttrDomain - 1, "final full");
  ExpectMatchesOracle(&client, model, 0, ~0ULL, "final unbounded");
  for (uint64_t a = 0; a < kAttrDomain; ++a) {
    ExpectMatchesOracle(&client, model, a, a, "final point");
  }
  ExpectMatchesOracle(&client, model, kAttrDomain + 100, kAttrDomain + 200, "final empty");
  EXPECT_FALSE(client.GetRangeByValue(5, 4).ok()) << "inverted range must be rejected";

  // The run must have actually exercised stale filtering, or the oracle match
  // proved less than it claims.
  const SecondaryIndexStats& stats = client.index()->stats();
  EXPECT_GT(stats.stale_filtered.load(), 0u);
  EXPECT_GT(stats.lookups.load(), 0u);
}

// Bulk preload through the wholesale path (segments / sorted leaves written
// directly), then the workload generator's own oracle over its query mix.
TEST_P(SecondaryIndexDifferential, BulkLoadMatchesWorkloadOracle) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("index-bulk");
  MiniCryptOptions options = SmallPackOptions();
  options.pack_rows = 25;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(GetParam(), /*leaf_rows=*/40)).ok());

  SecondaryWorkloadOptions wopts;
  wopts.row_count = 400;
  wopts.attr_domain = 120;
  wopts.payload_bytes = 24;
  wopts.range_selectivity = 0.05;
  wopts.seed = 11;
  SecondaryWorkload workload(wopts);
  ASSERT_TRUE(client.BulkLoadIndexed(workload.MaterializeRows()).ok());

  for (uint64_t q = 0; q < 24; ++q) {
    const auto [lo, hi] = workload.RangeFor(q);
    auto got = client.GetRangeByValue(lo, hi);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::vector<uint64_t> pks;
    pks.reserve(got->size());
    for (const auto& [pk, value] : *got) {
      pks.push_back(pk);
      EXPECT_EQ(value, workload.ValueFor(pk));
    }
    EXPECT_EQ(pks, workload.OracleRange(lo, hi)) << "query " << q;
  }
}

// Concurrent writers racing puts and deletes while the index maintains itself
// through the same LWT machinery as the primary table. Whatever interleaving
// won, the index must agree with the primary table afterwards: a by-value
// range returns exactly the surviving rows whose attribute is in range.
TEST_P(SecondaryIndexDifferential, ConcurrentWritersStayConsistentWithPrimary) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("index-mt");
  const MiniCryptOptions options = SmallPackOptions();
  GenericClient setup(&cluster, options, key);
  ASSERT_TRUE(setup.CreateTable().ok());
  ASSERT_TRUE(setup.CreateIndex(IndexOptions(GetParam())).ok());

  constexpr int kThreads = 4;
  constexpr uint64_t kKeyspace = 80;
  constexpr uint64_t kAttrDomain = 24;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GenericClient worker(&cluster, options, key);
      ASSERT_TRUE(worker.CreateIndex(IndexOptions(GetParam())).ok());
      Rng rng(static_cast<uint64_t>(t) * 977 + 5);
      for (int op = 0; op < 120; ++op) {
        const uint64_t pk = rng.Uniform(kKeyspace);
        if (rng.Bernoulli(0.8)) {
          const std::string value = EncodeIndexedValue(
              rng.Uniform(kAttrDomain), "t" + std::to_string(t) + "#" + std::to_string(op));
          ASSERT_TRUE(worker.Put(pk, value).ok());
        } else {
          ASSERT_TRUE(worker.Delete(pk).ok());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // The primary table is the ground truth for whatever final state the race
  // produced; the index must reconstruct it exactly, range by range.
  auto all = setup.GetRange(0, kKeyspace);
  ASSERT_TRUE(all.ok());
  std::map<uint64_t, std::string> model(all->begin(), all->end());
  ExpectMatchesOracle(&setup, model, 0, kAttrDomain - 1, "post-race full");
  for (uint64_t lo = 0; lo < kAttrDomain; lo += 5) {
    ExpectMatchesOracle(&setup, model, lo, lo + 4, "post-race range");
  }
}

INSTANTIATE_TEST_SUITE_P(Leakage, SecondaryIndexDifferential,
                         ::testing::Values(IndexLeakage::kNoOrder, IndexLeakage::kQueriedOrder,
                                           IndexLeakage::kTotalOrder),
                         [](const auto& info) {
                           return std::string(IndexLeakageName(info.param));
                         });

// --- POPE leakage properties --------------------------------------------------

// Reads the server-visible sorted-leaf partition of the index's backing
// table: any row existing there is order the server has learned.
size_t ServerVisibleLeaves(Cluster* cluster, const std::string& backing_table) {
  auto rows = cluster->ReadRange(backing_table, kIndexLeafPartition, "",
                                 std::string(kOpeCiphertextBytes, '\xff'));
  if (!rows.ok()) {
    ADD_FAILURE() << rows.status().ToString();
    return 0;
  }
  return rows->size();
}

// The core POPE no-leak property: inserts alone never sort anything. No
// sorted leaf, no manifest, no drain — the server's view of an unqueried
// index is an opaque buffer.
TEST(SecondaryIndexPope, UnqueriedBufferIsNeverSorted) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("pope");
  GenericClient client(&cluster, SmallPackOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(IndexLeakage::kQueriedOrder)).ok());

  Rng rng(42);
  for (int i = 0; i < 120; ++i) {
    const std::string value = EncodeIndexedValue(rng.Next(), "v" + std::to_string(i));
    ASSERT_TRUE(client.Put(rng.Uniform(500), value).ok());
  }

  const auto& index = client.index();
  auto regions = index->SortedRegions();
  ASSERT_TRUE(regions.ok());
  EXPECT_EQ(*regions, 0u);
  EXPECT_EQ(index->stats().drains.load(), 0u);
  EXPECT_EQ(ServerVisibleLeaves(&cluster, index->backing_table()), 0u);
  EXPECT_TRUE(cluster.Read(index->backing_table(), kIndexRootPartition, kIndexRootRow)
                  .status()
                  .IsNotFound())
      << "a manifest exists although nothing was ever queried";
}

// The leakage-audit bound: sorted regions never exceed the number of distinct
// queried ranges. Re-querying a covered range leaks nothing new (and commits
// no new drain); overlapping queries merge regions, shrinking the count.
TEST(SecondaryIndexPope, SortedRegionsBoundedByDistinctQueriedRanges) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("pope2");
  GenericClient client(&cluster, SmallPackOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(IndexLeakage::kQueriedOrder)).ok());

  std::map<uint64_t, std::string> model;
  for (uint64_t pk = 0; pk < 100; ++pk) {
    const std::string value = EncodeIndexedValue(pk, "v");
    ASSERT_TRUE(client.Put(pk, value).ok());
    model[pk] = value;
  }
  const auto& index = client.index();

  // Distinct range #1.
  ExpectMatchesOracle(&client, model, 10, 19, "range A");
  EXPECT_EQ(index->SortedRegions().value(), 1u);
  EXPECT_EQ(index->stats().drains.load(), 1u);

  // Same range again: covered, answered from the sorted leaves — no drain.
  ExpectMatchesOracle(&client, model, 10, 19, "range A again");
  EXPECT_EQ(index->SortedRegions().value(), 1u);
  EXPECT_EQ(index->stats().drains.load(), 1u);
  // A strict sub-range is covered too.
  ExpectMatchesOracle(&client, model, 12, 15, "range A subset");
  EXPECT_EQ(index->SortedRegions().value(), 1u);
  EXPECT_EQ(index->stats().drains.load(), 1u);

  // Distinct, disjoint range #2.
  ExpectMatchesOracle(&client, model, 40, 49, "range B");
  EXPECT_EQ(index->SortedRegions().value(), 2u);

  // Distinct range #3 spanning both: regions merge, the count shrinks.
  ExpectMatchesOracle(&client, model, 5, 60, "range C");
  EXPECT_EQ(index->SortedRegions().value(), 1u);

  // The bound held throughout: 3 distinct ranges queried, never more than 2
  // regions materialized at once — and the obs gauge mirrors the manifest.
  EXPECT_LE(index->SortedRegions().value(), 3u);
  EXPECT_EQ(MetricsRegistry::Instance().GetGauge("index.sorted_regions")->Value(),
            static_cast<double>(index->SortedRegions().value()));
}

// kNoOrder is the zero-leakage end of the knob: queries are answered but no
// leaf (and no manifest) ever materializes, whatever is asked.
TEST(SecondaryIndexPope, NoOrderNeverMaterializesLeaves) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("pope3");
  GenericClient client(&cluster, SmallPackOptions(), key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(IndexLeakage::kNoOrder)).ok());

  std::map<uint64_t, std::string> model;
  for (uint64_t pk = 0; pk < 60; ++pk) {
    const std::string value = EncodeIndexedValue(pk % 20, "v" + std::to_string(pk));
    ASSERT_TRUE(client.Put(pk, value).ok());
    model[pk] = value;
  }
  for (uint64_t lo = 0; lo < 20; lo += 3) {
    ExpectMatchesOracle(&client, model, lo, lo + 4, "no-order range");
  }
  const auto& index = client.index();
  EXPECT_EQ(index->SortedRegions().value(), 0u);
  EXPECT_EQ(index->stats().drains.load(), 0u);
  EXPECT_EQ(ServerVisibleLeaves(&cluster, index->backing_table()), 0u);
}

// --- Crash-resume at every fail point -----------------------------------------

struct CrashFixture {
  Cluster cluster{ClusterOptions::ForTest()};
  SymmetricKey key = SymmetricKey::FromSeed("index-crash");
  GenericClient client;
  std::map<uint64_t, std::string> model;

  explicit CrashFixture(IndexLeakage leakage, size_t leaf_rows = 5,
                        size_t buffer_seal_rows = 0)
      : client(&cluster, SmallPackOptions(), key) {
    EXPECT_TRUE(client.CreateTable().ok());
    SecondaryIndexOptions iopts = IndexOptions(leakage, leaf_rows);
    iopts.buffer_seal_rows = buffer_seal_rows;
    EXPECT_TRUE(client.CreateIndex(iopts).ok());
  }

  Status Put(uint64_t pk, uint64_t attr) {
    const std::string value = EncodeIndexedValue(attr, "v" + std::to_string(pk));
    const Status s = client.Put(pk, value);
    if (s.ok()) {
      model[pk] = value;
    }
    return s;
  }
};

// Drain aborts after writing leaves, before the manifest commit point. The
// query still answers exactly (fallback scan), nothing was leaked into the
// manifest, and the next query completes the drain from intact buffers.
TEST(SecondaryIndexCrash, DrainAbortedBeforeManifestCommitLosesNothing) {
  CrashFixture fx(IndexLeakage::kQueriedOrder);
  for (uint64_t pk = 0; pk < 30; ++pk) {
    ASSERT_TRUE(fx.Put(pk, pk).ok());
  }
  const auto& index = fx.client.index();

  index->set_fail_point(SecondaryIndex::FailPoint::kAfterLeafWrite);
  ExpectMatchesOracle(&fx.client, fx.model, 5, 12, "query during crash");
  EXPECT_EQ(index->stats().drains.load(), 0u) << "aborted drain must not count as committed";
  EXPECT_EQ(index->SortedRegions().value(), 0u) << "manifest committed past the abort point";

  // Resume: the same query drains cleanly; the orphaned leaves from the
  // crashed attempt are rewritten, not trusted.
  index->set_fail_point(SecondaryIndex::FailPoint::kNone);
  ExpectMatchesOracle(&fx.client, fx.model, 5, 12, "query after resume");
  EXPECT_EQ(index->stats().drains.load(), 1u);
  EXPECT_EQ(index->SortedRegions().value(), 1u);
  ExpectMatchesOracle(&fx.client, fx.model, 0, 29, "full audit");
}

// Crash after the manifest commit, before buffer truncation: entries exist
// twice (buffer and leaves). Queries dedup; a later overlapping drain retires
// the duplicates.
TEST(SecondaryIndexCrash, CrashAfterCommitLeavesDuplicatesNeverLoses) {
  CrashFixture fx(IndexLeakage::kQueriedOrder);
  for (uint64_t pk = 0; pk < 30; ++pk) {
    ASSERT_TRUE(fx.Put(pk, pk).ok());
  }
  const auto& index = fx.client.index();

  index->set_fail_point(SecondaryIndex::FailPoint::kAfterRootCommit);
  ExpectMatchesOracle(&fx.client, fx.model, 5, 12, "query during crash");
  EXPECT_EQ(index->stats().drains.load(), 1u) << "the commit point itself was reached";
  index->set_fail_point(SecondaryIndex::FailPoint::kNone);

  // The in-range entries are still in the buffer (truncation was skipped):
  // server-visible duplicate state, tolerated by every query.
  {
    auto buf = fx.cluster.Read(index->backing_table(), kIndexBufferPartition, kIndexBufferRow);
    ASSERT_TRUE(buf.ok()) << buf.status().ToString();
  }
  ExpectMatchesOracle(&fx.client, fx.model, 5, 12, "covered query with duplicates");
  ExpectMatchesOracle(&fx.client, fx.model, 0, 29, "full audit with duplicates");

  // A wider query re-drains the region; afterwards the full answer is still
  // exact (the duplicate retirement lost nothing).
  ExpectMatchesOracle(&fx.client, fx.model, 3, 20, "widening query");
  ExpectMatchesOracle(&fx.client, fx.model, 0, 29, "final audit");
}

// Seal persists the segment but the buffer truncation is skipped: every
// sealed entry is duplicated. Inserts keep converging and queries stay exact;
// once the crash clears, the next overflowing seal retires the backlog.
TEST(SecondaryIndexCrash, SealWithoutTruncationDuplicatesConverge) {
  CrashFixture fx(IndexLeakage::kQueriedOrder, /*leaf_rows=*/5, /*buffer_seal_rows=*/8);
  const auto& index = fx.client.index();
  index->set_fail_point(SecondaryIndex::FailPoint::kAfterSegmentWrite);
  for (uint64_t pk = 0; pk < 20; ++pk) {
    ASSERT_TRUE(fx.Put(pk, pk).ok());
  }
  EXPECT_GT(index->stats().buffer_seals.load(), 0u) << "seal threshold never crossed";
  ExpectMatchesOracle(&fx.client, fx.model, 0, 19, "query with seal duplicates");

  index->set_fail_point(SecondaryIndex::FailPoint::kNone);
  for (uint64_t pk = 20; pk < 40; ++pk) {
    ASSERT_TRUE(fx.Put(pk, pk).ok());
  }
  ExpectMatchesOracle(&fx.client, fx.model, 0, 39, "full audit after resume");
  ExpectMatchesOracle(&fx.client, fx.model, 7, 7, "point after resume");
}

// kTotalOrder leaf split aborted between right-insert and left-truncate: the
// put fails, both halves of the range are readable (the right one twice), and
// the retried put completes the split.
TEST(SecondaryIndexCrash, TotalOrderSplitAbortRetainsBothHalves) {
  CrashFixture fx(IndexLeakage::kTotalOrder, /*leaf_rows=*/4);
  const auto& index = fx.client.index();
  index->set_fail_point(SecondaryIndex::FailPoint::kAfterRightInsert);

  // Fill one leaf past the oversize threshold; the split trips the crash.
  uint64_t failed_pk = ~0ULL;
  uint64_t pk = 0;
  for (; pk < 30; ++pk) {
    const Status s = fx.Put(pk, pk);
    if (!s.ok()) {
      ASSERT_TRUE(s.IsAborted()) << s.ToString();
      failed_pk = pk;
      break;
    }
  }
  ASSERT_NE(failed_pk, ~0ULL) << "no split ever tripped; lower leaf_rows";
  EXPECT_GT(index->stats().leaf_splits.load(), 0u);

  // Mid-crash state: every acked row is still readable by value.
  ExpectMatchesOracle(&fx.client, fx.model, 0, 40, "query mid-split");

  // Resume: the retried put routes through the half-split leaf and finishes
  // the job; nothing is lost, the new entry lands.
  index->set_fail_point(SecondaryIndex::FailPoint::kNone);
  ASSERT_TRUE(fx.Put(failed_pk, failed_pk).ok());
  for (++pk; pk < 30; ++pk) {
    ASSERT_TRUE(fx.Put(pk, pk).ok());
  }
  ExpectMatchesOracle(&fx.client, fx.model, 0, 40, "full audit after resume");
}

// --- Injected faults (the chaos leg's building block) -------------------------

// Runs a seeded put/delete/query mix with kIndexSplit and kIndexPersist armed
// at rates (plus one scripted trip each, so the run is never vacuous). Every
// query must match the shadow map exactly while drains abort, seals skip
// truncation, and splits crash mid-protocol.
void RunInjectedFaultMix(IndexLeakage leakage, uint64_t seed) {
  SimulatedClock clock;
  FaultInjector injector(seed);
  injector.SetRate(FaultPoint::kIndexSplit, 0.3);
  injector.SetRate(FaultPoint::kIndexPersist, 0.3);
  injector.Script(FaultPoint::kIndexSplit, 1);
  injector.Script(FaultPoint::kIndexPersist, 1);

  ClusterOptions copts = ClusterOptions::ForTest();
  copts.clock = &clock;
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  const SymmetricKey key = SymmetricKey::FromSeed("index-fault");
  MiniCryptOptions options = SmallPackOptions();
  options.retry_jitter_seed = seed + 1;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(leakage)).ok());

  constexpr uint64_t kKeyspace = 120;
  constexpr uint64_t kAttrDomain = 32;
  std::map<uint64_t, std::string> model;
  Rng rng(seed);
  for (int op = 0; op < 400; ++op) {
    const uint64_t pk = rng.Uniform(kKeyspace);
    const int kind = static_cast<int>(rng.Uniform(10));
    if (kind < 6) {
      const uint64_t attr = rng.Uniform(kAttrDomain);
      const std::string value = EncodeIndexedValue(attr, "f" + std::to_string(op));
      const Status s = client.Put(pk, value);
      // kTotalOrder puts may abort mid-split (the injected crash); the row is
      // then not written — index-first ordering keeps the model exact either
      // way.
      EXPECT_TRUE(s.ok() || s.IsAborted()) << s.ToString();
      if (s.ok()) {
        model[pk] = value;
      }
    } else if (kind < 7) {
      ASSERT_TRUE(client.Delete(pk).ok());
      model.erase(pk);
    } else {
      const uint64_t lo = rng.Uniform(kAttrDomain);
      ExpectMatchesOracle(&client, model, lo, lo + rng.Uniform(6), "faulted range");
    }
  }

  // Non-vacuity: the armed index fault points actually fired. kIndexPersist
  // has no surface under kTotalOrder (entries go straight to leaves — there
  // is no buffer to seal and no drain to truncate).
  EXPECT_GT(injector.trips(FaultPoint::kIndexSplit), 0u) << injector.Summary();
  if (leakage != IndexLeakage::kTotalOrder) {
    EXPECT_GT(injector.trips(FaultPoint::kIndexPersist), 0u) << injector.Summary();
  }

  // Heal and audit: the surviving state answers exactly.
  injector.Heal();
  ExpectMatchesOracle(&client, model, 0, kAttrDomain - 1, "healed full audit");
  for (uint64_t lo = 0; lo < kAttrDomain; lo += 4) {
    ExpectMatchesOracle(&client, model, lo, lo + 3, "healed range");
  }
}

TEST(SecondaryIndexFaults, QueriedOrderExactUnderInjectedFaults) {
  RunInjectedFaultMix(IndexLeakage::kQueriedOrder, 0xFA17ED);
}

TEST(SecondaryIndexFaults, TotalOrderExactUnderInjectedFaults) {
  RunInjectedFaultMix(IndexLeakage::kTotalOrder, 0xFA17EE);
}

// Drain fallback accounting: with kIndexSplit firing at rate 1.0 every drain
// aborts, so every kQueriedOrder query must fall back to the unsorted scan —
// correct answers, zero committed drains, zero leaked regions.
TEST(SecondaryIndexFaults, PermanentDrainFailureDegradesToScan) {
  SimulatedClock clock;
  FaultInjector injector(0xDE6);
  injector.SetRate(FaultPoint::kIndexSplit, 1.0);

  ClusterOptions copts = ClusterOptions::ForTest();
  copts.clock = &clock;
  copts.fault_injector = &injector;
  Cluster cluster(copts);
  GenericClient client(&cluster, SmallPackOptions(), SymmetricKey::FromSeed("k"));
  ASSERT_TRUE(client.CreateTable().ok());
  ASSERT_TRUE(client.CreateIndex(IndexOptions(IndexLeakage::kQueriedOrder)).ok());

  std::map<uint64_t, std::string> model;
  for (uint64_t pk = 0; pk < 40; ++pk) {
    const std::string value = EncodeIndexedValue(pk, "v");
    ASSERT_TRUE(client.Put(pk, value).ok());
    model[pk] = value;
  }
  for (uint64_t lo = 0; lo < 40; lo += 7) {
    ExpectMatchesOracle(&client, model, lo, lo + 6, "drain-starved range");
  }
  const auto& index = client.index();
  EXPECT_EQ(index->stats().drains.load(), 0u);
  EXPECT_EQ(index->SortedRegions().value(), 0u) << "an aborted drain leaked a region";
  EXPECT_GT(injector.trips(FaultPoint::kIndexSplit), 0u);
}

}  // namespace
}  // namespace minicrypt
