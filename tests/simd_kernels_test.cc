// Differential tests for the runtime-dispatched kernels: every SIMD path must
// be byte-identical to its scalar oracle across all supported dispatch
// levels, including empty inputs, single bytes, chunk-boundary sizes, and
// adversarial/garbage streams. Run with MC_NO_SIMD=1 to confirm the scalar
// leg passes the same suite (CI does).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/cpu_features.h"
#include "src/common/crc32c.h"
#include "src/common/random.h"
#include "src/compress/lz4_like.h"
#include "src/compress/snappy_like.h"
#include "src/crypto/crypto.h"

namespace minicrypt {
namespace {

// Restores the ambient dispatch level when a test scope ends.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(CurrentSimdLevel()) {
    OverrideSimdLevelForTest(level);
  }
  ~ScopedSimdLevel() { OverrideSimdLevelForTest(saved_); }

 private:
  SimdLevel saved_;
};

// Input corpus hitting every kernel path: wild-copy tails, pattern-doubling
// match offsets, skip acceleration, and the scalar-only tiny sizes.
std::vector<std::string> KernelCorpus() {
  std::vector<std::string> corpus;
  corpus.emplace_back();  // empty
  Rng rng(20260808);

  for (size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 15u, 16u, 17u, 31u, 32u, 33u, 63u,
                   64u, 65u, 127u, 255u, 256u, 1000u, 4096u}) {
    corpus.push_back(rng.Bytes(n));  // incompressible
  }
  // Pure runs (offset-1 match copies).
  corpus.emplace_back(5, 'x');
  corpus.emplace_back(100, 'x');
  corpus.emplace_back(70000, 'x');
  // Small periods exercise the pattern-doubling overlap copy.
  for (size_t period : {2u, 3u, 5u, 7u, 11u, 15u, 16u, 17u, 31u}) {
    std::string s;
    while (s.size() < 3000) {
      for (size_t i = 0; i < period; ++i) {
        s.push_back(static_cast<char>('a' + (i % 26)));
      }
    }
    corpus.push_back(std::move(s));
  }
  // Long repeated phrase — long matches, big literal head.
  {
    std::string s = rng.Bytes(300);
    for (int i = 0; i < 200; ++i) {
      s += "the quick brown fox jumps over the lazy dog ";
    }
    corpus.push_back(std::move(s));
  }
  // Alternating random / repeated segments (matches straddle literal runs).
  {
    std::string s;
    const std::string motif = rng.Bytes(48);
    for (int i = 0; i < 100; ++i) {
      s += rng.Bytes(rng.Uniform(90) + 1);
      s += motif;
    }
    corpus.push_back(std::move(s));
  }
  // Large mixed buffer (wide offsets, >64-byte matches, table pressure).
  {
    std::string s;
    while (s.size() < 256 * 1024) {
      if (rng.Bernoulli(0.5)) {
        s += rng.Bytes(rng.Uniform(200) + 1);
      } else {
        const size_t off = rng.Uniform(std::max<size_t>(s.size(), 1)) + 1;
        const size_t len = rng.Uniform(300) + 4;
        const size_t start = s.size() >= off ? s.size() - off : 0;
        for (size_t i = 0; i < len; ++i) {
          s.push_back(s.empty() ? 'a' : s[start + (i % std::max<size_t>(off, 1))]);
        }
      }
    }
    corpus.push_back(std::move(s));
  }
  return corpus;
}

template <typename Codec>
void ExpectByteIdenticalAcrossLevels(const Codec& codec) {
  const auto corpus = KernelCorpus();
  const auto levels = SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());

  for (size_t ci = 0; ci < corpus.size(); ++ci) {
    const std::string& input = corpus[ci];
    // Scalar compression is the oracle.
    std::string oracle_compressed;
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      auto c = codec.Compress(input);
      ASSERT_TRUE(c.ok()) << "corpus[" << ci << "]";
      oracle_compressed = std::move(c).value();
      auto d = codec.Decompress(oracle_compressed);
      ASSERT_TRUE(d.ok()) << "corpus[" << ci << "]";
      ASSERT_EQ(d.value(), input) << "corpus[" << ci << "]";
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel scoped(level);
      auto c = codec.Compress(input);
      ASSERT_TRUE(c.ok()) << SimdLevelName(level) << " corpus[" << ci << "]";
      EXPECT_EQ(c.value(), oracle_compressed)
          << codec.Name() << " compress diverges at " << SimdLevelName(level)
          << " on corpus[" << ci << "] (size " << input.size() << ")";
      auto d = codec.Decompress(oracle_compressed);
      ASSERT_TRUE(d.ok()) << SimdLevelName(level) << " corpus[" << ci << "]";
      EXPECT_EQ(d.value(), input)
          << codec.Name() << " decompress diverges at " << SimdLevelName(level)
          << " on corpus[" << ci << "]";
    }
  }
}

template <typename Codec>
void ExpectVerdictsAgreeOnGarbage(const Codec& codec) {
  const auto levels = SupportedSimdLevels();
  Rng rng(7331);
  std::vector<std::string> streams;
  // Raw garbage of assorted sizes.
  for (size_t n : {1u, 2u, 5u, 16u, 64u, 300u, 5000u}) {
    for (int rep = 0; rep < 8; ++rep) {
      streams.push_back(rng.Bytes(n));
    }
  }
  // Truncations and single-byte corruptions of a valid stream.
  const std::string valid = [&] {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    return codec.Compress(rng.Bytes(2000) + std::string(500, 'z')).value();
  }();
  for (size_t cut : {1u, 2u, 5u, 10u, 50u}) {
    if (cut < valid.size()) {
      streams.push_back(valid.substr(0, valid.size() - cut));
    }
  }
  for (int rep = 0; rep < 32; ++rep) {
    std::string s = valid;
    s[rng.Uniform(s.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    streams.push_back(std::move(s));
  }

  for (size_t si = 0; si < streams.size(); ++si) {
    const std::string& stream = streams[si];
    bool oracle_ok;
    std::string oracle_out;
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      auto d = codec.Decompress(stream);
      oracle_ok = d.ok();
      if (oracle_ok) {
        oracle_out = std::move(d).value();
      }
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel scoped(level);
      auto d = codec.Decompress(stream);
      EXPECT_EQ(d.ok(), oracle_ok)
          << codec.Name() << " verdict diverges at " << SimdLevelName(level)
          << " on stream[" << si << "]";
      if (oracle_ok && d.ok()) {
        EXPECT_EQ(d.value(), oracle_out);
      }
    }
  }
}

TEST(SimdKernels, Lz4LikeByteIdentical) {
  ExpectByteIdenticalAcrossLevels(Lz4LikeCompressor{});
}

TEST(SimdKernels, SnappyLikeByteIdentical) {
  ExpectByteIdenticalAcrossLevels(SnappyLikeCompressor{});
}

TEST(SimdKernels, Lz4LikeGarbageVerdictsAgree) {
  ExpectVerdictsAgreeOnGarbage(Lz4LikeCompressor{});
}

TEST(SimdKernels, SnappyLikeGarbageVerdictsAgree) {
  ExpectVerdictsAgreeOnGarbage(SnappyLikeCompressor{});
}

TEST(SimdKernels, Crc32cKnownVector) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(SimdKernels, Crc32cScalarMatchesHardware) {
  if (!HostCpuFeatures().sse42) {
    GTEST_SKIP() << "no SSE4.2";
  }
  Rng rng(99);
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u,
                   63u, 64u, 65u, 255u, 256u, 1000u, 4096u, 65536u}) {
    const std::string data = rng.Bytes(n);
    EXPECT_EQ(Crc32cScalar(data), Crc32cHardware(data)) << "size " << n;
  }
}

TEST(SimdKernels, Crc32cExtendComposes) {
  Rng rng(100);
  const std::string a = rng.Bytes(1000);
  const std::string b = rng.Bytes(313);
  EXPECT_EQ(Crc32c(a + b), Crc32cExtend(Crc32c(a), b));
  for (SimdLevel level : SupportedSimdLevels()) {
    ScopedSimdLevel scoped(level);
    EXPECT_EQ(Crc32c(a + b), Crc32cExtend(Crc32c(a), b));
    EXPECT_EQ(Crc32c(a), Crc32cScalar(a));
  }
}

TEST(SimdKernels, AesGcmHardwareMatchesOpenSsl) {
  const auto& host = HostCpuFeatures();
  if (!host.aesni || !host.pclmul || host.max_level == SimdLevel::kScalar) {
    GTEST_SKIP() << "no AES-NI/PCLMUL";
  }
  const SymmetricKey key = SymmetricKey::FromSeed("gcm-differential");
  const std::string iv(kAesGcmIvBytes, '\x42');
  Rng rng(4242);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u, 255u,
                   1000u, 65536u}) {
    const std::string pt = rng.Bytes(n);
    std::string hw_env, sw_env;
    {
      ScopedSimdLevel hw(host.max_level);
      ASSERT_TRUE(AesGcmHardwareEnabled());
      hw_env = AesGcmEncryptWithIv(key, iv, pt).value();
    }
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      ASSERT_FALSE(AesGcmHardwareEnabled());
      sw_env = AesGcmEncryptWithIv(key, iv, pt).value();
    }
    EXPECT_EQ(hw_env, sw_env) << "GCM envelope diverges at size " << n;
    // Cross-decrypt: each path opens the other's envelope.
    {
      ScopedSimdLevel hw(host.max_level);
      auto d = AesGcmDecrypt(key, sw_env);
      ASSERT_TRUE(d.ok()) << "size " << n;
      EXPECT_EQ(d.value(), pt);
    }
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      auto d = AesGcmDecrypt(key, hw_env);
      ASSERT_TRUE(d.ok()) << "size " << n;
      EXPECT_EQ(d.value(), pt);
    }
  }
}

TEST(SimdKernels, AesGcmRejectsTampering) {
  const SymmetricKey key = SymmetricKey::FromSeed("gcm-tamper");
  Rng rng(55);
  const std::string pt = rng.Bytes(500);
  for (SimdLevel level : SupportedSimdLevels()) {
    ScopedSimdLevel scoped(level);
    auto env = AesGcmEncrypt(key, pt);
    ASSERT_TRUE(env.ok());
    ASSERT_TRUE(AesGcmDecrypt(key, env.value()).ok());
    // Flip one byte in the IV, body, and tag regions.
    for (size_t pos : {size_t{3}, kAesGcmIvBytes + 7, env.value().size() - 2}) {
      std::string tampered = env.value();
      tampered[pos] ^= 1;
      EXPECT_FALSE(AesGcmDecrypt(key, tampered).ok())
          << SimdLevelName(level) << " pos " << pos;
    }
    EXPECT_FALSE(AesGcmDecrypt(key, "short").ok());
    // Wrong key.
    EXPECT_FALSE(AesGcmDecrypt(SymmetricKey::FromSeed("other"), env.value()).ok());
  }
}

TEST(SimdKernels, AesGcmRoundTripsAtEveryLevel) {
  const SymmetricKey key = SymmetricKey::FromSeed("gcm-roundtrip");
  Rng rng(77);
  for (SimdLevel level : SupportedSimdLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t n : {0u, 1u, 16u, 100u, 4096u}) {
      const std::string pt = rng.Bytes(n);
      auto env = AesGcmEncrypt(key, pt);
      ASSERT_TRUE(env.ok());
      ASSERT_EQ(env.value().size(), kAesGcmIvBytes + n + kAesGcmTagBytes);
      auto d = AesGcmDecrypt(key, env.value());
      ASSERT_TRUE(d.ok());
      EXPECT_EQ(d.value(), pt) << SimdLevelName(level) << " size " << n;
    }
  }
}

TEST(SimdKernels, AesGcmAadByteIdenticalAcrossLevels) {
  const SymmetricKey key = SymmetricKey::FromSeed("gcm-aad-differential");
  const std::string iv(kAesGcmIvBytes, '\x17');
  Rng rng(4321);
  // AAD lengths straddle the GHASH block and 4-block-batch boundaries.
  for (size_t aad_len : {1u, 15u, 16u, 17u, 63u, 64u, 65u, 300u}) {
    const std::string aad = rng.Bytes(aad_len);
    for (size_t n : {0u, 1u, 31u, 64u, 1000u}) {
      const std::string pt = rng.Bytes(n);
      std::string reference;
      bool have_reference = false;
      for (SimdLevel level : SupportedSimdLevels()) {
        ScopedSimdLevel scoped(level);
        auto env = AesGcmEncryptWithIv(key, iv, pt, aad);
        ASSERT_TRUE(env.ok()) << SimdLevelName(level);
        if (!have_reference) {
          reference = env.value();
          have_reference = true;
        } else {
          EXPECT_EQ(env.value(), reference)
              << SimdLevelName(level) << " diverges at aad " << aad_len << " pt " << n;
        }
        // Every level opens the reference envelope under the same AAD...
        auto d = AesGcmDecrypt(key, reference, aad);
        ASSERT_TRUE(d.ok()) << SimdLevelName(level);
        EXPECT_EQ(d.value(), pt);
        // ...and rejects a perturbed or missing AAD.
        std::string wrong = aad;
        wrong[aad_len / 2] ^= 1;
        EXPECT_FALSE(AesGcmDecrypt(key, reference, wrong).ok()) << SimdLevelName(level);
        EXPECT_FALSE(AesGcmDecrypt(key, reference).ok()) << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernels, OverrideClampsToHost) {
  const SimdLevel ambient = CurrentSimdLevel();
  const SimdLevel max = HostCpuFeatures().max_level;
  EXPECT_LE(static_cast<int>(OverrideSimdLevelForTest(SimdLevel::kAvx2)),
            static_cast<int>(max));
  EXPECT_EQ(OverrideSimdLevelForTest(SimdLevel::kScalar), SimdLevel::kScalar);
  OverrideSimdLevelForTest(ambient);
  EXPECT_EQ(CurrentSimdLevel(), ambient);
}

}  // namespace
}  // namespace minicrypt
