#include "src/core/key_codec.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/coding.h"

namespace minicrypt {
namespace {

TEST(PartitionForKey, DeterministicAndInRange) {
  for (uint64_t k = 0; k < 500; ++k) {
    const std::string encoded = EncodeKey64(k);
    const std::string p1 = PartitionForKey(encoded, 8);
    const std::string p2 = PartitionForKey(encoded, 8);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(p1[0], 'p');
    const int idx = std::stoi(p1.substr(1));
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 8);
  }
}

TEST(PartitionForKey, SpreadsKeysEvenly) {
  std::map<std::string, int> counts;
  for (uint64_t k = 0; k < 8000; ++k) {
    counts[PartitionForKey(EncodeKey64(k), 8)]++;
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [partition, count] : counts) {
    EXPECT_GT(count, 700) << partition;   // expected 1000 each
    EXPECT_LT(count, 1300) << partition;
  }
}

TEST(PartitionForKey, SinglePartitionDegenerate) {
  EXPECT_EQ(PartitionForKey(EncodeKey64(123), 1), "p0");
}

TEST(PartitionLabel, Format) {
  EXPECT_EQ(PartitionLabel(0), "p0");
  EXPECT_EQ(PartitionLabel(7), "p7");
}

class PackIdCipherTest : public ::testing::Test {
 protected:
  PackIdCipherTest() : key_(SymmetricKey::FromSeed("k")) {
    options_.table = "t";
    options_.packid_bucket_width = 50;
  }

  SymmetricKey key_;
  MiniCryptOptions options_;
};

TEST_F(PackIdCipherTest, BucketAssignment) {
  PackIdCipher cipher(options_, key_);
  EXPECT_EQ(cipher.BucketFor(0), 0u);
  EXPECT_EQ(cipher.BucketFor(49), 0u);
  EXPECT_EQ(cipher.BucketFor(50), 1u);
  EXPECT_EQ(cipher.BucketFor(101), 2u);
  EXPECT_EQ(cipher.bucket_width(), 50u);
}

TEST_F(PackIdCipherTest, DeterministicPerTableKey) {
  PackIdCipher a(options_, key_);
  PackIdCipher b(options_, key_);
  EXPECT_EQ(a.EncryptBucket(3), b.EncryptBucket(3));

  MiniCryptOptions other = options_;
  other.table = "other";
  PackIdCipher c(other, key_);
  EXPECT_NE(a.EncryptBucket(3), c.EncryptBucket(3));

  PackIdCipher d(options_, SymmetricKey::FromSeed("k2"));
  EXPECT_NE(a.EncryptBucket(3), d.EncryptBucket(3));
}

TEST_F(PackIdCipherTest, ImagesDestroyOrder) {
  PackIdCipher cipher(options_, key_);
  // Consecutive buckets must not produce lexicographically consecutive
  // images with any noticeable frequency.
  int ordered = 0;
  std::string prev = cipher.EncryptBucket(0);
  for (uint64_t b = 1; b < 200; ++b) {
    const std::string cur = cipher.EncryptBucket(b);
    EXPECT_EQ(cur.size(), kSha256Bytes);
    if (cur > prev) {
      ++ordered;
    }
    prev = cur;
  }
  // Random images preserve order ~50% of the time; reject near-monotone.
  EXPECT_GT(ordered, 60);
  EXPECT_LT(ordered, 140);
}

TEST_F(PackIdCipherTest, ImagesAreUnique) {
  PackIdCipher cipher(options_, key_);
  std::set<std::string> images;
  for (uint64_t b = 0; b < 1000; ++b) {
    images.insert(cipher.EncryptBucket(b));
  }
  EXPECT_EQ(images.size(), 1000u);
}

}  // namespace
}  // namespace minicrypt
