// Replication-focused tests: round-robin replica reads, quorum merging,
// replica-count edge cases, and the shared-network-link model.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/coding.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

TEST(Replication, EveryReplicaServesConsistentReads) {
  // With RF = node count, reads round-robin over replicas; repeated reads of
  // the same key must all succeed and agree. The write acks at the required
  // count and stragglers settle in the background, so Quiesce() is the
  // barrier before asserting read-your-write at CL=ONE on every replica.
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow("x")).ok());
  cluster.Quiesce();
  for (int i = 0; i < 9; ++i) {  // covers every replica several times
    auto row = cluster.Read("t", "p", EncodeKey64(1));
    ASSERT_TRUE(row.ok()) << i;
    EXPECT_EQ(row->cells.at("v").value, "x");
  }
}

TEST(Replication, PartialReplicationStillServes) {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 5;
  o.replication_factor = 2;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(cluster.Write("t", "part" + std::to_string(k % 17), EncodeKey64(k),
                              ValueRow(std::to_string(k)))
                    .ok());
  }
  cluster.Quiesce();  // settle straggler replica legs before CL=ONE reads
  for (uint64_t k = 0; k < 200; ++k) {
    auto row = cluster.Read("t", "part" + std::to_string(k % 17), EncodeKey64(k));
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ(row->cells.at("v").value, std::to_string(k));
  }
}

TEST(Replication, FloorAndRangeConsistentAcrossReplicaChoices) {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (uint64_t k = 0; k < 50; k += 5) {
    ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(k), ValueRow("v")).ok());
  }
  cluster.Quiesce();  // settle straggler replica legs before CL=ONE reads
  for (int i = 0; i < 6; ++i) {
    auto floor = cluster.ReadFloor("t", "p", EncodeKey64(23));
    ASSERT_TRUE(floor.ok());
    EXPECT_EQ(*DecodeKey64(floor->first), 20u);
    auto range = cluster.ReadRange("t", "p", EncodeKey64(10), EncodeKey64(30));
    ASSERT_TRUE(range.ok());
    EXPECT_EQ(range->size(), 5u);
  }
}

TEST(Replication, LwtVisibleToSubsequentRoundRobinReads) {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 3;
  o.replication_factor = 3;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster
                  .WriteIf("t", "p", EncodeKey64(1), ValueRow("first"),
                           LwtCondition::NotExists())
                  .ok());
  cluster.Quiesce();  // settle straggler replica legs before CL=ONE reads
  for (int i = 0; i < 6; ++i) {
    auto row = cluster.Read("t", "p", EncodeKey64(1));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->cells.at("v").value, "first");
  }
}

TEST(NetworkLink, SharedBandwidthSerializesBulkTransfers) {
  // Two big reads through a slow shared link take ~2x one read's transfer
  // time when issued concurrently.
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = 1;
  o.replication_factor = 1;
  o.network_bytes_per_micro = 1.0;  // 1 MB/s — deliberately tiny
  o.latency_scale = 1.0;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  const std::string big(50'000, 'x');  // 50 ms transfer each
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow(big)).ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(2), ValueRow(big)).ok());

  const auto start = std::chrono::steady_clock::now();
  std::thread t1([&] { (void)cluster.Read("t", "p", EncodeKey64(1)); });
  std::thread t2([&] { (void)cluster.Read("t", "p", EncodeKey64(2)); });
  t1.join();
  t2.join();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  // Writes also charged the link, but the two concurrent reads alone need
  // >= 100 ms end-to-end if (and only if) the link is shared.
  EXPECT_GE(elapsed_ms, 95);
}

TEST(NetworkLink, StatsTrackBytesInBothDirections) {
  ClusterOptions o = ClusterOptions::ForTest();
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Write("t", "p", EncodeKey64(1), ValueRow(std::string(1000, 'x'))).ok());
  (void)cluster.Read("t", "p", EncodeKey64(1));
  EXPECT_GE(cluster.stats().bytes_from_client.load(), 1000u);
  EXPECT_GE(cluster.stats().bytes_to_client.load(), 1000u);
}

}  // namespace
}  // namespace minicrypt
