#include "src/kvstore/block_cache.h"

#include <gtest/gtest.h>

#include <thread>

namespace minicrypt {
namespace {

std::shared_ptr<const std::string> Block(size_t bytes, char fill = 'x') {
  return std::make_shared<const std::string>(bytes, fill);
}

TEST(BlockCache, HitAndMissAccounting) {
  BlockCache cache(1 << 20, /*shards=*/2);
  EXPECT_FALSE(cache.Get(1, 0).has_value());
  cache.Put(1, 0, Block(100, 'a'));
  auto hit = cache.Get(1, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((**hit)[0], 'a');
  const BlockCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_used, 100u);
}

TEST(BlockCache, CapacityEnforcedPerShard) {
  BlockCache cache(1000, /*shards=*/1);
  for (uint64_t i = 0; i < 20; ++i) {
    cache.Put(7, i, Block(100));
  }
  const BlockCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes_used, 1000u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(BlockCache, LruKeepsRecentlyTouched) {
  BlockCache cache(300, /*shards=*/1);
  cache.Put(1, 0, Block(100, 'a'));
  cache.Put(1, 1, Block(100, 'b'));
  cache.Put(1, 2, Block(100, 'c'));
  // Touch block 0 so block 1 becomes the LRU victim.
  ASSERT_TRUE(cache.Get(1, 0).has_value());
  cache.Put(1, 3, Block(100, 'd'));
  EXPECT_TRUE(cache.Get(1, 0).has_value());
  EXPECT_FALSE(cache.Get(1, 1).has_value());
}

TEST(BlockCache, UpdateReplacesAndReaccounts) {
  BlockCache cache(1 << 20, 1);
  cache.Put(1, 0, Block(100));
  cache.Put(1, 0, Block(300));
  EXPECT_EQ(cache.Stats().bytes_used, 300u);
}

TEST(BlockCache, EraseOwnerDropsOnlyThatOwner) {
  BlockCache cache(1 << 20, 4);
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Put(1, i, Block(50));
    cache.Put(2, i, Block(50));
  }
  cache.EraseOwner(1);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.Get(1, i).has_value());
    EXPECT_TRUE(cache.Get(2, i).has_value());
  }
}

TEST(BlockCache, ZeroCapacityDisablesCaching) {
  BlockCache cache(0);
  cache.Put(1, 0, Block(10));
  EXPECT_FALSE(cache.Get(1, 0).has_value());
  EXPECT_EQ(cache.Stats().bytes_used, 0u);
}

TEST(BlockCache, ConcurrentMixedAccessIsSafe) {
  BlockCache cache(64 * 1024, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (i * 7 + static_cast<uint64_t>(t)) % 256;
        if (i % 3 == 0) {
          cache.Put(static_cast<uint64_t>(t % 2), key, Block(64));
        } else {
          auto block = cache.Get(static_cast<uint64_t>(t % 2), key);
          if (block.has_value()) {
            ASSERT_EQ((*block)->size(), 64u);
          }
        }
        if (i % 500 == 0) {
          cache.EraseOwner(0);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(cache.Stats().bytes_used, 64u * 1024);
}

}  // namespace
}  // namespace minicrypt
