// Elastic-topology tests: online bootstrap/decommission/rebalance, the
// persisted membership state machine, crash-resume at every persist edge
// (scripted kTopologyPersist faults), stream-interrupt resume, rollback via
// CancelTopology, and the dual-apply window that keeps acked writes durable
// across ownership flips.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/coding.h"
#include "src/kvstore/cluster.h"
#include "src/kvstore/fault_injector.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value) {
  Row row;
  row.cells["v"] = Cell{std::move(value), 0, false};
  return row;
}

ClusterOptions Nodes(int n, int rf, Consistency consistency = Consistency::kOne) {
  ClusterOptions o = ClusterOptions::ForTest();
  o.node_count = n;
  o.replication_factor = rf;
  o.consistency = consistency;
  return o;
}

std::string Part(int i) { return "p" + std::to_string(i); }

void Preload(Cluster* cluster, int partitions) {
  ASSERT_TRUE(cluster->CreateTable("t").ok());
  for (int i = 0; i < partitions; ++i) {
    ASSERT_TRUE(cluster->Write("t", Part(i), EncodeKey64(0), ValueRow("v" + std::to_string(i))).ok());
  }
  cluster->Quiesce();  // settle straggler replica legs before CL=ONE reads
}

// Preload with engineered skew: partitions whose primary owner is `hot_node`
// get ~2KB values, everyone else ~10 bytes, so `hot_node` carries ~50x the
// byte load of its peers regardless of how evenly the token ranges spread.
// Returns the expected value per partition for post-rebalance verification.
std::map<int, std::string> PreloadSkewed(Cluster* cluster, int partitions, int hot_node) {
  EXPECT_TRUE(cluster->CreateTable("t").ok());
  const HashRing ring = cluster->RingSnapshot();
  std::map<int, std::string> expected;
  for (int i = 0; i < partitions; ++i) {
    std::string value = "v" + std::to_string(i);
    if (ring.PrimaryOwner(Part(i)) == hot_node) {
      value += std::string(2048, 'x');
    }
    EXPECT_TRUE(cluster->Write("t", Part(i), EncodeKey64(0), ValueRow(value)).ok());
    expected[i] = std::move(value);
  }
  cluster->Quiesce();  // settle straggler replica legs before CL=ONE reads
  return expected;
}

void ExpectAllMatch(Cluster* cluster, const std::map<int, std::string>& expected) {
  for (const auto& [i, value] : expected) {
    auto row = cluster->Read("t", Part(i), EncodeKey64(0));
    ASSERT_TRUE(row.ok()) << "partition " << i << ": " << row.status().message();
    EXPECT_EQ(row->cells.at("v").value, value);
  }
}

void ExpectAllReadable(Cluster* cluster, int partitions) {
  for (int i = 0; i < partitions; ++i) {
    auto row = cluster->Read("t", Part(i), EncodeKey64(0));
    ASSERT_TRUE(row.ok()) << "partition " << i << ": " << row.status().message();
    EXPECT_EQ(row->cells.at("v").value, "v" + std::to_string(i));
  }
}

TEST(Topology, BootstrapAddsServingNodeAndStreamsItsRanges) {
  Cluster cluster(Nodes(3, 3));
  Preload(&cluster, 50);
  ASSERT_EQ(cluster.NodeCount(), 3u);

  auto id = cluster.BootstrapNode();
  ASSERT_TRUE(id.ok()) << id.status().message();
  EXPECT_EQ(*id, 3);
  EXPECT_EQ(cluster.NodeCount(), 4u);
  EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kServing);
  EXPECT_EQ(cluster.ServingNodes().size(), 4u);
  EXPECT_FALSE(cluster.Topology().inflight);
  EXPECT_TRUE(cluster.RingSnapshot().Contains(3));

  // The new node serves reads for every range it acquired: down all of a
  // partition's other replicas and read (CL=ONE) from node 3 alone.
  for (int i = 0; i < 50; ++i) {
    const std::vector<int> replicas = cluster.ReplicaNodesFor(Part(i));
    if (std::find(replicas.begin(), replicas.end(), 3) == replicas.end()) {
      continue;
    }
    for (int r : replicas) {
      if (r != 3) {
        cluster.SetNodeDown(r, true);
      }
    }
    auto row = cluster.Read("t", Part(i), EncodeKey64(0));
    ASSERT_TRUE(row.ok()) << "partition " << i << " not streamed to the new node";
    EXPECT_EQ(row->cells.at("v").value, "v" + std::to_string(i));
    cluster.HealAllNodes();
  }
  ExpectAllReadable(&cluster, 50);
}

TEST(Topology, DecommissionDrainsAndRetiresNode) {
  Cluster cluster(Nodes(4, 3, Consistency::kQuorum));
  Preload(&cluster, 60);

  ASSERT_TRUE(cluster.DecommissionNode(1).ok());
  EXPECT_EQ(cluster.NodeMembership(1), MembershipState::kRemoved);
  EXPECT_EQ(cluster.ServingNodes().size(), 3u);
  EXPECT_TRUE(cluster.IsNodeDown(1));
  EXPECT_FALSE(cluster.RingSnapshot().Contains(1));
  EXPECT_FALSE(cluster.Topology().inflight);

  // Every partition is fully replicated on the survivors: quorum reads and
  // writes keep working with the retired node permanently down.
  ExpectAllReadable(&cluster, 60);
  for (int i = 0; i < 60; ++i) {
    const std::vector<int> replicas = cluster.ReplicaNodesFor(Part(i));
    EXPECT_EQ(replicas.size(), 3u);
    EXPECT_EQ(std::find(replicas.begin(), replicas.end(), 1), replicas.end());
  }
  ASSERT_TRUE(cluster.Write("t", Part(0), EncodeKey64(1), ValueRow("post")).ok());

  // A retired node never comes back.
  EXPECT_FALSE(cluster.RestartNode(1).ok());
  cluster.SetNodeDown(1, false);
  EXPECT_TRUE(cluster.IsNodeDown(1));
  cluster.HealAllNodes();
  EXPECT_TRUE(cluster.IsNodeDown(1));
}

TEST(Topology, DecommissionBelowReplicationFactorRejected) {
  Cluster cluster(Nodes(3, 3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  const Status s = cluster.DecommissionNode(0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(cluster.NodeMembership(0), MembershipState::kServing);
  EXPECT_FALSE(cluster.Topology().inflight);
}

TEST(Topology, RebalanceMovesTokensAndStreamsData) {
  // RF=1 makes placement skew visible (each partition lives on exactly one
  // node) and makes streaming load-bearing: if the rebalance window failed to
  // stream, every moved partition would read NotFound afterward.
  Cluster cluster(Nodes(4, 1));
  const auto expected = PreloadSkewed(&cluster, 200, /*hot_node=*/0);

  auto moves = cluster.RebalanceTokens(8);
  ASSERT_TRUE(moves.ok()) << moves.status().message();
  EXPECT_GT(*moves, 0u);  // node 0 carries ~50x its peers' bytes
  EXPECT_FALSE(cluster.Topology().inflight);
  ExpectAllMatch(&cluster, expected);

  // Token moves never change the node set.
  EXPECT_EQ(cluster.ServingNodes().size(), 4u);
  EXPECT_EQ(cluster.RingSnapshot().node_count(), 4u);
}

// --- Crash-resume at every membership state-machine edge ---------------------
//
// Script the 1st kTopologyPersist draw matching each edge's context: the
// persist fails, nothing is mutated, the operation parks at its previous
// stage. ResumeTopology then re-drives it to completion; membership is never
// left with a double-owned or unowned range (reads stay correct throughout).

struct EdgeCase {
  const char* context;
  bool node_created;     // bootstrap: was the node slot allocated before the edge?
  bool inflight_parked;  // does the op stay resumable (vs abort before starting)?
};

TEST(Topology, BootstrapResumesFromEveryPersistEdge) {
  const EdgeCase kEdges[] = {
      {"bootstrap plan", false, false},
      {"bootstrap stream", true, true},
      {"bootstrap flip", true, true},
  };
  for (const EdgeCase& edge : kEdges) {
    SCOPED_TRACE(edge.context);
    FaultInjector fi(0xBEEF);
    fi.Script(FaultPoint::kTopologyPersist, 1, edge.context);
    ClusterOptions o = Nodes(3, 3);
    o.fault_injector = &fi;
    Cluster cluster(o);
    Preload(&cluster, 30);

    auto id = cluster.BootstrapNode();
    ASSERT_FALSE(id.ok()) << "persist fault must abort the edge";
    EXPECT_EQ(cluster.NodeCount(), edge.node_created ? 4u : 3u);
    EXPECT_EQ(cluster.Topology().inflight, edge.inflight_parked);
    // The natural ring never holds a node that has not finished streaming:
    // no unowned or double-owned range at any parked stage.
    EXPECT_FALSE(cluster.RingSnapshot().Contains(3));
    ExpectAllReadable(&cluster, 30);

    ASSERT_TRUE(cluster.ResumeTopology().ok());
    EXPECT_FALSE(cluster.Topology().inflight);
    if (edge.inflight_parked) {
      EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kServing);
      EXPECT_TRUE(cluster.RingSnapshot().Contains(3));
    }
    ExpectAllReadable(&cluster, 30);
  }
}

TEST(Topology, DecommissionResumesFromEveryPersistEdge) {
  const EdgeCase kEdges[] = {
      {"decommission plan", false, false},
      {"decommission flip", false, true},
      {"decommission retire", false, true},
  };
  for (const EdgeCase& edge : kEdges) {
    SCOPED_TRACE(edge.context);
    FaultInjector fi(0xBEEF);
    fi.Script(FaultPoint::kTopologyPersist, 1, edge.context);
    ClusterOptions o = Nodes(4, 3, Consistency::kQuorum);
    o.fault_injector = &fi;
    Cluster cluster(o);
    Preload(&cluster, 30);

    const Status s = cluster.DecommissionNode(2);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(cluster.Topology().inflight, edge.inflight_parked);
    ExpectAllReadable(&cluster, 30);

    ASSERT_TRUE(cluster.ResumeTopology().ok());
    EXPECT_FALSE(cluster.Topology().inflight);
    if (edge.inflight_parked) {
      EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kRemoved);
      EXPECT_FALSE(cluster.RingSnapshot().Contains(2));
    } else {
      EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kServing);
    }
    ExpectAllReadable(&cluster, 30);
  }
}

TEST(Topology, RebalanceResumesFromEveryPersistEdge) {
  for (const char* context : {"rebalance plan", "rebalance flip"}) {
    SCOPED_TRACE(context);
    FaultInjector fi(0xBEEF);
    fi.Script(FaultPoint::kTopologyPersist, 1, context);
    ClusterOptions o = Nodes(4, 1);
    o.fault_injector = &fi;
    Cluster cluster(o);
    const auto expected = PreloadSkewed(&cluster, 200, /*hot_node=*/0);

    auto moves = cluster.RebalanceTokens(4);
    ASSERT_FALSE(moves.ok());
    ExpectAllMatch(&cluster, expected);
    ASSERT_TRUE(cluster.ResumeTopology().ok());
    EXPECT_FALSE(cluster.Topology().inflight);
    ExpectAllMatch(&cluster, expected);
  }
}

TEST(Topology, StreamInterruptLeavesStageResumable) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kStreamInterrupt, 1);
  ClusterOptions o = Nodes(3, 3);
  o.fault_injector = &fi;
  Cluster cluster(o);
  Preload(&cluster, 40);

  auto id = cluster.BootstrapNode();
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(cluster.Topology().inflight);
  EXPECT_EQ(cluster.Topology().stage, TopologyStatus::Stage::kStreaming);
  EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kStreaming);

  // Re-streaming from scratch is idempotent (LWW re-apply); the resumed
  // bootstrap completes and the node serves.
  ASSERT_TRUE(cluster.ResumeTopology().ok());
  EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kServing);
  ExpectAllReadable(&cluster, 40);
}

TEST(Topology, CrashedJoiningNodeBlocksResumeUntilRestart) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kTopologyPersist, 1, "bootstrap flip");
  ClusterOptions o = Nodes(3, 3);
  o.fault_injector = &fi;
  Cluster cluster(o);
  Preload(&cluster, 20);

  ASSERT_FALSE(cluster.BootstrapNode().ok());  // parked at kStreaming
  ASSERT_TRUE(cluster.CrashNode(3).ok());      // kill mid-join
  const Status blocked = cluster.ResumeTopology();
  ASSERT_FALSE(blocked.ok()) << "resume must not flip onto a dead node";
  EXPECT_TRUE(cluster.Topology().inflight);

  ASSERT_TRUE(cluster.RestartNode(3).ok());
  ASSERT_TRUE(cluster.ResumeTopology().ok());
  EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kServing);
  ExpectAllReadable(&cluster, 20);
}

TEST(Topology, CancelBootstrapRollsBackCleanly) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kTopologyPersist, 1, "bootstrap flip");
  ClusterOptions o = Nodes(3, 3);
  o.fault_injector = &fi;
  Cluster cluster(o);
  Preload(&cluster, 30);

  ASSERT_FALSE(cluster.BootstrapNode().ok());  // parked before the flip
  ASSERT_TRUE(cluster.CancelTopology().ok());
  EXPECT_FALSE(cluster.Topology().inflight);
  EXPECT_EQ(cluster.NodeMembership(3), MembershipState::kRemoved);
  EXPECT_FALSE(cluster.RingSnapshot().Contains(3));
  EXPECT_EQ(cluster.ServingNodes().size(), 3u);
  ExpectAllReadable(&cluster, 30);
  ASSERT_TRUE(cluster.Write("t", Part(0), EncodeKey64(2), ValueRow("after-cancel")).ok());
}

TEST(Topology, CancelDecommissionRestoresServing) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kTopologyPersist, 1, "decommission flip");
  ClusterOptions o = Nodes(4, 3, Consistency::kQuorum);
  o.fault_injector = &fi;
  Cluster cluster(o);
  Preload(&cluster, 30);

  ASSERT_FALSE(cluster.DecommissionNode(2).ok());
  EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kLeaving);
  ASSERT_TRUE(cluster.CancelTopology().ok());
  EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kServing);
  EXPECT_TRUE(cluster.RingSnapshot().Contains(2));
  EXPECT_EQ(cluster.ServingNodes().size(), 4u);
  ExpectAllReadable(&cluster, 30);
}

TEST(Topology, CancelAfterFlipRejectedResumeCompletes) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kTopologyPersist, 1, "decommission retire");
  ClusterOptions o = Nodes(4, 3, Consistency::kQuorum);
  o.fault_injector = &fi;
  Cluster cluster(o);
  Preload(&cluster, 30);

  ASSERT_FALSE(cluster.DecommissionNode(2).ok());
  EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kDrained);
  EXPECT_EQ(cluster.Topology().stage, TopologyStatus::Stage::kFlipped);
  EXPECT_FALSE(cluster.CancelTopology().ok()) << "ownership flipped; rollback impossible";
  ASSERT_TRUE(cluster.ResumeTopology().ok());
  EXPECT_EQ(cluster.NodeMembership(2), MembershipState::kRemoved);
  ExpectAllReadable(&cluster, 30);
}

TEST(Topology, SecondTopologyChangeRejectedWhileInflight) {
  FaultInjector fi(0x5EED);
  fi.Script(FaultPoint::kTopologyPersist, 1, "bootstrap flip");
  ClusterOptions o = Nodes(4, 3);
  o.fault_injector = &fi;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  ASSERT_FALSE(cluster.BootstrapNode().ok());  // parked
  EXPECT_FALSE(cluster.BootstrapNode().ok());
  EXPECT_FALSE(cluster.DecommissionNode(0).ok());
  EXPECT_FALSE(cluster.RebalanceTokens().ok());
  ASSERT_TRUE(cluster.ResumeTopology().ok());
  EXPECT_EQ(cluster.ServingNodes().size(), 5u);
}

TEST(Topology, DualApplyLosesNoAckedWriteAcrossBootstrapFlip) {
  // Quorum writes race a live bootstrap. Every write acked to the client must
  // be readable (at quorum) after the flip — the pending-endpoint rule makes
  // the pre-flip ack set intersect post-flip quorums.
  ClusterOptions o = Nodes(3, 3, Consistency::kQuorum);
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  std::atomic<bool> stop{false};
  std::map<std::string, std::string> acked;  // partition -> last acked value
  std::mutex acked_mu;
  std::thread writer([&]() {
    int seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string partition = Part(seq % 32);
      const std::string value = "w" + std::to_string(seq);
      if (cluster.Write("t", partition, EncodeKey64(0), ValueRow(value)).ok()) {
        std::lock_guard<std::mutex> lock(acked_mu);
        acked[partition] = value;
      }
      ++seq;
    }
  });

  auto id = cluster.BootstrapNode();
  stop.store(true);
  writer.join();
  ASSERT_TRUE(id.ok()) << id.status().message();
  cluster.Quiesce();
  cluster.ReplayAllHints();

  for (const auto& [partition, value] : acked) {
    auto row = cluster.Read("t", partition, EncodeKey64(0));
    ASSERT_TRUE(row.ok()) << "acked write lost on " << partition;
    // LWW: the stored value is the last acked one or a later write that was
    // in flight when we stopped recording; it is never an earlier value.
    const std::string& stored = row->cells.at("v").value;
    const int stored_seq = std::stoi(stored.substr(1));
    const int acked_seq = std::stoi(value.substr(1));
    EXPECT_GE(stored_seq, acked_seq) << partition;
  }
}

TEST(Topology, MembershipIntrospectionDefaults) {
  Cluster cluster(Nodes(3, 3));
  EXPECT_EQ(cluster.NodeMembership(0), MembershipState::kServing);
  EXPECT_EQ(cluster.NodeMembership(99), MembershipState::kRemoved);
  EXPECT_FALSE(cluster.Topology().inflight);
  EXPECT_TRUE(cluster.ResumeTopology().ok());   // no-op
  EXPECT_TRUE(cluster.CancelTopology().ok());   // no-op
}

}  // namespace
}  // namespace minicrypt
