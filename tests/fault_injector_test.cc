// Unit tests for the deterministic fault-injection layer: seed determinism,
// rate boundaries, scripted faults, Heal semantics, counters, and the
// magnitude mappers. docs/TESTING.md describes the subsystem.

#include "src/kvstore/fault_injector.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

std::vector<bool> FireSequence(FaultInjector* injector, FaultPoint point, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(injector->Fire(point));
  }
  return out;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultInjector a(0x1234);
  FaultInjector b(0x1234);
  a.SetRate(FaultPoint::kMediaReadError, 0.3);
  b.SetRate(FaultPoint::kMediaReadError, 0.3);
  EXPECT_EQ(FireSequence(&a, FaultPoint::kMediaReadError, 500),
            FireSequence(&b, FaultPoint::kMediaReadError, 500));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(0x1234);
  FaultInjector b(0x1235);
  a.SetRate(FaultPoint::kMediaReadError, 0.3);
  b.SetRate(FaultPoint::kMediaReadError, 0.3);
  EXPECT_NE(FireSequence(&a, FaultPoint::kMediaReadError, 500),
            FireSequence(&b, FaultPoint::kMediaReadError, 500));
}

TEST(FaultInjector, PointsHaveIndependentStreams) {
  FaultInjector a(0x99);
  FaultInjector b(0x99);
  a.SetRate(FaultPoint::kMediaReadError, 0.5);
  b.SetRate(FaultPoint::kMediaWriteError, 0.5);
  EXPECT_NE(FireSequence(&a, FaultPoint::kMediaReadError, 500),
            FireSequence(&b, FaultPoint::kMediaWriteError, 500));
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires) {
  FaultInjector injector(7);
  injector.SetRate(FaultPoint::kCommitLogAppend, 0.0);
  injector.SetRate(FaultPoint::kReplicaDrop, 1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(injector.Fire(FaultPoint::kCommitLogAppend));
    EXPECT_TRUE(injector.Fire(FaultPoint::kReplicaDrop));
  }
  EXPECT_EQ(injector.trips(FaultPoint::kCommitLogAppend), 0u);
  EXPECT_EQ(injector.trips(FaultPoint::kReplicaDrop), 200u);
  EXPECT_EQ(injector.evaluations(FaultPoint::kCommitLogAppend), 200u);
}

TEST(FaultInjector, RateRoughlyMatchesFrequency) {
  FaultInjector injector(42);
  injector.SetRate(FaultPoint::kMediaLatency, 0.25);
  int fired = 0;
  for (int i = 0; i < 4000; ++i) {
    fired += injector.Fire(FaultPoint::kMediaLatency) ? 1 : 0;
  }
  EXPECT_GT(fired, 4000 * 0.25 * 0.7);
  EXPECT_LT(fired, 4000 * 0.25 * 1.3);
}

TEST(FaultInjector, ScriptFiresOnNthMatchingEvaluationExactlyOnce) {
  FaultInjector injector(1);
  injector.Script(FaultPoint::kLwtAmbiguous, 3, "mc_data");
  // Evaluations on a different context never count toward the script.
  EXPECT_FALSE(injector.Fire(FaultPoint::kLwtAmbiguous, "other_table"));
  EXPECT_FALSE(injector.Fire(FaultPoint::kLwtAmbiguous, "mc_data"));  // match #1
  EXPECT_FALSE(injector.Fire(FaultPoint::kLwtAmbiguous, "mc_data"));  // match #2
  EXPECT_FALSE(injector.Fire(FaultPoint::kLwtAmbiguous, "other_table"));
  EXPECT_TRUE(injector.Fire(FaultPoint::kLwtAmbiguous, "mc_data"));   // match #3: fires
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.Fire(FaultPoint::kLwtAmbiguous, "mc_data"));
  }
  EXPECT_EQ(injector.trips(FaultPoint::kLwtAmbiguous), 1u);
}

TEST(FaultInjector, EmptyScriptContextMatchesEverything) {
  FaultInjector injector(1);
  injector.Script(FaultPoint::kNodeFlap, 2);
  EXPECT_FALSE(injector.Fire(FaultPoint::kNodeFlap, "anything"));
  EXPECT_TRUE(injector.Fire(FaultPoint::kNodeFlap));
}

TEST(FaultInjector, HealStopsFaultsButKeepsCounters) {
  FaultInjector injector(5);
  injector.SetRate(FaultPoint::kMediaWriteError, 1.0);
  injector.Script(FaultPoint::kNodeFlap, 1);
  EXPECT_TRUE(injector.Fire(FaultPoint::kMediaWriteError));
  injector.Heal();
  EXPECT_DOUBLE_EQ(injector.Rate(FaultPoint::kMediaWriteError), 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Fire(FaultPoint::kMediaWriteError));
    EXPECT_FALSE(injector.Fire(FaultPoint::kNodeFlap));  // script dropped too
  }
  EXPECT_EQ(injector.trips(FaultPoint::kMediaWriteError), 1u);
  EXPECT_EQ(injector.evaluations(FaultPoint::kMediaWriteError), 101u);
}

TEST(FaultInjector, ScheduleStringReplaysFromSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.set_record_schedule(true);
    injector.SetRate(FaultPoint::kMediaReadError, 0.2);
    injector.SetRate(FaultPoint::kReplicaDelay, 0.1);
    for (int i = 0; i < 300; ++i) {
      injector.Fire(FaultPoint::kMediaReadError);
      injector.Fire(FaultPoint::kReplicaDelay);
    }
    return injector.ScheduleString();
  };
  const std::string first = run(0xABCDEF);
  EXPECT_EQ(first, run(0xABCDEF));
  EXPECT_NE(first, run(0xABCDF0));
  EXPECT_FALSE(first.empty());
}

TEST(FaultInjector, TripsExportedThroughMetricsRegistry) {
  Counter* trips =
      MetricsRegistry::Instance().GetCounter("fault.replica_drop.trips");
  const uint64_t before = trips->Value();
  FaultInjector injector(11);
  injector.SetRate(FaultPoint::kReplicaDrop, 1.0);
  for (int i = 0; i < 25; ++i) {
    injector.Fire(FaultPoint::kReplicaDrop);
  }
  EXPECT_EQ(trips->Value(), before + 25);
}

TEST(FaultInjector, DrawIsDeterministicAndMagnitudesStayInRange) {
  FaultInjector a(0xFEED);
  FaultInjector b(0xFEED);
  a.SetRate(FaultPoint::kMediaLatency, 1.0);
  b.SetRate(FaultPoint::kMediaLatency, 1.0);
  a.set_latency_spike_base_micros(1000);
  a.set_clock_skew_max_steps(16);
  for (int i = 0; i < 200; ++i) {
    uint64_t da = 0;
    uint64_t db = 0;
    ASSERT_TRUE(a.Fire(FaultPoint::kMediaLatency, {}, &da));
    ASSERT_TRUE(b.Fire(FaultPoint::kMediaLatency, {}, &db));
    EXPECT_EQ(da, db);
    const uint64_t spike = a.LatencySpikeMicros(da);
    EXPECT_GE(spike, 1000u);
    EXPECT_LE(spike, 4000u);
    const uint64_t steps = a.ClockSkewSteps(da);
    EXPECT_GE(steps, 1u);
    EXPECT_LE(steps, 16u);
  }
}

TEST(FaultInjector, NamesAreStable) {
  EXPECT_EQ(FaultPointName(FaultPoint::kMediaReadError), "media_read_error");
  EXPECT_EQ(FaultPointName(FaultPoint::kClockSkew), "clock_skew");
  const FaultInjector injector(3);
  EXPECT_EQ(injector.seed(), 3u);
}

}  // namespace
}  // namespace minicrypt
