#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/common/histogram.h"
#include "src/common/thread_util.h"
#include "src/core/baseline_client.h"
#include "src/kvstore/media.h"
#include "src/obs/metrics.h"

namespace minicrypt {
namespace {

TEST(Histogram, MeanMinMaxCount) {
  Histogram h;
  for (uint64_t v : {10, 20, 30, 40}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
  EXPECT_EQ(h.Min(), 10u);
  EXPECT_EQ(h.Max(), 40u);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v);
  }
  // Bucketed percentiles land within one bucket width of the truth.
  EXPECT_NEAR(h.Percentile(0.5), 500.0, 150.0);
  EXPECT_NEAR(h.Percentile(0.99), 990.0, 250.0);
  EXPECT_LE(h.Percentile(0.0), 2.0);
}

TEST(Histogram, MergeAndReset) {
  Histogram a;
  Histogram b;
  a.Add(5);
  b.Add(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Min(), 5u);
  EXPECT_EQ(a.Max(), 500u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_FALSE(a.Summary().empty());
}

TEST(SimulatedClock, AdvanceAndSleep) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.SleepMicros(50);  // advances instead of blocking
  EXPECT_EQ(clock.NowMicros(), 150u);
  clock.Advance(10);
  EXPECT_EQ(clock.NowMicros(), 160u);
}

TEST(SimulatedMedia, ChargesSeekPlusTransfer) {
  SimulatedClock clock(0);
  MediaProfile profile;
  profile.seek_micros = 100;
  profile.bytes_per_micro_read = 10.0;
  profile.bytes_per_micro_write = 10.0;
  profile.latency_scale = 1.0;
  SimulatedMedia media(profile, &clock);
  media.Read(1000);  // 100 seek + 100 transfer
  EXPECT_EQ(clock.NowMicros(), 200u);
  EXPECT_EQ(media.stats().reads.load(), 1u);
  EXPECT_EQ(media.stats().read_bytes.load(), 1000u);
  media.Write(1000, /*sequential=*/true);  // no seek
  EXPECT_EQ(clock.NowMicros(), 300u);
}

TEST(SimulatedMedia, ChargesEvenWhenMetricsDisabled) {
  // Regression: the latency charge is the simulated device, not telemetry.
  // With the metrics registry disabled (MC_OBS=0 mode) reads and writes must
  // still sleep and account busy time; only the histogram record is skipped.
  MetricsRegistry::Instance().SetEnabled(false);
  SimulatedClock clock(0);
  MediaProfile profile;
  profile.seek_micros = 100;
  profile.bytes_per_micro_read = 10.0;
  profile.bytes_per_micro_write = 10.0;
  profile.latency_scale = 1.0;
  SimulatedMedia media(profile, &clock);
  media.Read(1000);                        // 100 seek + 100 transfer
  media.Write(1000, /*sequential=*/true);  // 100 transfer
  MetricsRegistry::Instance().SetEnabled(true);
  EXPECT_EQ(clock.NowMicros(), 300u);
  EXPECT_EQ(media.stats().busy_micros.load(), 300u);
}

TEST(SimulatedMedia, LatencyScaleApplies) {
  SimulatedClock clock(0);
  MediaProfile profile;
  profile.seek_micros = 1000;
  profile.bytes_per_micro_read = 1000.0;
  profile.latency_scale = 0.1;
  SimulatedMedia media(profile, &clock);
  media.Read(0);
  EXPECT_EQ(clock.NowMicros(), 100u);
}

TEST(SimulatedMedia, DiskQueueSerializesSsdOverlaps) {
  // Two threads read concurrently. On the disk profile (queue depth 1) the
  // wall time is ~2 service times; on the SSD profile (deep queue) ~1.
  auto measure = [](MediaProfile profile) {
    SimulatedMedia media(profile, SystemClock::Get());
    const auto start = std::chrono::steady_clock::now();
    std::thread t1([&] { media.Read(0); });
    std::thread t2([&] { media.Read(0); });
    t1.join();
    t2.join();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  MediaProfile disk;
  disk.seek_micros = 20000;
  disk.queue_depth = 1;
  MediaProfile ssd = disk;
  ssd.queue_depth = 8;
  const auto disk_us = measure(disk);
  const auto ssd_us = measure(ssd);
  EXPECT_GE(disk_us, 38000);
  EXPECT_LT(ssd_us, 38000);
}

TEST(PeriodicTask, RunsAndStops) {
  std::atomic<int> runs{0};
  {
    PeriodicTask task([&] { runs.fetch_add(1); }, 5000);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const int after_stop = runs.load();
  EXPECT_GT(after_stop, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(runs.load(), after_stop);
}

TEST(Semaphore, BoundsConcurrency) {
  Semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      SemaphoreGuard guard(sem);
      const int now = inside.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      inside.fetch_sub(1);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(peak.load(), 2);
}

class FacadeTest : public ::testing::Test {
 protected:
  FacadeTest() : cluster_(ClusterOptions::ForTest()), key_(SymmetricKey::FromSeed("k")) {
    options_.hash_partitions = 2;
  }

  Cluster cluster_;
  SymmetricKey key_;
  MiniCryptOptions options_;
};

TEST_F(FacadeTest, EncryptedBaselineRoundTripAndRange) {
  options_.table = "base";
  EncryptedBaselineClient client(&cluster_, options_, key_);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(client.Put(k, "value-" + std::to_string(k)).ok());
  }
  auto v = client.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value-7");
  EXPECT_TRUE(client.Get(999).status().IsNotFound());
  auto range = client.GetRange(10, 20);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 11u);
  EXPECT_EQ(range->front().first, 10u);
}

TEST_F(FacadeTest, BaselineValuesAreEncryptedAtRest) {
  options_.table = "base2";
  EncryptedBaselineClient client(&cluster_, options_, key_);
  ASSERT_TRUE(client.CreateTable().ok());
  const std::string marker = "SECRET_MARKER_VALUE_1234567890";
  ASSERT_TRUE(client.Put(1, marker).ok());
  const std::string encoded = EncodeKey64(1);
  auto row = cluster_.Read("base2", PartitionForKey(encoded, options_.hash_partitions),
                           encoded);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value.find(marker), std::string::npos);
}

TEST_F(FacadeTest, VanillaRoundTripAndPlaintextAtRest) {
  options_.table = "van";
  VanillaClient client(&cluster_, options_);
  ASSERT_TRUE(client.CreateTable().ok());
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(client.Put(k, "plain-" + std::to_string(k)).ok());
  }
  auto v = client.Get(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "plain-3");
  auto range = client.GetRange(0, 29);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 30u);
  // Vanilla stores plaintext (that is its point of comparison).
  const std::string encoded = EncodeKey64(3);
  auto row =
      cluster_.Read("van", PartitionForKey(encoded, options_.hash_partitions), encoded);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells.at("v").value, "plain-3");
}

}  // namespace
}  // namespace minicrypt
