#include "src/crypto/crypto.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/crypto/padding.h"

namespace minicrypt {
namespace {

TEST(SymmetricKey, DeterministicFromSeed) {
  const SymmetricKey a = SymmetricKey::FromSeed("customer-secret");
  const SymmetricKey b = SymmetricKey::FromSeed("customer-secret");
  EXPECT_EQ(0, memcmp(a.data(), b.data(), a.size()));
  const SymmetricKey c = SymmetricKey::FromSeed("other-secret");
  EXPECT_NE(0, memcmp(a.data(), c.data(), a.size()));
}

TEST(SymmetricKey, DerivedKeysAreDomainSeparated) {
  const SymmetricKey root = SymmetricKey::FromSeed("root");
  const SymmetricKey pack = root.Derive("pack:t1");
  const SymmetricKey prf = root.Derive("packid:t1");
  const SymmetricKey other_table = root.Derive("pack:t2");
  EXPECT_NE(0, memcmp(pack.data(), prf.data(), pack.size()));
  EXPECT_NE(0, memcmp(pack.data(), other_table.data(), pack.size()));
  EXPECT_NE(0, memcmp(pack.data(), root.data(), pack.size()));
}

TEST(Aes, RoundTripVariousSizes) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  Rng rng(1);
  for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{17}, size_t{1000},
                   size_t{100000}}) {
    const std::string plaintext = rng.Bytes(n);
    auto envelope = AesCbcEncrypt(key, plaintext);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->size() % kAesBlockBytes, 0u);
    auto back = AesCbcDecrypt(key, *envelope);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, plaintext);
  }
}

TEST(Aes, SemanticSecuritySameplaintextDifferentCiphertext) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string plaintext = "the same pack bytes";
  std::set<std::string> envelopes;
  for (int i = 0; i < 16; ++i) {
    auto envelope = AesCbcEncrypt(key, plaintext);
    ASSERT_TRUE(envelope.ok());
    envelopes.insert(*envelope);
  }
  EXPECT_EQ(envelopes.size(), 16u);  // fresh IV each time
}

TEST(Aes, WrongKeyFails) {
  auto envelope = AesCbcEncrypt(SymmetricKey::FromSeed("a"), "secret data here");
  ASSERT_TRUE(envelope.ok());
  auto out = AesCbcDecrypt(SymmetricKey::FromSeed("b"), *envelope);
  // CBC with PKCS#7: wrong key shows as padding corruption (or, rarely,
  // garbage that happens to have valid padding — envelope is short enough
  // that this is astronomically unlikely for this fixed test vector).
  EXPECT_FALSE(out.ok() && *out == "secret data here");
}

TEST(Aes, TamperedCiphertextRejectedOrGarbled) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  const std::string plaintext(1000, 'p');
  auto envelope = AesCbcEncrypt(key, plaintext);
  ASSERT_TRUE(envelope.ok());
  std::string tampered = *envelope;
  tampered[tampered.size() / 2] ^= 0x40;
  auto out = AesCbcDecrypt(key, tampered);
  EXPECT_FALSE(out.ok() && *out == plaintext);
}

TEST(Aes, GcmAadRoundTripAndMismatchRejected) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  Rng rng(9);
  // AAD with an embedded NUL, like the pack AAD's table/context delimiters.
  const std::string aad = std::string("table") + '\0' + "pack-17";
  for (size_t n : {size_t{0}, size_t{1}, size_t{100}, size_t{5000}}) {
    const std::string pt = rng.Bytes(n);
    auto env = AesGcmEncrypt(key, pt, aad);
    ASSERT_TRUE(env.ok());
    auto out = AesGcmDecrypt(key, *env, aad);
    ASSERT_TRUE(out.ok()) << "size " << n;
    EXPECT_EQ(*out, pt);
    // Truncating the AAD by one byte (NUL shifts the field boundary) fails.
    EXPECT_FALSE(AesGcmDecrypt(key, *env, aad.substr(0, aad.size() - 1)).ok());
  }
}

TEST(Aes, GcmAadBindsTheContext) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  auto env = AesGcmEncrypt(key, "payload", "context-A");
  ASSERT_TRUE(env.ok());
  auto ok = AesGcmDecrypt(key, *env, "context-A");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "payload");
  // Different AAD, AAD dropped, or AAD invented: all fail the tag check.
  EXPECT_TRUE(AesGcmDecrypt(key, *env, "context-B").status().IsCorruption());
  EXPECT_TRUE(AesGcmDecrypt(key, *env).status().IsCorruption());
  auto bare = AesGcmEncrypt(key, "payload");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(AesGcmDecrypt(key, *bare, "context-A").status().IsCorruption());
  EXPECT_TRUE(AesGcmDecrypt(key, *bare).ok());
}

TEST(Aes, MalformedEnvelopeLengthsRejected) {
  const SymmetricKey key = SymmetricKey::FromSeed("k");
  EXPECT_TRUE(AesCbcDecrypt(key, "").status().IsCorruption());
  EXPECT_TRUE(AesCbcDecrypt(key, std::string(16, 'x')).status().IsCorruption());
  EXPECT_TRUE(AesCbcDecrypt(key, std::string(33, 'x')).status().IsCorruption());
}

TEST(Sha256, KnownProperties) {
  const std::string h1 = Sha256("abc");
  const std::string h2 = Sha256("abc");
  const std::string h3 = Sha256("abd");
  EXPECT_EQ(h1.size(), kSha256Bytes);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(Hmac, DeterministicPerKey) {
  const SymmetricKey k1 = SymmetricKey::FromSeed("1");
  const SymmetricKey k2 = SymmetricKey::FromSeed("2");
  EXPECT_EQ(HmacSha256(k1, "packid-5"), HmacSha256(k1, "packid-5"));
  EXPECT_NE(HmacSha256(k1, "packid-5"), HmacSha256(k2, "packid-5"));
  EXPECT_NE(HmacSha256(k1, "packid-5"), HmacSha256(k1, "packid-6"));
}

TEST(ConstantTimeEqual, Basics) {
  EXPECT_TRUE(ConstantTimeEqual("same", "same"));
  EXPECT_FALSE(ConstantTimeEqual("same", "s4me"));
  EXPECT_FALSE(ConstantTimeEqual("short", "longer"));
  EXPECT_TRUE(ConstantTimeEqual("", ""));
}

TEST(Padding, TierSelection) {
  const PaddingTiers tiers = PaddingTiers::SmallMediumLarge(1024, 4096, 16384);
  EXPECT_EQ(tiers.TierFor(1), 1024u);
  EXPECT_EQ(tiers.TierFor(1024), 1024u);
  EXPECT_EQ(tiers.TierFor(1025), 4096u);
  EXPECT_EQ(tiers.TierFor(16384), 16384u);
  // Above the top tier: multiples of the top tier.
  EXPECT_EQ(tiers.TierFor(16385), 32768u);
  EXPECT_EQ(tiers.TierFor(40000), 49152u);
}

TEST(Padding, ExponentialTiers) {
  const PaddingTiers tiers = PaddingTiers::Exponential(512, 4);  // 512,1k,2k,4k
  EXPECT_EQ(tiers.tiers().size(), 4u);
  EXPECT_EQ(tiers.TierFor(600), 1024u);
}

TEST(Padding, PadUnpadRoundTrip) {
  const PaddingTiers tiers = PaddingTiers::Exponential(256, 6);
  Rng rng(3);
  for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256}, size_t{1000},
                   size_t{50000}}) {
    const std::string payload = rng.Bytes(n);
    const std::string padded = tiers.Pad(payload);
    EXPECT_GE(padded.size(), payload.size());
    EXPECT_EQ(padded.size(), tiers.TierFor(payload.size() + VarintLength(payload.size())));
    auto back = PaddingTiers::Unpad(padded);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, payload);
  }
}

TEST(Padding, SizesCollapseToTiers) {
  // The security point: many distinct payload sizes map to few visible sizes.
  const PaddingTiers tiers = PaddingTiers::SmallMediumLarge(1024, 4096, 16384);
  std::set<size_t> visible;
  for (size_t n = 0; n < 4000; n += 37) {
    visible.insert(tiers.Pad(std::string(n, 'x')).size());
  }
  EXPECT_LE(visible.size(), 2u);
}

TEST(Padding, DisabledPassThrough) {
  const PaddingTiers none = PaddingTiers::None();
  EXPECT_FALSE(none.enabled());
  const std::string payload(100, 'z');
  const std::string framed = none.Pad(payload);
  EXPECT_EQ(framed.size(), payload.size() + VarintLength(payload.size()));
  auto back = PaddingTiers::Unpad(framed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(Padding, TruncatedFrameRejected) {
  const PaddingTiers none = PaddingTiers::None();
  const std::string framed = none.Pad(std::string(100, 'z'));
  EXPECT_FALSE(PaddingTiers::Unpad(std::string_view(framed.data(), 50)).ok());
}

}  // namespace
}  // namespace minicrypt
