#include "src/core/access_proxy.h"

#include <gtest/gtest.h>

namespace minicrypt {
namespace {

class AccessProxyTest : public ::testing::Test {
 protected:
  AccessProxyTest()
      : cluster_(ClusterOptions::ForTest()),
        key_(SymmetricKey::FromSeed("tenant")),
        proxy_(&cluster_, MakeOptions(), key_) {
    EXPECT_TRUE(proxy_.client().CreateTable().ok());
    std::vector<std::pair<uint64_t, std::string>> rows;
    for (uint64_t k = 0; k < 100; ++k) {
      rows.emplace_back(k, "v" + std::to_string(k));
    }
    EXPECT_TRUE(proxy_.client().BulkLoad(rows).ok());
  }

  static MiniCryptOptions MakeOptions() {
    MiniCryptOptions o;
    o.pack_rows = 8;
    o.hash_partitions = 2;
    return o;
  }

  Cluster cluster_;
  SymmetricKey key_;
  AccessProxy proxy_;
};

TEST_F(AccessProxyTest, UngrantedPrincipalDeniedEverything) {
  EXPECT_FALSE(proxy_.Get("nobody", 5).ok());
  EXPECT_FALSE(proxy_.Put("nobody", 5, "x").ok());
  EXPECT_FALSE(proxy_.Delete("nobody", 5).ok());
}

TEST_F(AccessProxyTest, ReadGrantAllowsReadsOnlyWithinRange) {
  proxy_.AddGrant("analyst", Grant{10, 19, static_cast<uint8_t>(Permission::kRead)});
  auto v = proxy_.Get("analyst", 15);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v15");
  EXPECT_FALSE(proxy_.Get("analyst", 20).ok());  // outside range
  EXPECT_FALSE(proxy_.Put("analyst", 15, "x").ok());  // no write bit
}

TEST_F(AccessProxyTest, WriteAndDeleteBits) {
  proxy_.AddGrant("writer", Grant{0, 49, Permission::kRead | Permission::kWrite});
  EXPECT_TRUE(proxy_.Put("writer", 3, "updated").ok());
  auto v = proxy_.Get("writer", 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "updated");
  EXPECT_FALSE(proxy_.Delete("writer", 3).ok());  // no delete bit

  proxy_.AddGrant("writer", Grant{3, 3, static_cast<uint8_t>(Permission::kDelete)});
  EXPECT_TRUE(proxy_.Delete("writer", 3).ok());
  EXPECT_TRUE(proxy_.Get("writer", 3).status().IsNotFound());
}

TEST_F(AccessProxyTest, RangeResultsFilteredToGrants) {
  // The grant covers a sub-range that shares packs with ungranted keys.
  proxy_.AddGrant("partial", Grant{20, 29, static_cast<uint8_t>(Permission::kRead)});
  auto rows = proxy_.GetRange("partial", 0, 99);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  for (const auto& [k, v] : *rows) {
    EXPECT_GE(k, 20u);
    EXPECT_LE(k, 29u);
  }
}

TEST_F(AccessProxyTest, MultipleGrantsUnion) {
  proxy_.AddGrant("multi", Grant{0, 4, static_cast<uint8_t>(Permission::kRead)});
  proxy_.AddGrant("multi", Grant{90, 99, static_cast<uint8_t>(Permission::kRead)});
  auto rows = proxy_.GetRange("multi", 0, 99);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 15u);
}

TEST_F(AccessProxyTest, RevokeCutsAccess) {
  proxy_.AddGrant("temp", Grant{0, 99, static_cast<uint8_t>(Permission::kRead)});
  EXPECT_TRUE(proxy_.Get("temp", 1).ok());
  proxy_.RevokePrincipal("temp");
  EXPECT_FALSE(proxy_.Get("temp", 1).ok());
}

}  // namespace
}  // namespace minicrypt
