#include "src/crypto/ope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"

namespace minicrypt {
namespace {

TEST(Ope, OrderPreservedOnRandomPairs) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const std::string ea = ope.Encrypt(a);
    const std::string eb = ope.Encrypt(b);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
    EXPECT_EQ(a == b, ea == eb);
  }
}

TEST(Ope, OrderPreservedOnAdjacentAndBoundaryValues) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  const uint64_t cases[] = {0, 1, 2, 49, 50, 51, (1ULL << 32) - 1, 1ULL << 32,
                            ~0ULL - 1, ~0ULL};
  std::string prev;
  for (size_t i = 0; i < std::size(cases); ++i) {
    const std::string e = ope.Encrypt(cases[i]);
    EXPECT_EQ(e.size(), kOpeCiphertextBytes);
    if (i > 0) {
      EXPECT_LT(prev, e);
    }
    prev = e;
  }
}

TEST(Ope, DeterministicPerKeyDistinctAcrossKeys) {
  OpeCipher a(SymmetricKey::FromSeed("k1"));
  OpeCipher a2(SymmetricKey::FromSeed("k1"));
  OpeCipher b(SymmetricKey::FromSeed("k2"));
  EXPECT_EQ(a.Encrypt(777), a2.Encrypt(777));
  EXPECT_NE(a.Encrypt(777), b.Encrypt(777));
}

TEST(Ope, DecryptInvertsEncrypt) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const uint64_t m = rng.Next() >> rng.Uniform(64);
    auto back = ope.Decrypt(ope.Encrypt(m));
    ASSERT_TRUE(back.ok()) << m;
    EXPECT_EQ(*back, m);
  }
}

TEST(Ope, NonImageRejected) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  // Perturb a valid image by one; the result is almost surely not an image
  // (the range is 2^32 times sparser than the domain).
  std::string image = ope.Encrypt(42);
  image.back() = static_cast<char>(static_cast<uint8_t>(image.back()) ^ 1);
  auto out = ope.Decrypt(image);
  if (out.ok()) {
    EXPECT_NE(*out, 42u);  // astronomically unlikely branch
  }
  EXPECT_FALSE(ope.Decrypt("short").ok());
}

TEST(Ope, ImagesInjective) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  std::set<std::string> images;
  for (uint64_t m = 0; m < 2000; ++m) {
    images.insert(ope.Encrypt(m * 1000003));
  }
  EXPECT_EQ(images.size(), 2000u);
}

TEST(Ope, SortingCiphertextsSortsPlaintexts) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(9);
  std::vector<std::pair<std::string, uint64_t>> pairs;
  for (int i = 0; i < 500; ++i) {
    const uint64_t m = rng.Next();
    pairs.emplace_back(ope.Encrypt(m), m);
  }
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].second, pairs[i].second);
  }
}

}  // namespace
}  // namespace minicrypt
