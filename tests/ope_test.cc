#include "src/crypto/ope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/core/generic_client.h"
#include "src/index/secondary_index.h"

namespace minicrypt {
namespace {

TEST(Ope, OrderPreservedOnRandomPairs) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const std::string ea = ope.Encrypt(a);
    const std::string eb = ope.Encrypt(b);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
    EXPECT_EQ(a == b, ea == eb);
  }
}

TEST(Ope, OrderPreservedOnAdjacentAndBoundaryValues) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  const uint64_t cases[] = {0, 1, 2, 49, 50, 51, (1ULL << 32) - 1, 1ULL << 32,
                            ~0ULL - 1, ~0ULL};
  std::string prev;
  for (size_t i = 0; i < std::size(cases); ++i) {
    const std::string e = ope.Encrypt(cases[i]);
    EXPECT_EQ(e.size(), kOpeCiphertextBytes);
    if (i > 0) {
      EXPECT_LT(prev, e);
    }
    prev = e;
  }
}

TEST(Ope, DeterministicPerKeyDistinctAcrossKeys) {
  OpeCipher a(SymmetricKey::FromSeed("k1"));
  OpeCipher a2(SymmetricKey::FromSeed("k1"));
  OpeCipher b(SymmetricKey::FromSeed("k2"));
  EXPECT_EQ(a.Encrypt(777), a2.Encrypt(777));
  EXPECT_NE(a.Encrypt(777), b.Encrypt(777));
}

TEST(Ope, DecryptInvertsEncrypt) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const uint64_t m = rng.Next() >> rng.Uniform(64);
    auto back = ope.Decrypt(ope.Encrypt(m));
    ASSERT_TRUE(back.ok()) << m;
    EXPECT_EQ(*back, m);
  }
}

TEST(Ope, NonImageRejected) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  // Perturb a valid image by one; the result is almost surely not an image
  // (the range is 2^32 times sparser than the domain).
  std::string image = ope.Encrypt(42);
  image.back() = static_cast<char>(static_cast<uint8_t>(image.back()) ^ 1);
  auto out = ope.Decrypt(image);
  if (out.ok()) {
    EXPECT_NE(*out, 42u);  // astronomically unlikely branch
  }
  EXPECT_FALSE(ope.Decrypt("short").ok());
}

TEST(Ope, ImagesInjective) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  std::set<std::string> images;
  for (uint64_t m = 0; m < 2000; ++m) {
    images.insert(ope.Encrypt(m * 1000003));
  }
  EXPECT_EQ(images.size(), 2000u);
}

// The cipher is stateless: the order of Encrypt calls must not matter. Feed
// adversarially non-monotone sequences (descending, zigzag, shuffled with
// revisits) and require the images to agree with plaintext order pairwise.
TEST(Ope, NonMonotoneInputSequencesPreserveOrder) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  std::vector<uint64_t> inputs;
  for (uint64_t i = 50; i-- > 0;) {
    inputs.push_back(i * 997);  // strictly descending
  }
  for (uint64_t i = 0; i < 50; ++i) {
    inputs.push_back(i % 2 == 0 ? i : ~0ULL - i);  // zigzag across the domain
  }
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    inputs.push_back(rng.Next() >> rng.Uniform(60));  // revisit-heavy shuffle
  }
  std::vector<std::string> images;
  images.reserve(inputs.size());
  for (uint64_t m : inputs) {
    images.push_back(ope.Encrypt(m));
  }
  for (size_t a = 0; a < inputs.size(); ++a) {
    for (size_t b = a + 1; b < inputs.size(); ++b) {
      EXPECT_EQ(inputs[a] < inputs[b], images[a] < images[b]) << inputs[a] << " vs " << inputs[b];
      EXPECT_EQ(inputs[a] == inputs[b], images[a] == images[b]);
    }
  }
}

// Duplicates interleaved anywhere in a stream always produce the identical
// image (the index relies on this: re-routing an entry must find the same
// leaf label its first insert chose).
TEST(Ope, DuplicatesEncryptIdenticallyRegardlessOfInterleaving) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(13);
  std::map<uint64_t, std::string> first_image;
  for (int i = 0; i < 600; ++i) {
    const uint64_t m = rng.Uniform(40);  // heavy duplication
    const std::string e = ope.Encrypt(m);
    auto [it, inserted] = first_image.emplace(m, e);
    if (!inserted) {
      EXPECT_EQ(it->second, e) << "duplicate of " << m << " changed image";
    }
  }
}

// Boundary encodings: neighborhoods of every power of two (where the binary
// partition tree changes depth) must stay strictly monotone, emit fixed-width
// images, and round-trip through Decrypt.
TEST(Ope, PowerOfTwoBoundariesEncodeStrictlyMonotone) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  std::vector<uint64_t> cases = {0, 1, 2, 3};
  for (int bit = 2; bit < 64; ++bit) {
    const uint64_t p = 1ULL << bit;
    cases.push_back(p - 1);
    cases.push_back(p);
    if (p + 1 != 0) {
      cases.push_back(p + 1);
    }
  }
  cases.push_back(~0ULL - 1);
  cases.push_back(~0ULL);
  std::sort(cases.begin(), cases.end());
  cases.erase(std::unique(cases.begin(), cases.end()), cases.end());
  std::string prev;
  for (size_t i = 0; i < cases.size(); ++i) {
    const std::string e = ope.Encrypt(cases[i]);
    ASSERT_EQ(e.size(), kOpeCiphertextBytes) << cases[i];
    if (i > 0) {
      EXPECT_LT(prev, e) << "images not strictly increasing at " << cases[i];
    }
    prev = e;
    auto back = ope.Decrypt(e);
    ASSERT_TRUE(back.ok()) << cases[i];
    EXPECT_EQ(*back, cases[i]);
  }
}

// Cross-check against the kTotalOrder secondary index: the sorted-leaf
// partition is labeled with OPE images, so the server-visible lexicographic
// label order must be exactly attribute order — decrypting each label gives a
// strictly increasing sequence, every entry in a leaf has attr >= its label's
// plaintext, and consecutive leaves never overlap. This pins the contract the
// index's floor routing and range scans stand on.
TEST(Ope, TotalOrderIndexLeafLabelsAgreeWithOpeOrder) {
  Cluster cluster(ClusterOptions::ForTest());
  const SymmetricKey key = SymmetricKey::FromSeed("ope-x");
  MiniCryptOptions options;
  options.pack_rows = 8;
  GenericClient client(&cluster, options, key);
  ASSERT_TRUE(client.CreateTable().ok());
  SecondaryIndexOptions iopts;
  iopts.leakage = IndexLeakage::kTotalOrder;
  iopts.leaf_rows = 4;  // many leaves, many splits
  ASSERT_TRUE(client.CreateIndex(iopts).ok());

  Rng rng(5);
  for (uint64_t pk = 0; pk < 120; ++pk) {
    const uint64_t attr = rng.Uniform(60);
    ASSERT_TRUE(client.Put(pk, EncodeIndexedValue(attr, "v")).ok());
  }

  const auto& index = client.index();
  const OpeCipher& ope = index->ope();
  auto leaves = cluster.ReadRange(index->backing_table(), kIndexLeafPartition, "",
                                  std::string(kOpeCiphertextBytes, '\xff'));
  ASSERT_TRUE(leaves.ok());
  ASSERT_GT(leaves->size(), 3u) << "too few leaves to check ordering";

  const PackCrypter crypter(MiniCryptOptions(), key.Derive("index-pack:attr"));
  struct LeafFacts {
    std::string label;
    uint64_t label_attr;
    uint64_t min_attr;
    uint64_t max_attr;
  };
  std::vector<LeafFacts> facts;
  for (const auto& [label, row] : *leaves) {
    auto attr = ope.Decrypt(label);
    ASSERT_TRUE(attr.ok()) << "leaf label is not an OPE image";
    auto v = row.cells.find("v");
    ASSERT_TRUE(v != row.cells.end());
    auto pack = crypter.Open(v->second.value);
    ASSERT_TRUE(pack.ok()) << pack.status().ToString();
    ASSERT_GT(pack->size(), 0u);
    LeafFacts f{label, *attr, ~0ULL, 0};
    for (const auto& entry : pack->entries()) {
      ASSERT_EQ(entry.key.size(), 16u);
      auto entry_attr = DecodeKey64(entry.key.substr(0, 8));
      ASSERT_TRUE(entry_attr.ok());
      f.min_attr = std::min(f.min_attr, *entry_attr);
      f.max_attr = std::max(f.max_attr, *entry_attr);
    }
    facts.push_back(std::move(f));
  }
  for (size_t i = 0; i < facts.size(); ++i) {
    // Every entry belongs at or above its label's plaintext.
    EXPECT_GE(facts[i].min_attr, facts[i].label_attr) << "entry below its leaf label";
    if (i > 0) {
      // ReadRange returned labels ascending; their plaintexts must ascend
      // identically, and leaves must not overlap: attribute order, label
      // order, and leaf partition order are one and the same.
      EXPECT_LT(facts[i - 1].label, facts[i].label);
      EXPECT_LT(facts[i - 1].label_attr, facts[i].label_attr)
          << "label order disagrees with attribute order";
      EXPECT_LT(facts[i - 1].max_attr, facts[i].label_attr) << "leaves overlap";
    }
  }
}

TEST(Ope, SortingCiphertextsSortsPlaintexts) {
  OpeCipher ope(SymmetricKey::FromSeed("k"));
  Rng rng(9);
  std::vector<std::pair<std::string, uint64_t>> pairs;
  for (int i = 0; i < 500; ++i) {
    const uint64_t m = rng.Next();
    pairs.emplace_back(ope.Encrypt(m), m);
  }
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].second, pairs[i].second);
  }
}

}  // namespace
}  // namespace minicrypt
