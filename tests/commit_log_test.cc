#include "src/kvstore/commit_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/coding.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value, uint64_t ts) {
  Row row;
  row.cells["v"] = Cell{std::move(value), ts, false};
  return row;
}

TEST(CommitLog, AppendReplayRoundTrip) {
  NullMedia media;
  CommitLog log(std::make_unique<MemoryLogSink>(), &media);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("one", 1)).ok());
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(2)), ValueRow("two", 2)).ok());

  std::vector<std::pair<std::string, std::string>> seen;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) {
                   seen.emplace_back(std::string(key), row.cells.at("v").value);
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, "one");
  EXPECT_EQ(seen[1].second, "two");
  // Sequential write latency was charged.
  EXPECT_EQ(media.stats().writes.load(), 2u);
}

TEST(CommitLog, RetireDropsRecords) {
  CommitLog log(std::make_unique<MemoryLogSink>(), nullptr);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("x", 1)).ok());
  ASSERT_TRUE(log.Retire().ok());
  int replayed = 0;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 0);
}

TEST(CommitLog, CorruptRecordStopsReplayWithoutError) {
  auto sink = std::make_unique<MemoryLogSink>();
  MemoryLogSink* raw = sink.get();
  CommitLog log(std::move(sink), nullptr);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("good", 1)).ok());
  // Append garbage that is not a valid record.
  ASSERT_TRUE(raw->Append("garbage bytes that fail the crc").ok());
  int replayed = 0;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 1);
}

TEST(FileLogSink, RoundTripOnDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mc_commit_log_test.log").string();
  std::remove(path.c_str());
  {
    FileLogSink sink(path);
    ASSERT_TRUE(sink.Append("hello ").ok());
    ASSERT_TRUE(sink.Append("world").ok());
    std::string all;
    ASSERT_TRUE(sink.ReadAll(&all).ok());
    EXPECT_EQ(all, "hello world");
    ASSERT_TRUE(sink.Truncate().ok());
    ASSERT_TRUE(sink.ReadAll(&all).ok());
    EXPECT_TRUE(all.empty());
  }
  std::remove(path.c_str());
}

TEST(FileLogSink, MissingFileReadsEmpty) {
  FileLogSink sink("/nonexistent-dir-hopefully/never.log");
  std::string all = "sentinel";
  ASSERT_TRUE(sink.ReadAll(&all).ok());
  EXPECT_TRUE(all.empty());
}

TEST(CommitLog, FileBackedEngineRecovery) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mc_engine_recovery.log").string();
  std::remove(path.c_str());

  CommitLog writer(std::make_unique<FileLogSink>(path), nullptr);
  ASSERT_TRUE(writer.Append(EncodeRowKey("p", EncodeKey64(10)), ValueRow("durable", 5)).ok());

  // A second process (modelled by a fresh CommitLog over the same file)
  // replays what the first wrote.
  CommitLog reader(std::make_unique<FileLogSink>(path), nullptr);
  std::vector<std::string> values;
  ASSERT_TRUE(reader.Replay([&](std::string_view key, const Row& row) {
                  values.push_back(row.cells.at("v").value);
                })
                  .ok());
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "durable");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace minicrypt
