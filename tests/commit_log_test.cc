#include "src/kvstore/commit_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/coding.h"

namespace minicrypt {
namespace {

Row ValueRow(std::string value, uint64_t ts) {
  Row row;
  row.cells["v"] = Cell{std::move(value), ts, false};
  return row;
}

TEST(CommitLog, AppendReplayRoundTrip) {
  NullMedia media;
  CommitLog log(std::make_unique<MemoryLogSink>(), &media);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("one", 1)).ok());
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(2)), ValueRow("two", 2)).ok());

  std::vector<std::pair<std::string, std::string>> seen;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) {
                   seen.emplace_back(std::string(key), row.cells.at("v").value);
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, "one");
  EXPECT_EQ(seen[1].second, "two");
  // Sequential write latency was charged.
  EXPECT_EQ(media.stats().writes.load(), 2u);
}

TEST(CommitLog, RetireDropsRecords) {
  CommitLog log(std::make_unique<MemoryLogSink>(), nullptr);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("x", 1)).ok());
  ASSERT_TRUE(log.Retire().ok());
  int replayed = 0;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 0);
}

TEST(CommitLog, CorruptRecordStopsReplayWithoutError) {
  auto sink = std::make_unique<MemoryLogSink>();
  MemoryLogSink* raw = sink.get();
  CommitLog log(std::move(sink), nullptr);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("good", 1)).ok());
  // Append garbage that is not a valid record.
  ASSERT_TRUE(raw->Append("garbage bytes that fail the crc").ok());
  int replayed = 0;
  ASSERT_TRUE(log.Replay([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 1);
}

TEST(CommitLog, RecoverTruncatesAtLastIntactRecord) {
  auto sink = std::make_unique<MemoryLogSink>();
  MemoryLogSink* raw = sink.get();
  CommitLog log(std::move(sink), nullptr);
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(1)), ValueRow("a", 1)).ok());
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(2)), ValueRow("b", 2)).ok());
  // Tear the tail record and leave garbage where its end used to be.
  std::string all;
  ASSERT_TRUE(raw->ReadAll(&all).ok());
  const size_t torn_size = all.size() - 3;
  ASSERT_TRUE(raw->TruncateTo(torn_size).ok());

  std::vector<std::string> seen;
  ASSERT_TRUE(log.Recover([&](std::string_view key, const Row& row) {
                  seen.push_back(row.cells.at("v").value);
                })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "a");
  // Recover must have cut the segment back to the last intact record — the
  // torn bytes are gone from the sink.
  ASSERT_TRUE(raw->ReadAll(&all).ok());
  EXPECT_LT(all.size(), torn_size);

  // Post-recovery appends land right after the intact prefix; a second
  // recovery sees the clean sequence with no garbage interleaved.
  ASSERT_TRUE(log.Append(EncodeRowKey("p", EncodeKey64(3)), ValueRow("c", 3)).ok());
  seen.clear();
  ASSERT_TRUE(log.Recover([&](std::string_view key, const Row& row) {
                  seen.push_back(row.cells.at("v").value);
                })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a");
  EXPECT_EQ(seen[1], "c");
}

// Satellite: truncate a multi-record segment at *every* byte offset. Replay
// must always produce a prefix of the written records — never an error, never
// a phantom record, never a record out of order.
TEST(CommitLog, ReplayOfEveryTruncationYieldsAPrefix) {
  auto sink = std::make_unique<MemoryLogSink>();
  MemoryLogSink* raw = sink.get();
  CommitLog log(std::move(sink), nullptr);
  constexpr int kRecords = 8;
  std::vector<std::string> written;
  // Varying value sizes so record boundaries fall at irregular offsets.
  for (int i = 0; i < kRecords; ++i) {
    std::string value(static_cast<size_t>(7 * i + 1), static_cast<char>('a' + i));
    written.push_back(value);
    ASSERT_TRUE(
        log.Append(EncodeRowKey("p", EncodeKey64(static_cast<uint64_t>(i))), ValueRow(value, i + 1))
            .ok());
  }
  std::string full;
  ASSERT_TRUE(raw->ReadAll(&full).ok());

  size_t last_prefix_len = 0;
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    auto truncated = std::make_unique<MemoryLogSink>();
    ASSERT_TRUE(truncated->Append(std::string_view(full.data(), cut)).ok());
    CommitLog replayer(std::move(truncated), nullptr);
    std::vector<std::string> seen;
    ASSERT_TRUE(replayer
                    .Replay([&](std::string_view key, const Row& row) {
                      seen.push_back(row.cells.at("v").value);
                    })
                    .ok())
        << "replay errored at cut " << cut;
    ASSERT_LE(seen.size(), written.size()) << "phantom record at cut " << cut;
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], written[i]) << "not a prefix at cut " << cut;
    }
    // Longer inputs can only reveal more records, never fewer.
    EXPECT_GE(seen.size(), last_prefix_len) << "prefix shrank at cut " << cut;
    last_prefix_len = seen.size();
  }
  EXPECT_EQ(last_prefix_len, static_cast<size_t>(kRecords));
}

TEST(CommitLog, CrashDropsOnlyUnsyncedTail) {
  auto sink = std::make_unique<MemoryLogSink>();
  CommitLog log(std::move(sink), nullptr, nullptr, /*sync_every_appends=*/4);
  // 4 appends complete a sync batch; the 5th sits in the unsynced tail.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        log.Append(EncodeRowKey("p", EncodeKey64(static_cast<uint64_t>(i))), ValueRow("v", i + 1))
            .ok());
  }
  EXPECT_GT(log.UnsyncedBytes(), 0u);
  const size_t unsynced = log.UnsyncedBytes();
  // A draw of unsynced-tail size drops the whole tail (draw % (unsynced+1)).
  const size_t dropped = log.Crash(unsynced);
  EXPECT_EQ(dropped, unsynced);
  EXPECT_EQ(log.UnsyncedBytes(), 0u);
  int replayed = 0;
  ASSERT_TRUE(log.Recover([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 4);  // the synced batch survived intact
}

TEST(CommitLog, CrashWithEverySyncKeepsEverything) {
  CommitLog log(std::make_unique<MemoryLogSink>(), nullptr, nullptr,
                /*sync_every_appends=*/1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        log.Append(EncodeRowKey("p", EncodeKey64(static_cast<uint64_t>(i))), ValueRow("v", i + 1))
            .ok());
  }
  EXPECT_EQ(log.UnsyncedBytes(), 0u);
  EXPECT_EQ(log.Crash(~0ull), 0u);  // nothing at risk, any draw drops nothing
  int replayed = 0;
  ASSERT_TRUE(log.Recover([&](std::string_view key, const Row& row) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 5);
}

TEST(FileLogSink, RoundTripOnDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mc_commit_log_test.log").string();
  std::remove(path.c_str());
  {
    FileLogSink sink(path);
    ASSERT_TRUE(sink.Append("hello ").ok());
    ASSERT_TRUE(sink.Append("world").ok());
    std::string all;
    ASSERT_TRUE(sink.ReadAll(&all).ok());
    EXPECT_EQ(all, "hello world");
    ASSERT_TRUE(sink.TruncateTo(5).ok());
    ASSERT_TRUE(sink.ReadAll(&all).ok());
    EXPECT_EQ(all, "hello");
    ASSERT_TRUE(sink.Truncate().ok());
    ASSERT_TRUE(sink.ReadAll(&all).ok());
    EXPECT_TRUE(all.empty());
  }
  std::remove(path.c_str());
}

TEST(FileLogSink, MissingFileReadsEmpty) {
  FileLogSink sink("/nonexistent-dir-hopefully/never.log");
  std::string all = "sentinel";
  ASSERT_TRUE(sink.ReadAll(&all).ok());
  EXPECT_TRUE(all.empty());
}

TEST(CommitLog, FileBackedEngineRecovery) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mc_engine_recovery.log").string();
  std::remove(path.c_str());

  CommitLog writer(std::make_unique<FileLogSink>(path), nullptr);
  ASSERT_TRUE(writer.Append(EncodeRowKey("p", EncodeKey64(10)), ValueRow("durable", 5)).ok());

  // A second process (modelled by a fresh CommitLog over the same file)
  // replays what the first wrote.
  CommitLog reader(std::make_unique<FileLogSink>(path), nullptr);
  std::vector<std::string> values;
  ASSERT_TRUE(reader.Replay([&](std::string_view key, const Row& row) {
                  values.push_back(row.cells.at("v").value);
                })
                  .ok());
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "durable");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace minicrypt
