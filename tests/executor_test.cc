// Bounded thread-pool executor: admission, backpressure, shutdown-drain, and
// exception behavior (docs/CONCURRENCY.md).

#include "src/common/executor.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_util.h"

namespace minicrypt {
namespace {

TEST(ExecutorTest, RunsSubmittedTasks) {
  Executor::Options options;
  options.threads = 4;
  Executor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(executor.Submit([&ran]() { ran.fetch_add(1); }));
  }
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ExecutorTest, TrySubmitFailsFastWhenQueueFull) {
  Executor::Options options;
  options.threads = 1;
  options.queue_limit = 2;
  Executor executor(options);

  // Park the single worker so subsequent tasks pile up in the queue.
  StartGate release;
  ASSERT_TRUE(executor.TrySubmit([&release]() { release.Wait(); }));
  // Give the worker a moment to dequeue the parked task; then the queue
  // accepts exactly queue_limit more.
  while (executor.InFlight() != 1) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(executor.TrySubmit([]() {}));
  EXPECT_TRUE(executor.TrySubmit([]() {}));
  // Full: bounded admission means the caller hears "no" immediately instead
  // of blocking behind an unbounded backlog.
  EXPECT_FALSE(executor.TrySubmit([]() {}));
  EXPECT_EQ(executor.QueueDepth(), 2u);

  release.Open();
  executor.Shutdown();
}

TEST(ExecutorTest, SubmitBlocksForSpaceThenSucceeds) {
  Executor::Options options;
  options.threads = 1;
  options.queue_limit = 1;
  Executor executor(options);

  StartGate release;
  std::atomic<int> ran{0};
  ASSERT_TRUE(executor.TrySubmit([&release]() { release.Wait(); }));
  while (executor.InFlight() != 1) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(executor.TrySubmit([&ran]() { ran.fetch_add(1); }));

  // Queue is at capacity: Submit must wait for space, not fail.
  std::thread producer([&]() { EXPECT_TRUE(executor.Submit([&ran]() { ran.fetch_add(1); })); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.Open();
  producer.join();
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ExecutorTest, ShutdownDrainsAdmittedTasks) {
  Executor::Options options;
  options.threads = 2;
  options.queue_limit = 1024;
  Executor executor(options);
  std::atomic<int> ran{0};
  StartGate release;
  // Two parked workers + a deep queue: Shutdown must run everything admitted.
  ASSERT_TRUE(executor.TrySubmit([&]() {
    release.Wait();
    ran.fetch_add(1);
  }));
  ASSERT_TRUE(executor.TrySubmit([&]() {
    release.Wait();
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(executor.TrySubmit([&ran]() { ran.fetch_add(1); }));
  }
  std::thread opener([&release]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.Open();
  });
  executor.Shutdown();
  opener.join();
  EXPECT_EQ(ran.load(), 52);
  // After shutdown, nothing is admitted (by either path).
  EXPECT_FALSE(executor.TrySubmit([]() {}));
  EXPECT_FALSE(executor.Submit([]() {}));
}

TEST(ExecutorTest, ShutdownIsIdempotentAndImpliedByDestruction) {
  Executor::Options options;
  options.threads = 2;
  auto executor = std::make_unique<Executor>(options);
  std::atomic<int> ran{0};
  ASSERT_TRUE(executor->Submit([&ran]() { ran.fetch_add(1); }));
  executor->Shutdown();
  executor->Shutdown();
  executor.reset();  // destructor re-enters Shutdown
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorTest, ExceptionsAreCountedAndDoNotKillWorkers) {
  Executor::Options options;
  options.threads = 1;
  Executor executor(options);
  std::atomic<int> ran{0};
  ASSERT_TRUE(executor.Submit([]() { throw std::runtime_error("task boom"); }));
  // The worker survives and keeps draining.
  ASSERT_TRUE(executor.Submit([&ran]() { ran.fetch_add(1); }));
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(executor.uncaught_exceptions(), 1u);
}

TEST(ExecutorTest, SubmitFuturePropagatesResultAndException) {
  Executor::Options options;
  options.threads = 2;
  Executor executor(options);

  std::future<int> value = executor.SubmitFuture([]() { return 41 + 1; });
  EXPECT_EQ(value.get(), 42);

  std::future<int> thrown =
      executor.SubmitFuture([]() -> int { throw std::runtime_error("future boom"); });
  EXPECT_THROW(thrown.get(), std::runtime_error);
  // Futures carry their exception to the caller; the swallow-counter is only
  // for fire-and-forget tasks.
  EXPECT_EQ(executor.uncaught_exceptions(), 0u);
}

TEST(ExecutorTest, SubmitFutureAfterShutdownRunsInline) {
  Executor::Options options;
  options.threads = 1;
  Executor executor(options);
  executor.Shutdown();
  std::future<int> value = executor.SubmitFuture([]() { return 7; });
  EXPECT_EQ(value.get(), 7);  // future is always satisfied
}

TEST(ExecutorTest, GaugesTrackQueueAndInflight) {
  Executor::Options options;
  options.threads = 1;
  options.queue_limit = 8;
  Executor executor(options);
  EXPECT_EQ(executor.QueueDepth(), 0u);
  EXPECT_EQ(executor.InFlight(), 0u);
  EXPECT_EQ(executor.thread_count(), 1);

  StartGate release;
  ASSERT_TRUE(executor.TrySubmit([&release]() { release.Wait(); }));
  while (executor.InFlight() != 1) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(executor.TrySubmit([]() {}));
  EXPECT_EQ(executor.QueueDepth(), 1u);
  release.Open();
  executor.Shutdown();
  EXPECT_EQ(executor.QueueDepth(), 0u);
  EXPECT_EQ(executor.InFlight(), 0u);
}

}  // namespace
}  // namespace minicrypt
