// In-memory sorted write buffer of the LSM engine. Not internally
// synchronized — the owning StorageEngine serializes access.

#ifndef MINICRYPT_SRC_KVSTORE_MEMTABLE_H_
#define MINICRYPT_SRC_KVSTORE_MEMTABLE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/kvstore/row.h"

namespace minicrypt {

class Memtable {
 public:
  // Merges `update` into the row at `encoded_key` (LWW per cell).
  void Apply(std::string_view encoded_key, const Row& update);

  // Newest cells for the key, if any entry exists.
  const Row* Get(std::string_view encoded_key) const;

  // Largest key <= `encoded_key` with the same `prefix` (partition bound).
  // Returns the encoded key, or nullopt.
  std::optional<std::string_view> FloorKey(std::string_view prefix,
                                           std::string_view encoded_key) const;

  const std::map<std::string, Row, std::less<>>& entries() const { return entries_; }

  size_t ApproxBytes() const { return approx_bytes_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void Clear();

 private:
  std::map<std::string, Row, std::less<>> entries_;
  size_t approx_bytes_ = 0;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_MEMTABLE_H_
