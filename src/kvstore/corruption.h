// Shared constructor for corruption errors inside the kvstore. Every
// Status::Corruption raised by the storage layers goes through here so that
// (a) the message names what is corrupt (table / SSTable / block / record)
// and (b) the storage.corruption.detected counter ticks — the chaos harness
// asserts from that counter that no injected bit-flip was ever served as
// data (docs/TESTING.md, "crash & corruption schedules").

#ifndef MINICRYPT_SRC_KVSTORE_CORRUPTION_H_
#define MINICRYPT_SRC_KVSTORE_CORRUPTION_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace minicrypt {

inline Status CorruptionDetected(std::string message) {
  OBS_COUNTER_INC("storage.corruption.detected");
  return Status::Corruption(std::move(message));
}

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_CORRUPTION_H_
