#include "src/kvstore/ring.h"

#include <algorithm>

#include "src/kvstore/bloom.h"  // Fnv1a64

namespace minicrypt {
namespace {

// Murmur3's 64-bit finalizer. FNV-1a alone leaves vnode labels that differ
// only in their trailing digits ("…-vnode-3" vs "…-vnode-4") in tight token
// clusters, which collapses each node's 16 vnodes into one or two contiguous
// mega-ranges: load concentrates behind a single token and per-token
// rebalancing becomes all-or-nothing. The finalizer's avalanche spreads
// planted tokens uniformly so ranges are fine-grained; Token() applies the
// same mix so sequential partition names spread instead of clustering.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<uint64_t> HashRing::PlanTokens(int node_id, int vnodes) {
  std::vector<uint64_t> tokens;
  tokens.reserve(static_cast<size_t>(vnodes));
  for (int v = 0; v < vnodes; ++v) {
    const std::string label = "node-" + std::to_string(node_id) + "-vnode-" + std::to_string(v);
    tokens.push_back(Mix64(Fnv1a64(label)));
  }
  return tokens;
}

void HashRing::AddNode(int node_id) {
  AddNodeWithTokens(node_id, PlanTokens(node_id, vnodes_));
}

void HashRing::AddNodeWithTokens(int node_id, const std::vector<uint64_t>& tokens) {
  if (Contains(node_id)) {
    return;
  }
  node_ids_.push_back(node_id);
  for (const uint64_t token : tokens) {
    // emplace never steals a colliding token from its current owner (a 2^-64
    // event per pair, but silently dropping a vnode would skew placement).
    if (ring_.emplace(token, node_id).second) {
      ++token_counts_[node_id];
    }
  }
}

void HashRing::RemoveNode(int node_id) {
  node_ids_.erase(std::remove(node_ids_.begin(), node_ids_.end(), node_id), node_ids_.end());
  token_counts_.erase(node_id);
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::MoveToken(uint64_t token, int to_node) {
  if (!Contains(to_node)) {
    return false;
  }
  auto it = ring_.find(token);
  if (it == ring_.end() || it->second == to_node) {
    return false;
  }
  auto counts = token_counts_.find(it->second);
  if (counts != token_counts_.end() && --counts->second == 0) {
    token_counts_.erase(counts);
  }
  ++token_counts_[to_node];
  it->second = to_node;
  return true;
}

// The partitioner needs avalanche too: sequential partition names ("p0",
// "p1", …) differ only in trailing digits, and raw FNV-1a maps such families
// into tight token clusters that land on one or two nodes regardless of how
// well the vnode tokens are spread.
uint64_t HashRing::Token(std::string_view partition_key) { return Mix64(Fnv1a64(partition_key)); }

std::vector<int> HashRing::Replicas(std::string_view partition_key, int rf) const {
  std::vector<int> out;
  if (ring_.empty() || rf <= 0) {
    return out;
  }
  // A member may own zero tokens after a full rebalance away; only nodes
  // actually owning tokens are reachable by the walk.
  const size_t want = std::min(static_cast<size_t>(rf), token_counts_.size());
  auto it = ring_.lower_bound(Token(partition_key));
  for (size_t walked = 0; out.size() < want && walked < 2 * ring_.size(); ++walked) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

int HashRing::PrimaryOwner(std::string_view partition_key) const {
  if (ring_.empty()) {
    return -1;
  }
  auto it = ring_.lower_bound(Token(partition_key));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

bool HashRing::Contains(int node_id) const {
  return std::find(node_ids_.begin(), node_ids_.end(), node_id) != node_ids_.end();
}

std::vector<uint64_t> HashRing::TokensOf(int node_id) const {
  std::vector<uint64_t> out;
  for (const auto& [token, id] : ring_) {
    if (id == node_id) {
      out.push_back(token);
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, int>> HashRing::TokenDump() const {
  return {ring_.begin(), ring_.end()};
}

}  // namespace minicrypt
