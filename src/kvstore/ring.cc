#include "src/kvstore/ring.h"

#include <algorithm>

#include "src/kvstore/bloom.h"  // Fnv1a64

namespace minicrypt {

void HashRing::AddNode(int node_id) {
  if (std::find(node_ids_.begin(), node_ids_.end(), node_id) != node_ids_.end()) {
    return;
  }
  node_ids_.push_back(node_id);
  for (int v = 0; v < vnodes_; ++v) {
    const std::string label = "node-" + std::to_string(node_id) + "-vnode-" + std::to_string(v);
    ring_[Fnv1a64(label)] = node_id;
  }
}

void HashRing::RemoveNode(int node_id) {
  node_ids_.erase(std::remove(node_ids_.begin(), node_ids_.end(), node_id), node_ids_.end());
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t HashRing::Token(std::string_view partition_key) { return Fnv1a64(partition_key); }

std::vector<int> HashRing::Replicas(std::string_view partition_key, int rf) const {
  std::vector<int> out;
  if (ring_.empty() || rf <= 0) {
    return out;
  }
  const size_t want = std::min(static_cast<size_t>(rf), node_ids_.size());
  auto it = ring_.lower_bound(Token(partition_key));
  for (size_t walked = 0; out.size() < want && walked < 2 * ring_.size(); ++walked) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

}  // namespace minicrypt
