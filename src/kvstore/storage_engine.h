// LSM storage engine for one table replica on one node: commit log ->
// memtable -> SSTables, with size-tiered full compaction, bloom-filter
// skipping, a shared block cache, and the latency-modelled media layer.
//
// Thread-safe: a single engine mutex serializes structural changes (apply,
// flush, compaction); reads take a snapshot of the sstable list under the
// mutex and then run lock-free against immutable tables (media sleeps happen
// outside the mutex so concurrent readers overlap on an SSD).

#ifndef MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_
#define MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/kvstore/block_cache.h"
#include "src/kvstore/commit_log.h"
#include "src/kvstore/media.h"
#include "src/kvstore/memtable.h"
#include "src/kvstore/row.h"
#include "src/kvstore/sstable.h"

namespace minicrypt {

class FaultInjector;

struct StorageEngineOptions {
  size_t memtable_flush_bytes = 4 * 1024 * 1024;
  int compaction_trigger = 8;  // full compaction when this many SSTables exist
  SstableOptions sstable;
  bool enable_commit_log = true;
  // Shared fault injector (not owned; may be null). The engine hands it to
  // its commit log; the Cluster copies its own injector in here so every
  // replica's durability path sees the same schedule.
  FaultInjector* fault_injector = nullptr;
};

class StorageEngine {
 public:
  // `cache` and `media` are shared across the node's engines; either may be
  // nullptr (no caching / no latency).
  StorageEngine(StorageEngineOptions options, BlockCache* cache, Media* media,
                std::unique_ptr<LogSink> log_sink);

  // --- Writes ----------------------------------------------------------------

  // Applies a cell update (LWW) to (partition, clustering).
  Status Apply(std::string_view partition, std::string_view clustering, const Row& update);

  // Marks every cell of the partition older than `timestamp` deleted.
  Status ApplyPartitionTombstone(std::string_view partition, uint64_t timestamp);

  // --- Reads -----------------------------------------------------------------

  // Newest visible row, nullopt when absent or fully deleted.
  std::optional<Row> Get(std::string_view partition, std::string_view clustering);

  // Largest clustering key <= `clustering` within the partition whose row is
  // visible. Returns (clustering, row).
  std::optional<std::pair<std::string, Row>> Floor(std::string_view partition,
                                                   std::string_view clustering);

  // All visible rows with lo <= clustering <= hi, ascending. `limit` == 0
  // means unlimited.
  Status Scan(std::string_view partition, std::string_view lo, std::string_view hi,
              size_t limit,
              const std::function<bool(std::string_view clustering, const Row&)>& fn);

  // --- Maintenance -------------------------------------------------------------

  // Flushes the memtable synchronously (tests / shutdown).
  Status Flush();

  // Replays the commit log into the memtable (crash recovery).
  Status RecoverFromLog();

  // Pushes SSTable blocks into the block cache without media charges
  // (benchmark warmup shortcut; see Sstable::WarmInto). The optional filter
  // keeps only blocks of partitions this replica serves.
  void WarmCache(const std::function<bool(std::string_view partition)>& serves_partition = {});

  // Bytes at rest across all SSTables (reported by benches as the server-side
  // footprint, i.e. what compression saved).
  size_t AtRestBytes() const;
  size_t SstableCount() const;
  size_t MemtableBytes() const;

 private:
  // Fully merges all SSTables into one, dropping shadowed cells, cells under
  // partition tombstones, and (because this is a full merge) tombstones
  // themselves when nothing older can exist.
  Status CompactLocked();

  Status FlushLocked();

  Status ApplyInternal(std::string_view encoded_key, const Row& update);

  // Snapshot of immutable state for lock-free reads.
  struct ReadSnapshot {
    std::vector<std::shared_ptr<Sstable>> tables;  // newest first
  };
  ReadSnapshot Snapshot() const;

  // Newest partition-tombstone timestamp covering `partition`.
  uint64_t PartitionTombstoneTs(std::string_view partition, const ReadSnapshot& snap);

  // Merges the row across memtable + snapshot tables; applies tombstone
  // filtering. Returns nullopt when invisible.
  std::optional<Row> MergedGet(std::string_view encoded_key, const ReadSnapshot& snap,
                               uint64_t ptomb_ts);

  static void FilterRow(Row* row, uint64_t ptomb_ts);

  StorageEngineOptions options_;
  BlockCache* cache_;
  Media* media_;

  mutable std::mutex mu_;
  Memtable memtable_;
  std::vector<std::shared_ptr<Sstable>> sstables_;  // newest first
  std::unique_ptr<CommitLog> log_;
  uint64_t next_sstable_id_ = 1;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_
