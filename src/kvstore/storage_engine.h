// LSM storage engine for one table replica on one node: commit log ->
// memtable -> SSTables, with size-tiered full compaction, bloom-filter
// skipping, a shared block cache, and the latency-modelled media layer.
//
// Thread-safe. Two locks, always acquired gate-then-mu (docs/CONCURRENCY.md):
//  - log_gate_ (shared_mutex): appliers hold it shared, so concurrent Apply
//    calls overlap inside the thread-safe commit log (which group-commits
//    them); flush, crash, and recovery hold it exclusive, so log Retire/
//    Crash/Recover never race an in-flight Append.
//  - mu_: serializes the memtable and sstable list. Reads take a snapshot of
//    the sstable list under mu_ and then run lock-free against immutable
//    tables (media sleeps happen outside the mutex so concurrent readers
//    overlap on an SSD).
//
// Corruption handling: SSTable reads verify per-block CRCs (format v2). A
// read that hits a bad block returns Status::Corruption to the coordinator,
// which treats it as a replica-local failure and fails over to another
// replica — the table stays in the read set so its intact blocks (and the
// rows acked through them) keep serving. Removal is scrub's job, and it is
// ordered so no acked row ever disappears from this replica's view:
// Scrub() verifies every table and *marks* the corrupt ones, the cluster
// re-streams the marked key ranges from healthy replicas into the memtable,
// and only then DropQuarantined() takes the bad tables out of the read set.

#ifndef MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_
#define MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvstore/block_cache.h"
#include "src/kvstore/commit_log.h"
#include "src/kvstore/media.h"
#include "src/kvstore/memtable.h"
#include "src/kvstore/row.h"
#include "src/kvstore/sstable.h"

namespace minicrypt {

class FaultInjector;

struct StorageEngineOptions {
  size_t memtable_flush_bytes = 4 * 1024 * 1024;
  int compaction_trigger = 8;  // full compaction when this many SSTables exist
  SstableOptions sstable;
  bool enable_commit_log = true;
  // Appends per fsync-equivalent (1 = every append durable before ack;
  // Cassandra's batch mode). Larger values leave an unsynced tail that a
  // crash tears — the regime the crash/recovery chaos schedule exercises.
  uint64_t commitlog_sync_every_appends = 1;
  // Base added to this engine's SSTable ids. The node's block cache is shared
  // by all of its per-table engines and keys blocks by (sstable id, block
  // index), so each engine needs a disjoint id space (the node assigns
  // ordinal << 32).
  uint64_t sstable_id_base = 0;
  // Shared fault injector (not owned; may be null). The engine hands it to
  // its commit log and SSTable builder; the Cluster copies its own injector
  // in here so every replica's durability path sees the same schedule.
  FaultInjector* fault_injector = nullptr;
};

// One quarantined-SSTable record: the key range that left the read set and
// how many blocks it held (Cluster::ScrubNode rebuilds the range from healthy
// replicas and reports scrub.blocks_rebuilt from the block count).
struct QuarantinedRange {
  std::string smallest;  // encoded row keys, inclusive
  std::string largest;
  size_t blocks = 0;
  size_t entries = 0;
};

class StorageEngine {
 public:
  // `cache` and `media` are shared across the node's engines; either may be
  // nullptr (no caching / no latency).
  StorageEngine(StorageEngineOptions options, BlockCache* cache, Media* media,
                std::unique_ptr<LogSink> log_sink);

  // --- Writes ----------------------------------------------------------------

  // Applies a cell update (LWW) to (partition, clustering).
  Status Apply(std::string_view partition, std::string_view clustering, const Row& update);

  // Marks every cell of the partition older than `timestamp` deleted.
  Status ApplyPartitionTombstone(std::string_view partition, uint64_t timestamp);

  // Applies a row at an already-encoded key, cells already timestamped. Used
  // by scrub/anti-entropy streaming, where rows arrive in at-rest form; LWW
  // merge makes re-application idempotent.
  Status ApplyEncoded(std::string_view encoded_key, const Row& row);

  // --- Reads -----------------------------------------------------------------

  // Newest visible row. NotFound when absent or fully deleted; Corruption
  // when a covering block failed its checksum (the coordinator treats that
  // as a replica-local failure and fails over).
  Result<Row> Get(std::string_view partition, std::string_view clustering);

  // Largest clustering key <= `clustering` within the partition whose row is
  // visible. Returns (clustering, row); NotFound when none.
  Result<std::pair<std::string, Row>> Floor(std::string_view partition,
                                            std::string_view clustering);

  // All visible rows with lo <= clustering <= hi, ascending. `limit` == 0
  // means unlimited.
  Status Scan(std::string_view partition, std::string_view lo, std::string_view hi,
              size_t limit,
              const std::function<bool(std::string_view clustering, const Row&)>& fn);

  // Raw merged scan over encoded keys [lo, hi] for repair streaming: no
  // tombstone filtering, cells keep their timestamps, the partition-tombstone
  // marker rows are included. Replica convergence needs the raw cells —
  // filtering would turn a tombstone into silence and resurrect deleted data
  // on the peer.
  Status ScanEncodedForRepair(std::string_view lo, std::string_view hi,
                              const std::function<void(std::string_view encoded_key,
                                                       const Row& row)>& fn);

  // --- Crash / recovery --------------------------------------------------------

  // Simulates the node process dying: the memtable vanishes and the commit
  // log loses a seeded fraction of its un-fsynced tail (`tear_draw` sizes the
  // cut; see CommitLog::Crash). The caller must Restart before serving.
  Status Crash(uint64_t tear_draw);

  // Crash recovery: replays the commit log into the memtable and truncates
  // the suspect tail so post-restart appends cannot interleave with garbage.
  Status RecoverFromLog();

  // Scrub phase 1: verifies every SSTable's checksums, marks corrupt tables
  // quarantined, and reports all currently-quarantined key ranges. Marked
  // tables keep serving reads (their bad blocks keep erroring; the
  // coordinator fails over) until DropQuarantined.
  Status Scrub(std::vector<QuarantinedRange>* out);

  // Scrub phase 2: removes every quarantined table from the read set (the
  // caller has already re-streamed the reported ranges from healthy
  // replicas). Returns how many tables were dropped.
  size_t DropQuarantined();

  // --- Maintenance -------------------------------------------------------------

  // Flushes the memtable synchronously (tests / shutdown).
  Status Flush();

  // Pushes SSTable blocks into the block cache without media charges
  // (benchmark warmup shortcut; see Sstable::WarmInto). The optional filter
  // keeps only blocks of partitions this replica serves.
  void WarmCache(const std::function<bool(std::string_view partition)>& serves_partition = {});

  // Bytes at rest across all SSTables (reported by benches as the server-side
  // footprint, i.e. what compression saved).
  size_t AtRestBytes() const;
  size_t SstableCount() const;
  size_t MemtableBytes() const;
  size_t QuarantinedCount() const;

  // Approximate live bytes per partition (key + cell payloads of the merged
  // row set). Feeds the cluster's load-aware token rebalancer and the
  // ring.node_bytes gauges; corruption on a source table degrades to the
  // rows that scanned cleanly rather than failing the survey.
  Status PartitionSizes(std::map<std::string, size_t>* out);

 private:
  // Fully merges all SSTables into one, dropping shadowed cells, cells under
  // partition tombstones, and (because this is a full merge) tombstones
  // themselves when nothing older can exist. When an input table fails its
  // checksums mid-merge the compaction is skipped, not failed — writes keep
  // flowing (the table set just grows until scrub rebuilds the bad table),
  // and the corrupt table keeps serving its intact blocks meanwhile.
  Status CompactLocked();

  Status FlushLocked();

  Status ApplyInternal(std::string_view encoded_key, const Row& update);

  // Re-checks the memtable size under the exclusive gate and flushes if still
  // over threshold (concurrent appliers race to flush; one wins, the rest
  // no-op).
  Status MaybeFlush();

  // Snapshot of immutable state for lock-free reads.
  struct ReadSnapshot {
    std::vector<std::shared_ptr<Sstable>> tables;  // newest first
  };
  ReadSnapshot Snapshot() const;

  // Adds `table` to the quarantine list without removing it from the read
  // set (idempotent).
  void MarkQuarantined(const std::shared_ptr<Sstable>& table);

  // Newest partition-tombstone timestamp covering `partition`.
  Result<uint64_t> PartitionTombstoneTs(std::string_view partition, const ReadSnapshot& snap);

  // Merges the row across memtable + snapshot tables; applies tombstone
  // filtering. Ok(nullopt) when invisible.
  Result<std::optional<Row>> MergedGet(std::string_view encoded_key, const ReadSnapshot& snap,
                                       uint64_t ptomb_ts);

  static void FilterRow(Row* row, uint64_t ptomb_ts);

  StorageEngineOptions options_;
  BlockCache* cache_;
  Media* media_;

  // Apply-vs-lifecycle gate; see the file comment. Lock order: gate, then mu_.
  mutable std::shared_mutex log_gate_;
  mutable std::mutex mu_;
  Memtable memtable_;
  std::vector<std::shared_ptr<Sstable>> sstables_;  // newest first
  // Corrupt tables found by Scrub, still in sstables_ until DropQuarantined.
  std::vector<std::shared_ptr<Sstable>> quarantined_;
  std::unique_ptr<CommitLog> log_;
  uint64_t next_sstable_id_ = 1;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_STORAGE_ENGINE_H_
