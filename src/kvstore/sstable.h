// Immutable sorted-run file of the LSM engine.
//
// Layout (all in a single "media extent" byte buffer that reads are charged
// against): a sequence of data blocks, each holding encoded (key, row)
// entries in sorted order, followed by a checksummed footer. The sparse index
// (first key + offset + length per block) and the bloom filter are kept in
// RAM, as real stores do; data blocks are fetched through the BlockCache and
// charged to the Media model on miss.
//
// Format v2 (docs/FORMATS.md): every at-rest block carries a trailing CRC32
// over its tag byte + payload, and the footer repeats every block's CRC plus
// table-level metadata under its own CRC. Reads verify the block CRC on every
// fetch (cache hit or media read); a mismatch surfaces as Status::Corruption
// naming the table, SSTable id, and block index, and the engine quarantines
// the table. `SstableOptions::verify_checksums` exists only so benchmarks can
// measure the verification overhead.
//
// Optional server-side block compression (zlib) models Cassandra's at-rest
// SSTable compression: the cached/at-rest form is the compressed block, and
// every access pays a decompress. This is what makes the vanilla client's
// effective memory footprint smaller than raw (paper §8.1.1) while client-
// encrypted tables gain nothing from it.

#ifndef MINICRYPT_SRC_KVSTORE_SSTABLE_H_
#define MINICRYPT_SRC_KVSTORE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/kvstore/block_cache.h"
#include "src/kvstore/bloom.h"
#include "src/kvstore/media.h"
#include "src/kvstore/row.h"

namespace minicrypt {

class FaultInjector;

struct SstableOptions {
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;
  bool server_compression = false;  // compress blocks at rest (zlib)
  bool verify_checksums = true;     // verify block CRC32 on every fetch
  std::string table;                // table name, for corruption messages
};

class Sstable;

// Accumulates sorted entries and seals them into an Sstable. Keys must be
// added in strictly increasing order.
class SstableBuilder {
 public:
  SstableBuilder(uint64_t id, SstableOptions options);

  void Add(std::string_view encoded_key, const Row& row);

  // Seals the table. `media` is charged for the sequential write.
  // `fault_injector` (optional) is consulted at the kMediaCorruption point
  // once per block: a trip flips one seeded bit of the stored block — the
  // write that "went bad on the platter". The flip happens after checksums
  // are computed, so it is always detectable.
  std::shared_ptr<Sstable> Finish(Media* media, FaultInjector* fault_injector = nullptr);

  size_t entry_count() const { return entry_count_; }

 private:
  void FlushBlock();

  uint64_t id_;
  SstableOptions options_;
  std::vector<std::string> blocks_;          // at-rest (possibly compressed) blocks
  std::vector<std::string> block_first_key_;
  std::vector<size_t> block_raw_bytes_;
  std::string pending_;                       // current raw block under construction
  std::string pending_first_key_;
  std::string last_key_;
  std::vector<std::string> keys_for_bloom_;
  size_t entry_count_ = 0;
};

class Sstable {
 public:
  // Looks up the newest row for the key. Ok(nullopt) when absent; Corruption
  // when the covering block fails its checksum or fails to decode.
  // Media/cache charging happens inside.
  Result<std::optional<Row>> Get(std::string_view encoded_key, BlockCache* cache,
                                 Media* media) const;

  // Largest key <= `encoded_key` that starts with `prefix`. Returns the key
  // (owned string), Ok(nullopt) when absent, Corruption on a bad block.
  Result<std::optional<std::string>> FloorKey(std::string_view prefix,
                                              std::string_view encoded_key, BlockCache* cache,
                                              Media* media) const;

  // Applies `fn` to every entry with lo <= key <= hi (encoded keys) in order.
  // Return false from `fn` to stop early.
  Status Scan(std::string_view lo, std::string_view hi,
              const std::function<bool(std::string_view, const Row&)>& fn, BlockCache* cache,
              Media* media) const;

  // Scrub entry: verifies the footer and every block's CRC32 without going
  // through the cache. `media`, when non-null, is charged one streaming read
  // of the whole extent. Returns the first corruption found.
  Status VerifyChecksums(Media* media) const;

  // Pre-populates `cache` with this table's at-rest blocks (no media charge).
  // Benchmarks use it to model the paper's multi-minute cache warmup without
  // spending wall-clock time; LRU eviction applies normally when the table
  // exceeds the cache. `serves_partition`, when set, filters blocks to those
  // whose first row belongs to a partition this node actually serves reads
  // for — warming a replica with blocks it never serves only pollutes LRU.
  void WarmInto(BlockCache* cache,
                const std::function<bool(std::string_view partition)>& serves_partition = {})
      const;

  uint64_t id() const { return id_; }
  size_t entry_count() const { return entry_count_; }
  size_t block_count() const { return blocks_.size(); }
  // Bytes at rest (what the block cache would hold if fully resident).
  size_t at_rest_bytes() const { return at_rest_bytes_; }
  std::string_view smallest_key() const { return smallest_; }
  std::string_view largest_key() const { return largest_; }
  bool MayContain(std::string_view encoded_key) const { return bloom_.MayContain(encoded_key); }

 private:
  friend class SstableBuilder;
  Sstable(uint64_t id, SstableOptions options, BloomFilter bloom);

  // Fetches block `idx` through the cache, charging media on miss, verifying
  // the block CRC, and returns the *raw* (decompressed) block bytes.
  Result<std::shared_ptr<const std::string>> FetchBlock(size_t idx, BlockCache* cache,
                                                        Media* media) const;

  // "table 't' sstable #4 block 7" — prefix for corruption messages.
  std::string BlockContext(size_t idx) const;

  // Index of the last block whose first key <= `encoded_key`, or -1.
  int FindBlock(std::string_view encoded_key) const;

  uint64_t id_;
  SstableOptions options_;
  BloomFilter bloom_;
  std::vector<std::string> blocks_;  // at-rest form ("on media"), CRC-suffixed
  std::vector<std::string> block_first_key_;
  std::vector<uint32_t> block_crcs_;  // authoritative copy, mirrored in footer_
  std::string footer_;                // v2 checksummed footer (see FORMATS.md)
  size_t entry_count_ = 0;
  size_t at_rest_bytes_ = 0;
  std::string smallest_;
  std::string largest_;
};

// Decodes every (key, row) entry of a raw block in order.
Status ForEachBlockEntry(std::string_view raw_block,
                         const std::function<bool(std::string_view, const Row&)>& fn);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_SSTABLE_H_
