// Storage media latency model.
//
// The paper's Figure 9 phenomena (sharp throughput collapse when the working
// set no longer fits in memory; disks collapsing harder than SSDs) come from
// two device properties: per-access latency and device parallelism. Both are
// first-class here. A cache miss in the storage engine calls Read(); the
// calling thread holds one of the device's queue slots for the modelled
// service time, so a queue-depth-1 disk serializes random reads while an
// SSD overlaps them.

#ifndef MINICRYPT_SRC_KVSTORE_MEDIA_H_
#define MINICRYPT_SRC_KVSTORE_MEDIA_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/clock.h"
#include "src/common/thread_util.h"

namespace minicrypt {

class FaultInjector;

struct MediaStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> busy_micros{0};
};

// Abstract device. Implementations charge (or skip) latency.
class Media {
 public:
  virtual ~Media() = default;

  // Charges one random read of `bytes`.
  virtual void Read(size_t bytes) = 0;

  // Charges a write of `bytes`; sequential writes (commit log, flush,
  // compaction) are charged at streaming bandwidth without a seek.
  virtual void Write(size_t bytes, bool sequential) = 0;

  const MediaStats& stats() const { return stats_; }
  void ResetStats();

 protected:
  MediaStats stats_;
};

// Zero-latency media for unit tests and pure-functionality runs.
class NullMedia : public Media {
 public:
  void Read(size_t bytes) override;
  void Write(size_t bytes, bool sequential) override;
};

struct MediaProfile {
  // Random-access setup latency per read (seek + rotational for disks,
  // controller latency for SSDs), microseconds at scale 1.0.
  uint64_t seek_micros = 0;
  // Streaming bandwidth, bytes per microsecond (1 = ~1 MB/s; 100 = ~100 MB/s).
  double bytes_per_micro_read = 100.0;
  double bytes_per_micro_write = 100.0;
  // Outstanding operations the device can service concurrently.
  int queue_depth = 1;
  // Global time scale so benches can run the same shape faster. All charged
  // latencies are multiplied by this.
  double latency_scale = 1.0;

  // A 7.2k-rpm magnetic disk: ~8 ms random access, ~150 MB/s streaming, one
  // head (queue depth 1).
  static MediaProfile Disk(double latency_scale);
  // A SATA/NVMe-class SSD: ~120 us random access, ~500 MB/s, deep queue.
  static MediaProfile Ssd(double latency_scale);
};

// Sleeps the calling thread for the modelled service time while holding one
// of the device's queue slots.
class SimulatedMedia : public Media {
 public:
  // `fault_injector` (optional) adds kMediaLatency spikes on top of the
  // modelled service time.
  SimulatedMedia(MediaProfile profile, Clock* clock = SystemClock::Get(),
                 FaultInjector* fault_injector = nullptr);

  void Read(size_t bytes) override;
  void Write(size_t bytes, bool sequential) override;

  const MediaProfile& profile() const { return profile_; }

 private:
  // Returns the scaled micros actually charged (for stage attribution).
  uint64_t Charge(uint64_t micros);

  // Injected latency spike for this access, 0 when none fires.
  uint64_t SpikeMicros();

  MediaProfile profile_;
  Clock* clock_;
  FaultInjector* fault_injector_;
  Semaphore queue_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_MEDIA_H_
