// One storage node: a block cache and media device shared by the node's
// per-table storage engines.

#ifndef MINICRYPT_SRC_KVSTORE_NODE_H_
#define MINICRYPT_SRC_KVSTORE_NODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/kvstore/block_cache.h"
#include "src/kvstore/media.h"
#include "src/kvstore/storage_engine.h"

namespace minicrypt {

class Node {
 public:
  Node(int id, size_t cache_bytes, std::unique_ptr<Media> media,
       StorageEngineOptions engine_options);

  int id() const { return id_; }
  Media* media() { return media_.get(); }
  const Media* media() const { return media_.get(); }
  BlockCache* cache() { return &cache_; }

  // Creates the engine for `table` if missing. `server_compression` fixes the
  // table's at-rest block compression on first creation.
  StorageEngine* EngineFor(std::string_view table, bool server_compression);

  // nullptr when the table does not exist on this node.
  StorageEngine* FindEngine(std::string_view table);

  void DropTable(std::string_view table);

 private:
  int id_;
  BlockCache cache_;
  std::unique_ptr<Media> media_;
  StorageEngineOptions engine_options_;

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<StorageEngine>, std::less<>> engines_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_NODE_H_
