// One storage node: a block cache and media device shared by the node's
// per-table storage engines.

#ifndef MINICRYPT_SRC_KVSTORE_NODE_H_
#define MINICRYPT_SRC_KVSTORE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/kvstore/block_cache.h"
#include "src/kvstore/media.h"
#include "src/kvstore/storage_engine.h"

namespace minicrypt {

class Node {
 public:
  Node(int id, size_t cache_bytes, std::unique_ptr<Media> media,
       StorageEngineOptions engine_options);

  int id() const { return id_; }
  Media* media() { return media_.get(); }
  const Media* media() const { return media_.get(); }
  BlockCache* cache() { return &cache_; }

  // Creates the engine for `table` if missing. `server_compression` fixes the
  // table's at-rest block compression on first creation.
  StorageEngine* EngineFor(std::string_view table, bool server_compression);

  // nullptr when the table does not exist on this node.
  StorageEngine* FindEngine(std::string_view table);

  // Applies `fn` to every (table, engine) pair, in table order. Holds the
  // node's engine-map mutex for the duration; `fn` may call engine methods
  // (engine mutexes nest below).
  void ForEachEngine(const std::function<void(const std::string& table, StorageEngine*)>& fn);

  void DropTable(std::string_view table);

  // Stored bytes across every engine (at rest + memtable) — the coarse load
  // signal the cluster's token rebalancer falls back on and exports as the
  // ring.node_bytes gauge.
  size_t ApproximateBytes();

 private:
  int id_;
  BlockCache cache_;
  std::unique_ptr<Media> media_;
  StorageEngineOptions engine_options_;

  std::mutex mu_;
  uint64_t next_engine_ordinal_ = 0;  // sizes each engine's SSTable-id space
  std::map<std::string, std::unique_ptr<StorageEngine>, std::less<>> engines_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_NODE_H_
