#include "src/kvstore/fault_injector.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kPointNames[kFaultPointCount] = {
    "media_read_error", "media_write_error", "media_latency",
    "commitlog_append", "lwt_ambiguous",     "replica_drop",
    "replica_delay",    "node_flap",         "clock_skew",
    "crash",            "media_corruption",  "topology_persist",
    "stream_interrupt", "index_split",       "index_persist",
    "rotate_persist",   "rotate_reseal",
};

// SplitMix64 finalizer: a cheap bijective mix with full avalanche, so the
// (seed, point, ordinal) -> decision mapping has no visible structure.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double Unit(uint64_t draw) {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view FaultPointName(FaultPoint point) {
  return kPointNames[static_cast<int>(point)];
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  for (int i = 0; i < kFaultPointCount; ++i) {
    points_[static_cast<size_t>(i)].trip_counter = MetricsRegistry::Instance().GetCounter(
        "fault." + std::string(kPointNames[i]) + ".trips");
  }
}

void FaultInjector::SetRate(FaultPoint point, double rate) {
  if (rate < 0.0) {
    rate = 0.0;
  }
  if (rate > 1.0) {
    rate = 1.0;
  }
  points_[static_cast<size_t>(point)].rate.store(rate, std::memory_order_relaxed);
}

double FaultInjector::Rate(FaultPoint point) const {
  return points_[static_cast<size_t>(point)].rate.load(std::memory_order_relaxed);
}

void FaultInjector::Script(FaultPoint point, uint64_t nth, std::string context_substr) {
  std::lock_guard<std::mutex> lock(mu_);
  scripts_.push_back(ScriptEntry{point, nth, std::move(context_substr)});
  have_scripts_.store(true, std::memory_order_release);
}

void FaultInjector::Heal() {
  for (auto& state : points_) {
    state.rate.store(0.0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  scripts_.clear();
  have_scripts_.store(false, std::memory_order_release);
}

bool FaultInjector::ScriptFires(FaultPoint point, std::string_view context) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ScriptEntry& entry : scripts_) {
    if (entry.done || entry.point != point) {
      continue;
    }
    if (!entry.context_substr.empty() &&
        context.find(entry.context_substr) == std::string_view::npos) {
      continue;
    }
    if (++entry.matched == entry.nth) {
      entry.done = true;
      return true;
    }
  }
  return false;
}

bool FaultInjector::Fire(FaultPoint point, std::string_view context, uint64_t* draw) {
  PointState& state = points_[static_cast<size_t>(point)];
  // 1-based evaluation ordinal; the only cross-thread coordination needed.
  const uint64_t k = state.evaluations.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t decision =
      Mix(seed_ ^ Mix((static_cast<uint64_t>(point) + 1) * 0x100000001B3ULL + k));
  if (draw != nullptr) {
    // An independent stream so sizing a fault never perturbs fire decisions.
    *draw = Mix(decision ^ 0xD6E8FEB86659FD93ULL);
  }
  bool fired = Unit(decision) < state.rate.load(std::memory_order_relaxed);
  if (!fired && have_scripts_.load(std::memory_order_acquire)) {
    fired = ScriptFires(point, context);
  }
  if (!fired) {
    return false;
  }
  state.trips.fetch_add(1, std::memory_order_relaxed);
  state.trip_counter->Increment();
  if (record_schedule_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu_);
    fired_ordinals_[static_cast<size_t>(point)].push_back(k);
  }
  return true;
}

uint64_t FaultInjector::LatencySpikeMicros(uint64_t draw) const {
  const uint64_t base = latency_spike_base_micros_;
  if (base == 0) {
    return 0;
  }
  return base + draw % (3 * base + 1);  // spikes in [base, 4*base]
}

uint64_t FaultInjector::ClockSkewSteps(uint64_t draw) const {
  if (clock_skew_max_steps_ == 0) {
    return 0;
  }
  return 1 + draw % clock_skew_max_steps_;
}

uint64_t FaultInjector::trips(FaultPoint point) const {
  return points_[static_cast<size_t>(point)].trips.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::evaluations(FaultPoint point) const {
  return points_[static_cast<size_t>(point)].evaluations.load(std::memory_order_relaxed);
}

std::string FaultInjector::ScheduleString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (int i = 0; i < kFaultPointCount; ++i) {
    out.append(kPointNames[i]);
    out.push_back(':');
    // Sort so the string is insensitive to which thread recorded first.
    std::vector<uint64_t> fired = fired_ordinals_[static_cast<size_t>(i)];
    std::sort(fired.begin(), fired.end());
    for (size_t j = 0; j < fired.size(); ++j) {
      if (j > 0) {
        out.push_back(',');
      }
      out.append(std::to_string(fired[j]));
    }
    out.push_back(';');
  }
  return out;
}

std::string FaultInjector::Summary() const {
  std::string out;
  for (int i = 0; i < kFaultPointCount; ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    const auto& state = points_[static_cast<size_t>(i)];
    out.append(kPointNames[i]);
    out.push_back(':');
    out.append(std::to_string(state.trips.load(std::memory_order_relaxed)));
    out.push_back('/');
    out.append(std::to_string(state.evaluations.load(std::memory_order_relaxed)));
  }
  return out;
}

}  // namespace minicrypt
