#include "src/kvstore/commit_log.h"

#include <zlib.h>

#include <cstdio>

#include "src/common/coding.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

uint32_t Crc32(std::string_view data) {
  return static_cast<uint32_t>(
      crc32(0L, reinterpret_cast<const Bytef*>(data.data()), static_cast<uInt>(data.size())));
}

// Walks the CRC-framed records of `all`, applying each intact one, and
// returns the byte offset just past the last intact record. Everything at or
// beyond the returned offset is a torn or corrupt tail.
size_t ReplayPrefix(std::string_view all,
                    const std::function<void(std::string_view key, const Row& row)>& apply) {
  std::string_view in = all;
  size_t valid_prefix = 0;
  while (!in.empty()) {
    std::string_view record_start = in;
    auto crc = GetFixed32(&in);
    if (!crc.ok()) {
      break;  // torn tail
    }
    auto len = GetVarint64(&in);
    if (!len.ok() || in.size() < *len) {
      break;
    }
    std::string_view payload = in.substr(0, *len);
    if (Crc32(payload) != *crc) {
      // Corrupt record: stop replay here, everything after is suspect.
      break;
    }
    in.remove_prefix(*len);
    std::string_view p = payload;
    auto key = GetLengthPrefixed(&p);
    if (!key.ok()) {
      break;
    }
    auto row = DecodeRow(&p);
    if (!row.ok()) {
      break;
    }
    if (apply) {
      apply(*key, *row);
    }
    valid_prefix = all.size() - in.size();
    (void)record_start;
  }
  return valid_prefix;
}

}  // namespace

Status MemoryLogSink::Append(std::string_view bytes) {
  data_.append(bytes);
  return Status::Ok();
}

Status MemoryLogSink::ReadAll(std::string* out) const {
  *out = data_;
  return Status::Ok();
}

Status MemoryLogSink::Truncate() {
  data_.clear();
  data_.shrink_to_fit();
  return Status::Ok();
}

Status MemoryLogSink::TruncateTo(size_t size) {
  if (size < data_.size()) {
    data_.resize(size);
  }
  return Status::Ok();
}

FileLogSink::FileLogSink(std::string path) : path_(std::move(path)) {}

Status FileLogSink::Append(std::string_view bytes) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::Unavailable("cannot open commit log " + path_);
  }
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) {
    return Status::Unavailable("short write to commit log " + path_);
  }
  return Status::Ok();
}

Status FileLogSink::ReadAll(std::string* out) const {
  out->clear();
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::Ok();  // no log yet
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return Status::Ok();
}

Status FileLogSink::Truncate() {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f != nullptr) {
    std::fclose(f);
  }
  return Status::Ok();
}

Status FileLogSink::TruncateTo(size_t size) {
  // Portable truncate: read the prefix, rewrite the file. Segments are small
  // (retired at every flush), so this stays cheap even for the test sink.
  std::string all;
  MC_RETURN_IF_ERROR(ReadAll(&all));
  if (size >= all.size()) {
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot rewrite commit log " + path_);
  }
  const size_t n = std::fwrite(all.data(), 1, size, f);
  std::fclose(f);
  if (n != size) {
    return Status::Unavailable("short truncate rewrite of commit log " + path_);
  }
  return Status::Ok();
}

CommitLog::CommitLog(std::unique_ptr<LogSink> sink, Media* media, FaultInjector* fault_injector,
                     uint64_t sync_every_appends)
    : sink_(std::move(sink)),
      media_(media),
      fault_injector_(fault_injector),
      sync_every_appends_(sync_every_appends == 0 ? 1 : sync_every_appends),
      open_group_(std::make_shared<Group>()) {}

void CommitLog::WaitForLeaderLocked(std::unique_lock<std::mutex>& lock) const {
  cv_.wait(lock, [this]() { return !leader_active_; });
}

Status CommitLog::Append(std::string_view encoded_key, const Row& update) {
  // The span covers framing plus the (possibly batched) sequential media
  // write — the per-update durability (fsync-equivalent) charge.
  OBS_SPAN("commitlog.append");
  // The fault point and the framing stay outside the lock: per-record
  // semantics (a failed append rejects exactly one mutation) and per-record
  // fault ordinals are unchanged by batching.
  if (fault_injector_ != nullptr && fault_injector_->Fire(FaultPoint::kCommitLogAppend)) {
    OBS_COUNTER_INC("commitlog.append.injected_failures");
    return Status::Unavailable("injected commit-log fsync failure");
  }
  std::string payload;
  PutLengthPrefixed(&payload, encoded_key);
  EncodeRow(update, &payload);

  std::string record;
  PutFixed32(&record, Crc32(payload));
  PutVarint64(&record, payload.size());
  record.append(payload);

  OBS_COUNTER_INC("commitlog.append.count");
  OBS_COUNTER_ADD("commitlog.append.bytes", record.size());

  std::unique_lock<std::mutex> lock(mu_);
  std::shared_ptr<Group> mine = open_group_;
  mine->records.push_back(std::move(record));
  if (leader_active_) {
    // Follower: the leader will flush this group (possibly batched with
    // other appenders' records) and post the shared verdict.
    cv_.wait(lock, [&]() { return mine->flushed; });
    return mine->status;
  }
  // Leader: flush groups until no records are parked. Records that arrive
  // while the sink write is in flight form the next group.
  leader_active_ = true;
  while (!open_group_->records.empty()) {
    std::shared_ptr<Group> group = open_group_;
    open_group_ = std::make_shared<Group>();
    std::string bytes;
    for (const std::string& r : group->records) {
      bytes.append(r);
    }
    const uint64_t batch = group->records.size();
    lock.unlock();
    const Status s = sink_->Append(bytes);
    if (s.ok() && media_ != nullptr) {
      // One sequential media write per batch — the group-commit win.
      media_->Write(bytes.size(), /*sequential=*/true);
    }
    lock.lock();
    if (s.ok()) {
      appended_bytes_ += bytes.size();
      appends_since_sync_ += batch;
      if (appends_since_sync_ >= sync_every_appends_) {
        // fsync-equivalent: everything appended so far survives a crash.
        appends_since_sync_ = 0;
        synced_bytes_ = appended_bytes_;
      }
      OBS_COUNTER_INC("commitlog.group.commits");
      OBS_COUNTER_ADD("commitlog.group.records", batch);
    }
    group->status = s;
    group->flushed = true;
    cv_.notify_all();
  }
  leader_active_ = false;
  cv_.notify_all();
  return mine->status;
}

Status CommitLog::Replay(
    const std::function<void(std::string_view key, const Row& row)>& apply) const {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForLeaderLocked(lock);
  std::string all;
  MC_RETURN_IF_ERROR(sink_->ReadAll(&all));
  ReplayPrefix(all, apply);
  return Status::Ok();
}

Status CommitLog::Recover(
    const std::function<void(std::string_view key, const Row& row)>& apply) {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForLeaderLocked(lock);
  std::string all;
  MC_RETURN_IF_ERROR(sink_->ReadAll(&all));
  const size_t valid_prefix = ReplayPrefix(all, apply);
  if (valid_prefix < all.size()) {
    OBS_COUNTER_ADD("commitlog.recover.truncated_bytes", all.size() - valid_prefix);
    MC_RETURN_IF_ERROR(sink_->TruncateTo(valid_prefix));
  }
  OBS_COUNTER_INC("commitlog.recover.count");
  appended_bytes_ = valid_prefix;
  synced_bytes_ = valid_prefix;
  appends_since_sync_ = 0;
  return Status::Ok();
}

size_t CommitLog::Crash(uint64_t draw) {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForLeaderLocked(lock);
  const size_t unsynced = appended_bytes_ - synced_bytes_;
  const size_t dropped = static_cast<size_t>(draw % (unsynced + 1));
  if (dropped > 0) {
    (void)sink_->TruncateTo(appended_bytes_ - dropped);
    OBS_COUNTER_ADD("commitlog.crash.dropped_bytes", dropped);
  }
  // Whatever survived the crash is on stable storage now.
  appended_bytes_ -= dropped;
  synced_bytes_ = appended_bytes_;
  appends_since_sync_ = 0;
  return dropped;
}

Status CommitLog::Retire() {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForLeaderLocked(lock);
  appended_bytes_ = 0;
  synced_bytes_ = 0;
  appends_since_sync_ = 0;
  return sink_->Truncate();
}

size_t CommitLog::UnsyncedBytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return appended_bytes_ - synced_bytes_;
}

}  // namespace minicrypt
