#include "src/kvstore/commit_log.h"

#include <zlib.h>

#include <cstdio>

#include "src/common/coding.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

uint32_t Crc32(std::string_view data) {
  return static_cast<uint32_t>(
      crc32(0L, reinterpret_cast<const Bytef*>(data.data()), static_cast<uInt>(data.size())));
}

}  // namespace

Status MemoryLogSink::Append(std::string_view bytes) {
  data_.append(bytes);
  return Status::Ok();
}

Status MemoryLogSink::ReadAll(std::string* out) const {
  *out = data_;
  return Status::Ok();
}

Status MemoryLogSink::Truncate() {
  data_.clear();
  data_.shrink_to_fit();
  return Status::Ok();
}

FileLogSink::FileLogSink(std::string path) : path_(std::move(path)) {}

Status FileLogSink::Append(std::string_view bytes) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::Unavailable("cannot open commit log " + path_);
  }
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) {
    return Status::Unavailable("short write to commit log " + path_);
  }
  return Status::Ok();
}

Status FileLogSink::ReadAll(std::string* out) const {
  out->clear();
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::Ok();  // no log yet
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return Status::Ok();
}

Status FileLogSink::Truncate() {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f != nullptr) {
    std::fclose(f);
  }
  return Status::Ok();
}

CommitLog::CommitLog(std::unique_ptr<LogSink> sink, Media* media, FaultInjector* fault_injector)
    : sink_(std::move(sink)), media_(media), fault_injector_(fault_injector) {}

Status CommitLog::Append(std::string_view encoded_key, const Row& update) {
  // The span covers framing plus the sequential media write — the per-update
  // durability (fsync-equivalent) charge on the write path.
  OBS_SPAN("commitlog.append");
  if (fault_injector_ != nullptr && fault_injector_->Fire(FaultPoint::kCommitLogAppend)) {
    OBS_COUNTER_INC("commitlog.append.injected_failures");
    return Status::Unavailable("injected commit-log fsync failure");
  }
  std::string payload;
  PutLengthPrefixed(&payload, encoded_key);
  EncodeRow(update, &payload);

  std::string record;
  PutFixed32(&record, Crc32(payload));
  PutVarint64(&record, payload.size());
  record.append(payload);

  OBS_COUNTER_INC("commitlog.append.count");
  OBS_COUNTER_ADD("commitlog.append.bytes", record.size());
  MC_RETURN_IF_ERROR(sink_->Append(record));
  if (media_ != nullptr) {
    media_->Write(record.size(), /*sequential=*/true);
  }
  return Status::Ok();
}

Status CommitLog::Replay(
    const std::function<void(std::string_view key, const Row& row)>& apply) const {
  std::string all;
  MC_RETURN_IF_ERROR(sink_->ReadAll(&all));
  std::string_view in = all;
  while (!in.empty()) {
    std::string_view save = in;
    auto crc = GetFixed32(&in);
    if (!crc.ok()) {
      break;  // torn tail
    }
    auto len = GetVarint64(&in);
    if (!len.ok() || in.size() < *len) {
      break;
    }
    std::string_view payload = in.substr(0, *len);
    if (Crc32(payload) != *crc) {
      // Corrupt record: stop replay here, everything after is suspect.
      (void)save;
      break;
    }
    in.remove_prefix(*len);
    std::string_view p = payload;
    auto key = GetLengthPrefixed(&p);
    if (!key.ok()) {
      break;
    }
    auto row = DecodeRow(&p);
    if (!row.ok()) {
      break;
    }
    apply(*key, *row);
  }
  return Status::Ok();
}

Status CommitLog::Retire() { return sink_->Truncate(); }

}  // namespace minicrypt
