#include "src/kvstore/node.h"

#include "src/obs/metrics.h"

namespace minicrypt {

Node::Node(int id, size_t cache_bytes, std::unique_ptr<Media> media,
           StorageEngineOptions engine_options)
    : id_(id), cache_(cache_bytes), media_(std::move(media)), engine_options_(engine_options) {}

StorageEngine* Node::EngineFor(std::string_view table, bool server_compression) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(table);
  if (it != engines_.end()) {
    return it->second.get();
  }
  StorageEngineOptions opts = engine_options_;
  opts.sstable.server_compression = server_compression;
  opts.sstable.table = std::string(table);
  // The block cache is shared across this node's engines and keys blocks by
  // (sstable id, block index); give each engine a disjoint id space.
  opts.sstable_id_base = next_engine_ordinal_++ << 32;
  auto engine = std::make_unique<StorageEngine>(opts, &cache_, media_.get(),
                                                std::make_unique<MemoryLogSink>());
  StorageEngine* raw = engine.get();
  OBS_COUNTER_INC("node.engines.created");
  engines_.emplace(std::string(table), std::move(engine));
  return raw;
}

StorageEngine* Node::FindEngine(std::string_view table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(table);
  return it == engines_.end() ? nullptr : it->second.get();
}

void Node::ForEachEngine(
    const std::function<void(const std::string& table, StorageEngine*)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [table, engine] : engines_) {
    fn(table, engine.get());
  }
}

size_t Node::ApproximateBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (auto& [table, engine] : engines_) {
    bytes += engine->AtRestBytes() + engine->MemtableBytes();
  }
  return bytes;
}

void Node::DropTable(std::string_view table) {
  std::lock_guard<std::mutex> lock(mu_);
  engines_.erase(std::string(table));
}

}  // namespace minicrypt
