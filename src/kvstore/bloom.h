// Bloom filter over encoded row keys; one per SSTable. Lets the read path
// skip tables that cannot contain a key without touching media.

#ifndef MINICRYPT_SRC_KVSTORE_BLOOM_H_
#define MINICRYPT_SRC_KVSTORE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minicrypt {

class BloomFilter {
 public:
  // Sized for `expected_keys` at `bits_per_key` (10 bits/key ≈ 1% FP rate).
  BloomFilter(size_t expected_keys, int bits_per_key = 10);

  // Reconstructs a filter from its serialized form.
  static BloomFilter Deserialize(std::string_view data);

  void Add(std::string_view key);
  bool MayContain(std::string_view key) const;

  std::string Serialize() const;

  size_t bit_count() const { return bits_.size() * 8; }

 private:
  BloomFilter() = default;

  std::vector<uint8_t> bits_;
  int num_hashes_ = 1;
};

// 64-bit FNV-1a, also used by the consistent-hash ring.
uint64_t Fnv1a64(std::string_view data);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_BLOOM_H_
