#include "src/kvstore/cluster.h"

#include <cmath>

#include "src/kvstore/bloom.h"
#include "src/kvstore/node.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// Coordinator read latency split by consistency level. Both histograms are
// interned once; the dynamic consistency value just selects the pointer.
LatencyHistogram* ReadLatencyFor(Consistency consistency) {
  static LatencyHistogram* one = MetricsRegistry::Instance().GetHistogram("cluster.read.one");
  static LatencyHistogram* quorum =
      MetricsRegistry::Instance().GetHistogram("cluster.read.quorum");
  return consistency == Consistency::kQuorum ? quorum : one;
}

}  // namespace

ClusterOptions ClusterOptions::ForTest() {
  ClusterOptions o;
  o.node_count = 1;
  o.replication_factor = 1;
  o.rtt_micros = 0;
  o.replica_hop_micros = 0;
  o.lwt_extra_round_trips = 0;
  o.media = std::nullopt;
  o.block_cache_bytes = 8 * 1024 * 1024;
  o.engine.memtable_flush_bytes = 256 * 1024;
  return o;
}

Cluster::Cluster(ClusterOptions options)
    : options_(options), ring_(options.vnodes),
      paxos_locks_(std::make_unique<std::mutex[]>(kPaxosShards)),
      node_down_(static_cast<size_t>(options.node_count), false),
      hints_(static_cast<size_t>(options.node_count)) {
  for (int i = 0; i < options_.node_count; ++i) {
    std::unique_ptr<Media> media;
    if (options_.media.has_value()) {
      MediaProfile profile = *options_.media;
      profile.latency_scale *= options_.latency_scale;
      media = std::make_unique<SimulatedMedia>(profile, options_.clock);
    } else {
      media = std::make_unique<NullMedia>();
    }
    nodes_.push_back(std::make_unique<Node>(i, options_.block_cache_bytes, std::move(media),
                                            options_.engine));
    ring_.AddNode(i);
  }
}

Cluster::~Cluster() = default;

Status Cluster::CreateTable(std::string_view name, bool server_compression) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.emplace(std::string(name), server_compression);
  return Status::Ok();
}

Status Cluster::DropTable(std::string_view name) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.erase(std::string(name));
  for (auto& node : nodes_) {
    node->DropTable(name);
  }
  return Status::Ok();
}

void Cluster::ChargeRtt(int round_trips) {
  const auto micros = static_cast<uint64_t>(std::llround(
      static_cast<double>(options_.rtt_micros) * round_trips * options_.latency_scale));
  if (micros > 0) {
    OBS_COUNTER_ADD("net.rtt.charged_micros", micros);
    options_.clock->SleepMicros(micros);
  }
}

void Cluster::ChargeTransfer(size_t bytes) {
  if (options_.network_bytes_per_micro <= 0) {
    return;
  }
  const auto micros = static_cast<uint64_t>(std::llround(
      static_cast<double>(bytes) / options_.network_bytes_per_micro * options_.latency_scale));
  // Count all bytes on the wire, even transfers too small to round to a
  // nonzero latency charge.
  OBS_COUNTER_ADD("net.transfer.bytes", bytes);
  if (micros > 0) {
    OBS_COUNTER_ADD("net.transfer.charged_micros", micros);
    // The link is a shared resource: holding the slot while the transfer
    // "runs" gives the cluster a finite aggregate bandwidth. The span covers
    // queue wait + service time, so net.transfer p99 >> the charged micros
    // means the client link is saturated.
    OBS_SPAN("net.transfer");
    SemaphoreGuard slot(network_link_);
    options_.clock->SleepMicros(micros);
  }
}

Result<std::vector<Node*>> Cluster::ReplicasFor(std::string_view table,
                                                std::string_view partition,
                                                std::vector<StorageEngine*>* engines) {
  bool server_compression = false;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::InvalidArgument("no such table: " + std::string(table));
    }
    server_compression = it->second;
  }
  const std::vector<int> ids = ring_.Replicas(partition, options_.replication_factor);
  std::vector<Node*> out;
  out.reserve(ids.size());
  for (int id : ids) {
    Node* node = nodes_[static_cast<size_t>(id)].get();
    out.push_back(node);
    if (engines != nullptr) {
      engines->push_back(node->EngineFor(table, server_compression));
    }
  }
  if (out.empty()) {
    return Status::Unavailable("no replicas available");
  }
  return out;
}

Status Cluster::Write(std::string_view table, std::string_view partition,
                      std::string_view clustering, const Row& update) {
  OBS_SPAN("cluster.write");
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;

  // Stamp cells with a cluster-unique monotonic timestamp.
  Row stamped = update;
  const uint64_t ts = NextTimestamp();
  size_t bytes = 0;
  for (auto& [name, cell] : stamped.cells) {
    cell.timestamp = ts;
    bytes += name.size() + cell.value.size();
  }
  stats_.bytes_from_client.fetch_add(bytes, std::memory_order_relaxed);

  ChargeRtt(1);
  ChargeTransfer(bytes);
  return ApplyToReplicas(table, replicas, engines, partition, clustering, stamped);
}

Status Cluster::WriteIf(std::string_view table, std::string_view partition,
                        std::string_view clustering, const Row& update,
                        const LwtCondition& condition, Row* current) {
  OBS_SPAN("cluster.lwt");
  OBS_COUNTER_INC("cluster.lwt.attempts");
  stats_.lwt_attempts.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;

  // LWT costs the base round trip plus the Paxos rounds (paper §8.2: the
  // lightweight transaction "introduces further stress").
  ChargeRtt(1 + options_.lwt_extra_round_trips);

  // Serialize on the row's Paxos lock; evaluate against the newest state at
  // the first replica and apply to all on success.
  const uint64_t shard =
      Fnv1a64(EncodeRowKey(partition, clustering) + std::string(table)) % kPaxosShards;
  std::lock_guard<std::mutex> paxos(paxos_locks_[shard]);

  std::optional<Row> existing = engines.front()->Get(partition, clustering);
  bool pass = false;
  switch (condition.kind) {
    case LwtCondition::Kind::kNotExists:
      pass = !existing.has_value();
      break;
    case LwtCondition::Kind::kRowExists:
      pass = existing.has_value();
      break;
    case LwtCondition::Kind::kCellEquals: {
      if (existing.has_value()) {
        auto it = existing->cells.find(condition.column);
        pass = it != existing->cells.end() && it->second.value == condition.value;
      }
      break;
    }
  }
  if (!pass) {
    OBS_COUNTER_INC("cluster.lwt.failures");
    stats_.lwt_failures.fetch_add(1, std::memory_order_relaxed);
    if (current != nullptr) {
      *current = existing.has_value() ? *existing : Row{};
    }
    return Status::ConditionFailed();
  }

  Row stamped = update;
  const uint64_t ts = NextTimestamp();
  size_t bytes = 0;
  for (auto& [name, cell] : stamped.cells) {
    cell.timestamp = ts;
    bytes += name.size() + cell.value.size();
  }
  stats_.bytes_from_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return ApplyToReplicas(table, replicas, engines, partition, clustering, stamped);
}

StorageEngine* Cluster::PickReadReplica(const std::vector<Node*>& replicas,
                                        const std::vector<StorageEngine*>& engines) {
  const uint64_t n = read_rr_.fetch_add(1, std::memory_order_relaxed);
  // Prefer the round-robin choice; fall forward past down replicas.
  std::lock_guard<std::mutex> lock(down_mu_);
  for (size_t step = 0; step < engines.size(); ++step) {
    const size_t i = (n + step) % engines.size();
    const auto node_id = static_cast<size_t>(replicas[i]->id());
    if (node_id >= node_down_.size() || !node_down_[node_id]) {
      return engines[i];
    }
  }
  return engines[n % engines.size()];  // everything down: fail like a timeout would
}

void Cluster::SetNodeDown(int node, bool down) {
  std::lock_guard<std::mutex> lock(down_mu_);
  if (node < 0 || static_cast<size_t>(node) >= node_down_.size()) {
    return;
  }
  const bool was_down = node_down_[static_cast<size_t>(node)];
  node_down_[static_cast<size_t>(node)] = down;
  if (was_down && !down) {
    ReplayHintsLocked(node);
  }
}

bool Cluster::IsNodeDown(int node) const {
  std::lock_guard<std::mutex> lock(down_mu_);
  return node >= 0 && static_cast<size_t>(node) < node_down_.size() &&
         node_down_[static_cast<size_t>(node)];
}

size_t Cluster::PendingHints(int node) const {
  std::lock_guard<std::mutex> lock(down_mu_);
  if (node < 0 || static_cast<size_t>(node) >= hints_.size()) {
    return 0;
  }
  return hints_[static_cast<size_t>(node)].size();
}

void Cluster::ReplayHintsLocked(int node) {
  std::vector<Hint> pending;
  pending.swap(hints_[static_cast<size_t>(node)]);
  Node* target = nodes_[static_cast<size_t>(node)].get();
  for (Hint& hint : pending) {
    StorageEngine* engine = target->FindEngine(hint.table);
    if (engine == nullptr) {
      bool server_compression = false;
      {
        std::lock_guard<std::mutex> lock(tables_mu_);
        auto it = tables_.find(hint.table);
        if (it == tables_.end()) {
          continue;  // table dropped while the node was down
        }
        server_compression = it->second;
      }
      engine = target->EngineFor(hint.table, server_compression);
    }
    (void)engine->Apply(hint.partition, hint.clustering, hint.update);
  }
}

Status Cluster::ApplyToReplicas(std::string_view table, const std::vector<Node*>& replicas,
                                const std::vector<StorageEngine*>& engines,
                                std::string_view partition, std::string_view clustering,
                                const Row& stamped) {
  std::lock_guard<std::mutex> lock(down_mu_);
  OBS_COUNTER_ADD("cluster.replica.fanout", engines.size());
  for (size_t i = 0; i < engines.size(); ++i) {
    const auto node_id = static_cast<size_t>(replicas[i]->id());
    if (node_id < node_down_.size() && node_down_[node_id]) {
      // Hinted handoff: queue the timestamped mutation for replay.
      OBS_COUNTER_INC("cluster.hints.queued");
      hints_[node_id].push_back(Hint{std::string(table), std::string(partition),
                                     std::string(clustering), stamped});
      continue;
    }
    MC_RETURN_IF_ERROR(engines[i]->Apply(partition, clustering, stamped));
  }
  return Status::Ok();
}

Result<Row> Cluster::Read(std::string_view table, std::string_view partition,
                          std::string_view clustering) {
  ScopedSpan read_span(ReadLatencyFor(options_.consistency));
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  Row merged;
  bool found = false;
  if (options_.consistency == Consistency::kQuorum) {
    const size_t ask = engines.size() / 2 + 1;
    for (size_t i = 0; i < ask; ++i) {
      auto row = engines[i]->Get(partition, clustering);
      if (i > 0) {
        ChargeRtt(1);  // extra replica hop under QUORUM
      }
      if (row.has_value()) {
        merged.MergeNewer(*row);
        found = true;
      }
    }
  } else {
    auto row = PickReadReplica(replicas, engines)->Get(partition, clustering);
    if (row.has_value()) {
      merged = std::move(*row);
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound();
  }
  size_t bytes = 0;
  for (const auto& [name, cell] : merged.cells) {
    bytes += cell.value.size();
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return merged;
}

Result<std::pair<std::string, Row>> Cluster::ReadFloor(std::string_view table,
                                                       std::string_view partition,
                                                       std::string_view clustering) {
  ScopedSpan read_span(ReadLatencyFor(options_.consistency));
  OBS_SPAN("cluster.read_floor");
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  auto result = PickReadReplica(replicas, engines)->Floor(partition, clustering);
  if (!result.has_value()) {
    return Status::NotFound();
  }
  size_t bytes = 0;
  for (const auto& [name, cell] : result->second.cells) {
    bytes += cell.value.size();
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return std::make_pair(result->first, std::move(result->second));
}

Result<std::vector<std::pair<std::string, Row>>> Cluster::ReadRange(std::string_view table,
                                                                    std::string_view partition,
                                                                    std::string_view lo,
                                                                    std::string_view hi,
                                                                    size_t limit) {
  OBS_SPAN("cluster.read_range");
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  std::vector<std::pair<std::string, Row>> out;
  MC_RETURN_IF_ERROR(PickReadReplica(replicas, engines)->Scan(
      partition, lo, hi, limit, [&](std::string_view clustering, const Row& row) {
        out.emplace_back(std::string(clustering), row);
        return true;
      }));
  size_t bytes = 0;
  for (const auto& [clustering, row] : out) {
    for (const auto& [name, cell] : row.cells) {
      bytes += cell.value.size();
    }
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return out;
}

Status Cluster::DeletePartition(std::string_view table, std::string_view partition) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);
  const uint64_t ts = NextTimestamp();
  for (StorageEngine* engine : engines) {
    MC_RETURN_IF_ERROR(engine->ApplyPartitionTombstone(partition, ts));
  }
  return Status::Ok();
}

Status Cluster::DeleteRow(std::string_view table, std::string_view partition,
                          std::string_view clustering, const std::vector<std::string>& columns) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);
  Row tombstones;
  const uint64_t ts = NextTimestamp();
  for (const auto& column : columns) {
    tombstones.cells[column] = Cell{"", ts, true};
  }
  return ApplyToReplicas(table, replicas, engines, partition, clustering, tombstones);
}

size_t Cluster::TableAtRestBytes(std::string_view table) {
  size_t bytes = 0;
  StorageEngine* engine = nodes_.front()->FindEngine(table);
  if (engine != nullptr) {
    bytes = engine->AtRestBytes() + engine->MemtableBytes();
  }
  return bytes;
}

BlockCacheStats Cluster::CacheStats() const {
  BlockCacheStats out;
  for (const auto& node : nodes_) {
    const BlockCacheStats s = const_cast<Node*>(node.get())->cache()->Stats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.bytes_used += s.bytes_used;
  }
  return out;
}

const MediaStats* Cluster::NodeMediaStats(int node) const {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return nullptr;
  }
  return &nodes_[static_cast<size_t>(node)]->media()->stats();
}

Status Cluster::FlushAll() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& [name, compression] : tables_) {
      names.push_back(name);
    }
  }
  for (auto& node : nodes_) {
    for (const auto& name : names) {
      StorageEngine* engine = node->FindEngine(name);
      if (engine != nullptr) {
        MC_RETURN_IF_ERROR(engine->Flush());
      }
    }
  }
  return Status::Ok();
}

void Cluster::WarmCaches(std::string_view table) {
  // Reads round-robin across replicas, so every replica's hot set is the full
  // table: warm everything everywhere (the mirrored-cache model — effective
  // cluster memory equals ONE node's cache, as with real RF=N replication).
  for (auto& node : nodes_) {
    StorageEngine* engine = node->FindEngine(table);
    if (engine != nullptr) {
      engine->WarmCache();
    }
  }
}

void Cluster::ResetPerfCounters() {
  stats_.reads = 0;
  stats_.writes = 0;
  stats_.lwt_attempts = 0;
  stats_.lwt_failures = 0;
  stats_.bytes_to_client = 0;
  stats_.bytes_from_client = 0;
  for (auto& node : nodes_) {
    node->media()->ResetStats();
  }
}

}  // namespace minicrypt
