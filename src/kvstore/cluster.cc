#include "src/kvstore/cluster.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "src/kvstore/bloom.h"
#include "src/kvstore/node.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// Coordinator read latency split by consistency level. Both histograms are
// interned once; the dynamic consistency value just selects the pointer.
LatencyHistogram* ReadLatencyFor(Consistency consistency) {
  static LatencyHistogram* one = MetricsRegistry::Instance().GetHistogram("cluster.read.one");
  static LatencyHistogram* quorum =
      MetricsRegistry::Instance().GetHistogram("cluster.read.quorum");
  return consistency == Consistency::kQuorum ? quorum : one;
}

}  // namespace

ClusterOptions ClusterOptions::ForTest() {
  ClusterOptions o;
  o.node_count = 1;
  o.replication_factor = 1;
  o.rtt_micros = 0;
  o.replica_hop_micros = 0;
  o.lwt_extra_round_trips = 0;
  o.media = std::nullopt;
  o.block_cache_bytes = 8 * 1024 * 1024;
  o.engine.memtable_flush_bytes = 256 * 1024;
  return o;
}

Cluster::Cluster(ClusterOptions options)
    : options_(options), ring_(options.vnodes),
      node_down_(static_cast<size_t>(options.node_count), false),
      hints_(static_cast<size_t>(options.node_count)),
      paxos_locks_(std::make_unique<std::mutex[]>(kPaxosShards)) {
  // Thread the shared injector down to each node's durability path.
  options_.engine.fault_injector = options_.fault_injector;
  for (int i = 0; i < options_.node_count; ++i) {
    nodes_.push_back(MakeNode(i));
    ring_.AddNode(i);
    membership_[i] = MembershipState::kServing;
  }
  UpdateServingGauge();
  // Replica fan-out pool: only worth spinning up when a write actually has
  // more than one leg. replica_fanout_threads == 0 selects the synchronous
  // deterministic mode (docs/CONCURRENCY.md).
  if (options_.replica_fanout_threads > 0 && options_.replication_factor > 1) {
    Executor::Options pool;
    pool.threads = options_.replica_fanout_threads;
    pool.queue_limit =
        std::max<size_t>(64, static_cast<size_t>(options_.replica_fanout_threads) * 16);
    pool.name = "replica-fanout";
    replica_pool_ = std::make_unique<Executor>(pool);
  }
}

Cluster::~Cluster() {
  // Order matters: Async* tasks run whole pipelines (which submit replica
  // legs), so the API pool must drain before the replica pool. Both drain
  // before nodes_ is torn down, so every leg's engine pointer stays valid.
  if (async_pool_ != nullptr) {
    async_pool_->Shutdown();
  }
  if (replica_pool_ != nullptr) {
    replica_pool_->Shutdown();
  }
}

std::unique_ptr<Node> Cluster::MakeNode(int id) {
  std::unique_ptr<Media> media;
  if (options_.media.has_value()) {
    MediaProfile profile = *options_.media;
    profile.latency_scale *= options_.latency_scale;
    media = std::make_unique<SimulatedMedia>(profile, options_.clock, options_.fault_injector);
  } else {
    media = std::make_unique<NullMedia>();
  }
  return std::make_unique<Node>(id, options_.block_cache_bytes, std::move(media),
                                options_.engine);
}

Node* Cluster::NodeAt(int node) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[static_cast<size_t>(node)].get();
}

std::vector<Node*> Cluster::SnapshotNodes() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

size_t Cluster::NodeCount() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return nodes_.size();
}

HashRing Cluster::RingSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_;
}

MembershipState Cluster::NodeMembership(int node) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  auto it = membership_.find(node);
  return it == membership_.end() ? MembershipState::kRemoved : it->second;
}

std::vector<int> Cluster::ServingNodes() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  std::vector<int> out;
  for (const auto& [id, state] : membership_) {
    if (state == MembershipState::kServing) {
      out.push_back(id);
    }
  }
  return out;
}

TopologyStatus Cluster::Topology() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  TopologyStatus out;
  if (inflight_.has_value()) {
    out.inflight = true;
    out.kind = inflight_->kind;
    out.node = inflight_->node;
    out.stage = inflight_->stage;
    out.token_moves = inflight_->token_moves;
  }
  return out;
}

std::optional<Cluster::TopologyOp> Cluster::GetInflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_;
}

void Cluster::SetInflight(const std::optional<TopologyOp>& op) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_ = op;
}

void Cluster::UpdateServingGauge() {
  int64_t serving = 0;
  for (const auto& [id, state] : membership_) {
    serving += state == MembershipState::kServing ? 1 : 0;
  }
  OBS_GAUGE_SET("ring.serving_nodes", serving);
}

Status Cluster::CreateTable(std::string_view name, bool server_compression) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.emplace(std::string(name), server_compression);
  return Status::Ok();
}

Status Cluster::DropTable(std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    tables_.erase(std::string(name));
  }
  for (Node* node : SnapshotNodes()) {
    node->DropTable(name);
  }
  return Status::Ok();
}

void Cluster::ChargeRtt(int round_trips) {
  const auto micros = static_cast<uint64_t>(std::llround(
      static_cast<double>(options_.rtt_micros) * round_trips * options_.latency_scale));
  if (micros > 0) {
    OBS_COUNTER_ADD("net.rtt.charged_micros", micros);
    options_.clock->SleepMicros(micros);
  }
}

void Cluster::ChargeTransfer(size_t bytes) {
  if (options_.network_bytes_per_micro <= 0) {
    return;
  }
  const auto micros = static_cast<uint64_t>(std::llround(
      static_cast<double>(bytes) / options_.network_bytes_per_micro * options_.latency_scale));
  // Count all bytes on the wire, even transfers too small to round to a
  // nonzero latency charge.
  OBS_COUNTER_ADD("net.transfer.bytes", bytes);
  if (micros > 0) {
    OBS_COUNTER_ADD("net.transfer.charged_micros", micros);
    // The link is a shared resource: holding the slot while the transfer
    // "runs" gives the cluster a finite aggregate bandwidth. The span covers
    // queue wait + service time, so net.transfer p99 >> the charged micros
    // means the client link is saturated.
    OBS_SPAN("net.transfer");
    SemaphoreGuard slot(network_link_);
    options_.clock->SleepMicros(micros);
  }
}

namespace {
// Message Write/WriteIf/Delete* match to distinguish a racing ownership flip
// (re-resolve and retry) from a genuine ambiguous-write Unavailable.
constexpr std::string_view kTopologyAbortMsg = "topology changed during write";

bool IsTopologyAbort(const Status& s) {
  return s.IsAborted() && s.message() == kTopologyAbortMsg;
}
}  // namespace

Result<Cluster::ReplicaSet> Cluster::ResolveReplicas(std::string_view table,
                                                     std::string_view partition) {
  bool server_compression = false;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::InvalidArgument("no such table: " + std::string(table));
    }
    server_compression = it->second;
  }
  ReplicaSet rs;
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  // Epoch and rings are read under one shared lock; flips mutate both under
  // the exclusive lock, so the snapshot is internally consistent.
  rs.epoch = topology_epoch_.load(std::memory_order_acquire);
  const std::vector<int> ids = ring_.Replicas(partition, options_.replication_factor);
  rs.natural.reserve(ids.size());
  for (int id : ids) {
    Node* node = nodes_[static_cast<size_t>(id)].get();
    rs.natural.push_back(node);
    rs.natural_engines.push_back(node->EngineFor(table, server_compression));
  }
  if (pending_ring_.has_value()) {
    for (int id : pending_ring_->Replicas(partition, options_.replication_factor)) {
      if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
        continue;
      }
      Node* node = nodes_[static_cast<size_t>(id)].get();
      rs.pending.push_back(node);
      rs.pending_engines.push_back(node->EngineFor(table, server_compression));
    }
  }
  if (rs.natural.empty()) {
    return Status::Unavailable("no replicas available");
  }
  return rs;
}

Result<std::vector<Node*>> Cluster::ReplicasFor(std::string_view table,
                                                std::string_view partition,
                                                std::vector<StorageEngine*>* engines) {
  MC_ASSIGN_OR_RETURN(ReplicaSet rs, ResolveReplicas(table, partition));
  if (engines != nullptr) {
    *engines = std::move(rs.natural_engines);
  }
  return std::move(rs.natural);
}

size_t Cluster::RequiredAcks(size_t replica_count) const {
  return options_.consistency == Consistency::kQuorum ? replica_count / 2 + 1 : 1;
}

Status Cluster::Write(std::string_view table, std::string_view partition,
                      std::string_view clustering, const Row& update) {
  OBS_SPAN("cluster.write");
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(ReplicaSet rs, ResolveReplicas(table, partition));

  // Stamp cells with a cluster-unique monotonic timestamp. The kClockSkew
  // point models a coordinator with a stale wall clock: the write is stamped
  // behind the cluster-wide counter, so it can lose LWW to an older write —
  // exactly the anomaly skew causes in Cassandra. Only plain writes skew;
  // LWT timestamps come from Paxos ballots, which the skewed clock never
  // reaches.
  Row stamped = update;
  uint64_t ts = NextTimestamp();
  FaultInjector* fi = options_.fault_injector;
  if (fi != nullptr) {
    uint64_t draw = 0;
    if (fi->Fire(FaultPoint::kClockSkew, table, &draw)) {
      const uint64_t skew = fi->ClockSkewSteps(draw);
      ts = ts > skew ? ts - skew : 1;
      OBS_COUNTER_INC("cluster.write.clock_skewed");
    }
  }
  size_t bytes = 0;
  for (auto& [name, cell] : stamped.cells) {
    cell.timestamp = ts;
    bytes += name.size() + cell.value.size();
  }
  stats_.bytes_from_client.fetch_add(bytes, std::memory_order_relaxed);

  ChargeRtt(1);
  ChargeTransfer(bytes);
  // An ownership flip between resolution and phase 1 aborts the apply before
  // any leg runs or fault point draws; re-resolve against the new topology
  // and retry. Bounded: back-to-back flips are a test-only pathology.
  for (int attempt = 0;; ++attempt) {
    const Status s = ApplyToReplicas(table, rs, partition, clustering, stamped,
                                     RequiredAcks(rs.natural_engines.size()));
    if (!IsTopologyAbort(s) || attempt >= 3) {
      return s;
    }
    OBS_COUNTER_INC("ring.topology_retries");
    MC_ASSIGN_OR_RETURN(rs, ResolveReplicas(table, partition));
  }
}

Status Cluster::WriteIf(std::string_view table, std::string_view partition,
                        std::string_view clustering, const Row& update,
                        const LwtCondition& condition, Row* current) {
  OBS_SPAN("cluster.lwt");
  OBS_COUNTER_INC("cluster.lwt.attempts");
  stats_.lwt_attempts.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(ReplicaSet rs, ResolveReplicas(table, partition));

  // LWT costs the base round trip plus the Paxos rounds (paper §8.2: the
  // lightweight transaction "introduces further stress").
  ChargeRtt(1 + options_.lwt_extra_round_trips);

  // Serialize on the row's Paxos lock; evaluate against a QUORUM of live
  // replicas merged by timestamp and apply to all on success. Reading one
  // replica is not enough under faults: a replica that missed a write (it
  // holds a hint) would feed stale state into the condition, and a later
  // LWT could silently erase an acked write. Quorum reads intersect quorum
  // writes, so the newest acked state always participates.
  const uint64_t shard =
      Fnv1a64(EncodeRowKey(partition, clustering) + std::string(table)) % kPaxosShards;
  std::lock_guard<std::mutex> paxos(paxos_locks_[shard]);

  // A racing ownership flip aborts the commit before any replica applied it;
  // the whole round (condition read included) re-runs against the new
  // topology, still under the Paxos lock.
  for (int attempt = 0;; ++attempt) {
  const std::vector<Node*>& replicas = rs.natural;
  const std::vector<StorageEngine*>& engines = rs.natural_engines;
  FaultInjector* fi = options_.fault_injector;
  const size_t quorum = engines.size() / 2 + 1;
  const std::vector<size_t> live = LiveIndexes(replicas);
  if (live.size() < quorum) {
    OBS_COUNTER_INC("cluster.lwt.unavailable");
    return Status::Unavailable("LWT quorum unavailable: " + std::to_string(live.size()) + "/" +
                               std::to_string(engines.size()) + " replicas live");
  }
  std::optional<Row> existing;
  {
    Row merged;
    bool found = false;
    size_t votes = 0;
    for (size_t idx : live) {
      if (votes == quorum) {
        break;
      }
      if (fi != nullptr && fi->Fire(FaultPoint::kMediaReadError, table)) {
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      auto row = engines[idx]->Get(partition, clustering);
      if (!row.ok() && !row.status().IsNotFound()) {
        // Corruption counts as a replica-local failure: no vote, fail over.
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      ++votes;
      if (row.ok()) {
        merged.MergeNewer(*row);
        found = true;
      }
    }
    if (votes < quorum) {
      OBS_COUNTER_INC("cluster.lwt.unavailable");
      return Status::Unavailable("LWT condition read got " + std::to_string(votes) + "/" +
                                 std::to_string(quorum) + " quorum votes");
    }
    if (found) {
      existing = std::move(merged);
    }
  }
  bool pass = false;
  switch (condition.kind) {
    case LwtCondition::Kind::kNotExists:
      pass = !existing.has_value();
      break;
    case LwtCondition::Kind::kRowExists:
      pass = existing.has_value();
      break;
    case LwtCondition::Kind::kCellEquals: {
      if (existing.has_value()) {
        auto it = existing->cells.find(condition.column);
        pass = it != existing->cells.end() && it->second.value == condition.value;
      }
      break;
    }
  }
  if (!pass) {
    OBS_COUNTER_INC("cluster.lwt.failures");
    stats_.lwt_failures.fetch_add(1, std::memory_order_relaxed);
    if (current != nullptr) {
      *current = existing.has_value() ? *existing : Row{};
    }
    return Status::ConditionFailed();
  }

  Row stamped = update;
  const uint64_t ts = NextTimestamp();
  size_t bytes = 0;
  for (auto& [name, cell] : stamped.cells) {
    cell.timestamp = ts;
    bytes += name.size() + cell.value.size();
  }
  stats_.bytes_from_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  // LWT commits require a quorum regardless of the configured plain-write
  // consistency (Cassandra's SERIAL path), or the next condition read could
  // miss this write entirely.
  const Status applied =
      ApplyToReplicas(table, rs, partition, clustering, stamped, quorum);
  if (IsTopologyAbort(applied) && attempt < 3) {
    OBS_COUNTER_INC("ring.topology_retries");
    MC_ASSIGN_OR_RETURN(rs, ResolveReplicas(table, partition));
    continue;
  }
  MC_RETURN_IF_ERROR(applied);
  if (fi != nullptr && fi->Fire(FaultPoint::kLwtAmbiguous, table)) {
    // The classic ambiguous write: the update IS applied (and durable at a
    // quorum), but the coordinator's ack is lost. Clients must re-read and
    // verify, never blind-retry.
    OBS_COUNTER_INC("cluster.lwt.ambiguous");
    return Status::Unavailable("injected: LWT applied but coordinator timed out");
  }
  return Status::Ok();
  }
}

std::vector<size_t> Cluster::LiveIndexesLocked(const std::vector<Node*>& replicas) const {
  std::vector<size_t> live;
  live.reserve(replicas.size());
  for (size_t i = 0; i < replicas.size(); ++i) {
    const auto node_id = static_cast<size_t>(replicas[i]->id());
    if (node_id >= node_down_.size() || !node_down_[node_id]) {
      live.push_back(i);
    }
  }
  return live;
}

std::vector<size_t> Cluster::LiveIndexes(const std::vector<Node*>& replicas) const {
  std::lock_guard<std::mutex> lock(down_mu_);
  return LiveIndexesLocked(replicas);
}

Status Cluster::ReadOne(std::string_view table, const std::vector<Node*>& replicas,
                        const std::vector<StorageEngine*>& engines,
                        const std::function<Status(StorageEngine*)>& op) {
  const std::vector<size_t> live = LiveIndexes(replicas);
  if (live.empty()) {
    return Status::Unavailable("no live replica for read");
  }
  FaultInjector* fi = options_.fault_injector;
  const uint64_t n = read_rr_.fetch_add(1, std::memory_order_relaxed);
  // Prefer the round-robin choice; fall forward past replicas whose read
  // fails at the media layer or answers Corruption. A bad block never
  // reaches the client as data — the worst case is every copy bad, and that
  // surfaces as the error below, not as bytes.
  Status last = Status::Unavailable("read failed on every live replica");
  for (size_t step = 0; step < live.size(); ++step) {
    const size_t i = live[(n + step) % live.size()];
    if (fi != nullptr && fi->Fire(FaultPoint::kMediaReadError, table)) {
      OBS_COUNTER_INC("cluster.read.replica_errors");
      continue;
    }
    const Status s = op(engines[i]);
    if (s.ok() || s.IsNotFound()) {
      return s;
    }
    OBS_COUNTER_INC("cluster.read.replica_errors");
    last = s;
  }
  return last;
}

void Cluster::SetNodeDown(int node, bool down) {
  if (!down && NodeMembership(node) == MembershipState::kRemoved) {
    return;  // retired nodes never come back
  }
  std::lock_guard<std::mutex> lock(down_mu_);
  if (node < 0 || static_cast<size_t>(node) >= node_down_.size()) {
    return;
  }
  const bool was_down = node_down_[static_cast<size_t>(node)];
  node_down_[static_cast<size_t>(node)] = down;
  if (was_down && !down) {
    ReplayHintsLocked(node);
  }
}

bool Cluster::IsNodeDown(int node) const {
  std::lock_guard<std::mutex> lock(down_mu_);
  return node >= 0 && static_cast<size_t>(node) < node_down_.size() &&
         node_down_[static_cast<size_t>(node)];
}

size_t Cluster::PendingHints(int node) const {
  std::lock_guard<std::mutex> lock(down_mu_);
  if (node < 0 || static_cast<size_t>(node) >= hints_.size()) {
    return 0;
  }
  return hints_[static_cast<size_t>(node)].size();
}

void Cluster::ReplayHintsLocked(int node) {
  std::vector<Hint> pending;
  pending.swap(hints_[static_cast<size_t>(node)]);
  Node* target = nodes_[static_cast<size_t>(node)].get();
  for (Hint& hint : pending) {
    StorageEngine* engine = target->FindEngine(hint.table);
    if (engine == nullptr) {
      bool server_compression = false;
      {
        std::lock_guard<std::mutex> lock(tables_mu_);
        auto it = tables_.find(hint.table);
        if (it == tables_.end()) {
          continue;  // table dropped while the node was down
        }
        server_compression = it->second;
      }
      engine = target->EngineFor(hint.table, server_compression);
    }
    const Status s =
        hint.partition_tombstone_ts != 0
            ? engine->ApplyPartitionTombstone(hint.partition, hint.partition_tombstone_ts)
            : engine->Apply(hint.partition, hint.clustering, hint.update);
    if (s.ok()) {
      OBS_COUNTER_INC("cluster.hints.replayed");
    } else {
      // Replay can itself hit an injected durability fault; keep the hint so
      // a later replay (post-heal quiesce) delivers it. Dropping it here
      // would silently diverge the replica.
      OBS_COUNTER_INC("cluster.hints.requeued");
      hints_[static_cast<size_t>(node)].push_back(std::move(hint));
    }
  }
}

void Cluster::ChaosTick() {
  FaultInjector* fi = options_.fault_injector;
  if (fi == nullptr) {
    return;
  }
  uint64_t draw = 0;
  if (!fi->Fire(FaultPoint::kNodeFlap, {}, &draw)) {
    return;
  }
  // Flap only serving members — retired nodes are permanently down, and a
  // node mid-join/mid-leave is the topology driver's to crash (via scripted
  // faults), not the flapper's. For the default all-serving cluster the
  // candidate list is [0..n), identical to the historical behavior, so
  // seeded chaos schedules replay unchanged.
  const std::vector<int> candidates = ServingNodes();
  if (candidates.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(down_mu_);
  const auto node = static_cast<size_t>(candidates[draw % candidates.size()]);
  if (node_down_[node]) {
    node_down_[node] = false;
    OBS_COUNTER_INC("cluster.flap.up");
    ReplayHintsLocked(static_cast<int>(node));
    return;
  }
  // Never take down a majority of the serving set: quorum reads/writes must
  // stay possible or the whole run degenerates to Unavailable.
  size_t down = 0;
  for (int id : candidates) {
    down += node_down_[static_cast<size_t>(id)] ? 1 : 0;
  }
  if ((down + 1) * 2 > candidates.size()) {
    return;
  }
  node_down_[node] = true;
  OBS_COUNTER_INC("cluster.flap.down");
}

void Cluster::HealAllNodes() {
  Quiesce();  // straggler legs may still queue hints; settle them first
  // Retired nodes stay down forever; collect them before taking down_mu_
  // (lock order: ring_mu_ before down_mu_).
  std::vector<bool> removed;
  {
    std::shared_lock<std::shared_mutex> lock(ring_mu_);
    removed.resize(nodes_.size(), false);
    for (const auto& [id, state] : membership_) {
      if (state == MembershipState::kRemoved && static_cast<size_t>(id) < removed.size()) {
        removed[static_cast<size_t>(id)] = true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(down_mu_);
  for (size_t node = 0; node < node_down_.size(); ++node) {
    if (node_down_[node] && !(node < removed.size() && removed[node])) {
      node_down_[node] = false;
      ReplayHintsLocked(static_cast<int>(node));
    }
  }
}

void Cluster::ReplayAllHints() {
  Quiesce();  // a leg finishing after the drain would leave a hint parked
  std::lock_guard<std::mutex> lock(down_mu_);
  for (size_t node = 0; node < hints_.size(); ++node) {
    if (!node_down_[node] && !hints_[node].empty()) {
      ReplayHintsLocked(static_cast<int>(node));
    }
  }
}

std::vector<int> Cluster::ReplicaNodesFor(std::string_view partition) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.Replicas(partition, options_.replication_factor);
}

Result<std::vector<std::pair<std::string, Row>>> Cluster::DebugPartitionRows(
    int node, std::string_view table, std::string_view partition) {
  Quiesce();  // invariant checks must never observe a mid-flight replica leg
  Node* target = NodeAt(node);
  if (target == nullptr) {
    return Status::InvalidArgument("no such node: " + std::to_string(node));
  }
  std::vector<std::pair<std::string, Row>> out;
  StorageEngine* engine = target->FindEngine(table);
  if (engine == nullptr) {
    return out;  // node never saw a write for this table
  }
  const std::string hi(64, '\xff');
  MC_RETURN_IF_ERROR(engine->Scan(partition, "", hi, 0,
                                  [&](std::string_view clustering, const Row& row) {
                                    out.emplace_back(std::string(clustering), row);
                                    return true;
                                  }));
  return out;
}

// Shared state of one write's replica legs. Owned by shared_ptr: when the
// coordinator returns on the quorum'th ack, straggler legs keep a reference
// and finish in the background (Quiesce waits for them).
struct Cluster::ReplicaFanout {
  // Per-replica plan resolved in phase 1 (under down_mu_, in replica order,
  // so fault-point ordinals are claimed deterministically per point).
  struct Plan {
    bool run_leg = false;            // false: resolved in phase 1 (down/dropped)
    bool forced_write_error = false; // injected kMediaWriteError: hint, no apply
    uint64_t delay_micros = 0;       // injected kReplicaDelay spike
  };

  std::string table;
  std::string partition;
  std::string clustering;
  Row stamped;
  uint64_t partition_tombstone_ts = 0;  // nonzero: whole-partition tombstone
  std::vector<StorageEngine*> engines;
  std::vector<int> node_ids;
  std::vector<Plan> plan;

  // Completion state. `done` counts finished legs (phase-1 resolutions never
  // enter it); the coordinator waits for acks >= required or done == legs.
  std::mutex mu;
  std::condition_variable cv;
  size_t acks = 0;
  size_t done = 0;
};

Status Cluster::ApplyToReplicas(std::string_view table, const ReplicaSet& rs,
                                std::string_view partition, std::string_view clustering,
                                const Row& stamped, size_t required_acks,
                                uint64_t partition_tombstone_ts) {
  FaultInjector* fi = options_.fault_injector;
  // Concatenate natural + pending legs. Pending endpoints (nodes gaining this
  // partition under an open topology window) raise the ack requirement by
  // their count — Cassandra's pending-endpoint rule. Any required_acks +
  // |pending| acks out of the combined set leave at least quorum(natural)
  // holders in the pre-flip replica set AND at least a quorum of the
  // post-flip set, so quorum reads intersect every acked write on both sides
  // of the flip.
  std::vector<Node*> replicas = rs.natural;
  std::vector<StorageEngine*> engines = rs.natural_engines;
  if (!rs.pending.empty()) {
    replicas.insert(replicas.end(), rs.pending.begin(), rs.pending.end());
    engines.insert(engines.end(), rs.pending_engines.begin(), rs.pending_engines.end());
    required_acks += rs.pending.size();
    if (partition_tombstone_ts == 0) {
      OBS_COUNTER_ADD("ring.dual_apply.legs", rs.pending.size());
    }
  }

  auto fanout = std::make_shared<ReplicaFanout>();
  fanout->table = std::string(table);
  fanout->partition = std::string(partition);
  fanout->clustering = std::string(clustering);
  fanout->stamped = stamped;
  fanout->partition_tombstone_ts = partition_tombstone_ts;
  fanout->engines = engines;
  fanout->node_ids.reserve(engines.size());
  fanout->plan.reserve(engines.size());

  // Phase 1 — plan, under down_mu_ in replica order: resolve down-ness and
  // draw the coordinator fault points (drop / delay / write-error). Drawing
  // here, before any leg runs, keeps each point's ordinal stream in replica
  // order regardless of how phase 2 interleaves. The partition-tombstone
  // path historically fired no coordinator points; keep it that way so
  // scripted fault ordinals replay unchanged.
  size_t legs = 0;
  {
    std::lock_guard<std::mutex> lock(down_mu_);
    // Validate the resolution's topology epoch under the same lock
    // CommitTopology holds while flipping ownership: a stale epoch means the
    // replica set no longer reflects the ring, so abort before any leg runs
    // or fault point draws — the caller re-resolves and retries, and the
    // fault-ordinal streams stay aligned with the retried attempt.
    if (rs.epoch != topology_epoch_.load(std::memory_order_acquire)) {
      return Status::Aborted(std::string(kTopologyAbortMsg));
    }
    if (partition_tombstone_ts == 0) {
      OBS_COUNTER_ADD("cluster.replica.fanout", engines.size());
    }
    for (size_t i = 0; i < engines.size(); ++i) {
      const auto node_id = static_cast<size_t>(replicas[i]->id());
      fanout->node_ids.push_back(static_cast<int>(node_id));
      ReplicaFanout::Plan plan;
      bool hint = false;
      if (node_id < node_down_.size() && node_down_[node_id]) {
        hint = true;
      } else if (partition_tombstone_ts == 0 && fi != nullptr &&
                 fi->Fire(FaultPoint::kReplicaDrop, table)) {
        // Coordinator->replica message lost; Cassandra queues a hint exactly
        // as it does for a down node.
        OBS_COUNTER_INC("cluster.replica.dropped");
        hint = true;
      } else {
        if (partition_tombstone_ts == 0 && fi != nullptr) {
          uint64_t draw = 0;
          if (fi->Fire(FaultPoint::kReplicaDelay, table, &draw)) {
            OBS_COUNTER_INC("cluster.replica.delayed");
            plan.delay_micros = fi->LatencySpikeMicros(draw);
            OBS_COUNTER_ADD("cluster.replica.delay_micros", plan.delay_micros);
          }
          if (fi->Fire(FaultPoint::kMediaWriteError, table)) {
            OBS_COUNTER_INC("cluster.replica.write_errors");
            plan.forced_write_error = true;
          }
        }
        plan.run_leg = true;
        ++legs;
      }
      if (hint) {
        // Hinted handoff: queue the timestamped mutation for replay.
        OBS_COUNTER_INC("cluster.hints.queued");
        hints_[node_id].push_back(Hint{fanout->table, fanout->partition, fanout->clustering,
                                       stamped, partition_tombstone_ts});
      }
      fanout->plan.push_back(plan);
    }
  }

  // Phase 2 — run the legs. With a pool and more than one leg they run
  // concurrently; a full pool falls back to caller-runs (deadlock-free by
  // construction). Without a pool (RF=1 or replica_fanout_threads=0) they
  // run inline in replica order — byte-identical to the old serial path.
  if (replica_pool_ == nullptr || legs <= 1) {
    for (size_t i = 0; i < fanout->plan.size(); ++i) {
      if (fanout->plan[i].run_leg) {
        RunReplicaLeg(fanout, i);
      }
    }
  } else {
    for (size_t i = 0; i < fanout->plan.size(); ++i) {
      if (!fanout->plan[i].run_leg) {
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(quiesce_mu_);
        ++pending_legs_;
      }
      if (!replica_pool_->TrySubmit([this, fanout, i]() {
            RunReplicaLeg(fanout, i);
            FinishPendingLeg();
          })) {
        FinishPendingLeg();
        OBS_COUNTER_INC("cluster.replica.fanout.inline");
        RunReplicaLeg(fanout, i);
      }
    }
  }

  // Complete on the required_acks'th ack; stragglers finish in the
  // background holding their shared_ptr. Only when every leg has reported
  // and acks still fall short do we surface the ambiguous failure (some
  // replicas may hold the write, the rest will get it via hints).
  std::unique_lock<std::mutex> lock(fanout->mu);
  fanout->cv.wait(lock, [&]() { return fanout->acks >= required_acks || fanout->done == legs; });
  if (fanout->acks >= required_acks) {
    return Status::Ok();
  }
  OBS_COUNTER_INC("cluster.write.underacked");
  if (partition_tombstone_ts != 0) {
    return Status::Unavailable("partition delete acked by " + std::to_string(fanout->acks) +
                               "/" + std::to_string(required_acks) + " required replicas");
  }
  return Status::Unavailable("write acked by " + std::to_string(fanout->acks) + "/" +
                             std::to_string(required_acks) + " required replicas");
}

void Cluster::RunReplicaLeg(const std::shared_ptr<ReplicaFanout>& fanout, size_t i) {
  const ReplicaFanout::Plan& plan = fanout->plan[i];
  const auto node_id = static_cast<size_t>(fanout->node_ids[i]);
  if (plan.delay_micros > 0) {
    options_.clock->SleepMicros(plan.delay_micros);
  }
  bool ack = false;
  bool hint = false;
  if (plan.forced_write_error) {
    hint = true;
  } else {
    // Re-check down-ness: CrashNode marks the node down (under down_mu_)
    // before tearing its engines down, so a leg planned earlier must divert
    // to a hint rather than touch a dying engine.
    bool down_now = false;
    {
      std::lock_guard<std::mutex> lock(down_mu_);
      down_now = node_id < node_down_.size() && node_down_[node_id];
    }
    if (down_now) {
      hint = true;
    } else {
      const Status s =
          fanout->partition_tombstone_ts != 0
              ? fanout->engines[i]->ApplyPartitionTombstone(fanout->partition,
                                                            fanout->partition_tombstone_ts)
              : fanout->engines[i]->Apply(fanout->partition, fanout->clustering,
                                          fanout->stamped);
      if (s.ok()) {
        ack = true;
      } else {
        // Commit-log (fsync) failure: the replica rejected the mutation;
        // park it as a hint like a transient outage.
        if (fanout->partition_tombstone_ts == 0) {
          OBS_COUNTER_INC("cluster.replica.apply_errors");
        }
        hint = true;
      }
    }
  }
  if (hint) {
    std::lock_guard<std::mutex> lock(down_mu_);
    OBS_COUNTER_INC("cluster.hints.queued");
    hints_[node_id].push_back(Hint{fanout->table, fanout->partition, fanout->clustering,
                                   fanout->stamped, fanout->partition_tombstone_ts});
  }
  {
    std::lock_guard<std::mutex> lock(fanout->mu);
    if (ack) {
      ++fanout->acks;
    }
    ++fanout->done;
  }
  fanout->cv.notify_all();
}

void Cluster::FinishPendingLeg() {
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  if (--pending_legs_ == 0) {
    quiesce_cv_.notify_all();
  }
}

void Cluster::Quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [this]() { return pending_legs_ == 0; });
}

// --- Elastic topology --------------------------------------------------------

Status Cluster::PersistMembership(const std::string& context) {
  FaultInjector* fi = options_.fault_injector;
  if (fi != nullptr && fi->Fire(FaultPoint::kTopologyPersist, context)) {
    OBS_COUNTER_INC("ring.persist_failures");
    return Status::Unavailable("injected: membership persist failed: " + context);
  }
  OBS_COUNTER_INC("ring.persists");
  return Status::Ok();
}

void Cluster::CommitTopology(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> ring_lock(ring_mu_);
  std::lock_guard<std::mutex> down_lock(down_mu_);
  fn();
  topology_epoch_.fetch_add(1, std::memory_order_release);
}

Status Cluster::StreamPendingRanges() {
  // Snapshot the window under the shared lock; the scans below then run
  // against ring copies. The window cannot flip mid-stream — topology_mu_
  // (held by every caller) serializes streaming with the flip.
  HashRing natural(options_.vnodes);
  HashRing pending(options_.vnodes);
  std::vector<int> sources;
  {
    std::shared_lock<std::shared_mutex> lock(ring_mu_);
    if (!pending_ring_.has_value()) {
      return Status::Ok();  // already flipped (resume past the stream stage)
    }
    natural = ring_;
    pending = *pending_ring_;
    for (const auto& [id, state] : membership_) {
      if (state == MembershipState::kServing || state == MembershipState::kLeaving) {
        sources.push_back(id);
      }
    }
  }
  std::vector<std::pair<std::string, bool>> tables;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& [name, compression] : tables_) {
      tables.emplace_back(name, compression);
    }
  }
  FaultInjector* fi = options_.fault_injector;
  const std::string hi(96, '\xff');
  const int rf = options_.replication_factor;
  for (const auto& [table, compression] : tables) {
    if (fi != nullptr && fi->Fire(FaultPoint::kStreamInterrupt, "table=" + table)) {
      // Session torn mid-transfer. Rows already applied are harmless (LWW
      // re-application is idempotent); the caller's stage is unchanged, so
      // ResumeTopology re-streams from scratch.
      OBS_COUNTER_INC("stream.interrupted");
      return Status::Unavailable("injected: stream interrupted on table " + table);
    }
    OBS_COUNTER_INC("stream.sessions");
    // For each partition, the gaining targets are the pending-ring replicas
    // that are not natural replicas. Merged across every up source replica
    // (raw rows: timestamps, tombstones, and partition-tombstone markers
    // included — a missed tombstone would resurrect deleted data).
    std::map<std::string, std::vector<int>> gaining;  // partition -> targets
    std::map<int, std::map<std::string, Row>> outbound;  // target -> rows
    for (int src : sources) {
      if (IsNodeDown(src)) {
        continue;  // remaining sources cover its ranges (RF-fold redundancy)
      }
      Node* source_node = NodeAt(src);
      StorageEngine* source = source_node == nullptr ? nullptr : source_node->FindEngine(table);
      if (source == nullptr) {
        continue;  // replica never saw a write for this table
      }
      (void)source->ScanEncodedForRepair("", hi, [&](std::string_view key, const Row& row) {
        auto decoded = DecodeRowKey(key);
        if (!decoded.ok()) {
          return;
        }
        const std::string partition(decoded->partition);
        auto it = gaining.find(partition);
        if (it == gaining.end()) {
          std::vector<int> targets;
          const std::vector<int> before = natural.Replicas(partition, rf);
          for (int id : pending.Replicas(partition, rf)) {
            if (std::find(before.begin(), before.end(), id) == before.end()) {
              targets.push_back(id);
            }
          }
          it = gaining.emplace(partition, std::move(targets)).first;
        }
        for (int target : it->second) {
          outbound[target][std::string(key)].MergeNewer(row);
        }
      });
    }
    for (auto& [target, rows] : outbound) {
      if (IsNodeDown(target)) {
        return Status::Unavailable("stream target node " + std::to_string(target) + " is down");
      }
      Node* node = NodeAt(target);
      if (node == nullptr) {
        return Status::InvalidArgument("stream target node missing: " + std::to_string(target));
      }
      StorageEngine* engine = node->EngineFor(table, compression);
      size_t applied = 0;
      for (const auto& [key, row] : rows) {
        if (engine->ApplyEncoded(key, row).ok()) {
          ++applied;
        }
      }
      OBS_COUNTER_ADD("stream.rows_streamed", applied);
      OBS_COUNTER_INC("stream.ranges_streamed");
    }
  }
  return Status::Ok();
}

Result<int> Cluster::BootstrapNode() {
  std::lock_guard<std::mutex> topo(topology_mu_);
  if (GetInflight().has_value()) {
    return Status::InvalidArgument("a topology change is already in flight");
  }
  const int id = static_cast<int>(NodeCount());
  MC_RETURN_IF_ERROR(PersistMembership("bootstrap plan node=" + std::to_string(id)));
  {
    // nodes_ growth holds BOTH locks, so readers holding either are safe; the
    // vector may reallocate but Node objects live behind stable unique_ptrs.
    std::unique_lock<std::shared_mutex> ring_lock(ring_mu_);
    std::lock_guard<std::mutex> down_lock(down_mu_);
    nodes_.push_back(MakeNode(id));
    node_down_.push_back(false);
    hints_.emplace_back();
    membership_[id] = MembershipState::kJoining;
  }
  SetInflight(
      TopologyOp{TopologyStatus::Kind::kBootstrap, id, TopologyStatus::Stage::kPlanned, 0});
  OBS_COUNTER_INC("ring.bootstraps.started");
  MC_RETURN_IF_ERROR(RunBootstrap());
  return id;
}

Status Cluster::RunBootstrap() {
  TopologyOp op = *GetInflight();
  if (op.stage == TopologyStatus::Stage::kPlanned) {
    MC_RETURN_IF_ERROR(PersistMembership("bootstrap stream node=" + std::to_string(op.node)));
    CommitTopology([&]() {
      HashRing next = ring_;
      next.AddNodeWithTokens(op.node, HashRing::PlanTokens(op.node, options_.vnodes));
      pending_ring_ = std::move(next);
      membership_[op.node] = MembershipState::kStreaming;
    });
    op.stage = TopologyStatus::Stage::kStreaming;
    SetInflight(op);
    // Writes resolved before the window opened either already fanned out
    // (their acks satisfy the pre-window quorum, which post-flip quorums
    // intersect) or abort on the epoch check and retry with dual-apply.
    Quiesce();
  }
  if (IsNodeDown(op.node)) {
    return Status::Unavailable("bootstrap target node " + std::to_string(op.node) +
                               " is down; restart it and resume");
  }
  MC_RETURN_IF_ERROR(StreamPendingRanges());
  Quiesce();
  // Drain hints before the flip so nothing the new owner should hold is
  // parked in a queue. A hint queued after this drain is still safe: its
  // write dual-applied to the pending owner, so the acked copy count already
  // satisfies the post-flip quorum.
  ReplayAllHints();
  MC_RETURN_IF_ERROR(PersistMembership("bootstrap flip node=" + std::to_string(op.node)));
  CommitTopology([&]() {
    ring_ = *pending_ring_;
    pending_ring_.reset();
    membership_[op.node] = MembershipState::kServing;
    UpdateServingGauge();
  });
  SetInflight(std::nullopt);
  OBS_COUNTER_INC("ring.bootstraps");
  return Status::Ok();
}

Status Cluster::DecommissionNode(int node) {
  std::lock_guard<std::mutex> topo(topology_mu_);
  if (GetInflight().has_value()) {
    return Status::InvalidArgument("a topology change is already in flight");
  }
  if (NodeMembership(node) != MembershipState::kServing) {
    return Status::InvalidArgument("node " + std::to_string(node) + " is not serving");
  }
  if (IsNodeDown(node)) {
    return Status::Unavailable("cannot decommission node " + std::to_string(node) +
                               " while down");
  }
  if (ServingNodes().size() <= static_cast<size_t>(options_.replication_factor)) {
    return Status::InvalidArgument(
        "decommission would leave fewer serving nodes than the replication factor");
  }
  MC_RETURN_IF_ERROR(PersistMembership("decommission plan node=" + std::to_string(node)));
  CommitTopology([&]() {
    HashRing next = ring_;
    next.RemoveNode(node);
    pending_ring_ = std::move(next);
    membership_[node] = MembershipState::kLeaving;
  });
  SetInflight(TopologyOp{TopologyStatus::Kind::kDecommission, node,
                         TopologyStatus::Stage::kStreaming, 0});
  OBS_COUNTER_INC("ring.decommissions.started");
  Quiesce();
  return RunDecommission();
}

Status Cluster::RunDecommission() {
  TopologyOp op = *GetInflight();
  if (op.stage != TopologyStatus::Stage::kFlipped) {
    if (IsNodeDown(op.node)) {
      return Status::Unavailable("leaving node " + std::to_string(op.node) +
                                 " is down; restart it and resume, or cancel");
    }
    MC_RETURN_IF_ERROR(StreamPendingRanges());
    Quiesce();
    ReplayAllHints();
    MC_RETURN_IF_ERROR(PersistMembership("decommission flip node=" + std::to_string(op.node)));
    CommitTopology([&]() {
      ring_ = *pending_ring_;
      pending_ring_.reset();
      membership_[op.node] = MembershipState::kDrained;
      UpdateServingGauge();
    });
    op.stage = TopologyStatus::Stage::kFlipped;
    SetInflight(op);
  }
  MC_RETURN_IF_ERROR(PersistMembership("decommission retire node=" + std::to_string(op.node)));
  {
    std::unique_lock<std::shared_mutex> ring_lock(ring_mu_);
    std::lock_guard<std::mutex> down_lock(down_mu_);
    membership_[op.node] = MembershipState::kRemoved;
    node_down_[static_cast<size_t>(op.node)] = true;  // permanently down
    hints_[static_cast<size_t>(op.node)].clear();     // will never replay
  }
  SetInflight(std::nullopt);
  OBS_COUNTER_INC("ring.decommissions");
  return Status::Ok();
}

Result<size_t> Cluster::RebalanceTokens(size_t max_moves) {
  std::lock_guard<std::mutex> topo(topology_mu_);
  if (GetInflight().has_value()) {
    return Status::InvalidArgument("a topology change is already in flight");
  }
  Quiesce();  // survey settled state, not mid-flight legs
  OBS_SPAN("ring.rebalance");

  // Survey per-partition sizes. Per node: sum across its table engines. Per
  // partition: max across replicas (converged replicas agree; max tolerates
  // a straggler that missed recent writes).
  std::map<std::string, size_t> partition_bytes;
  const std::vector<int> serving = ServingNodes();
  for (int id : serving) {
    if (IsNodeDown(id)) {
      continue;
    }
    Node* node = NodeAt(id);
    if (node == nullptr) {
      continue;
    }
    std::map<std::string, size_t> local;
    node->ForEachEngine([&](const std::string& table, StorageEngine* engine) {
      (void)table;
      std::map<std::string, size_t> sizes;
      if (engine->PartitionSizes(&sizes).ok()) {
        for (const auto& [partition, bytes] : sizes) {
          local[partition] += bytes;
        }
      }
    });
    for (const auto& [partition, bytes] : local) {
      auto& slot = partition_bytes[partition];
      slot = std::max(slot, bytes);
    }
  }
  if (partition_bytes.empty()) {
    return static_cast<size_t>(0);
  }

  const int rf = options_.replication_factor;
  const auto load_of = [&](const HashRing& ring) {
    std::map<int, size_t> load;
    for (int id : serving) {
      load[id] = 0;
    }
    for (const auto& [partition, bytes] : partition_bytes) {
      for (int id : ring.Replicas(partition, rf)) {
        load[id] += bytes;
      }
    }
    return load;
  };
  HashRing trial = RingSnapshot();
  std::map<int, size_t> load = load_of(trial);
  for (const auto& [id, bytes] : load) {
    // Dynamic metric name: the OBS_ macros cache one interned pointer per
    // call site, so per-node gauges go through the registry directly.
    if (MetricsRegistry::Instance().enabled()) {
      MetricsRegistry::Instance()
          .GetGauge("ring.node_bytes." + std::to_string(id))
          ->Set(static_cast<double>(bytes));
    }
  }

  // Greedy: move one hot-node vnode token at a time to the coldest node,
  // picking the token that minimizes the post-move maximum load; stop when
  // the spread is within 20% or no candidate move helps.
  size_t moves = 0;
  while (moves < max_moves) {
    int hot = -1;
    int cold = -1;
    size_t hot_bytes = 0;
    size_t cold_bytes = 0;
    for (const auto& [id, bytes] : load) {
      if (hot == -1 || bytes > hot_bytes) {
        hot = id;
        hot_bytes = bytes;
      }
      if (cold == -1 || bytes < cold_bytes) {
        cold = id;
        cold_bytes = bytes;
      }
    }
    if (hot == cold || hot_bytes * 5 <= cold_bytes * 6) {
      break;  // hot <= 1.2 * cold: balanced enough
    }
    uint64_t best_token = 0;
    size_t best_max = hot_bytes;
    std::map<int, size_t> best_load;
    bool found = false;
    for (uint64_t token : trial.TokensOf(hot)) {
      HashRing candidate = trial;
      if (!candidate.MoveToken(token, cold)) {
        continue;
      }
      std::map<int, size_t> cand_load = load_of(candidate);
      size_t cand_max = 0;
      for (const auto& [id, bytes] : cand_load) {
        cand_max = std::max(cand_max, bytes);
      }
      if (cand_max < best_max) {
        best_max = cand_max;
        best_token = token;
        best_load = std::move(cand_load);
        found = true;
      }
    }
    if (!found) {
      break;
    }
    trial.MoveToken(best_token, cold);
    load = std::move(best_load);
    ++moves;
  }
  if (moves == 0) {
    return static_cast<size_t>(0);
  }

  MC_RETURN_IF_ERROR(PersistMembership("rebalance plan moves=" + std::to_string(moves)));
  CommitTopology([&]() { pending_ring_ = trial; });
  SetInflight(
      TopologyOp{TopologyStatus::Kind::kRebalance, -1, TopologyStatus::Stage::kStreaming, moves});
  Quiesce();
  MC_RETURN_IF_ERROR(RunRebalance());
  return moves;
}

Status Cluster::RunRebalance() {
  const TopologyOp op = *GetInflight();
  MC_RETURN_IF_ERROR(StreamPendingRanges());
  Quiesce();
  ReplayAllHints();
  MC_RETURN_IF_ERROR(PersistMembership("rebalance flip"));
  CommitTopology([&]() {
    ring_ = *pending_ring_;
    pending_ring_.reset();
  });
  SetInflight(std::nullopt);
  OBS_COUNTER_INC("ring.rebalances");
  OBS_COUNTER_ADD("ring.tokens_moved", op.token_moves);
  return Status::Ok();
}

Status Cluster::ResumeTopology() {
  std::lock_guard<std::mutex> topo(topology_mu_);
  const std::optional<TopologyOp> op = GetInflight();
  if (!op.has_value()) {
    return Status::Ok();
  }
  OBS_COUNTER_INC("ring.topology_resumes");
  switch (op->kind) {
    case TopologyStatus::Kind::kBootstrap:
      return RunBootstrap();
    case TopologyStatus::Kind::kDecommission:
      return RunDecommission();
    case TopologyStatus::Kind::kRebalance:
      return RunRebalance();
    case TopologyStatus::Kind::kNone:
      break;
  }
  return Status::Ok();
}

Status Cluster::CancelTopology() {
  std::lock_guard<std::mutex> topo(topology_mu_);
  const std::optional<TopologyOp> op = GetInflight();
  if (!op.has_value()) {
    return Status::Ok();
  }
  if (op->stage == TopologyStatus::Stage::kFlipped) {
    return Status::InvalidArgument("ownership already flipped; resume instead");
  }
  MC_RETURN_IF_ERROR(PersistMembership("topology cancel node=" + std::to_string(op->node)));
  CommitTopology([&]() {
    pending_ring_.reset();
    if (op->kind == TopologyStatus::Kind::kBootstrap) {
      // Rows already streamed to the joining node die with it; it never
      // served a read and never counted toward a natural quorum.
      membership_[op->node] = MembershipState::kRemoved;
      node_down_[static_cast<size_t>(op->node)] = true;
      hints_[static_cast<size_t>(op->node)].clear();
      UpdateServingGauge();
    } else if (op->kind == TopologyStatus::Kind::kDecommission) {
      membership_[op->node] = MembershipState::kServing;
      UpdateServingGauge();
    }
  });
  SetInflight(std::nullopt);
  OBS_COUNTER_INC("ring.cancels");
  return Status::Ok();
}

namespace {
// True when `have` is missing a cell of `merged` or holds an older copy
// (timestamp ties with different content also repair, so the deterministic
// tie-break winner propagates).
bool RowNeedsRepair(const Row& have, const Row& merged) {
  for (const auto& [name, cell] : merged.cells) {
    auto it = have.cells.find(name);
    if (it == have.cells.end() || it->second.timestamp < cell.timestamp ||
        (it->second.timestamp == cell.timestamp && !(it->second == cell))) {
      return true;
    }
  }
  return false;
}

// Content hash of a raw row: two rows hash equal iff their at-rest encodings
// (cells, values, timestamps, tombstone flags) match.
uint64_t RowContentHash(const Row& row) {
  std::string buf;
  EncodeRow(row, &buf);
  return Fnv1a64(buf);
}

// Order-sensitive hash fold for Merkle leaves and interior nodes.
uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

size_t Cluster::RepairContacted(std::string_view table, const std::vector<Node*>& replicas,
                                const std::vector<StorageEngine*>& engines,
                                const std::vector<size_t>& contacted, std::string_view partition,
                                std::string_view clustering, const Row& merged) {
  size_t holders = 0;
  for (size_t idx : contacted) {
    auto have = engines[idx]->Get(partition, clustering);
    if (have.ok() && !RowNeedsRepair(*have, merged)) {
      ++holders;
      continue;
    }
    // NotFound and Corruption both fall through to the repair write: the
    // merged row lands in the memtable either way, restoring quorum
    // durability without touching the bad block.
    if (engines[idx]->Apply(partition, clustering, merged).ok()) {
      OBS_COUNTER_INC("cluster.read.repairs");
      ++holders;
    } else {
      // The replica rejected the repair (injected commit-log fault): park it
      // as a hint, like any other failed replica write.
      const auto node_id = static_cast<size_t>(replicas[idx]->id());
      std::lock_guard<std::mutex> lock(down_mu_);
      OBS_COUNTER_INC("cluster.hints.queued");
      hints_[node_id].push_back(
          Hint{std::string(table), std::string(partition), std::string(clustering), merged});
    }
  }
  return holders;
}

Status Cluster::CrashNode(int node) {
  Node* target = NodeAt(node);
  if (target == nullptr) {
    return Status::InvalidArgument("no such node: " + std::to_string(node));
  }
  if (NodeMembership(node) == MembershipState::kRemoved) {
    return Status::InvalidArgument("node " + std::to_string(node) + " is retired");
  }
  {
    std::lock_guard<std::mutex> lock(down_mu_);
    if (node_down_[static_cast<size_t>(node)]) {
      return Status::InvalidArgument("node " + std::to_string(node) + " is already down");
    }
    // Mark down first, under the same lock writers hold while planning:
    // every write from here on queues a hint instead of touching the dying
    // engines.
    node_down_[static_cast<size_t>(node)] = true;
  }
  // Already-planned legs re-check down-ness before applying, but a leg that
  // passed the check may still be inside the engine; wait it out so the
  // crash below never races an apply.
  Quiesce();
  OBS_COUNTER_INC("cluster.node.crashes");
  FaultInjector* fi = options_.fault_injector;
  Status first = Status::Ok();
  target->ForEachEngine([&](const std::string& table, StorageEngine* engine) {
    // The kCrash draw sizes this engine's torn commit-log tail. The
    // evaluation is counted (and, under a crash-schedule rate, tripped)
    // whether or not a rate is configured, so seeded runs replay exactly.
    uint64_t draw = 0;
    if (fi != nullptr) {
      (void)fi->Fire(FaultPoint::kCrash, "node=" + std::to_string(node) + " table=" + table,
                     &draw);
    }
    const Status s = engine->Crash(draw);
    if (first.ok() && !s.ok()) {
      first = s;
    }
  });
  target->cache()->Clear();  // node RAM is gone
  return first;
}

Status Cluster::RestartNode(int node) {
  Node* target = NodeAt(node);
  if (target == nullptr) {
    return Status::InvalidArgument("no such node: " + std::to_string(node));
  }
  if (NodeMembership(node) == MembershipState::kRemoved) {
    return Status::InvalidArgument("node " + std::to_string(node) + " is retired");
  }
  Quiesce();  // no leg may race the log replay below
  Status first = Status::Ok();
  target->ForEachEngine([&](const std::string& table, StorageEngine* engine) {
    (void)table;
    const Status s = engine->RecoverFromLog();
    if (first.ok() && !s.ok()) {
      first = s;
    }
  });
  OBS_COUNTER_INC("cluster.node.restarts");
  std::lock_guard<std::mutex> lock(down_mu_);
  node_down_[static_cast<size_t>(node)] = false;
  ReplayHintsLocked(node);
  return first;
}

bool Cluster::NodeReplicates(int node, std::string_view partition) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  const std::vector<int> ids = ring_.Replicas(partition, options_.replication_factor);
  if (std::find(ids.begin(), ids.end(), node) != ids.end()) {
    return true;
  }
  // A node gaining the partition under an open topology window counts too:
  // scrub's rebuild must not discard ranges mid-stream to a joining node.
  if (pending_ring_.has_value()) {
    const std::vector<int> next = pending_ring_->Replicas(partition, options_.replication_factor);
    return std::find(next.begin(), next.end(), node) != next.end();
  }
  return false;
}

size_t Cluster::RebuildRangeFromPeers(int node, const std::string& table, StorageEngine* engine,
                                      const QuarantinedRange& range) {
  std::map<std::string, Row> merged;
  for (Node* peer : SnapshotNodes()) {
    if (peer->id() == node || IsNodeDown(peer->id())) {
      continue;
    }
    StorageEngine* source = peer->FindEngine(table);
    if (source == nullptr) {
      continue;
    }
    // A corrupt block on a source fails that peer's scan before it emits
    // anything; the remaining peers fill in. Rows stream raw (timestamps and
    // tombstones intact) so the LWW re-apply below is idempotent.
    (void)source->ScanEncodedForRepair(
        range.smallest, range.largest, [&](std::string_view key, const Row& row) {
          auto decoded = DecodeRowKey(key);
          if (!decoded.ok() || !NodeReplicates(node, decoded->partition)) {
            // The peer's key range overlaps partitions this node never
            // replicates; streaming those would grow the node unboundedly.
            return;
          }
          merged[std::string(key)].MergeNewer(row);
        });
  }
  size_t rows = 0;
  for (const auto& [key, row] : merged) {
    if (engine->ApplyEncoded(key, row).ok()) {
      ++rows;
    }
  }
  return rows;
}

Result<size_t> Cluster::ScrubNode(int node) {
  Node* target = NodeAt(node);
  if (target == nullptr) {
    return Status::InvalidArgument("no such node: " + std::to_string(node));
  }
  if (IsNodeDown(node)) {
    return Status::Unavailable("cannot scrub node " + std::to_string(node) + " while down");
  }
  Quiesce();  // scrub rebuilds from peer scans; settle in-flight writes
  OBS_SPAN("cluster.scrub_node");
  size_t blocks_rebuilt = 0;
  Status first = Status::Ok();
  target->ForEachEngine([&](const std::string& table, StorageEngine* engine) {
    std::vector<QuarantinedRange> ranges;
    const Status s = engine->Scrub(&ranges);
    if (!s.ok()) {
      if (first.ok()) {
        first = s;
      }
      return;
    }
    // Rebuild each quarantined range from healthy peers BEFORE dropping the
    // corrupt tables: the replica keeps answering for every row it acked.
    for (const QuarantinedRange& range : ranges) {
      const size_t rows = RebuildRangeFromPeers(node, table, engine, range);
      OBS_COUNTER_ADD("scrub.rows_restreamed", rows);
      OBS_COUNTER_ADD("scrub.blocks_rebuilt", range.blocks);
      blocks_rebuilt += range.blocks;
    }
    engine->DropQuarantined();
  });
  MC_RETURN_IF_ERROR(first);
  return blocks_rebuilt;
}

Status Cluster::AntiEntropyRepair(std::string_view table_name) {
  Quiesce();  // compare settled replica state, not mid-flight legs
  OBS_SPAN("cluster.anti_entropy");
  const std::string table(table_name);
  bool server_compression = false;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::InvalidArgument("no such table: " + table);
    }
    server_compression = it->second;
  }

  // Snapshot every up replica's raw rows (timestamps, tombstones, and
  // partition-tombstone markers included — anti-entropy must converge
  // deletes too, or a missed tombstone resurrects data).
  // Snapshot the node set and ring once: anti-entropy runs under a settled
  // topology (topology ops Quiesce around flips), and a consistent snapshot
  // keeps the replica sets stable across the whole pass.
  const std::vector<Node*> all_nodes = SnapshotNodes();
  const HashRing ring = RingSnapshot();
  const std::string hi(96, '\xff');
  std::map<int, std::map<std::string, Row>> rows_by_node;
  for (Node* node : all_nodes) {
    if (IsNodeDown(node->id())) {
      continue;
    }
    StorageEngine* engine = node->FindEngine(table);
    if (engine == nullptr) {
      continue;  // replica never saw a write; treated as empty below
    }
    auto& rows = rows_by_node[node->id()];
    (void)engine->ScanEncodedForRepair("", hi, [&](std::string_view key, const Row& row) {
      rows[std::string(key)] = row;
    });
  }

  // The partition universe is the union across replicas: a partition one
  // replica lost entirely still shows up via the others.
  std::set<std::string> partitions;
  for (const auto& [id, rows] : rows_by_node) {
    (void)id;
    for (const auto& [key, row] : rows) {
      (void)row;
      auto decoded = DecodeRowKey(key);
      if (decoded.ok()) {
        partitions.insert(std::string(decoded->partition));
      }
    }
  }

  constexpr size_t kLeaves = 16;  // 4-level hash tree per partition
  struct Replica {
    int id = 0;
    StorageEngine* engine = nullptr;
    std::array<std::vector<const std::pair<const std::string, Row>*>, kLeaves> buckets;
    std::array<uint64_t, kLeaves> leaf{};
    uint64_t root = 0;
  };
  for (const std::string& partition : partitions) {
    OBS_COUNTER_INC("repair.partitions_checked");
    std::vector<Replica> replicas;
    for (int id : ring.Replicas(partition, options_.replication_factor)) {
      if (IsNodeDown(id)) {
        continue;
      }
      Replica r;
      r.id = id;
      // EngineFor (not FindEngine): a replica that never saw a write still
      // participates — everything it is missing streams to it below.
      r.engine = all_nodes[static_cast<size_t>(id)]->EngineFor(table, server_compression);
      replicas.push_back(std::move(r));
    }
    if (replicas.size() < 2) {
      continue;  // nothing to compare against
    }

    // Build each replica's tree: rows bucket by key hash into the leaves,
    // leaf hashes fold (key, row content) in key order, interior nodes fold
    // pairwise up to the root.
    const std::string prefix = PartitionPrefix(partition);
    for (Replica& r : replicas) {
      auto rows_it = rows_by_node.find(r.id);
      if (rows_it != rows_by_node.end()) {
        for (auto it = rows_it->second.lower_bound(prefix);
             it != rows_it->second.end() && it->first.compare(0, prefix.size(), prefix) == 0;
             ++it) {
          r.buckets[Fnv1a64(it->first) % kLeaves].push_back(&*it);
        }
      }
      for (size_t leaf = 0; leaf < kLeaves; ++leaf) {
        uint64_t h = 0;
        for (const auto* entry : r.buckets[leaf]) {
          h = HashCombine(h, Fnv1a64(entry->first));
          h = HashCombine(h, RowContentHash(entry->second));
        }
        r.leaf[leaf] = h;
      }
      std::array<uint64_t, kLeaves> level = r.leaf;
      for (size_t width = kLeaves; width > 1; width /= 2) {
        for (size_t j = 0; j < width / 2; ++j) {
          level[j] = HashCombine(level[2 * j], level[2 * j + 1]);
        }
      }
      r.root = level[0];
    }

    // Converged replicas exchange one root hash and nothing else.
    OBS_COUNTER_INC("repair.ranges_compared");
    bool all_equal = true;
    for (size_t i = 1; i < replicas.size(); ++i) {
      all_equal = all_equal && replicas[i].root == replicas[0].root;
    }
    if (all_equal) {
      continue;
    }

    // Descend: only leaves whose hashes differ across some replica pair
    // stream rows.
    for (size_t leaf = 0; leaf < kLeaves; ++leaf) {
      OBS_COUNTER_INC("repair.ranges_compared");
      bool differs = false;
      for (size_t i = 1; i < replicas.size(); ++i) {
        differs = differs || replicas[i].leaf[leaf] != replicas[0].leaf[leaf];
      }
      if (!differs) {
        continue;
      }
      OBS_COUNTER_INC("repair.ranges_diverged");
      std::map<std::string, Row> merged;
      for (const Replica& r : replicas) {
        for (const auto* entry : r.buckets[leaf]) {
          merged[entry->first].MergeNewer(entry->second);
        }
      }
      for (const Replica& r : replicas) {
        const auto rows_it = rows_by_node.find(r.id);
        for (const auto& [key, row] : merged) {
          if (rows_it != rows_by_node.end()) {
            auto have = rows_it->second.find(key);
            if (have != rows_it->second.end() && !RowNeedsRepair(have->second, row)) {
              continue;
            }
          }
          if (r.engine->ApplyEncoded(key, row).ok()) {
            OBS_COUNTER_INC("repair.rows_streamed");
          }
        }
      }
    }
  }
  return Status::Ok();
}

Result<Row> Cluster::Read(std::string_view table, std::string_view partition,
                          std::string_view clustering) {
  ScopedSpan read_span(ReadLatencyFor(options_.consistency));
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  Row merged;
  bool found = false;
  if (options_.consistency == Consistency::kQuorum) {
    FaultInjector* fi = options_.fault_injector;
    const size_t ask = engines.size() / 2 + 1;
    const std::vector<size_t> live = LiveIndexes(replicas);
    size_t votes = 0;
    std::vector<size_t> contacted;
    for (size_t idx : live) {
      if (votes == ask) {
        break;
      }
      if (fi != nullptr && fi->Fire(FaultPoint::kMediaReadError, table)) {
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      auto row = engines[idx]->Get(partition, clustering);
      if (!row.ok() && !row.status().IsNotFound()) {
        // Corruption: replica-local failure, no vote, fail over.
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      if (votes > 0) {
        ChargeRtt(1);  // extra replica hop under QUORUM
      }
      ++votes;
      contacted.push_back(idx);
      if (row.ok()) {
        merged.MergeNewer(*row);
        found = true;
      }
    }
    if (votes < ask) {
      OBS_COUNTER_INC("cluster.read.unavailable");
      return Status::Unavailable("quorum read got " + std::to_string(votes) + "/" +
                                 std::to_string(ask) + " votes");
    }
    if (found &&
        RepairContacted(table, replicas, engines, contacted, partition, clustering, merged) < ask) {
      OBS_COUNTER_INC("cluster.read.unavailable");
      return Status::Unavailable("read repair could not restore a quorum");
    }
  } else {
    const Status s = ReadOne(table, replicas, engines, [&](StorageEngine* engine) {
      auto row = engine->Get(partition, clustering);
      if (row.ok()) {
        merged = std::move(*row);
        found = true;
      }
      return row.status();
    });
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  if (!found) {
    return Status::NotFound();
  }
  size_t bytes = 0;
  for (const auto& [name, cell] : merged.cells) {
    bytes += cell.value.size();
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return merged;
}

Result<std::pair<std::string, Row>> Cluster::ReadFloor(std::string_view table,
                                                       std::string_view partition,
                                                       std::string_view clustering) {
  ScopedSpan read_span(ReadLatencyFor(options_.consistency));
  OBS_SPAN("cluster.read_floor");
  MC_ASSIGN_OR_RETURN(auto floor, ReadFloorInternal(table, partition, clustering));
  size_t bytes = 0;
  for (const auto& [name, cell] : floor.second.cells) {
    bytes += cell.value.size();
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return floor;
}

Result<std::pair<std::string, std::string>> Cluster::ReadFloorCell(std::string_view table,
                                                                   std::string_view partition,
                                                                   std::string_view clustering,
                                                                   std::string_view column) {
  ScopedSpan read_span(ReadLatencyFor(options_.consistency));
  OBS_SPAN("cluster.read_floor.version");
  MC_ASSIGN_OR_RETURN(auto floor, ReadFloorInternal(table, partition, clustering));
  auto cell = floor.second.cells.find(std::string(column));
  if (cell == floor.second.cells.end() || cell->second.tombstone) {
    return Status::NotFound("floor row lacks column " + std::string(column));
  }
  // Only the floor key and the requested cell cross the wire — that is the
  // whole point of the probe.
  const size_t bytes = floor.first.size() + cell->second.value.size();
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return std::make_pair(std::move(floor.first), std::move(cell->second.value));
}

Result<std::pair<std::string, Row>> Cluster::ReadFloorInternal(std::string_view table,
                                                               std::string_view partition,
                                                               std::string_view clustering) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  std::string floor_id;
  Row merged;
  if (options_.consistency == Consistency::kQuorum) {
    // Per-replica floors can disagree when a replica missed the insert of a
    // newer pack (it still holds a hint): take the largest floor across a
    // quorum, merge that row across the contacted replicas, and read-repair
    // the stale ones — a floor that silently fell back to an older pack
    // would route the client to stale data.
    FaultInjector* fi = options_.fault_injector;
    const size_t ask = engines.size() / 2 + 1;
    const std::vector<size_t> live = LiveIndexes(replicas);
    size_t votes = 0;
    std::vector<size_t> contacted;
    bool found = false;
    for (size_t idx : live) {
      if (votes == ask) {
        break;
      }
      if (fi != nullptr && fi->Fire(FaultPoint::kMediaReadError, table)) {
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      auto result = engines[idx]->Floor(partition, clustering);
      if (!result.ok() && !result.status().IsNotFound()) {
        // Corruption: replica-local failure, no vote, fail over.
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      if (votes > 0) {
        ChargeRtt(1);  // extra replica hop under QUORUM
      }
      ++votes;
      contacted.push_back(idx);
      if (result.ok() && (!found || result->first > floor_id)) {
        floor_id = result->first;
        found = true;
      }
    }
    if (votes < ask) {
      OBS_COUNTER_INC("cluster.read.unavailable");
      return Status::Unavailable("quorum floor read got " + std::to_string(votes) + "/" +
                                 std::to_string(ask) + " votes");
    }
    if (!found) {
      return Status::NotFound();
    }
    for (size_t idx : contacted) {
      auto row = engines[idx]->Get(partition, floor_id);
      if (row.ok()) {
        merged.MergeNewer(*row);
      }
      // NotFound (stale replica) and Corruption both contribute nothing;
      // RepairContacted below restores them from the merged copy.
    }
    if (RepairContacted(table, replicas, engines, contacted, partition, floor_id, merged) < ask) {
      OBS_COUNTER_INC("cluster.read.unavailable");
      return Status::Unavailable("floor read repair could not restore a quorum");
    }
  } else {
    const Status s = ReadOne(table, replicas, engines, [&](StorageEngine* engine) {
      auto result = engine->Floor(partition, clustering);
      if (result.ok()) {
        floor_id = result->first;
        merged = std::move(result->second);
      }
      return result.status();
    });
    MC_RETURN_IF_ERROR(s);  // NotFound propagates as NotFound
  }
  return std::make_pair(std::move(floor_id), std::move(merged));
}

Result<std::vector<std::pair<std::string, Row>>> Cluster::ReadRange(std::string_view table,
                                                                    std::string_view partition,
                                                                    std::string_view lo,
                                                                    std::string_view hi,
                                                                    size_t limit) {
  OBS_SPAN("cluster.read_range");
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::vector<StorageEngine*> engines;
  MC_ASSIGN_OR_RETURN(std::vector<Node*> replicas, ReplicasFor(table, partition, &engines));
  (void)replicas;
  ChargeRtt(1);

  std::vector<std::pair<std::string, Row>> out;
  if (options_.consistency == Consistency::kQuorum) {
    // Union the scans of a quorum, merging rows per clustering key, then
    // read-repair the contacted replicas so everything returned is durable
    // on a quorum (same rationale as Read/ReadFloor).
    FaultInjector* fi = options_.fault_injector;
    const size_t ask = engines.size() / 2 + 1;
    const std::vector<size_t> live = LiveIndexes(replicas);
    size_t votes = 0;
    std::vector<size_t> contacted;
    std::map<std::string, Row> merged;
    for (size_t idx : live) {
      if (votes == ask) {
        break;
      }
      if (fi != nullptr && fi->Fire(FaultPoint::kMediaReadError, table)) {
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      const Status s =
          engines[idx]->Scan(partition, lo, hi, limit, [&](std::string_view c, const Row& row) {
            merged[std::string(c)].MergeNewer(row);
            return true;
          });
      if (!s.ok()) {
        // Media error or Corruption mid-scan: the replica contributes no
        // vote (partial rows it merged are still valid LWW inputs).
        OBS_COUNTER_INC("cluster.read.replica_errors");
        continue;
      }
      if (votes > 0) {
        ChargeRtt(1);  // extra replica hop under QUORUM
      }
      ++votes;
      contacted.push_back(idx);
    }
    if (votes < ask) {
      OBS_COUNTER_INC("cluster.read.unavailable");
      return Status::Unavailable("quorum range read got " + std::to_string(votes) + "/" +
                                 std::to_string(ask) + " votes");
    }
    for (auto& [clustering, row] : merged) {
      if (RepairContacted(table, replicas, engines, contacted, partition, clustering, row) < ask) {
        OBS_COUNTER_INC("cluster.read.unavailable");
        return Status::Unavailable("range read repair could not restore a quorum");
      }
      out.emplace_back(clustering, std::move(row));
      if (limit != 0 && out.size() == limit) {
        break;
      }
    }
  } else {
    const Status s = ReadOne(table, replicas, engines, [&](StorageEngine* engine) {
      std::vector<std::pair<std::string, Row>> rows;
      const Status scan = engine->Scan(
          partition, lo, hi, limit, [&](std::string_view clustering, const Row& row) {
            rows.emplace_back(std::string(clustering), row);
            return true;
          });
      if (scan.ok()) {
        out = std::move(rows);
      }
      return scan;
    });
    MC_RETURN_IF_ERROR(s);
  }
  size_t bytes = 0;
  for (const auto& [clustering, row] : out) {
    for (const auto& [name, cell] : row.cells) {
      bytes += cell.value.size();
    }
  }
  stats_.bytes_to_client.fetch_add(bytes, std::memory_order_relaxed);
  ChargeTransfer(bytes);
  return out;
}

Status Cluster::DeletePartition(std::string_view table, std::string_view partition) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(ReplicaSet rs, ResolveReplicas(table, partition));
  ChargeRtt(1);
  const uint64_t ts = NextTimestamp();
  for (int attempt = 0;; ++attempt) {
    const Status s = ApplyToReplicas(table, rs, partition, "", Row{},
                                     RequiredAcks(rs.natural_engines.size()), ts);
    if (!IsTopologyAbort(s) || attempt >= 3) {
      return s;
    }
    OBS_COUNTER_INC("ring.topology_retries");
    MC_ASSIGN_OR_RETURN(rs, ResolveReplicas(table, partition));
  }
}

Status Cluster::DeleteRow(std::string_view table, std::string_view partition,
                          std::string_view clustering, const std::vector<std::string>& columns) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(ReplicaSet rs, ResolveReplicas(table, partition));
  ChargeRtt(1);
  Row tombstones;
  const uint64_t ts = NextTimestamp();
  for (const auto& column : columns) {
    tombstones.cells[column] = Cell{"", ts, true};
  }
  for (int attempt = 0;; ++attempt) {
    const Status s = ApplyToReplicas(table, rs, partition, clustering, tombstones,
                                     RequiredAcks(rs.natural_engines.size()));
    if (!IsTopologyAbort(s) || attempt >= 3) {
      return s;
    }
    OBS_COUNTER_INC("ring.topology_retries");
    MC_ASSIGN_OR_RETURN(rs, ResolveReplicas(table, partition));
  }
}

size_t Cluster::TableAtRestBytes(std::string_view table) {
  size_t bytes = 0;
  StorageEngine* engine = NodeAt(0)->FindEngine(table);
  if (engine != nullptr) {
    bytes = engine->AtRestBytes() + engine->MemtableBytes();
  }
  return bytes;
}

BlockCacheStats Cluster::CacheStats() const {
  BlockCacheStats out;
  for (Node* node : SnapshotNodes()) {
    const BlockCacheStats s = node->cache()->Stats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.bytes_used += s.bytes_used;
  }
  return out;
}

const MediaStats* Cluster::NodeMediaStats(int node) const {
  Node* target = NodeAt(node);
  return target == nullptr ? nullptr : &target->media()->stats();
}

Status Cluster::FlushAll() {
  Quiesce();  // flush everything, including writes whose legs are in flight
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& [name, compression] : tables_) {
      names.push_back(name);
    }
  }
  for (Node* node : SnapshotNodes()) {
    for (const auto& name : names) {
      StorageEngine* engine = node->FindEngine(name);
      if (engine != nullptr) {
        MC_RETURN_IF_ERROR(engine->Flush());
      }
    }
  }
  return Status::Ok();
}

void Cluster::WarmCaches(std::string_view table) {
  // Reads round-robin across replicas, so every replica's hot set is the full
  // table: warm everything everywhere (the mirrored-cache model — effective
  // cluster memory equals ONE node's cache, as with real RF=N replication).
  for (Node* node : SnapshotNodes()) {
    StorageEngine* engine = node->FindEngine(table);
    if (engine != nullptr) {
      engine->WarmCache();
    }
  }
}

Executor* Cluster::EnsureAsyncPool() {
  std::lock_guard<std::mutex> lock(async_pool_mu_);
  if (async_pool_ == nullptr) {
    Executor::Options pool;
    pool.threads = std::max(1, options_.async_api_threads);
    pool.queue_limit = std::max<size_t>(1, options_.async_queue_limit);
    pool.name = "cluster-async";
    async_pool_ = std::make_unique<Executor>(pool);
  }
  return async_pool_.get();
}

namespace {

// Export the pool's instantaneous shape as gauges. Set at submit and at
// completion (not via RegisterDerivedGauge: the registry outlives any one
// Cluster, and a derived gauge would dangle after the cluster dies).
void SetAsyncGauges(const Executor* pool) {
  OBS_GAUGE_SET("cluster.async.queue_depth", static_cast<int64_t>(pool->QueueDepth()));
  OBS_GAUGE_SET("cluster.async.inflight", static_cast<int64_t>(pool->InFlight()));
}

}  // namespace

void Cluster::AsyncMutate(std::string_view table, std::string_view partition,
                          std::string_view clustering, const Row& update, WriteCallback done) {
  Executor* pool = EnsureAsyncPool();
  // The callback lives in a shared_ptr so a rejected TrySubmit (which
  // destroys the task lambda) cannot destroy it before we invoke it.
  auto cb = std::make_shared<WriteCallback>(std::move(done));
  OBS_COUNTER_INC("cluster.async.submitted");
  const bool admitted = pool->TrySubmit([this, pool, cb, table = std::string(table),
                                         partition = std::string(partition),
                                         clustering = std::string(clustering), update]() {
    Status s = Write(table, partition, clustering, update);
    OBS_COUNTER_INC("cluster.async.completed");
    SetAsyncGauges(pool);
    (*cb)(std::move(s));
  });
  SetAsyncGauges(pool);
  if (!admitted) {
    OBS_COUNTER_INC("cluster.async.rejected");
    (*cb)(Status::Unavailable("async pipeline at capacity"));
  }
}

void Cluster::AsyncReadFloorCell(std::string_view table, std::string_view partition,
                                 std::string_view clustering, std::string_view column,
                                 ReadFloorCellCallback done) {
  Executor* pool = EnsureAsyncPool();
  auto cb = std::make_shared<ReadFloorCellCallback>(std::move(done));
  OBS_COUNTER_INC("cluster.async.submitted");
  const bool admitted = pool->TrySubmit([this, pool, cb, table = std::string(table),
                                         partition = std::string(partition),
                                         clustering = std::string(clustering),
                                         column = std::string(column)]() {
    auto result = ReadFloorCell(table, partition, clustering, column);
    OBS_COUNTER_INC("cluster.async.completed");
    SetAsyncGauges(pool);
    (*cb)(std::move(result));
  });
  SetAsyncGauges(pool);
  if (!admitted) {
    OBS_COUNTER_INC("cluster.async.rejected");
    (*cb)(Status::Unavailable("async pipeline at capacity"));
  }
}

void Cluster::AsyncGetRange(std::string_view table, std::string_view partition,
                            std::string_view lo, std::string_view hi, size_t limit,
                            GetRangeCallback done) {
  Executor* pool = EnsureAsyncPool();
  auto cb = std::make_shared<GetRangeCallback>(std::move(done));
  OBS_COUNTER_INC("cluster.async.submitted");
  const bool admitted = pool->TrySubmit([this, pool, cb, table = std::string(table),
                                         partition = std::string(partition),
                                         lo = std::string(lo), hi = std::string(hi), limit]() {
    auto result = ReadRange(table, partition, lo, hi, limit);
    OBS_COUNTER_INC("cluster.async.completed");
    SetAsyncGauges(pool);
    (*cb)(std::move(result));
  });
  SetAsyncGauges(pool);
  if (!admitted) {
    OBS_COUNTER_INC("cluster.async.rejected");
    (*cb)(Status::Unavailable("async pipeline at capacity"));
  }
}

std::future<Status> Cluster::AsyncMutate(std::string_view table, std::string_view partition,
                                         std::string_view clustering, const Row& update) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();
  AsyncMutate(table, partition, clustering, update,
              [promise](Status s) { promise->set_value(std::move(s)); });
  return future;
}

std::future<Result<std::pair<std::string, std::string>>> Cluster::AsyncReadFloorCell(
    std::string_view table, std::string_view partition, std::string_view clustering,
    std::string_view column) {
  auto promise = std::make_shared<std::promise<Result<std::pair<std::string, std::string>>>>();
  auto future = promise->get_future();
  AsyncReadFloorCell(table, partition, clustering, column,
                     [promise](Result<std::pair<std::string, std::string>> r) {
                       promise->set_value(std::move(r));
                     });
  return future;
}

std::future<Result<std::vector<std::pair<std::string, Row>>>> Cluster::AsyncGetRange(
    std::string_view table, std::string_view partition, std::string_view lo,
    std::string_view hi, size_t limit) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<std::pair<std::string, Row>>>>>();
  auto future = promise->get_future();
  AsyncGetRange(table, partition, lo, hi, limit,
                [promise](Result<std::vector<std::pair<std::string, Row>>> r) {
                  promise->set_value(std::move(r));
                });
  return future;
}

void Cluster::ResetPerfCounters() {
  stats_.reads = 0;
  stats_.writes = 0;
  stats_.lwt_attempts = 0;
  stats_.lwt_failures = 0;
  stats_.bytes_to_client = 0;
  stats_.bytes_from_client = 0;
  for (Node* node : SnapshotNodes()) {
    node->media()->ResetStats();
  }
}

}  // namespace minicrypt
