#include "src/kvstore/memtable.h"

namespace minicrypt {

void Memtable::Apply(std::string_view encoded_key, const Row& update) {
  auto it = entries_.find(encoded_key);
  if (it == entries_.end()) {
    auto [pos, inserted] = entries_.emplace(std::string(encoded_key), update);
    approx_bytes_ += encoded_key.size() + pos->second.ApproxBytes();
    return;
  }
  const size_t before = it->second.ApproxBytes();
  it->second.MergeNewer(update);
  approx_bytes_ += it->second.ApproxBytes() - before;
}

const Row* Memtable::Get(std::string_view encoded_key) const {
  auto it = entries_.find(encoded_key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<std::string_view> Memtable::FloorKey(std::string_view prefix,
                                                   std::string_view encoded_key) const {
  auto it = entries_.upper_bound(encoded_key);
  if (it == entries_.begin()) {
    return std::nullopt;
  }
  --it;
  const std::string_view key = it->first;
  if (key.size() < prefix.size() || key.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  return key;
}

void Memtable::Clear() {
  entries_.clear();
  approx_bytes_ = 0;
}

}  // namespace minicrypt
