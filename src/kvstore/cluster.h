// The distributed key-value store: nodes, replication, coordinator logic,
// lightweight transactions, and the network latency model. This is the
// "unmodified key-value store" MiniCrypt layers on (paper §2.5.1): it offers
// a sorted clustering index and single-row conditional updates, nothing more.

#ifndef MINICRYPT_SRC_KVSTORE_CLUSTER_H_
#define MINICRYPT_SRC_KVSTORE_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/executor.h"
#include "src/common/status.h"
#include "src/common/thread_util.h"
#include "src/kvstore/block_cache.h"
#include "src/kvstore/fault_injector.h"
#include "src/kvstore/media.h"
#include "src/kvstore/ring.h"
#include "src/kvstore/row.h"
#include "src/kvstore/storage_engine.h"

namespace minicrypt {

enum class Consistency { kOne, kQuorum };

// Condition of a lightweight transaction (single-row "UPDATE ... IF").
struct LwtCondition {
  enum class Kind {
    kNotExists,    // INSERT ... IF NOT EXISTS
    kCellEquals,   // UPDATE ... IF column = value
    kRowExists,    // UPDATE ... IF EXISTS
  };
  Kind kind = Kind::kNotExists;
  std::string column;
  std::string value;

  static LwtCondition NotExists() { return {Kind::kNotExists, "", ""}; }
  static LwtCondition CellEquals(std::string column, std::string value) {
    return {Kind::kCellEquals, std::move(column), std::move(value)};
  }
  static LwtCondition RowExists() { return {Kind::kRowExists, "", ""}; }
};

struct ClusterOptions {
  int node_count = 3;
  int replication_factor = 3;
  Consistency consistency = Consistency::kOne;
  int vnodes = 16;

  // Network model (all scaled by latency_scale).
  uint64_t rtt_micros = 300;          // client <-> coordinator round trip
  uint64_t replica_hop_micros = 150;  // coordinator <-> replica (when remote)
  int lwt_extra_round_trips = 3;      // Paxos prepare/propose/commit overhead
  double network_bytes_per_micro = 120.0;  // ~120 MB/s client link
  double latency_scale = 1.0;

  // Per-node storage.
  StorageEngineOptions engine;
  size_t block_cache_bytes = 64 * 1024 * 1024;
  // Media factory result is owned by the node; nullptr profile = NullMedia.
  std::optional<MediaProfile> media;  // nullopt -> zero-latency NullMedia

  Clock* clock = SystemClock::Get();

  // Optional deterministic fault injector (not owned; must outlive the
  // cluster). Consulted at every fault point: replica reads/writes, media
  // latency, commit-log appends, LWT acks, node flaps, and LWW clock skew.
  FaultInjector* fault_injector = nullptr;

  // --- Async pipeline (docs/CONCURRENCY.md) ----------------------------------

  // Workers for concurrent replica fan-out: a QUORUM write issues all RF
  // replica legs at once and returns on the quorum'th ack. 0 = synchronous
  // fan-out on the coordinator thread in replica order — required for
  // seed-exact replay of engine-level fault ordinals (docs/TESTING.md).
  // The pool is only created when replication_factor > 1.
  int replica_fanout_threads = 4;

  // Workers + queue bound for the Async* entry points (AsyncMutate,
  // AsyncReadFloorCell, AsyncGetRange). The pool is created lazily on first
  // Async* call; when its queue is full, submissions complete immediately
  // with Unavailable ("async pipeline at capacity") — bounded admission is
  // the overload policy, mirroring a real coordinator shedding load.
  int async_api_threads = 8;
  size_t async_queue_limit = 4096;

  // Zero-latency, single-node profile for unit tests.
  static ClusterOptions ForTest();
};

// Per-node position in the persisted membership state machine
// (docs/ARCHITECTURE.md "Ring membership"). Forward transitions:
//   bootstrap:    kJoining -> kStreaming -> kServing
//   decommission: kServing -> kLeaving -> kDrained -> kRemoved
// Every edge is gated on a persisted record (the kTopologyPersist fault
// point), so a crash between edges resumes from the last persisted state.
enum class MembershipState {
  kServing,    // full ring member
  kJoining,    // node object exists, tokens planned, not yet streaming
  kStreaming,  // pending ring active; ranges streaming in, writes dual-applied
  kLeaving,    // pending ring active; ranges streaming out, writes dual-applied
  kDrained,    // ownership flipped away; node holds no ranges, not yet retired
  kRemoved,    // retired: permanently down, hints dropped, slot kept for id stability
};

// Introspection snapshot of the (at most one) in-flight topology change.
struct TopologyStatus {
  enum class Kind { kNone, kBootstrap, kDecommission, kRebalance };
  // Streaming stage progression; a crash at any stage resumes idempotently.
  enum class Stage { kPlanned, kStreaming, kFlipped };
  bool inflight = false;
  Kind kind = Kind::kNone;
  int node = -1;        // bootstrap/decommission subject (-1 for rebalance)
  Stage stage = Stage::kPlanned;
  size_t token_moves = 0;  // rebalance: tokens scheduled to move
};

struct ClusterStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> lwt_attempts{0};
  std::atomic<uint64_t> lwt_failures{0};
  std::atomic<uint64_t> bytes_to_client{0};
  std::atomic<uint64_t> bytes_from_client{0};
};

class Node;

// One logical table spread over the cluster. Obtained from Cluster::CreateTable.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates (or returns) a table. `server_compression` enables at-rest block
  // compression for this table's SSTables on every node.
  Status CreateTable(std::string_view name, bool server_compression = false);
  Status DropTable(std::string_view name);

  // --- Data path (used by KvSession; all charge the network model) ----------

  Status Write(std::string_view table, std::string_view partition,
               std::string_view clustering, const Row& update);

  // Single-row LWT: evaluates `condition` against the current row under the
  // partition's Paxos lock and applies `update` to every replica when true.
  // Returns ConditionFailed (with the current row in *current, when non-null)
  // otherwise.
  Status WriteIf(std::string_view table, std::string_view partition,
                 std::string_view clustering, const Row& update, const LwtCondition& condition,
                 Row* current = nullptr);

  Result<Row> Read(std::string_view table, std::string_view partition,
                   std::string_view clustering);

  // Largest clustering <= `clustering` (the "ORDER BY packID DESC LIMIT 1"
  // primitive). NotFound when the partition has no row at or below it.
  Result<std::pair<std::string, Row>> ReadFloor(std::string_view table,
                                                std::string_view partition,
                                                std::string_view clustering);

  // Version probe: same floor routing as ReadFloor, but ships only the named
  // column of the floor row back to the client instead of the whole row.
  // Returns (floor clustering key, cell value). Clients use this to
  // revalidate a cached pack — the "h" envelope-hash cell is ~40 bytes while
  // the envelope itself can be tens of KB. NotFound when the partition has no
  // floor row or the floor row lacks the column.
  Result<std::pair<std::string, std::string>> ReadFloorCell(std::string_view table,
                                                            std::string_view partition,
                                                            std::string_view clustering,
                                                            std::string_view column);

  // Ascending scan of lo <= clustering <= hi. limit 0 = unbounded.
  Result<std::vector<std::pair<std::string, Row>>> ReadRange(std::string_view table,
                                                             std::string_view partition,
                                                             std::string_view lo,
                                                             std::string_view hi,
                                                             size_t limit = 0);

  // Deletes a whole partition (one tombstone marker; models Cassandra's
  // partition delete used for APPEND-mode epoch drops).
  Status DeletePartition(std::string_view table, std::string_view partition);

  // Deletes the named cells of one row (tombstones).
  Status DeleteRow(std::string_view table, std::string_view partition,
                   std::string_view clustering, const std::vector<std::string>& columns);

  // --- Async data path ---------------------------------------------------------
  //
  // The same request pipeline as the synchronous calls, executed on the
  // cluster's coordinator pool: the callback fires exactly once, from a pool
  // thread (or inline, with Unavailable, when the bounded queue is full).
  // The synchronous methods above are the blocking equivalents — same
  // pipeline body, run on the caller's thread. See docs/CONCURRENCY.md.

  using WriteCallback = std::function<void(Status)>;
  using ReadFloorCellCallback =
      std::function<void(Result<std::pair<std::string, std::string>>)>;
  using GetRangeCallback =
      std::function<void(Result<std::vector<std::pair<std::string, Row>>>)>;

  // Async Write (LWW mutate). Callback receives the write status.
  void AsyncMutate(std::string_view table, std::string_view partition,
                   std::string_view clustering, const Row& update, WriteCallback done);

  // Async ReadFloorCell (the version-probe primitive clients poll with).
  void AsyncReadFloorCell(std::string_view table, std::string_view partition,
                          std::string_view clustering, std::string_view column,
                          ReadFloorCellCallback done);

  // Async ReadRange.
  void AsyncGetRange(std::string_view table, std::string_view partition, std::string_view lo,
                     std::string_view hi, size_t limit, GetRangeCallback done);

  // Future overloads of the same entry points.
  std::future<Status> AsyncMutate(std::string_view table, std::string_view partition,
                                  std::string_view clustering, const Row& update);
  std::future<Result<std::pair<std::string, std::string>>> AsyncReadFloorCell(
      std::string_view table, std::string_view partition, std::string_view clustering,
      std::string_view column);
  std::future<Result<std::vector<std::pair<std::string, Row>>>> AsyncGetRange(
      std::string_view table, std::string_view partition, std::string_view lo,
      std::string_view hi, size_t limit = 0);

  // Blocks until every in-flight replica leg has completed. A quorum write
  // returns on the quorum'th ack while straggler legs finish in the
  // background; audits and topology changes call this first so they never
  // observe (or mutate) mid-flight state.
  void Quiesce();

  // --- Elastic topology (docs/ARCHITECTURE.md "Ring membership") ---------------
  //
  // At most one topology change runs at a time; all three are synchronous,
  // crash-resumable (every state edge is gated on a persisted membership
  // record — the kTopologyPersist fault point), and safe under live traffic:
  // while a pending ring is active, writes dual-apply to natural + pending
  // owners with required_acks = quorum(natural) + |pending|, so no acked
  // write is orphaned by the ownership flip.

  // Adds a node online: plants its vnode tokens in a pending ring, streams
  // the ranges it will own from existing replicas (ScanEncodedForRepair),
  // drains hints, then atomically flips it to serving. Returns the new node
  // id. On error the transition parks at its last persisted state; call
  // ResumeTopology to continue or CancelTopology to roll back.
  Result<int> BootstrapNode();

  // Removes a serving node online: streams the ranges other nodes gain to
  // them, flips ownership away (kDrained), then retires the node (kRemoved:
  // permanently down, hints dropped; the slot stays so node ids are stable).
  // InvalidArgument when removal would leave fewer serving nodes than the
  // replication factor.
  Status DecommissionNode(int node);

  // Load-aware rebalance: surveys per-partition sizes across serving nodes
  // (StorageEngine::PartitionSizes, exported as ring.node_bytes gauges) and
  // moves up to `max_moves` vnode tokens from hot to cold nodes through the
  // same pending-ring streaming window. Returns tokens moved (0 when the
  // ring is already balanced within 20%).
  Result<size_t> RebalanceTokens(size_t max_moves = 4);

  // Continues the in-flight topology change from its last persisted stage
  // (idempotent re-streaming; LWW makes replayed rows harmless). Ok when
  // nothing is in flight.
  Status ResumeTopology();

  // Rolls back an in-flight change that has not flipped ownership yet: the
  // pending ring is discarded; a joining node is retired, a leaving node
  // returns to serving. InvalidArgument after the flip (resume instead).
  Status CancelTopology();

  MembershipState NodeMembership(int node) const;
  std::vector<int> ServingNodes() const;
  TopologyStatus Topology() const;
  // Total node slots ever created (including retired ones).
  size_t NodeCount() const;
  // Copy of the natural ring (tests audit token ownership through this).
  HashRing RingSnapshot() const;

  // --- Fault injection / fault tolerance ---------------------------------------
  //
  // Models node outages with hinted handoff, Cassandra-style: writes while a
  // replica is down are queued as hints and replayed when it returns; reads
  // and LWTs are served by the remaining replicas. MiniCrypt inherits this
  // fault tolerance from the substrate (paper §2.5.1).

  void SetNodeDown(int node, bool down);
  bool IsNodeDown(int node) const;
  // Hints waiting for a node (introspection for tests).
  size_t PendingHints(int node) const;

  // One step of injector-driven chaos: draws the kNodeFlap point and, when it
  // fires, toggles a deterministically chosen node — never taking down a
  // majority, so quorum operations stay possible. Chaos harnesses call this
  // between operations.
  void ChaosTick();

  // Brings every node back up (replaying its hints on the way).
  void HealAllNodes();

  // --- Crash / restart / scrub / anti-entropy ----------------------------------

  // Crashes the node process: it leaves the ring (writes queue hints), its
  // memtables and block cache vanish, and each commit log loses a seeded
  // fraction of its un-fsynced tail — possibly torn mid-record. The tear
  // sizes come from the kCrash fault-point draw stream, so a crash schedule
  // replays exactly from its seed. InvalidArgument when already down.
  Status CrashNode(int node);

  // Restart after CrashNode (or any down period): replays each engine's
  // commit log (truncating the suspect tail), rejoins the ring, and drains
  // the hints that accumulated while the node was gone.
  Status RestartNode(int node);

  // Scrubs every table replica on the node: verifies all SSTable checksums,
  // re-streams the key ranges of corrupt tables from healthy peer replicas
  // (ring-filtered, LWW-idempotent), then drops the corrupt tables from the
  // read set. Rebuild happens *before* the drop, so the replica never stops
  // answering for rows it acked. Returns the number of blocks rebuilt.
  Result<size_t> ScrubNode(int node);

  // Merkle-style anti-entropy for one table: per partition, each up replica
  // builds a bucket hash tree over its raw rows (timestamps and tombstones
  // included); replicas whose roots agree exchange nothing, and only the
  // rows of differing leaf ranges are streamed and LWW-merged. This is the
  // background convergence pass Cassandra runs as `nodetool repair`.
  Status AntiEntropyRepair(std::string_view table);

  // Drains every hint queue, including hints parked for live nodes whose
  // apply failed under injected faults. Call after healing to quiesce.
  void ReplayAllHints();

  // --- Chaos-harness introspection ---------------------------------------------

  // Node ids holding a replica of `partition` (ring order).
  std::vector<int> ReplicaNodesFor(std::string_view partition) const;

  // Every visible row of `partition` on one node's replica, bypassing the
  // coordinator (no latency charges, no failover) — invariant checks compare
  // these across replicas.
  Result<std::vector<std::pair<std::string, Row>>> DebugPartitionRows(
      int node, std::string_view table, std::string_view partition);

  // --- Introspection ----------------------------------------------------------

  const ClusterStats& stats() const { return stats_; }
  // Aggregate at-rest bytes for a table across one replica set (node 0's copy).
  size_t TableAtRestBytes(std::string_view table);
  BlockCacheStats CacheStats() const;
  const MediaStats* NodeMediaStats(int node) const;
  // Forces memtable flushes everywhere (benches call this after preload).
  Status FlushAll();
  // Warms every node's block cache with `table`'s blocks (benchmark stand-in
  // for the paper's 5-10 minute warmup runs).
  void WarmCaches(std::string_view table);
  void ResetPerfCounters();

  uint64_t NextTimestamp() { return timestamp_.fetch_add(1, std::memory_order_relaxed) + 1; }

  const ClusterOptions& options() const { return options_; }

 private:
  friend class KvSession;

  struct PaxosShard;
  struct ReplicaFanout;  // shared state of one write's concurrent replica legs

  // One partition's resolved write targets under the current topology: the
  // natural set (current ring) plus pending endpoints — nodes that gain the
  // partition under the in-flight topology change. `epoch` is the topology
  // epoch the resolution was taken at; ApplyToReplicas re-validates it under
  // down_mu_ and aborts (retryably) when an ownership flip raced the write.
  struct ReplicaSet {
    std::vector<Node*> natural;
    std::vector<StorageEngine*> natural_engines;
    std::vector<Node*> pending;
    std::vector<StorageEngine*> pending_engines;
    uint64_t epoch = 0;
  };

  // The one in-flight topology change (persisted alongside membership_).
  struct TopologyOp {
    TopologyStatus::Kind kind = TopologyStatus::Kind::kNone;
    int node = -1;
    TopologyStatus::Stage stage = TopologyStatus::Stage::kPlanned;
    size_t token_moves = 0;
  };

  void ChargeRtt(int round_trips);
  void ChargeTransfer(size_t bytes);

  Result<ReplicaSet> ResolveReplicas(std::string_view table, std::string_view partition);

  Result<std::vector<Node*>> ReplicasFor(std::string_view table, std::string_view partition,
                                         std::vector<StorageEngine*>* engines);

  // nodes_ accessors that take ring_mu_ shared (the vector grows under the
  // exclusive lock during bootstrap; holding either ring_mu_ or down_mu_
  // makes reads safe — growth holds both).
  Node* NodeAt(int node) const;
  std::vector<Node*> SnapshotNodes() const;

  std::unique_ptr<Node> MakeNode(int id);

  // --- Topology internals (topology_mu_ held by all callers) -----------------

  // The persisted-membership write barrier: models committing the membership
  // record to the system table. Draws kTopologyPersist; on a trip nothing is
  // mutated and the transition cleanly aborts at its previous state.
  Status PersistMembership(const std::string& context);

  // Runs `fn` under exclusive ring_mu_ + down_mu_ and bumps the topology
  // epoch, so in-flight writes resolved against the old topology abort and
  // retry instead of landing on stale owners.
  void CommitTopology(const std::function<void()>& fn);

  // Streams every (partition, row) a node gains under pending_ring_ from the
  // serving/leaving replicas that hold it (raw rows; LWW-idempotent).
  // Unavailable on an injected kStreamInterrupt or a down target — the
  // caller's stage is unchanged and the stream re-runs on resume.
  Status StreamPendingRanges();

  // Stage drivers, resumable from the persisted op stage.
  Status RunBootstrap();
  Status RunDecommission();
  Status RunRebalance();

  std::optional<TopologyOp> GetInflight() const;
  void SetInflight(const std::optional<TopologyOp>& op);
  void UpdateServingGauge();

  // Indexes into `replicas` whose node is currently up. Caller holds down_mu_.
  std::vector<size_t> LiveIndexesLocked(const std::vector<Node*>& replicas) const;

  // Same, taking the lock (snapshot; a node may flap right after).
  std::vector<size_t> LiveIndexes(const std::vector<Node*>& replicas) const;

  // CL=ONE read driver: round-robin among the partition's live replicas
  // (models Cassandra's load-balancing snitch; writes go to all replicas
  // synchronously, so any replica is up to date), failing over past injected
  // media read errors AND replicas that answer Corruption. `op` runs the
  // actual engine read and returns its status; ok/NotFound both count as
  // served. Unavailable when no live replica can serve; the last Corruption
  // when every replica's copy is bad — never corrupt data.
  Status ReadOne(std::string_view table, const std::vector<Node*>& replicas,
                 const std::vector<StorageEngine*>& engines,
                 const std::function<Status(StorageEngine*)>& op);

  // True when `node` is in the partition's replica set.
  bool NodeReplicates(int node, std::string_view partition) const;

  // Streams the merged rows of [range.smallest, range.largest] (encoded
  // keys) from every other up replica into `engine` on `node`, keeping only
  // partitions that node actually replicates. Returns rows applied.
  size_t RebuildRangeFromPeers(int node, const std::string& table, StorageEngine* engine,
                               const QuarantinedRange& range);

  // Applies `update` to every live replica engine; queues hints for down or
  // failing ones. Unavailable (with hints already queued — the classic
  // ambiguous write) when fewer than `required_acks` replicas persisted it.
  // `engines` and `replicas` are parallel arrays from ReplicasFor.
  //
  // Two-phase fan-out: phase 1 (under down_mu_, in replica order) resolves
  // down-ness and draws the coordinator fault points, producing a per-replica
  // plan; phase 2 runs the engine legs — concurrently on the replica pool
  // when configured, else inline in replica order. Returns on the
  // required_acks'th ack; stragglers complete in the background (Quiesce
  // waits for them).
  //
  // partition_tombstone_ts != 0 turns the write into a whole-partition
  // tombstone (DeletePartition); that path skips the per-replica coordinator
  // fault points, preserving the historical fault-ordinal stream.
  // `required_acks` is the natural-set requirement; when the resolution
  // carries pending endpoints the effective requirement becomes
  // required_acks + |pending| with acks counted from all legs (Cassandra's
  // pending-endpoint rule), which preserves quorum intersection across the
  // ownership flip in both directions. Aborted("topology changed...") when
  // rs.epoch is stale — callers re-resolve and retry.
  Status ApplyToReplicas(std::string_view table, const ReplicaSet& rs,
                         std::string_view partition, std::string_view clustering,
                         const Row& stamped, size_t required_acks,
                         uint64_t partition_tombstone_ts = 0);

  // Runs replica leg `i` of a fan-out: injected delay, the engine apply (or
  // partition tombstone), hint queueing on failure, ack bookkeeping.
  void RunReplicaLeg(const std::shared_ptr<ReplicaFanout>& fanout, size_t i);

  // Marks one background leg finished and wakes Quiesce.
  void FinishPendingLeg();

  // Creates the Async* API pool on first use.
  Executor* EnsureAsyncPool();

  // Blocking read repair (Cassandra's monotonic quorum reads, standing in
  // for its Paxos round repair): writes `merged` back to each replica in
  // `contacted` holding an older or missing copy, queueing a hint when the
  // apply fails. Returns how many contacted replicas end up holding the
  // merged row. Quorum reads must leave every row they return durable on a
  // quorum before answering — otherwise a client verifying an ambiguous LWT
  // could ack state seen on a single replica, which a later writer reading a
  // disjoint quorum would silently overwrite.
  size_t RepairContacted(std::string_view table, const std::vector<Node*>& replicas,
                         const std::vector<StorageEngine*>& engines,
                         const std::vector<size_t>& contacted, std::string_view partition,
                         std::string_view clustering, const Row& merged);

  // Shared body of ReadFloor / ReadFloorCell: floor routing, quorum voting,
  // row merge and read repair. Charges RTTs but NOT the client transfer —
  // the public wrappers charge what they actually ship (whole row vs one
  // cell).
  Result<std::pair<std::string, Row>> ReadFloorInternal(std::string_view table,
                                                        std::string_view partition,
                                                        std::string_view clustering);

  // Acks a plain write needs under the configured consistency level.
  size_t RequiredAcks(size_t replica_count) const;

  // Replays queued hints to a node; hints whose apply fails (injected
  // commit-log faults) are re-queued for the next replay.
  void ReplayHintsLocked(int node);

  ClusterOptions options_;

  // Topology state. ring_mu_ guards ring_, pending_ring_, membership_, and
  // nodes_ growth (the data path takes it shared per resolution; ownership
  // flips take it exclusive). Lock order: ring_mu_ before down_mu_. nodes_
  // only ever grows and retired slots stay allocated, so Node*/engine
  // pointers remain stable for in-flight legs across any topology change.
  mutable std::shared_mutex ring_mu_;
  HashRing ring_;
  std::optional<HashRing> pending_ring_;  // set while a topology window is open
  std::map<int, MembershipState> membership_;
  std::vector<std::unique_ptr<Node>> nodes_;

  // Bumped (under ring_mu_ exclusive + down_mu_) at every window open/flip/
  // cancel; writes validate their resolution epoch in ApplyToReplicas.
  std::atomic<uint64_t> topology_epoch_{0};

  // Serializes topology operations end to end (streaming included).
  std::mutex topology_mu_;
  // Guards inflight_ only, so Topology() never blocks behind a stream.
  mutable std::mutex inflight_mu_;
  std::optional<TopologyOp> inflight_;

  ClusterStats stats_;
  std::atomic<uint64_t> timestamp_{0};
  std::atomic<uint64_t> read_rr_{0};

  struct Hint {
    std::string table;
    std::string partition;
    std::string clustering;
    Row update;  // cells already timestamped
    // Nonzero: this hint is a whole-partition tombstone at this timestamp
    // (clustering/update unused).
    uint64_t partition_tombstone_ts = 0;
  };
  mutable std::mutex down_mu_;
  std::vector<bool> node_down_;
  std::vector<std::vector<Hint>> hints_;  // per node

  // Per-partition Paxos serialization for LWTs (global table keyed by
  // table+partition+clustering hash — collisions just over-serialize).
  static constexpr size_t kPaxosShards = 256;
  std::unique_ptr<std::mutex[]> paxos_locks_;

  // Shared client link: transfers serialize here, so bulk results (range
  // scans shipping uncompressed rows) saturate it just as the paper's
  // vanilla client saturated the real network (§8.1.2).
  Semaphore network_link_{1};

  mutable std::mutex tables_mu_;
  std::map<std::string, bool, std::less<>> tables_;  // name -> server_compression

  // --- Async pipeline state (docs/CONCURRENCY.md) ------------------------------

  // Replica fan-out pool; null when replica_fanout_threads == 0 or RF == 1
  // (fan-out then runs inline in replica order — the deterministic mode).
  std::unique_ptr<Executor> replica_pool_;

  // Async* API pool, created lazily under async_pool_mu_.
  std::mutex async_pool_mu_;
  std::unique_ptr<Executor> async_pool_;

  // Count of replica legs still running on the pool; Quiesce waits for 0.
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  size_t pending_legs_ = 0;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_CLUSTER_H_
