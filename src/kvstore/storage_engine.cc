#include "src/kvstore/storage_engine.h"

#include <algorithm>
#include <map>

#include "src/obs/metrics.h"

namespace minicrypt {

StorageEngine::StorageEngine(StorageEngineOptions options, BlockCache* cache, Media* media,
                             std::unique_ptr<LogSink> log_sink)
    : options_(options), cache_(cache), media_(media) {
  if (options_.enable_commit_log && log_sink != nullptr) {
    log_ = std::make_unique<CommitLog>(std::move(log_sink), media_, options_.fault_injector);
  }
}

Status StorageEngine::Apply(std::string_view partition, std::string_view clustering,
                            const Row& update) {
  return ApplyInternal(EncodeRowKey(partition, clustering), update);
}

Status StorageEngine::ApplyPartitionTombstone(std::string_view partition, uint64_t timestamp) {
  Row marker;
  marker.cells[std::string(kPartitionTombstoneColumn)] = Cell{"", timestamp, true};
  return ApplyInternal(EncodeRowKey(partition, ""), marker);
}

Status StorageEngine::ApplyInternal(std::string_view encoded_key, const Row& update) {
  OBS_SPAN("engine.apply");
  OBS_COUNTER_INC("engine.memtable.applies");
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ != nullptr) {
    MC_RETURN_IF_ERROR(log_->Append(encoded_key, update));
  }
  memtable_.Apply(encoded_key, update);
  if (memtable_.ApproxBytes() >= options_.memtable_flush_bytes) {
    MC_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::Ok();
}

Status StorageEngine::FlushLocked() {
  if (memtable_.empty()) {
    return Status::Ok();
  }
  OBS_SPAN("engine.flush");
  OBS_COUNTER_INC("engine.flush.count");
  OBS_COUNTER_ADD("engine.flush.bytes", memtable_.ApproxBytes());
  SstableBuilder builder(next_sstable_id_++, options_.sstable);
  for (const auto& [key, row] : memtable_.entries()) {
    builder.Add(key, row);
  }
  sstables_.insert(sstables_.begin(), builder.Finish(media_));
  memtable_.Clear();
  if (log_ != nullptr) {
    MC_RETURN_IF_ERROR(log_->Retire());
  }
  if (static_cast<int>(sstables_.size()) >= options_.compaction_trigger) {
    MC_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status StorageEngine::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status StorageEngine::RecoverFromLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ == nullptr) {
    return Status::Ok();
  }
  return log_->Replay([&](std::string_view key, const Row& row) { memtable_.Apply(key, row); });
}

void StorageEngine::WarmCache(
    const std::function<bool(std::string_view partition)>& serves_partition) {
  const ReadSnapshot snap = Snapshot();
  // Oldest first so the newest (most likely hot) blocks survive LRU eviction.
  for (auto it = snap.tables.rbegin(); it != snap.tables.rend(); ++it) {
    (*it)->WarmInto(cache_, serves_partition);
  }
}

Status StorageEngine::CompactLocked() {
  // Full merge of all SSTables, newest-first order. For each key keep the
  // newest cell per column; honor partition tombstones; drop dead data.
  // Memtable entries are strictly newer (monotonic timestamps) and stay put.
  OBS_SPAN("engine.compaction");
  OBS_COUNTER_INC("engine.compaction.count");
  std::map<std::string, Row> merged;
  std::map<std::string, uint64_t> ptombs;  // partition -> newest tombstone ts

  for (const auto& table : sstables_) {  // newest first; MergeNewer keeps newest
    const Status s = table->Scan(
        table->smallest_key(), table->largest_key(),
        [&](std::string_view key, const Row& row) {
          merged[std::string(key)].MergeNewer(row);
          return true;
        },
        /*cache=*/nullptr, /*media=*/nullptr);  // compaction reads charged below
    MC_RETURN_IF_ERROR(s);
  }
  size_t input_bytes = 0;
  for (const auto& table : sstables_) {
    input_bytes += table->at_rest_bytes();
  }
  OBS_COUNTER_ADD("engine.compaction.input_bytes", input_bytes);
  if (media_ != nullptr && input_bytes > 0) {
    media_->Read(input_bytes);  // one streaming read of all inputs
  }

  // Collect partition tombstones.
  for (const auto& [key, row] : merged) {
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    auto it = row.cells.find(kPartitionTombstoneColumn);
    if (it != row.cells.end()) {
      auto& ts = ptombs[std::string(decoded->partition)];
      ts = std::max(ts, it->second.timestamp);
    }
  }

  SstableBuilder builder(next_sstable_id_++, options_.sstable);
  for (auto& [key, row] : merged) {
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    uint64_t ptomb_ts = 0;
    auto pt = ptombs.find(std::string(decoded->partition));
    if (pt != ptombs.end()) {
      ptomb_ts = pt->second;
    }
    Row out;
    for (auto& [name, cell] : row.cells) {
      if (name == kPartitionTombstoneColumn) {
        // Keep the marker: the memtable may still hold older unflushed data?
        // It cannot (timestamps are monotonic), but a marker is a few bytes
        // and keeping it makes the reasoning local. Keep the newest only.
        out.cells[name] = Cell{"", ptomb_ts, true};
        continue;
      }
      if (cell.timestamp <= ptomb_ts) {
        continue;  // covered by partition delete
      }
      if (cell.tombstone) {
        continue;  // full merge: nothing older survives anywhere below
      }
      out.cells[name] = std::move(cell);
    }
    if (!out.empty()) {
      builder.Add(key, out);
    }
  }

  std::vector<std::shared_ptr<Sstable>> old;
  old.swap(sstables_);
  if (builder.entry_count() > 0) {
    sstables_.push_back(builder.Finish(media_));
  }
  if (cache_ != nullptr) {
    for (const auto& table : old) {
      cache_->EraseOwner(table->id());
    }
  }
  return Status::Ok();
}

StorageEngine::ReadSnapshot StorageEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadSnapshot{sstables_};
}

uint64_t StorageEngine::PartitionTombstoneTs(std::string_view partition,
                                             const ReadSnapshot& snap) {
  const std::string marker_key = EncodeRowKey(partition, "");
  uint64_t ts = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Row* m = memtable_.Get(marker_key);
    if (m != nullptr) {
      auto it = m->cells.find(kPartitionTombstoneColumn);
      if (it != m->cells.end()) {
        ts = std::max(ts, it->second.timestamp);
      }
    }
  }
  for (const auto& table : snap.tables) {
    auto row = table->Get(marker_key, cache_, media_);
    if (row.has_value()) {
      auto it = row->cells.find(kPartitionTombstoneColumn);
      if (it != row->cells.end()) {
        ts = std::max(ts, it->second.timestamp);
      }
    }
  }
  return ts;
}

void StorageEngine::FilterRow(Row* row, uint64_t ptomb_ts) {
  for (auto it = row->cells.begin(); it != row->cells.end();) {
    if (it->first == kPartitionTombstoneColumn || it->second.timestamp <= ptomb_ts ||
        it->second.tombstone) {
      it = row->cells.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Row> StorageEngine::MergedGet(std::string_view encoded_key,
                                            const ReadSnapshot& snap, uint64_t ptomb_ts) {
  Row merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Row* m = memtable_.Get(encoded_key);
    if (m != nullptr) {
      merged.MergeNewer(*m);
    }
  }
  for (const auto& table : snap.tables) {
    if (!table->MayContain(encoded_key)) {
      continue;
    }
    auto row = table->Get(encoded_key, cache_, media_);
    if (row.has_value()) {
      merged.MergeNewer(*row);
    }
  }
  FilterRow(&merged, ptomb_ts);
  if (merged.empty()) {
    return std::nullopt;
  }
  return merged;
}

std::optional<Row> StorageEngine::Get(std::string_view partition, std::string_view clustering) {
  OBS_SPAN("engine.get");
  const ReadSnapshot snap = Snapshot();
  const uint64_t ptomb = PartitionTombstoneTs(partition, snap);
  return MergedGet(EncodeRowKey(partition, clustering), snap, ptomb);
}

std::optional<std::pair<std::string, Row>> StorageEngine::Floor(std::string_view partition,
                                                                std::string_view clustering) {
  const ReadSnapshot snap = Snapshot();
  const uint64_t ptomb = PartitionTombstoneTs(partition, snap);
  const std::string prefix = PartitionPrefix(partition);
  std::string target = EncodeRowKey(partition, clustering);

  // Iterate floor candidates from the top; a candidate that turns out fully
  // deleted steps the search below it.
  for (;;) {
    std::optional<std::string> best;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto mk = memtable_.FloorKey(prefix, target);
      if (mk.has_value()) {
        best = std::string(*mk);
      }
    }
    for (const auto& table : snap.tables) {
      auto fk = table->FloorKey(prefix, target, cache_, media_);
      if (fk.has_value() && (!best.has_value() || *fk > *best)) {
        best = std::move(fk);
      }
    }
    if (!best.has_value() || best->size() <= prefix.size()) {
      // No candidate, or only the partition-marker row (empty clustering).
      return std::nullopt;
    }
    auto merged = MergedGet(*best, snap, ptomb);
    if (merged.has_value()) {
      auto decoded = DecodeRowKey(*best);
      if (!decoded.ok()) {
        return std::nullopt;
      }
      return std::make_pair(std::string(decoded->clustering), std::move(*merged));
    }
    // Fully deleted row: restart strictly below it. Encoded keys are
    // prefix-ordered, so the immediate predecessor target is `best` minus one
    // conceptual step; using the key itself with an exclusive bound is
    // simplest: shrink target to just below `best`.
    //
    // Keys are arbitrary bytes; "just below best" = best with last byte
    // decremented and 0xff padding would be wrong for variable-length keys.
    // Instead re-run floor with target = best and skip equality by trimming:
    // we search floor(best_minus_epsilon) by using best with an exclusivity
    // marker — implemented by truncating one trailing byte when it is 0x00,
    // else decrementing it and extending with 0xff. For our key shapes
    // (fixed-width clusterings) decrement-and-pad is exact.
    std::string below = *best;
    while (!below.empty() && static_cast<unsigned char>(below.back()) == 0) {
      below.pop_back();
    }
    if (below.size() <= prefix.size()) {
      return std::nullopt;
    }
    below.back() = static_cast<char>(static_cast<unsigned char>(below.back()) - 1);
    below.append(8, '\xff');
    target = below;
  }
}

Status StorageEngine::Scan(std::string_view partition, std::string_view lo, std::string_view hi,
                           size_t limit,
                           const std::function<bool(std::string_view, const Row&)>& fn) {
  if (hi < lo) {
    return Status::Ok();
  }
  const ReadSnapshot snap = Snapshot();
  const uint64_t ptomb = PartitionTombstoneTs(partition, snap);
  const std::string klo = EncodeRowKey(partition, lo);
  const std::string khi = EncodeRowKey(partition, hi);

  // Gather-merge: collect per-source rows into a sorted map. Simple and
  // correct; ranges in MiniCrypt are bounded (pack ranges, epoch scans).
  std::map<std::string, Row> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memtable_.entries().lower_bound(klo);
    for (; it != memtable_.entries().end() && it->first <= khi; ++it) {
      merged[it->first].MergeNewer(it->second);
    }
  }
  for (const auto& table : snap.tables) {
    MC_RETURN_IF_ERROR(table->Scan(
        klo, khi,
        [&](std::string_view key, const Row& row) {
          merged[std::string(key)].MergeNewer(row);
          return true;
        },
        cache_, media_));
  }

  size_t emitted = 0;
  for (auto& [key, row] : merged) {
    FilterRow(&row, ptomb);
    if (row.empty()) {
      continue;
    }
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    if (!fn(decoded->clustering, row)) {
      break;
    }
    if (limit != 0 && ++emitted >= limit) {
      break;
    }
  }
  return Status::Ok();
}

size_t StorageEngine::AtRestBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& table : sstables_) {
    bytes += table->at_rest_bytes();
  }
  return bytes;
}

size_t StorageEngine::SstableCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sstables_.size();
}

size_t StorageEngine::MemtableBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_.ApproxBytes();
}

}  // namespace minicrypt
