#include "src/kvstore/storage_engine.h"

#include <algorithm>
#include <map>

#include "src/obs/metrics.h"

namespace minicrypt {

StorageEngine::StorageEngine(StorageEngineOptions options, BlockCache* cache, Media* media,
                             std::unique_ptr<LogSink> log_sink)
    : options_(options), cache_(cache), media_(media),
      next_sstable_id_(options.sstable_id_base + 1) {
  if (options_.enable_commit_log && log_sink != nullptr) {
    log_ = std::make_unique<CommitLog>(std::move(log_sink), media_, options_.fault_injector,
                                       options_.commitlog_sync_every_appends);
  }
}

Status StorageEngine::Apply(std::string_view partition, std::string_view clustering,
                            const Row& update) {
  return ApplyInternal(EncodeRowKey(partition, clustering), update);
}

Status StorageEngine::ApplyPartitionTombstone(std::string_view partition, uint64_t timestamp) {
  Row marker;
  marker.cells[std::string(kPartitionTombstoneColumn)] = Cell{"", timestamp, true};
  return ApplyInternal(EncodeRowKey(partition, ""), marker);
}

Status StorageEngine::ApplyEncoded(std::string_view encoded_key, const Row& row) {
  return ApplyInternal(encoded_key, row);
}

Status StorageEngine::ApplyInternal(std::string_view encoded_key, const Row& update) {
  OBS_SPAN("engine.apply");
  OBS_COUNTER_INC("engine.memtable.applies");
  bool want_flush = false;
  {
    // Shared gate: concurrent appliers overlap inside the thread-safe commit
    // log (which group-commits their records). The log append happens outside
    // mu_, so one replica leg's fsync wait never blocks another leg's
    // memtable apply. Log order and memtable order can diverge between
    // concurrent appliers; LWW cell timestamps make replay order-insensitive.
    std::shared_lock<std::shared_mutex> gate(log_gate_);
    if (log_ != nullptr) {
      MC_RETURN_IF_ERROR(log_->Append(encoded_key, update));
    }
    std::lock_guard<std::mutex> lock(mu_);
    memtable_.Apply(encoded_key, update);
    want_flush = memtable_.ApproxBytes() >= options_.memtable_flush_bytes;
  }
  if (want_flush) {
    return MaybeFlush();
  }
  return Status::Ok();
}

Status StorageEngine::MaybeFlush() {
  std::unique_lock<std::shared_mutex> gate(log_gate_);
  std::lock_guard<std::mutex> lock(mu_);
  if (memtable_.ApproxBytes() < options_.memtable_flush_bytes) {
    return Status::Ok();  // a racing applier already flushed
  }
  return FlushLocked();
}

Status StorageEngine::FlushLocked() {
  if (memtable_.empty()) {
    return Status::Ok();
  }
  OBS_SPAN("engine.flush");
  OBS_COUNTER_INC("engine.flush.count");
  OBS_COUNTER_ADD("engine.flush.bytes", memtable_.ApproxBytes());
  SstableBuilder builder(next_sstable_id_++, options_.sstable);
  for (const auto& [key, row] : memtable_.entries()) {
    builder.Add(key, row);
  }
  sstables_.insert(sstables_.begin(), builder.Finish(media_, options_.fault_injector));
  memtable_.Clear();
  if (log_ != nullptr) {
    MC_RETURN_IF_ERROR(log_->Retire());
  }
  if (static_cast<int>(sstables_.size()) >= options_.compaction_trigger) {
    MC_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status StorageEngine::Flush() {
  std::unique_lock<std::shared_mutex> gate(log_gate_);
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status StorageEngine::Crash(uint64_t tear_draw) {
  std::unique_lock<std::shared_mutex> gate(log_gate_);
  std::lock_guard<std::mutex> lock(mu_);
  OBS_COUNTER_INC("engine.crash.count");
  // RAM is gone: memtable and any cached blocks. The commit log keeps its
  // synced prefix plus a seeded fraction of the unsynced tail (possibly torn
  // mid-record); everything else must come back from SSTables + log replay.
  memtable_.Clear();
  if (log_ != nullptr) {
    const size_t torn = log_->Crash(tear_draw);
    OBS_COUNTER_ADD("engine.crash.torn_log_bytes", torn);
  }
  return Status::Ok();
}

Status StorageEngine::RecoverFromLog() {
  std::unique_lock<std::shared_mutex> gate(log_gate_);
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ == nullptr) {
    return Status::Ok();
  }
  size_t replayed = 0;
  MC_RETURN_IF_ERROR(log_->Recover([&](std::string_view key, const Row& row) {
    memtable_.Apply(key, row);
    ++replayed;
  }));
  OBS_COUNTER_ADD("engine.recover.replayed_records", replayed);
  return Status::Ok();
}

void StorageEngine::WarmCache(
    const std::function<bool(std::string_view partition)>& serves_partition) {
  const ReadSnapshot snap = Snapshot();
  // Oldest first so the newest (most likely hot) blocks survive LRU eviction.
  for (auto it = snap.tables.rbegin(); it != snap.tables.rend(); ++it) {
    (*it)->WarmInto(cache_, serves_partition);
  }
}

void StorageEngine::MarkQuarantined(const std::shared_ptr<Sstable>& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(quarantined_.begin(), quarantined_.end(), table) != quarantined_.end()) {
    return;
  }
  quarantined_.push_back(table);
  OBS_COUNTER_INC("storage.corruption.sstables_quarantined");
}

Status StorageEngine::Scrub(std::vector<QuarantinedRange>* out) {
  OBS_SPAN("engine.scrub");
  const ReadSnapshot snap = Snapshot();
  for (const auto& table : snap.tables) {
    OBS_COUNTER_INC("scrub.sstables_checked");
    OBS_COUNTER_ADD("scrub.blocks_checked", table->block_count());
    const Status s = table->VerifyChecksums(media_);
    if (s.IsCorruption()) {
      OBS_COUNTER_INC("scrub.sstables_corrupt");
      MarkQuarantined(table);
      continue;
    }
    MC_RETURN_IF_ERROR(s);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& table : quarantined_) {
    out->push_back(QuarantinedRange{std::string(table->smallest_key()),
                                    std::string(table->largest_key()), table->block_count(),
                                    table->entry_count()});
  }
  return Status::Ok();
}

size_t StorageEngine::DropQuarantined() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (const auto& table : quarantined_) {
    auto it = std::find(sstables_.begin(), sstables_.end(), table);
    if (it != sstables_.end()) {
      sstables_.erase(it);
    }
    if (cache_ != nullptr) {
      cache_->EraseOwner(table->id());
    }
    ++dropped;
  }
  quarantined_.clear();
  return dropped;
}

Status StorageEngine::CompactLocked() {
  // Full merge of all SSTables, newest-first order. For each key keep the
  // newest cell per column; honor partition tombstones; drop dead data.
  // Memtable entries are strictly newer (monotonic timestamps) and stay put.
  OBS_SPAN("engine.compaction");
  OBS_COUNTER_INC("engine.compaction.count");
  std::map<std::string, Row> merged;
  std::map<std::string, uint64_t> ptombs;  // partition -> newest tombstone ts

  for (const auto& table : sstables_) {  // newest first; MergeNewer keeps newest
    const Status s = table->Scan(
        table->smallest_key(), table->largest_key(),
        [&](std::string_view key, const Row& row) {
          merged[std::string(key)].MergeNewer(row);
          return true;
        },
        /*cache=*/nullptr, /*media=*/nullptr);  // compaction reads charged below
    if (s.IsCorruption()) {
      // A bad input block must not wedge the write path, and compacting
      // around it would be unsafe (a partial merge that drops tombstones can
      // resurrect deletes). Skip this compaction; the table set grows until
      // scrub rebuilds the corrupt table from healthy replicas.
      OBS_COUNTER_INC("engine.compaction.skipped_corrupt");
      return Status::Ok();
    }
    MC_RETURN_IF_ERROR(s);
  }
  size_t input_bytes = 0;
  for (const auto& table : sstables_) {
    input_bytes += table->at_rest_bytes();
  }
  OBS_COUNTER_ADD("engine.compaction.input_bytes", input_bytes);
  if (media_ != nullptr && input_bytes > 0) {
    media_->Read(input_bytes);  // one streaming read of all inputs
  }

  // Collect partition tombstones.
  for (const auto& [key, row] : merged) {
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    auto it = row.cells.find(kPartitionTombstoneColumn);
    if (it != row.cells.end()) {
      auto& ts = ptombs[std::string(decoded->partition)];
      ts = std::max(ts, it->second.timestamp);
    }
  }

  SstableBuilder builder(next_sstable_id_++, options_.sstable);
  for (auto& [key, row] : merged) {
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    uint64_t ptomb_ts = 0;
    auto pt = ptombs.find(std::string(decoded->partition));
    if (pt != ptombs.end()) {
      ptomb_ts = pt->second;
    }
    Row out;
    for (auto& [name, cell] : row.cells) {
      if (name == kPartitionTombstoneColumn) {
        // Keep the marker: the memtable may still hold older unflushed data?
        // It cannot (timestamps are monotonic), but a marker is a few bytes
        // and keeping it makes the reasoning local. Keep the newest only.
        out.cells[name] = Cell{"", ptomb_ts, true};
        continue;
      }
      if (cell.timestamp <= ptomb_ts) {
        continue;  // covered by partition delete
      }
      if (cell.tombstone) {
        continue;  // full merge: nothing older survives anywhere below
      }
      out.cells[name] = std::move(cell);
    }
    if (!out.empty()) {
      builder.Add(key, out);
    }
  }

  std::vector<std::shared_ptr<Sstable>> old;
  old.swap(sstables_);
  if (builder.entry_count() > 0) {
    sstables_.push_back(builder.Finish(media_, options_.fault_injector));
  }
  if (cache_ != nullptr) {
    for (const auto& table : old) {
      cache_->EraseOwner(table->id());
    }
  }
  return Status::Ok();
}

StorageEngine::ReadSnapshot StorageEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadSnapshot{sstables_};
}

Result<uint64_t> StorageEngine::PartitionTombstoneTs(std::string_view partition,
                                                     const ReadSnapshot& snap) {
  const std::string marker_key = EncodeRowKey(partition, "");
  uint64_t ts = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Row* m = memtable_.Get(marker_key);
    if (m != nullptr) {
      auto it = m->cells.find(kPartitionTombstoneColumn);
      if (it != m->cells.end()) {
        ts = std::max(ts, it->second.timestamp);
      }
    }
  }
  for (const auto& table : snap.tables) {
    auto row = table->Get(marker_key, cache_, media_);
    if (!row.ok()) {
      return row.status();
    }
    if (row->has_value()) {
      auto it = (*row)->cells.find(kPartitionTombstoneColumn);
      if (it != (*row)->cells.end()) {
        ts = std::max(ts, it->second.timestamp);
      }
    }
  }
  return ts;
}

void StorageEngine::FilterRow(Row* row, uint64_t ptomb_ts) {
  for (auto it = row->cells.begin(); it != row->cells.end();) {
    if (it->first == kPartitionTombstoneColumn || it->second.timestamp <= ptomb_ts ||
        it->second.tombstone) {
      it = row->cells.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::optional<Row>> StorageEngine::MergedGet(std::string_view encoded_key,
                                                    const ReadSnapshot& snap,
                                                    uint64_t ptomb_ts) {
  Row merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Row* m = memtable_.Get(encoded_key);
    if (m != nullptr) {
      merged.MergeNewer(*m);
    }
  }
  for (const auto& table : snap.tables) {
    if (!table->MayContain(encoded_key)) {
      continue;
    }
    auto row = table->Get(encoded_key, cache_, media_);
    if (!row.ok()) {
      return row.status();
    }
    if (row->has_value()) {
      merged.MergeNewer(**row);
    }
  }
  FilterRow(&merged, ptomb_ts);
  if (merged.empty()) {
    return std::optional<Row>();
  }
  return std::optional<Row>(std::move(merged));
}

Result<Row> StorageEngine::Get(std::string_view partition, std::string_view clustering) {
  OBS_SPAN("engine.get");
  const ReadSnapshot snap = Snapshot();
  MC_ASSIGN_OR_RETURN(const uint64_t ptomb, PartitionTombstoneTs(partition, snap));
  MC_ASSIGN_OR_RETURN(std::optional<Row> row,
                      MergedGet(EncodeRowKey(partition, clustering), snap, ptomb));
  if (!row.has_value()) {
    return Status::NotFound();
  }
  return std::move(*row);
}

Result<std::pair<std::string, Row>> StorageEngine::Floor(std::string_view partition,
                                                         std::string_view clustering) {
  const ReadSnapshot snap = Snapshot();
  MC_ASSIGN_OR_RETURN(const uint64_t ptomb, PartitionTombstoneTs(partition, snap));
  const std::string prefix = PartitionPrefix(partition);
  std::string target = EncodeRowKey(partition, clustering);

  // Iterate floor candidates from the top; a candidate that turns out fully
  // deleted steps the search below it.
  for (;;) {
    std::optional<std::string> best;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto mk = memtable_.FloorKey(prefix, target);
      if (mk.has_value()) {
        best = std::string(*mk);
      }
    }
    for (const auto& table : snap.tables) {
      auto fk = table->FloorKey(prefix, target, cache_, media_);
      if (!fk.ok()) {
        return fk.status();
      }
      if (fk->has_value() && (!best.has_value() || **fk > *best)) {
        best = std::move(*fk);
      }
    }
    if (!best.has_value() || best->size() <= prefix.size()) {
      // No candidate, or only the partition-marker row (empty clustering).
      return Status::NotFound();
    }
    MC_ASSIGN_OR_RETURN(std::optional<Row> merged, MergedGet(*best, snap, ptomb));
    if (merged.has_value()) {
      auto decoded = DecodeRowKey(*best);
      if (!decoded.ok()) {
        return Status::NotFound();
      }
      return std::make_pair(std::string(decoded->clustering), std::move(*merged));
    }
    // Fully deleted row: restart strictly below it. Encoded keys are
    // prefix-ordered, so the immediate predecessor target is `best` minus one
    // conceptual step; using the key itself with an exclusive bound is
    // simplest: shrink target to just below `best`.
    //
    // Keys are arbitrary bytes; "just below best" = best with last byte
    // decremented and 0xff padding would be wrong for variable-length keys.
    // Instead re-run floor with target = best and skip equality by trimming:
    // we search floor(best_minus_epsilon) by using best with an exclusivity
    // marker — implemented by truncating one trailing byte when it is 0x00,
    // else decrementing it and extending with 0xff. For our key shapes
    // (fixed-width clusterings) decrement-and-pad is exact.
    std::string below = *best;
    while (!below.empty() && static_cast<unsigned char>(below.back()) == 0) {
      below.pop_back();
    }
    if (below.size() <= prefix.size()) {
      return Status::NotFound();
    }
    below.back() = static_cast<char>(static_cast<unsigned char>(below.back()) - 1);
    below.append(8, '\xff');
    target = below;
  }
}

Status StorageEngine::Scan(std::string_view partition, std::string_view lo, std::string_view hi,
                           size_t limit,
                           const std::function<bool(std::string_view, const Row&)>& fn) {
  if (hi < lo) {
    return Status::Ok();
  }
  const ReadSnapshot snap = Snapshot();
  MC_ASSIGN_OR_RETURN(const uint64_t ptomb, PartitionTombstoneTs(partition, snap));
  const std::string klo = EncodeRowKey(partition, lo);
  const std::string khi = EncodeRowKey(partition, hi);

  // Gather-merge: collect per-source rows into a sorted map. Simple and
  // correct; ranges in MiniCrypt are bounded (pack ranges, epoch scans).
  std::map<std::string, Row> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memtable_.entries().lower_bound(klo);
    for (; it != memtable_.entries().end() && it->first <= khi; ++it) {
      merged[it->first].MergeNewer(it->second);
    }
  }
  for (const auto& table : snap.tables) {
    const Status s = table->Scan(
        klo, khi,
        [&](std::string_view key, const Row& row) {
          merged[std::string(key)].MergeNewer(row);
          return true;
        },
        cache_, media_);
    MC_RETURN_IF_ERROR(s);
  }

  size_t emitted = 0;
  for (auto& [key, row] : merged) {
    FilterRow(&row, ptomb);
    if (row.empty()) {
      continue;
    }
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      continue;
    }
    if (!fn(decoded->clustering, row)) {
      break;
    }
    if (limit != 0 && ++emitted >= limit) {
      break;
    }
  }
  return Status::Ok();
}

Status StorageEngine::ScanEncodedForRepair(
    std::string_view lo, std::string_view hi,
    const std::function<void(std::string_view encoded_key, const Row& row)>& fn) {
  if (hi < lo) {
    return Status::Ok();
  }
  const ReadSnapshot snap = Snapshot();
  std::map<std::string, Row> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memtable_.entries().lower_bound(std::string(lo));
    for (; it != memtable_.entries().end() && it->first <= hi; ++it) {
      merged[it->first].MergeNewer(it->second);
    }
  }
  for (const auto& table : snap.tables) {
    // Repair streaming bypasses the block cache (one-shot background reads
    // would only pollute LRU) but still verifies checksums inside Scan.
    const Status s = table->Scan(
        lo, hi,
        [&](std::string_view key, const Row& row) {
          merged[std::string(key)].MergeNewer(row);
          return true;
        },
        /*cache=*/nullptr, /*media=*/nullptr);
    if (s.IsCorruption()) {
      // A corrupt table contributes only the rows whose blocks passed their
      // CRC (everything already merged is verified). Skipping the table —
      // instead of failing the whole stream — keeps this replica useful as a
      // repair source: its intact tables may hold the only healthy copy of a
      // row another replica is rebuilding.
      OBS_COUNTER_INC("repair.source_tables_skipped");
      continue;
    }
    MC_RETURN_IF_ERROR(s);
  }
  for (const auto& [key, row] : merged) {
    fn(key, row);
  }
  return Status::Ok();
}

size_t StorageEngine::AtRestBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& table : sstables_) {
    bytes += table->at_rest_bytes();
  }
  return bytes;
}

size_t StorageEngine::SstableCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sstables_.size();
}

size_t StorageEngine::MemtableBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_.ApproxBytes();
}

size_t StorageEngine::QuarantinedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.size();
}

Status StorageEngine::PartitionSizes(std::map<std::string, size_t>* out) {
  const std::string hi(96, '\xff');
  return ScanEncodedForRepair("", hi, [&](std::string_view key, const Row& row) {
    auto decoded = DecodeRowKey(key);
    if (!decoded.ok()) {
      return;
    }
    size_t bytes = key.size();
    for (const auto& [name, cell] : row.cells) {
      bytes += name.size() + cell.value.size();
    }
    (*out)[std::string(decoded->partition)] += bytes;
  });
}

}  // namespace minicrypt
