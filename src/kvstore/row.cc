#include "src/kvstore/row.h"

#include "src/common/coding.h"
#include "src/kvstore/corruption.h"

namespace minicrypt {

namespace {

// Cassandra's deterministic timestamp tie-break: tombstones beat live cells,
// otherwise the lexically greater value wins. Order-insensitive, so replicas
// that apply the same mutations in different orders (hint replay after a
// clock-skewed write) still converge to identical cells.
bool TieBreakWins(const Cell& incoming, const Cell& existing) {
  if (incoming.tombstone != existing.tombstone) {
    return incoming.tombstone;
  }
  return incoming.value > existing.value;
}

}  // namespace

void Row::MergeNewer(const Row& other) {
  for (const auto& [name, cell] : other.cells) {
    auto it = cells.find(name);
    if (it == cells.end()) {
      cells.emplace(name, cell);
    } else if (cell.timestamp > it->second.timestamp ||
               (cell.timestamp == it->second.timestamp && TieBreakWins(cell, it->second))) {
      it->second = cell;
    }
  }
}

bool Row::AllTombstones() const {
  for (const auto& [name, cell] : cells) {
    if (!cell.tombstone) {
      return false;
    }
  }
  return true;
}

size_t Row::ApproxBytes() const {
  size_t bytes = sizeof(Row);
  for (const auto& [name, cell] : cells) {
    bytes += name.size() + cell.value.size() + 48;
  }
  return bytes;
}

std::string EncodeRowKey(std::string_view partition, std::string_view clustering) {
  std::string out;
  out.reserve(partition.size() + clustering.size() + 2);
  PutVarint64(&out, partition.size());
  out.append(partition);
  out.append(clustering);
  return out;
}

Result<DecodedRowKey> DecodeRowKey(std::string_view encoded) {
  std::string_view in = encoded;
  MC_ASSIGN_OR_RETURN(uint64_t plen, GetVarint64(&in));
  if (in.size() < plen) {
    return CorruptionDetected("row key (" + std::to_string(encoded.size()) +
                              " bytes) shorter than declared partition length " +
                              std::to_string(plen));
  }
  DecodedRowKey out;
  out.partition = in.substr(0, plen);
  out.clustering = in.substr(plen);
  return out;
}

std::string PartitionPrefix(std::string_view partition) {
  return EncodeRowKey(partition, "");
}

void EncodeRow(const Row& row, std::string* out) {
  PutVarint64(out, row.cells.size());
  for (const auto& [name, cell] : row.cells) {
    PutLengthPrefixed(out, name);
    PutLengthPrefixed(out, cell.value);
    PutVarint64(out, cell.timestamp);
    out->push_back(cell.tombstone ? '\x01' : '\x00');
  }
}

Result<Row> DecodeRow(std::string_view* input) {
  Row row;
  MC_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(input));
  if (n > (1u << 20)) {
    return CorruptionDetected("row declares absurd cell count " + std::to_string(n));
  }
  for (uint64_t i = 0; i < n; ++i) {
    MC_ASSIGN_OR_RETURN(std::string_view name, GetLengthPrefixed(input));
    MC_ASSIGN_OR_RETURN(std::string_view value, GetLengthPrefixed(input));
    MC_ASSIGN_OR_RETURN(uint64_t ts, GetVarint64(input));
    if (input->empty()) {
      return CorruptionDetected("row truncated before tombstone flag (cell " +
                                std::to_string(i) + "/" + std::to_string(n) + ")");
    }
    const bool tomb = input->front() == '\x01';
    input->remove_prefix(1);
    Cell cell{std::string(value), ts, tomb};
    row.cells.emplace(std::string(name), std::move(cell));
  }
  return row;
}

}  // namespace minicrypt
