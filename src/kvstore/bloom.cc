#include "src/kvstore/bloom.h"

#include <algorithm>
#include <cmath>

namespace minicrypt {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  const size_t bits = std::max<size_t>(64, expected_keys * static_cast<size_t>(bits_per_key));
  bits_.assign((bits + 7) / 8, 0);
  // k = ln(2) * bits_per_key, clamped to a sane range.
  num_hashes_ = std::clamp(static_cast<int>(std::lround(0.693 * bits_per_key)), 1, 12);
}

BloomFilter BloomFilter::Deserialize(std::string_view data) {
  BloomFilter f;
  if (data.empty()) {
    f.bits_.assign(8, 0);
    f.num_hashes_ = 1;
    return f;
  }
  f.num_hashes_ = std::clamp(static_cast<int>(static_cast<unsigned char>(data[0])), 1, 12);
  data.remove_prefix(1);
  f.bits_.assign(data.begin(), data.end());
  if (f.bits_.empty()) {
    f.bits_.assign(8, 0);
  }
  return f;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(1 + bits_.size());
  out.push_back(static_cast<char>(num_hashes_));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

void BloomFilter::Add(std::string_view key) {
  // Double hashing: g_i = h1 + i * h2.
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = (h1 >> 33) | (h1 << 31);
  const size_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = (h1 >> 33) | (h1 << 31);
  const size_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace minicrypt
