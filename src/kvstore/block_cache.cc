#include "src/kvstore/block_cache.h"

#include <vector>

#include "src/obs/metrics.h"

namespace minicrypt {

BlockCache::BlockCache(size_t capacity_bytes, int shards) : capacity_(capacity_bytes) {
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t BlockCache::MixKey(uint64_t owner, uint64_t index) {
  uint64_t h = owner * 0x9e3779b97f4a7c15ULL + index;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  return *shards_[key % shards_.size()];
}

std::optional<std::shared_ptr<const std::string>> BlockCache::Get(uint64_t owner,
                                                                  uint64_t index) {
  if (capacity_ == 0) {
    return std::nullopt;
  }
  const uint64_t key = MixKey(owner, index);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses++;
    OBS_COUNTER_INC("cache.miss");
    return std::nullopt;
  }
  shard.hits++;
  OBS_COUNTER_INC("cache.hit");
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::Put(uint64_t owner, uint64_t index,
                     std::shared_ptr<const std::string> block) {
  if (capacity_ == 0) {
    return;
  }
  const uint64_t key = MixKey(owner, index);
  Shard& shard = ShardFor(key);
  const size_t per_shard = capacity_ / shards_.size();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->block->size();
    shard.bytes += block->size();
    it->second->block = std::move(block);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{owner, index, std::move(block)});
    shard.bytes += shard.lru.front().block->size();
    shard.map[key] = shard.lru.begin();
  }
  EvictLocked(shard, per_shard);
}

void BlockCache::EvictLocked(Shard& shard, size_t per_shard_capacity) {
  uint64_t evicted = 0;
  while (shard.bytes > per_shard_capacity && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.block->size();
    shard.map.erase(MixKey(victim.owner, victim.index));
    shard.lru.pop_back();
    shard.evictions++;
    evicted++;
  }
  if (evicted > 0) {
    OBS_COUNTER_ADD("cache.evictions", evicted);
  }
}

void BlockCache::EraseOwner(uint64_t owner) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->owner == owner) {
        shard.bytes -= it->block->size();
        shard.map.erase(MixKey(it->owner, it->index));
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.bytes = 0;
  }
}

BlockCacheStats BlockCache::Stats() const {
  BlockCacheStats out;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    out.hits += shard_ptr->hits;
    out.misses += shard_ptr->misses;
    out.evictions += shard_ptr->evictions;
    out.bytes_used += shard_ptr->bytes;
  }
  return out;
}

}  // namespace minicrypt
