// Data model of the kvstore substrate: Cassandra-style wide rows.
//
// A row is addressed by (partition key, clustering key) and holds named cells
// with last-write-wins timestamps. The composite key is encoded into a single
// byte string whose lexicographic order groups each partition contiguously
// and orders rows within a partition by clustering key — the "sorted index on
// the primary key" MiniCrypt requires (paper §2.5.1).

#ifndef MINICRYPT_SRC_KVSTORE_ROW_H_
#define MINICRYPT_SRC_KVSTORE_ROW_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace minicrypt {

struct Cell {
  std::string value;
  uint64_t timestamp = 0;  // cluster-wide monotonic write stamp
  bool tombstone = false;  // deletion marker (LWW semantics)

  bool operator==(const Cell&) const = default;
};

// cells keyed by column name. Conventional columns used by MiniCrypt:
// "v" (pack/row value), "h" (ciphertext hash), plus EM bookkeeping columns.
struct Row {
  std::map<std::string, Cell, std::less<>> cells;

  bool empty() const { return cells.empty(); }

  // Merge `other` into this row cell-by-cell, keeping the newer timestamp.
  // Timestamp ties resolve deterministically (Cassandra's rule: tombstone
  // beats live, then greater value wins), so merge order never matters —
  // required for replica convergence when injected clock skew creates ties.
  void MergeNewer(const Row& other);

  // True when every cell is a tombstone (the row reads as deleted).
  bool AllTombstones() const;

  // Approximate heap footprint, for memtable accounting.
  size_t ApproxBytes() const;
};

// The encoded composite key: varint(len(partition)) || partition || clustering.
std::string EncodeRowKey(std::string_view partition, std::string_view clustering);

struct DecodedRowKey {
  std::string_view partition;
  std::string_view clustering;
};

// Views into `encoded`; valid while `encoded` lives.
Result<DecodedRowKey> DecodeRowKey(std::string_view encoded);

// The encoded prefix shared by every row of `partition` — scan bounds.
std::string PartitionPrefix(std::string_view partition);

// Serialize a row (cells with timestamps) for commit log / SSTable storage.
void EncodeRow(const Row& row, std::string* out);
Result<Row> DecodeRow(std::string_view* input);

// Column name reserved for partition-level tombstones. A cell under this name
// in the row with an empty clustering key marks every older cell of the
// partition deleted (models Cassandra's partition delete, used for epoch
// drops in APPEND mode).
inline constexpr std::string_view kPartitionTombstoneColumn = "!ptomb";

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_ROW_H_
