#include "src/kvstore/media.h"

#include <cmath>

#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {

void Media::ResetStats() {
  stats_.reads = 0;
  stats_.read_bytes = 0;
  stats_.writes = 0;
  stats_.write_bytes = 0;
  stats_.busy_micros = 0;
}

void NullMedia::Read(size_t bytes) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.read_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void NullMedia::Write(size_t bytes, bool sequential) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.write_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

MediaProfile MediaProfile::Disk(double latency_scale) {
  MediaProfile p;
  p.seek_micros = 8000;
  p.bytes_per_micro_read = 150.0;
  p.bytes_per_micro_write = 130.0;
  p.queue_depth = 1;
  p.latency_scale = latency_scale;
  return p;
}

MediaProfile MediaProfile::Ssd(double latency_scale) {
  MediaProfile p;
  p.seek_micros = 120;
  p.bytes_per_micro_read = 500.0;
  p.bytes_per_micro_write = 450.0;
  p.queue_depth = 32;
  p.latency_scale = latency_scale;
  return p;
}

SimulatedMedia::SimulatedMedia(MediaProfile profile, Clock* clock, FaultInjector* fault_injector)
    : profile_(profile),
      clock_(clock),
      fault_injector_(fault_injector),
      queue_(profile.queue_depth) {}

uint64_t SimulatedMedia::SpikeMicros() {
  if (fault_injector_ == nullptr) {
    return 0;
  }
  uint64_t draw = 0;
  if (!fault_injector_->Fire(FaultPoint::kMediaLatency, {}, &draw)) {
    return 0;
  }
  const uint64_t spike = fault_injector_->LatencySpikeMicros(draw);
  OBS_COUNTER_ADD("media.latency.injected_micros", spike);
  return spike;
}

uint64_t SimulatedMedia::Charge(uint64_t micros) {
  const auto scaled = static_cast<uint64_t>(std::llround(
      static_cast<double>(micros) * profile_.latency_scale));
  stats_.busy_micros.fetch_add(scaled, std::memory_order_relaxed);
  if (scaled > 0) {
    SemaphoreGuard slot(queue_);
    clock_->SleepMicros(scaled);
  }
  return scaled;
}

void SimulatedMedia::Read(size_t bytes) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  OBS_COUNTER_INC("media.read.count");
  OBS_COUNTER_ADD("media.read.bytes", bytes);
  const auto transfer = static_cast<uint64_t>(
      static_cast<double>(bytes) / profile_.bytes_per_micro_read);
  // The charge IS the simulated device: it must sleep and account busy time
  // whether or not metrics are enabled. Only the histogram record is gated.
  const uint64_t charged = Charge(profile_.seek_micros + transfer + SpikeMicros());
  OBS_HISTOGRAM_RECORD("media.read", charged);
}

void SimulatedMedia::Write(size_t bytes, bool sequential) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.write_bytes.fetch_add(bytes, std::memory_order_relaxed);
  OBS_COUNTER_INC("media.write.count");
  OBS_COUNTER_ADD("media.write.bytes", bytes);
  const auto transfer = static_cast<uint64_t>(
      static_cast<double>(bytes) / profile_.bytes_per_micro_write);
  const uint64_t charged =
      Charge((sequential ? transfer : profile_.seek_micros + transfer) + SpikeMicros());
  OBS_HISTOGRAM_RECORD("media.write", charged);
}

}  // namespace minicrypt
