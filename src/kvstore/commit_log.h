// Write-ahead commit log of the storage engine. Records are CRC-framed and
// replayable; segments are retired when the memtable they cover is flushed,
// which bounds memory for the in-memory sink.

#ifndef MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_
#define MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/kvstore/media.h"
#include "src/kvstore/row.h"

namespace minicrypt {

class FaultInjector;

// Destination for log bytes. The engine charges the media model separately;
// the sink is only about durability of the bytes.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status ReadAll(std::string* out) const = 0;
  virtual Status Truncate() = 0;
};

// Keeps log bytes in memory. Default for simulations.
class MemoryLogSink : public LogSink {
 public:
  Status Append(std::string_view bytes) override;
  Status ReadAll(std::string* out) const override;
  Status Truncate() override;

 private:
  std::string data_;
};

// Appends to a real file (buffered; no fsync). For replay tests.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(std::string path);

  Status Append(std::string_view bytes) override;
  Status ReadAll(std::string* out) const override;
  Status Truncate() override;

 private:
  std::string path_;
};

class CommitLog {
 public:
  // `media` may be nullptr (no latency charging). `fault_injector` (optional)
  // makes Append fail at the kCommitLogAppend point — the fsync-equivalent
  // durability failure; the engine then rejects the whole mutation.
  CommitLog(std::unique_ptr<LogSink> sink, Media* media,
            FaultInjector* fault_injector = nullptr);

  // Appends one record: the row update applied at `encoded_key`.
  Status Append(std::string_view encoded_key, const Row& update);

  // Replays every intact record in order; stops at the first torn/corrupt
  // record (normal after a crash mid-append).
  Status Replay(const std::function<void(std::string_view key, const Row& row)>& apply) const;

  // Drops all records (called after a successful memtable flush).
  Status Retire();

 private:
  std::unique_ptr<LogSink> sink_;
  Media* media_;
  FaultInjector* fault_injector_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_
