// Write-ahead commit log of the storage engine. Records are CRC-framed and
// replayable; segments are retired when the memtable they cover is flushed,
// which bounds memory for the in-memory sink.
//
// Durability model: appends become durable in batches of `sync_every_appends`
// (Cassandra's batch commitlog mode; 1 = every append is synced). A crash
// (`Crash`) keeps only the synced watermark plus a seeded fraction of the
// unsynced tail — possibly cutting mid-record, exactly what a torn page
// looks like. Recovery (`Recover`) replays every intact record and truncates
// the segment at the last intact record, so post-restart appends can never
// interleave with garbage left behind by the crash.
//
// Concurrency: Append is thread-safe and group-committed (docs/CONCURRENCY.md).
// Concurrent appenders park their framed records in the open group; the first
// one in becomes the leader and flushes whole groups — one sink append and one
// sequential media write per batch — while followers wait for their group's
// verdict. With a single appender every group holds one record and the
// behavior is bit-identical to the historical per-record path.

#ifndef MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_
#define MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/kvstore/media.h"
#include "src/kvstore/row.h"

namespace minicrypt {

class FaultInjector;

// Destination for log bytes. The engine charges the media model separately;
// the sink is only about durability of the bytes.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status ReadAll(std::string* out) const = 0;
  virtual Status Truncate() = 0;
  // Keeps only the first `size` bytes (crash tail-drop, recovery truncation).
  virtual Status TruncateTo(size_t size) = 0;
};

// Keeps log bytes in memory. Default for simulations.
class MemoryLogSink : public LogSink {
 public:
  Status Append(std::string_view bytes) override;
  Status ReadAll(std::string* out) const override;
  Status Truncate() override;
  Status TruncateTo(size_t size) override;

 private:
  std::string data_;
};

// Appends to a real file (buffered; no fsync). For replay tests.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(std::string path);

  Status Append(std::string_view bytes) override;
  Status ReadAll(std::string* out) const override;
  Status Truncate() override;
  Status TruncateTo(size_t size) override;

 private:
  std::string path_;
};

class CommitLog {
 public:
  // `media` may be nullptr (no latency charging). `fault_injector` (optional)
  // makes Append fail at the kCommitLogAppend point — the fsync-equivalent
  // durability failure; the engine then rejects the whole mutation.
  // `sync_every_appends` >= 1: how many appends share one fsync; anything the
  // last sync has not covered is at risk in Crash.
  CommitLog(std::unique_ptr<LogSink> sink, Media* media,
            FaultInjector* fault_injector = nullptr, uint64_t sync_every_appends = 1);

  // Appends one record: the row update applied at `encoded_key`. Thread-safe;
  // concurrent calls are group-committed (see file comment). Returns the
  // durability verdict of the batch carrying this record.
  Status Append(std::string_view encoded_key, const Row& update);

  // Replays every intact record in order; stops at the first torn/corrupt
  // record (normal after a crash mid-append). Read-only: the suspect tail
  // stays in the sink. Use Recover on the restart path.
  Status Replay(const std::function<void(std::string_view key, const Row& row)>& apply) const;

  // Replay + truncate the segment at the last intact record. Restart must use
  // this (not Replay): appends after a bare Replay would land beyond the torn
  // tail and be unreachable on the next recovery.
  Status Recover(const std::function<void(std::string_view key, const Row& row)>& apply);

  // Simulates the node process dying: drops `draw % (unsynced_tail + 1)`
  // bytes off the end of the segment — byte-granular, so the cut can land in
  // the middle of a record. Returns the number of bytes lost.
  size_t Crash(uint64_t draw);

  // Drops all records (called after a successful memtable flush).
  Status Retire();

  // Bytes appended but not yet covered by a sync (introspection for tests).
  size_t UnsyncedBytes() const;

 private:
  // One group commit: the records batched into a single sink append + media
  // write, and the shared verdict every appender in the batch returns.
  // Heap-allocated and shared so a follower's handle stays valid no matter
  // how the leader advances open_group_.
  struct Group {
    std::vector<std::string> records;
    Status status = Status::Ok();
    bool flushed = false;
  };

  // Waits until no group-commit leader is mid-flush. Caller holds mu_.
  void WaitForLeaderLocked(std::unique_lock<std::mutex>& lock) const;

  std::unique_ptr<LogSink> sink_;
  Media* media_;
  FaultInjector* fault_injector_;
  const uint64_t sync_every_appends_;

  // mu_ guards everything below (and sink_ access ordering: only the leader
  // touches the sink, with mu_ released during the flush itself).
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::shared_ptr<Group> open_group_;
  bool leader_active_ = false;
  uint64_t appends_since_sync_ = 0;
  size_t appended_bytes_ = 0;
  size_t synced_bytes_ = 0;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_COMMIT_LOG_H_
