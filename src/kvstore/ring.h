// Consistent-hash ring with virtual nodes — how the cluster places partitions
// on nodes (Cassandra-style token ring). The ring is elastic: membership
// changes plant/retire token sets and RebalanceTokens moves individual vnode
// tokens between nodes; a partition's replica set is always the first rf
// distinct owners at/after its token walking clockwise.

#ifndef MINICRYPT_SRC_KVSTORE_RING_H_
#define MINICRYPT_SRC_KVSTORE_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace minicrypt {

class HashRing {
 public:
  // `vnodes` tokens are planted per node for even load.
  explicit HashRing(int vnodes = 16) : vnodes_(vnodes) {}

  void AddNode(int node_id);
  void RemoveNode(int node_id);

  // The token set AddNode(node_id) would plant — stable across process runs
  // (pure FNV-1a of "node-<id>-vnode-<v>"), so a membership plan persisted
  // before a crash re-derives the same tokens after restart.
  static std::vector<uint64_t> PlanTokens(int node_id, int vnodes);

  // AddNode with an explicit token set (the persisted plan). Tokens already
  // owned by another node are skipped, never stolen.
  void AddNodeWithTokens(int node_id, const std::vector<uint64_t>& tokens);

  // Reassigns one token to `to_node` (which must be a member). Only the key
  // range ending at `token` changes primary ownership. False when the token
  // is not on the ring or `to_node` is unknown.
  bool MoveToken(uint64_t token, int to_node);

  // The first `rf` distinct nodes at/after the partition's token, walking the
  // ring clockwise. If rf >= node count, every node is returned.
  std::vector<int> Replicas(std::string_view partition_key, int rf) const;

  // Owner of the first token at/after the partition's token (-1 on an empty
  // ring) — the head of the replica walk.
  int PrimaryOwner(std::string_view partition_key) const;

  // Token of a partition key (exposed for tests).
  static uint64_t Token(std::string_view partition_key);

  bool Contains(int node_id) const;
  std::vector<uint64_t> TokensOf(int node_id) const;
  // Full (token, owner) dump in token order — property tests walk this to
  // prove ownership is a total partition of the token space.
  std::vector<std::pair<uint64_t, int>> TokenDump() const;

  size_t node_count() const { return node_ids_.size(); }
  const std::vector<int>& node_ids() const { return node_ids_; }
  int vnodes() const { return vnodes_; }

 private:
  int vnodes_;
  std::map<uint64_t, int> ring_;  // token -> node id
  std::vector<int> node_ids_;
  // Tokens currently owned per node; a member rebalanced down to zero tokens
  // is unreachable by the replica walk, and Replicas caps its want at the
  // count of nodes that actually own tokens.
  std::map<int, size_t> token_counts_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_RING_H_
