// Consistent-hash ring with virtual nodes — how the cluster places partitions
// on nodes (Cassandra-style token ring).

#ifndef MINICRYPT_SRC_KVSTORE_RING_H_
#define MINICRYPT_SRC_KVSTORE_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace minicrypt {

class HashRing {
 public:
  // `vnodes` tokens are planted per node for even load.
  explicit HashRing(int vnodes = 16) : vnodes_(vnodes) {}

  void AddNode(int node_id);
  void RemoveNode(int node_id);

  // The first `rf` distinct nodes at/after the partition's token, walking the
  // ring clockwise. If rf >= node count, every node is returned.
  std::vector<int> Replicas(std::string_view partition_key, int rf) const;

  // Token of a partition key (exposed for tests).
  static uint64_t Token(std::string_view partition_key);

  size_t node_count() const { return node_ids_.size(); }

 private:
  int vnodes_;
  std::map<uint64_t, int> ring_;  // token -> node id
  std::vector<int> node_ids_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_RING_H_
