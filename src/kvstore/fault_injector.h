// Deterministic fault injection for the kvstore substrate.
//
// The cluster (and the layers under it: media, commit log) consults one
// injector at every fault point. Whether the k-th evaluation of a point fires
// is a pure function of (seed, point, k), so a schedule replays exactly from
// its seed regardless of how threads interleave — each thread just claims
// ordinals from a per-point atomic counter. Single-threaded runs are fully
// deterministic end to end; that is what the seed-reproducibility test pins.
//
// Faults are specified probabilistically (per-point rate) or as a script
// ("fail the 3rd LWT on table t"). Per-point trip counters are exported
// through the src/obs metrics registry as fault.<point>.trips.

#ifndef MINICRYPT_SRC_KVSTORE_FAULT_INJECTOR_H_
#define MINICRYPT_SRC_KVSTORE_FAULT_INJECTOR_H_

#include <atomic>
#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace minicrypt {

class Counter;

// Every place the substrate asks "does this operation fail here?".
enum class FaultPoint : int {
  kMediaReadError = 0,   // replica fails to serve a read (bad sector / timeout)
  kMediaWriteError,      // replica fails to persist a write
  kMediaLatency,         // latency spike inside SimulatedMedia
  kCommitLogAppend,      // fsync-equivalent failure in CommitLog::Append
  kLwtAmbiguous,         // LWT applies, then the coordinator reports a timeout
  kReplicaDrop,          // coordinator->replica message lost
  kReplicaDelay,         // coordinator->replica message delayed
  kNodeFlap,             // node down/up toggle (drawn in Cluster::ChaosTick)
  kClockSkew,            // LWW timestamp skew on plain writes
  kCrash,                // node crash; the draw sizes the torn commit-log tail
  kMediaCorruption,      // seeded bit-flip in a stored SSTable block
  kTopologyPersist,      // membership state-machine persist fails (no transition)
  kStreamInterrupt,      // range-streaming session aborts mid-transfer
  kIndexSplit,           // secondary-index lazy-sort/split aborts before the commit point
  kIndexPersist,         // secondary-index buffer truncation/seal persist skipped
  kRotatePersist,        // rotation state-machine persist fails (no stage transition)
  kRotateReseal,         // rotator crashes mid-range, before re-sealing a pack
};

inline constexpr int kFaultPointCount = 17;

std::string_view FaultPointName(FaultPoint point);

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  uint64_t seed() const { return seed_; }

  // --- Configuration ----------------------------------------------------------

  // Probability in [0, 1] that an evaluation of `point` fires.
  void SetRate(FaultPoint point, double rate);
  double Rate(FaultPoint point) const;

  // Scripted mode: fire on the `nth` (1-based) evaluation of `point` whose
  // context contains `context_substr` (empty matches every evaluation).
  // Scripts fire exactly once and compose with rates (either may trip).
  void Script(FaultPoint point, uint64_t nth, std::string context_substr = "");

  // Zeroes every rate and drops pending scripts so in-flight work completes
  // cleanly. Counters and the recorded schedule survive for post-run asserts.
  void Heal();

  // --- The fault points' entry ----------------------------------------------

  // True when this evaluation of `point` fires. `context` is a free-form
  // label (table name, "node=2", ...) matched by scripts. When `draw` is
  // non-null it receives a deterministic per-evaluation value for sizing the
  // fault (latency spike length, skew amount) — stable whether or not the
  // evaluation fires.
  bool Fire(FaultPoint point, std::string_view context = {}, uint64_t* draw = nullptr);

  // Magnitude mappers for the draw handed out by Fire.
  uint64_t LatencySpikeMicros(uint64_t draw) const;
  uint64_t ClockSkewSteps(uint64_t draw) const;

  void set_latency_spike_base_micros(uint64_t v) { latency_spike_base_micros_ = v; }
  void set_clock_skew_max_steps(uint64_t v) { clock_skew_max_steps_ = v; }

  // --- Introspection ----------------------------------------------------------

  uint64_t trips(FaultPoint point) const;
  uint64_t evaluations(FaultPoint point) const;

  // When enabled, Fire records the ordinal of every evaluation that fired.
  void set_record_schedule(bool on) { record_schedule_.store(on, std::memory_order_relaxed); }

  // "media_read_error:3,17,42;..." — the full fired schedule (requires
  // recording). Two runs from one seed must produce identical strings.
  std::string ScheduleString() const;

  // "media_read_error:3/120 ..." trips/evaluations per point, for logs.
  std::string Summary() const;

 private:
  struct PointState {
    std::atomic<uint64_t> evaluations{0};
    std::atomic<uint64_t> trips{0};
    std::atomic<double> rate{0.0};
    Counter* trip_counter = nullptr;  // interned obs counter, never null
  };

  struct ScriptEntry {
    FaultPoint point;
    uint64_t nth;
    std::string context_substr;
    uint64_t matched = 0;
    bool done = false;
  };

  bool ScriptFires(FaultPoint point, std::string_view context);

  const uint64_t seed_;
  std::array<PointState, kFaultPointCount> points_;

  uint64_t latency_spike_base_micros_ = 2000;
  uint64_t clock_skew_max_steps_ = 64;

  std::atomic<bool> record_schedule_{false};
  std::atomic<bool> have_scripts_{false};

  mutable std::mutex mu_;
  std::vector<ScriptEntry> scripts_;
  std::array<std::vector<uint64_t>, kFaultPointCount> fired_ordinals_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_FAULT_INJECTOR_H_
