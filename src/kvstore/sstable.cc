#include "src/kvstore/sstable.h"

#include "src/common/coding.h"
#include "src/common/cpu_features.h"
#include "src/common/crc32c.h"
#include "src/compress/compressor.h"
#include "src/kvstore/corruption.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// v2 block checksums use CRC32C with runtime SSE4.2/scalar dispatch
// (src/common/crc32c.h). Builder and reader live in this TU, so the
// polynomial choice is a private detail of the at-rest format.
uint32_t Crc32(std::string_view data) {
  RecordKernelDispatch(CurrentSimdLevel() >= SimdLevel::kSse42 ? SimdLevel::kSse42
                                                               : SimdLevel::kScalar);
  return Crc32c(data);
}

// Magic bytes of the v2 checksummed footer (docs/FORMATS.md).
constexpr std::string_view kFooterMagic = "MCS2";

// Little-endian fixed32 from the first 4 bytes, 0 when too short.
uint32_t ReadFixed32(std::string_view bytes) {
  auto v = GetFixed32(&bytes);
  return v.ok() ? *v : 0;
}

// v2 at-rest framing: 1-byte tag (0 = raw, 1 = zlib) + payload + fixed32
// CRC32 over tag||payload. The CRC suffix is appended by the builder; these
// helpers frame/unframe the tag||payload body. Incompressible blocks stay raw.
std::string CompressBlockBody(std::string_view raw, bool server_compression) {
  if (server_compression) {
    const Compressor* zlib = FindCompressor("zlib");
    auto compressed = zlib->Compress(raw);
    if (compressed.ok() && compressed->size() + 1 < raw.size()) {
      std::string out;
      out.reserve(compressed->size() + 1);
      out.push_back('\x01');
      out.append(*compressed);
      return out;
    }
  }
  std::string out;
  out.reserve(raw.size() + 1);
  out.push_back('\x00');
  out.append(raw);
  return out;
}

Result<std::string> DecompressBlockBody(std::string_view body, const std::string& context) {
  if (body.empty()) {
    return CorruptionDetected(context + ": empty at-rest block");
  }
  const char tag = body.front();
  body.remove_prefix(1);
  if (tag == '\x00') {
    return std::string(body);
  }
  if (tag == '\x01') {
    auto raw = FindCompressor("zlib")->Decompress(body);
    if (!raw.ok()) {
      return CorruptionDetected(context + ": at-rest block fails to decompress (" +
                                raw.status().message() + ")");
    }
    return raw;
  }
  return CorruptionDetected(context + ": unknown at-rest block tag " +
                            std::to_string(static_cast<int>(tag)));
}

}  // namespace

Status ForEachBlockEntry(std::string_view raw_block,
                         const std::function<bool(std::string_view, const Row&)>& fn) {
  std::string_view in = raw_block;
  while (!in.empty()) {
    MC_ASSIGN_OR_RETURN(std::string_view key, GetLengthPrefixed(&in));
    MC_ASSIGN_OR_RETURN(Row row, DecodeRow(&in));
    if (!fn(key, row)) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

SstableBuilder::SstableBuilder(uint64_t id, SstableOptions options)
    : id_(id), options_(std::move(options)) {}

void SstableBuilder::Add(std::string_view encoded_key, const Row& row) {
  if (pending_.empty()) {
    pending_first_key_ = std::string(encoded_key);
  }
  PutLengthPrefixed(&pending_, encoded_key);
  EncodeRow(row, &pending_);
  last_key_ = std::string(encoded_key);
  keys_for_bloom_.emplace_back(encoded_key);
  ++entry_count_;
  if (pending_.size() >= options_.block_bytes) {
    FlushBlock();
  }
}

void SstableBuilder::FlushBlock() {
  if (pending_.empty()) {
    return;
  }
  block_raw_bytes_.push_back(pending_.size());
  std::string body = CompressBlockBody(pending_, options_.server_compression);
  PutFixed32(&body, Crc32(body));  // v2: trailing block checksum
  blocks_.push_back(std::move(body));
  block_first_key_.push_back(pending_first_key_);
  pending_.clear();
  pending_first_key_.clear();
}

std::shared_ptr<Sstable> SstableBuilder::Finish(Media* media, FaultInjector* fault_injector) {
  FlushBlock();
  BloomFilter bloom(keys_for_bloom_.size(), options_.bloom_bits_per_key);
  for (const auto& k : keys_for_bloom_) {
    bloom.Add(k);
  }
  auto table = std::shared_ptr<Sstable>(new Sstable(id_, options_, std::move(bloom)));
  table->blocks_ = std::move(blocks_);
  table->block_first_key_ = std::move(block_first_key_);
  table->entry_count_ = entry_count_;

  // v2 footer: magic, counts, then every block's CRC + stored length + first
  // key, sealed under its own CRC. The footer's CRC copies are authoritative
  // for scrub: a bit-flip in a block disagrees with the footer even if it
  // happens to land in the block's own CRC suffix.
  std::string footer(kFooterMagic);
  PutVarint64(&footer, table->blocks_.size());
  PutVarint64(&footer, table->entry_count_);
  table->block_crcs_.reserve(table->blocks_.size());
  for (size_t i = 0; i < table->blocks_.size(); ++i) {
    const std::string& stored = table->blocks_[i];
    uint32_t crc = 0;
    if (stored.size() >= 4) {
      crc = ReadFixed32(std::string_view(stored.data() + stored.size() - 4, 4));
    }
    table->block_crcs_.push_back(crc);
    PutFixed32(&footer, crc);
    PutVarint64(&footer, stored.size());
    PutLengthPrefixed(&footer, table->block_first_key_[i]);
  }
  PutFixed32(&footer, Crc32(footer));
  table->footer_ = std::move(footer);

  // Media corruption injection: one draw per stored block, after all
  // checksums are computed, so every injected flip is detectable.
  if (fault_injector != nullptr) {
    const std::string context =
        "table '" + options_.table + "' sstable #" + std::to_string(id_);
    for (auto& stored : table->blocks_) {
      uint64_t draw = 0;
      if (!stored.empty() &&
          fault_injector->Fire(FaultPoint::kMediaCorruption, context, &draw)) {
        const uint64_t bit = draw % (stored.size() * 8);
        stored[bit / 8] = static_cast<char>(stored[bit / 8] ^ (1u << (bit % 8)));
        OBS_COUNTER_INC("storage.corruption.injected");
      }
    }
  }

  for (const auto& b : table->blocks_) {
    table->at_rest_bytes_ += b.size();
  }
  table->at_rest_bytes_ += table->footer_.size();
  if (!table->block_first_key_.empty()) {
    table->smallest_ = table->block_first_key_.front();
    table->largest_ = last_key_;
  }
  if (media != nullptr && table->at_rest_bytes_ > 0) {
    media->Write(table->at_rest_bytes_, /*sequential=*/true);
  }
  return table;
}

Sstable::Sstable(uint64_t id, SstableOptions options, BloomFilter bloom)
    : id_(id), options_(std::move(options)), bloom_(std::move(bloom)) {}

std::string Sstable::BlockContext(size_t idx) const {
  return "table '" + options_.table + "' sstable #" + std::to_string(id_) + " block " +
         std::to_string(idx) + "/" + std::to_string(blocks_.size());
}

void Sstable::WarmInto(
    BlockCache* cache,
    const std::function<bool(std::string_view partition)>& serves_partition) const {
  if (cache == nullptr) {
    return;
  }
  for (size_t idx = 0; idx < blocks_.size(); ++idx) {
    if (serves_partition) {
      auto decoded = DecodeRowKey(block_first_key_[idx]);
      if (!decoded.ok() || !serves_partition(decoded->partition)) {
        continue;
      }
    }
    cache->Put(id_, idx, std::make_shared<const std::string>(blocks_[idx]));
  }
}

Result<std::shared_ptr<const std::string>> Sstable::FetchBlock(size_t idx, BlockCache* cache,
                                                               Media* media) const {
  std::shared_ptr<const std::string> at_rest;
  if (cache != nullptr) {
    auto hit = cache->Get(id_, idx);
    if (hit.has_value()) {
      at_rest = *hit;
    }
  }
  if (at_rest == nullptr) {
    // Media holds the at-rest form; decompress/verify per access.
    if (media != nullptr) {
      media->Read(blocks_[idx].size());
    }
    at_rest = std::make_shared<const std::string>(blocks_[idx]);
    if (cache != nullptr) {
      cache->Put(id_, idx, at_rest);
    }
  }
  // v2 framing: tag || payload || fixed32 crc. Verify on every fetch — cached
  // copies included — so a flipped bit can never decode into plausible rows.
  if (at_rest->size() < 5) {
    return CorruptionDetected(BlockContext(idx) + ": at-rest block truncated (" +
                              std::to_string(at_rest->size()) + " bytes)");
  }
  std::string_view body(at_rest->data(), at_rest->size() - 4);
  if (options_.verify_checksums) {
    const uint32_t stored_crc =
        ReadFixed32(std::string_view(at_rest->data() + at_rest->size() - 4, 4));
    const uint32_t actual_crc = Crc32(body);
    if (actual_crc != stored_crc ||
        (idx < block_crcs_.size() && stored_crc != block_crcs_[idx])) {
      OBS_COUNTER_INC("storage.corruption.block_crc_mismatches");
      return CorruptionDetected(BlockContext(idx) + ": block checksum mismatch (stored " +
                                std::to_string(stored_crc) + ", computed " +
                                std::to_string(actual_crc) + ")");
    }
  }
  MC_ASSIGN_OR_RETURN(std::string raw, DecompressBlockBody(body, BlockContext(idx)));
  return std::make_shared<const std::string>(std::move(raw));
}

Status Sstable::VerifyChecksums(Media* media) const {
  if (media != nullptr && at_rest_bytes_ > 0) {
    media->Read(at_rest_bytes_);  // one streaming read of the whole extent
  }
  // Footer first: magic + its own CRC + counts must line up.
  if (footer_.size() < kFooterMagic.size() + 4 ||
      std::string_view(footer_).substr(0, kFooterMagic.size()) != kFooterMagic) {
    return CorruptionDetected("table '" + options_.table + "' sstable #" + std::to_string(id_) +
                              ": footer magic missing");
  }
  std::string_view body(footer_.data(), footer_.size() - 4);
  if (Crc32(body) != ReadFixed32(std::string_view(footer_.data() + footer_.size() - 4, 4))) {
    return CorruptionDetected("table '" + options_.table + "' sstable #" + std::to_string(id_) +
                              ": footer checksum mismatch");
  }
  std::string_view in = body.substr(kFooterMagic.size());
  auto block_count = GetVarint64(&in);
  auto entries = GetVarint64(&in);
  if (!block_count.ok() || !entries.ok() || *block_count != blocks_.size() ||
      *entries != entry_count_) {
    return CorruptionDetected("table '" + options_.table + "' sstable #" + std::to_string(id_) +
                              ": footer block/entry counts disagree with the table");
  }
  for (size_t idx = 0; idx < blocks_.size(); ++idx) {
    auto footer_crc = GetFixed32(&in);
    auto stored_len = GetVarint64(&in);
    auto first_key = GetLengthPrefixed(&in);
    if (!footer_crc.ok() || !stored_len.ok() || !first_key.ok()) {
      return CorruptionDetected("table '" + options_.table + "' sstable #" +
                                std::to_string(id_) + ": footer entry " + std::to_string(idx) +
                                " truncated");
    }
    const std::string& stored = blocks_[idx];
    if (*stored_len != stored.size() || stored.size() < 5) {
      return CorruptionDetected(BlockContext(idx) + ": stored size " +
                                std::to_string(stored.size()) + " != footer size " +
                                std::to_string(*stored_len));
    }
    std::string_view block_body(stored.data(), stored.size() - 4);
    const uint32_t block_crc =
        ReadFixed32(std::string_view(stored.data() + stored.size() - 4, 4));
    if (Crc32(block_body) != block_crc || block_crc != *footer_crc) {
      OBS_COUNTER_INC("storage.corruption.block_crc_mismatches");
      return CorruptionDetected(BlockContext(idx) + ": block checksum mismatch during scrub");
    }
  }
  return Status::Ok();
}

int Sstable::FindBlock(std::string_view encoded_key) const {
  // Last block whose first key <= encoded_key (binary search).
  int lo = 0;
  int hi = static_cast<int>(block_first_key_.size()) - 1;
  int ans = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (block_first_key_[static_cast<size_t>(mid)] <= encoded_key) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

Result<std::optional<Row>> Sstable::Get(std::string_view encoded_key, BlockCache* cache,
                                        Media* media) const {
  if (blocks_.empty() || !bloom_.MayContain(encoded_key)) {
    return std::optional<Row>();
  }
  const int b = FindBlock(encoded_key);
  if (b < 0) {
    return std::optional<Row>();
  }
  MC_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> block,
                      FetchBlock(static_cast<size_t>(b), cache, media));
  std::optional<Row> found;
  MC_RETURN_IF_ERROR(ForEachBlockEntry(*block, [&](std::string_view key, const Row& row) {
    if (key == encoded_key) {
      found = row;
      return false;
    }
    return key < encoded_key;  // keep scanning while below
  }));
  return found;
}

Result<std::optional<std::string>> Sstable::FloorKey(std::string_view prefix,
                                                     std::string_view encoded_key,
                                                     BlockCache* cache, Media* media) const {
  if (blocks_.empty() || smallest_ > encoded_key) {
    return std::optional<std::string>();
  }
  int b = FindBlock(encoded_key);
  if (b < 0) {
    return std::optional<std::string>();
  }
  // The floor may be in block b; if block b has no key <= target (cannot
  // happen since its first key <= target), or the found floor lacks the
  // prefix, step to earlier blocks while they can still contain the prefix.
  while (b >= 0) {
    MC_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> block,
                        FetchBlock(static_cast<size_t>(b), cache, media));
    std::string best;
    MC_RETURN_IF_ERROR(ForEachBlockEntry(*block, [&](std::string_view key, const Row& row) {
      if (key > encoded_key) {
        return false;
      }
      best = std::string(key);
      return true;
    }));
    if (!best.empty()) {
      if (best.size() >= prefix.size() &&
          std::string_view(best).substr(0, prefix.size()) == prefix) {
        return std::optional<std::string>(std::move(best));
      }
      // The floor exists but belongs to an earlier partition — no key of this
      // partition is <= target in this table.
      return std::optional<std::string>();
    }
    --b;
  }
  return std::optional<std::string>();
}

Status Sstable::Scan(std::string_view lo, std::string_view hi,
                     const std::function<bool(std::string_view, const Row&)>& fn,
                     BlockCache* cache, Media* media) const {
  if (blocks_.empty() || hi < smallest_ || lo > largest_) {
    return Status::Ok();
  }
  int b = FindBlock(lo);
  if (b < 0) {
    b = 0;
  }
  for (size_t idx = static_cast<size_t>(b); idx < blocks_.size(); ++idx) {
    if (block_first_key_[idx] > hi) {
      break;
    }
    MC_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> block,
                        FetchBlock(idx, cache, media));
    bool keep_going = true;
    MC_RETURN_IF_ERROR(ForEachBlockEntry(*block, [&](std::string_view key, const Row& row) {
      if (key > hi) {
        keep_going = false;
        return false;
      }
      if (key >= lo) {
        if (!fn(key, row)) {
          keep_going = false;
          return false;
        }
      }
      return true;
    }));
    if (!keep_going) {
      break;
    }
  }
  return Status::Ok();
}

}  // namespace minicrypt
