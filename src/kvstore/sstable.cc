#include "src/kvstore/sstable.h"

#include "src/common/coding.h"
#include "src/compress/compressor.h"

namespace minicrypt {

namespace {

// At-rest block framing when server compression is on: 1-byte tag (0 = raw,
// 1 = zlib) followed by the payload. Incompressible blocks stay raw.
std::string CompressBlockAtRest(std::string_view raw) {
  const Compressor* zlib = FindCompressor("zlib");
  auto compressed = zlib->Compress(raw);
  if (compressed.ok() && compressed->size() + 1 < raw.size()) {
    std::string out;
    out.reserve(compressed->size() + 1);
    out.push_back('\x01');
    out.append(*compressed);
    return out;
  }
  std::string out;
  out.reserve(raw.size() + 1);
  out.push_back('\x00');
  out.append(raw);
  return out;
}

Result<std::string> DecompressBlockAtRest(std::string_view at_rest) {
  if (at_rest.empty()) {
    return Status::Corruption("empty at-rest block");
  }
  const char tag = at_rest.front();
  at_rest.remove_prefix(1);
  if (tag == '\x00') {
    return std::string(at_rest);
  }
  if (tag == '\x01') {
    return FindCompressor("zlib")->Decompress(at_rest);
  }
  return Status::Corruption("unknown at-rest block tag");
}

}  // namespace

Status ForEachBlockEntry(std::string_view raw_block,
                         const std::function<bool(std::string_view, const Row&)>& fn) {
  std::string_view in = raw_block;
  while (!in.empty()) {
    MC_ASSIGN_OR_RETURN(std::string_view key, GetLengthPrefixed(&in));
    MC_ASSIGN_OR_RETURN(Row row, DecodeRow(&in));
    if (!fn(key, row)) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

SstableBuilder::SstableBuilder(uint64_t id, SstableOptions options)
    : id_(id), options_(options) {}

void SstableBuilder::Add(std::string_view encoded_key, const Row& row) {
  if (pending_.empty()) {
    pending_first_key_ = std::string(encoded_key);
  }
  PutLengthPrefixed(&pending_, encoded_key);
  EncodeRow(row, &pending_);
  last_key_ = std::string(encoded_key);
  keys_for_bloom_.emplace_back(encoded_key);
  ++entry_count_;
  if (pending_.size() >= options_.block_bytes) {
    FlushBlock();
  }
}

void SstableBuilder::FlushBlock() {
  if (pending_.empty()) {
    return;
  }
  block_raw_bytes_.push_back(pending_.size());
  if (options_.server_compression) {
    blocks_.push_back(CompressBlockAtRest(pending_));
  } else {
    std::string out;
    out.reserve(pending_.size() + 1);
    out.push_back('\x00');
    out.append(pending_);
    blocks_.push_back(std::move(out));
  }
  block_first_key_.push_back(pending_first_key_);
  pending_.clear();
  pending_first_key_.clear();
}

std::shared_ptr<Sstable> SstableBuilder::Finish(Media* media) {
  FlushBlock();
  BloomFilter bloom(keys_for_bloom_.size(), options_.bloom_bits_per_key);
  for (const auto& k : keys_for_bloom_) {
    bloom.Add(k);
  }
  auto table = std::shared_ptr<Sstable>(new Sstable(id_, options_, std::move(bloom)));
  table->blocks_ = std::move(blocks_);
  table->block_first_key_ = std::move(block_first_key_);
  table->entry_count_ = entry_count_;
  for (const auto& b : table->blocks_) {
    table->at_rest_bytes_ += b.size();
  }
  if (!table->block_first_key_.empty()) {
    table->smallest_ = table->block_first_key_.front();
    table->largest_ = last_key_;
  }
  if (media != nullptr && table->at_rest_bytes_ > 0) {
    media->Write(table->at_rest_bytes_, /*sequential=*/true);
  }
  return table;
}

Sstable::Sstable(uint64_t id, SstableOptions options, BloomFilter bloom)
    : id_(id), options_(options), bloom_(std::move(bloom)) {}

void Sstable::WarmInto(
    BlockCache* cache,
    const std::function<bool(std::string_view partition)>& serves_partition) const {
  if (cache == nullptr) {
    return;
  }
  for (size_t idx = 0; idx < blocks_.size(); ++idx) {
    if (serves_partition) {
      auto decoded = DecodeRowKey(block_first_key_[idx]);
      if (!decoded.ok() || !serves_partition(decoded->partition)) {
        continue;
      }
    }
    cache->Put(id_, idx, std::make_shared<const std::string>(blocks_[idx]));
  }
}

Result<std::shared_ptr<const std::string>> Sstable::FetchBlock(size_t idx, BlockCache* cache,
                                                               Media* media) const {
  if (cache != nullptr) {
    auto hit = cache->Get(id_, idx);
    if (hit.has_value()) {
      // Cached at-rest form; decompress per access when compression is on.
      MC_ASSIGN_OR_RETURN(std::string raw, DecompressBlockAtRest(**hit));
      return std::make_shared<const std::string>(std::move(raw));
    }
  }
  const std::string& at_rest = blocks_[idx];
  if (media != nullptr) {
    media->Read(at_rest.size());
  }
  if (cache != nullptr) {
    cache->Put(id_, idx, std::make_shared<const std::string>(at_rest));
  }
  MC_ASSIGN_OR_RETURN(std::string raw, DecompressBlockAtRest(at_rest));
  return std::make_shared<const std::string>(std::move(raw));
}

int Sstable::FindBlock(std::string_view encoded_key) const {
  // Last block whose first key <= encoded_key (binary search).
  int lo = 0;
  int hi = static_cast<int>(block_first_key_.size()) - 1;
  int ans = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (block_first_key_[static_cast<size_t>(mid)] <= encoded_key) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

std::optional<Row> Sstable::Get(std::string_view encoded_key, BlockCache* cache,
                                Media* media) const {
  if (blocks_.empty() || !bloom_.MayContain(encoded_key)) {
    return std::nullopt;
  }
  const int b = FindBlock(encoded_key);
  if (b < 0) {
    return std::nullopt;
  }
  auto block = FetchBlock(static_cast<size_t>(b), cache, media);
  if (!block.ok()) {
    return std::nullopt;
  }
  std::optional<Row> found;
  ForEachBlockEntry(**block, [&](std::string_view key, const Row& row) {
    if (key == encoded_key) {
      found = row;
      return false;
    }
    return key < encoded_key;  // keep scanning while below
  });
  return found;
}

std::optional<std::string> Sstable::FloorKey(std::string_view prefix,
                                             std::string_view encoded_key, BlockCache* cache,
                                             Media* media) const {
  if (blocks_.empty() || smallest_ > encoded_key) {
    return std::nullopt;
  }
  int b = FindBlock(encoded_key);
  if (b < 0) {
    return std::nullopt;
  }
  // The floor may be in block b; if block b has no key <= target (cannot
  // happen since its first key <= target), or the found floor lacks the
  // prefix, step to earlier blocks while they can still contain the prefix.
  while (b >= 0) {
    auto block = FetchBlock(static_cast<size_t>(b), cache, media);
    if (!block.ok()) {
      return std::nullopt;
    }
    std::string best;
    ForEachBlockEntry(**block, [&](std::string_view key, const Row& row) {
      if (key > encoded_key) {
        return false;
      }
      best = std::string(key);
      return true;
    });
    if (!best.empty()) {
      if (best.size() >= prefix.size() && std::string_view(best).substr(0, prefix.size()) == prefix) {
        return best;
      }
      // The floor exists but belongs to an earlier partition — no key of this
      // partition is <= target in this table.
      return std::nullopt;
    }
    --b;
  }
  return std::nullopt;
}

Status Sstable::Scan(std::string_view lo, std::string_view hi,
                     const std::function<bool(std::string_view, const Row&)>& fn,
                     BlockCache* cache, Media* media) const {
  if (blocks_.empty() || hi < smallest_ || lo > largest_) {
    return Status::Ok();
  }
  int b = FindBlock(lo);
  if (b < 0) {
    b = 0;
  }
  for (size_t idx = static_cast<size_t>(b); idx < blocks_.size(); ++idx) {
    if (block_first_key_[idx] > hi) {
      break;
    }
    MC_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> block,
                        FetchBlock(idx, cache, media));
    bool keep_going = true;
    MC_RETURN_IF_ERROR(ForEachBlockEntry(*block, [&](std::string_view key, const Row& row) {
      if (key > hi) {
        keep_going = false;
        return false;
      }
      if (key >= lo) {
        if (!fn(key, row)) {
          keep_going = false;
          return false;
        }
      }
      return true;
    }));
    if (!keep_going) {
      break;
    }
  }
  return Status::Ok();
}

}  // namespace minicrypt
