// Sharded LRU block cache with a byte capacity. This models the server's RAM:
// the paper's central performance mechanism is that compression lets ~4x more
// data fit here before reads start paying media latency (paper §1, §8.1).

#ifndef MINICRYPT_SRC_KVSTORE_BLOCK_CACHE_H_
#define MINICRYPT_SRC_KVSTORE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace minicrypt {

struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
};

class BlockCache {
 public:
  // `capacity_bytes` == 0 disables caching entirely (every lookup misses).
  explicit BlockCache(size_t capacity_bytes, int shards = 8);

  // Key is (table id << 32 | sstable id) combined with the block index by the
  // caller; we take an opaque 128-bit-ish key as two u64s.
  std::optional<std::shared_ptr<const std::string>> Get(uint64_t owner, uint64_t index);

  void Put(uint64_t owner, uint64_t index, std::shared_ptr<const std::string> block);

  // Drops every block belonging to `owner` (called when an SSTable dies in
  // compaction).
  void EraseOwner(uint64_t owner);

  // Drops everything (a node crash wipes its RAM). Hit/miss/eviction counters
  // survive — they describe history, not contents.
  void Clear();

  BlockCacheStats Stats() const;
  size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    uint64_t owner;
    uint64_t index;
    std::shared_ptr<const std::string> block;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static uint64_t MixKey(uint64_t owner, uint64_t index);
  Shard& ShardFor(uint64_t key);
  void EvictLocked(Shard& shard, size_t per_shard_capacity);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_KVSTORE_BLOCK_CACHE_H_
