#include "src/common/executor.h"

#include <algorithm>

namespace minicrypt {

Executor::Executor(const Options& options)
    : queue_limit_(std::max<size_t>(1, options.queue_limit)) {
  const int threads = std::max(1, options.threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

bool Executor::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_limit_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

bool Executor::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this]() { return shutdown_ || queue_.size() < queue_limit_; });
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) {
      return;  // Already shut down and joined.
    }
    shutdown_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  {
    // Drain: admitted tasks always run before the workers exit.
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

size_t Executor::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t Executor::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ with an empty queue: exit once nothing is left to drain.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    space_cv_.notify_one();
    try {
      task();
    } catch (...) {
      uncaught_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace minicrypt
