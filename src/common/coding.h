// Binary coding helpers: varints, fixed-width little-endian integers, and
// order-preserving big-endian key encodings. Used by the pack codec, the
// SSTable format, and the commit log.

#ifndef MINICRYPT_SRC_COMMON_CODING_H_
#define MINICRYPT_SRC_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace minicrypt {

// --- Varint (LEB128, unsigned) ---------------------------------------------

// Appends a varint-encoded `v` to `dst` (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

// Parses a varint from the front of `*input`, advancing it past the encoding.
// Returns Corruption when the input is truncated or over-long.
Result<uint64_t> GetVarint64(std::string_view* input);

// Number of bytes PutVarint64 would append for `v`.
size_t VarintLength(uint64_t v);

// --- Fixed-width little-endian ----------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
Result<uint32_t> GetFixed32(std::string_view* input);
Result<uint64_t> GetFixed64(std::string_view* input);

// --- Length-prefixed strings -------------------------------------------------

// Appends varint(length) followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);

// Parses a length-prefixed string, advancing `*input`.
Result<std::string_view> GetLengthPrefixed(std::string_view* input);

// --- Order-preserving key encoding -------------------------------------------
//
// MiniCrypt stores keys as byte strings ordered lexicographically. Unsigned
// 64-bit integer keys are encoded big-endian so that numeric order equals byte
// order — this is what lets "SELECT ... WHERE packID <= key ORDER BY packID
// DESC LIMIT 1" locate the right pack.

// 8-byte big-endian encoding of `v` (lexicographic order == numeric order).
std::string EncodeKey64(uint64_t v);

// Inverse of EncodeKey64; Corruption if `s` is not exactly 8 bytes.
Result<uint64_t> DecodeKey64(std::string_view s);

// Appends the big-endian encoding to `dst` (for composite keys).
void AppendKey64(std::string* dst, uint64_t v);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_CODING_H_
