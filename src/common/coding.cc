#include "src/common/coding.h"

namespace minicrypt {

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

Result<uint64_t> GetVarint64(std::string_view* input) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) {
      return Status::Corruption("truncated varint");
    }
    auto byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      return result;
    }
  }
  return Status::Corruption("varint too long");
}

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>(v >> (8 * i));
  }
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(v >> (8 * i));
  }
  dst->append(buf, 8);
}

Result<uint32_t> GetFixed32(std::string_view* input) {
  if (input->size() < 4) {
    return Status::Corruption("truncated fixed32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*input)[i])) << (8 * i);
  }
  input->remove_prefix(4);
  return v;
}

Result<uint64_t> GetFixed64(std::string_view* input) {
  if (input->size() < 8) {
    return Status::Corruption("truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*input)[i])) << (8 * i);
  }
  input->remove_prefix(8);
  return v;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

Result<std::string_view> GetLengthPrefixed(std::string_view* input) {
  MC_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(input));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  std::string_view out = input->substr(0, len);
  input->remove_prefix(len);
  return out;
}

std::string EncodeKey64(uint64_t v) {
  std::string out;
  AppendKey64(&out, v);
  return out;
}

void AppendKey64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(v >> (8 * (7 - i)));
  }
  dst->append(buf, 8);
}

Result<uint64_t> DecodeKey64(std::string_view s) {
  if (s.size() != 8) {
    return Status::Corruption("key is not 8 bytes");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

}  // namespace minicrypt
