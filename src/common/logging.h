// Minimal leveled logging. Off by default (warnings and errors only); set
// MINICRYPT_LOG_LEVEL=debug|info|warn|error or call SetLogLevel().

#ifndef MINICRYPT_SRC_COMMON_LOGGING_H_
#define MINICRYPT_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace minicrypt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: writes one formatted line to stderr (thread-safe).
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define MC_LOG(level)                                          \
  if (::minicrypt::LogLevel::level < ::minicrypt::GetLogLevel()) \
    ;                                                          \
  else                                                         \
    ::minicrypt::LogMessage(::minicrypt::LogLevel::level, __FILE__, __LINE__).stream()

#define MC_LOG_DEBUG MC_LOG(kDebug)
#define MC_LOG_INFO MC_LOG(kInfo)
#define MC_LOG_WARN MC_LOG(kWarn)
#define MC_LOG_ERROR MC_LOG(kError)

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_LOGGING_H_
