#include "src/common/crc32c.h"

#include <array>
#include <cstring>

#include "src/common/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define MC_CRC32C_X86 1
#else
#define MC_CRC32C_X86 0
#endif

namespace minicrypt {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// Slice-by-8 tables: table[0] is the classic byte table, table[k] advances a
// byte that sits k positions deeper in a 8-byte chunk.
struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables.t[k][i] = (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xff];
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

uint32_t ExtendScalar(uint32_t crc, const char* p, size_t n) {
  const Tables& tb = GetTables();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tb.t[7][chunk & 0xff] ^ tb.t[6][(chunk >> 8) & 0xff] ^
          tb.t[5][(chunk >> 16) & 0xff] ^ tb.t[4][(chunk >> 24) & 0xff] ^
          tb.t[3][(chunk >> 32) & 0xff] ^ tb.t[2][(chunk >> 40) & 0xff] ^
          tb.t[1][(chunk >> 48) & 0xff] ^ tb.t[0][(chunk >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ static_cast<unsigned char>(*p++)) & 0xff];
  }
  return crc;
}

#if MC_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc, const char* p,
                                                          size_t n) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  auto crc32 = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc32 = _mm_crc32_u8(crc32, static_cast<unsigned char>(*p++));
  }
  return crc32;
}
#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  crc = ~crc;
#if MC_CRC32C_X86
  if (CurrentSimdLevel() >= SimdLevel::kSse42 && HostCpuFeatures().sse42) {
    return ~ExtendHardware(crc, data.data(), data.size());
  }
#endif
  return ~ExtendScalar(crc, data.data(), data.size());
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

uint32_t Crc32cScalar(std::string_view data) {
  return ~ExtendScalar(0xFFFFFFFFu, data.data(), data.size());
}

uint32_t Crc32cHardware(std::string_view data) {
#if MC_CRC32C_X86
  return ~ExtendHardware(0xFFFFFFFFu, data.data(), data.size());
#else
  return Crc32cScalar(data);
#endif
}

}  // namespace minicrypt
