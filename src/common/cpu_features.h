// Runtime CPU-feature probe and SIMD dispatch control.
//
// All vectorized hot-path kernels (codec wild copies, AES-NI/PCLMUL GCM,
// hardware CRC32C) consult this module at call time and fall back to their
// portable scalar implementations when the hardware lacks the instruction set
// or the operator forced scalar mode. The scalar paths are the test oracle:
// SIMD output must be byte-identical (tests/simd_kernels_test.cc).
//
// Environment knobs (read once, before the first dispatch decision):
//   MC_NO_SIMD=1     force every kernel onto its scalar path
//   MC_SIMD_LEVEL=N  cap the dispatch level (0=scalar, 1=sse42, 2=avx2);
//                    capped further by what the CPU actually supports
//
// Tests can move the level at runtime with OverrideSimdLevelForTest(); the
// override is likewise clamped to hardware capability, so asking for AVX2 on
// a machine without it silently tests the next level down (the differential
// tests iterate over SupportedSimdLevels() to cover exactly what can run).

#ifndef MINICRYPT_SRC_COMMON_CPU_FEATURES_H_
#define MINICRYPT_SRC_COMMON_CPU_FEATURES_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace minicrypt {

// Dispatch tiers for the integer/codec kernels, ordered: every level implies
// the ones below it.
enum class SimdLevel : int {
  kScalar = 0,  // portable C++, no intrinsics
  kSse42 = 1,   // SSE2..SSE4.2 (16-byte copies, CRC32C instruction)
  kAvx2 = 2,    // AVX2 (32-byte copies)
};

// What the hardware offers, probed once per process.
struct CpuFeatures {
  bool sse42 = false;
  bool avx2 = false;
  bool aesni = false;   // AES round instructions
  bool pclmul = false;  // carry-less multiply (GHASH, CRC folding)
  SimdLevel max_level = SimdLevel::kScalar;
};

// The probed hardware capabilities (independent of any override).
const CpuFeatures& HostCpuFeatures();

// Current dispatch level: min(hardware, MC_SIMD_LEVEL cap, test override),
// or kScalar when MC_NO_SIMD=1. Cheap (one relaxed atomic load) — kernels
// call this per operation.
SimdLevel CurrentSimdLevel();

// True when the AES-NI + PCLMUL GCM kernel should be used. Honors
// MC_NO_SIMD / overrides: forcing scalar also forces the portable cipher.
bool AesGcmHardwareEnabled();

// Test hook: clamps to hardware capability and returns the level actually in
// effect. Pass the host max_level to restore the default.
SimdLevel OverrideSimdLevelForTest(SimdLevel level);

// Every level in [kScalar, effective max], for differential tests.
std::vector<SimdLevel> SupportedSimdLevels();

const char* SimdLevelName(SimdLevel level);

// The codec.dispatch.{scalar,sse42,avx2} counters are recorded by the kernel
// call sites via RecordKernelDispatch() in src/obs/metrics.h (this module
// sits below the metrics registry in the dependency order).

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_CPU_FEATURES_H_
