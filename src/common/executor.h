// Bounded thread-pool executor: the substrate of the async request pipeline
// (docs/CONCURRENCY.md). A fixed set of worker threads drains a bounded FIFO
// of std::function tasks.
//
// Design rules:
//  - Bounded admission. TrySubmit never blocks: it fails fast when the queue
//    is at capacity, so callers choose their own overload policy (the cluster
//    runs replica legs inline on the submitting thread — "caller runs" — and
//    rejects Async* API submissions with Unavailable).
//  - Submit blocks for space (producer backpressure) and only fails after
//    Shutdown has begun.
//  - Shutdown drains. Tasks already admitted always run; Shutdown stops
//    intake, waits for the queue to empty and every in-flight task to finish,
//    then joins the workers. Destruction implies Shutdown.
//  - Exceptions don't kill workers. A throwing task is swallowed and counted
//    (uncaught_exceptions()); use SubmitFuture when the caller wants the
//    exception back — the returned std::future rethrows it on get().
//
// This header lives in src/common and therefore must not touch src/obs;
// owners (e.g. Cluster) export QueueDepth()/InFlight() as gauges themselves.

#ifndef MINICRYPT_SRC_COMMON_EXECUTOR_H_
#define MINICRYPT_SRC_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace minicrypt {

class Executor {
 public:
  struct Options {
    // Worker threads; clamped to >= 1.
    int threads = 4;
    // Max tasks waiting in the queue (excludes tasks already running).
    // Clamped to >= 1.
    size_t queue_limit = 1024;
    // Label used for debugging/ownership docs; not consumed at runtime.
    std::string name = "executor";
  };

  explicit Executor(const Options& options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Non-blocking admission: false when the queue is full or shutdown has
  // begun. The task is never partially admitted.
  bool TrySubmit(std::function<void()> task);

  // Blocking admission: waits for queue space. Returns false only when the
  // executor is shutting down (the task was not admitted).
  bool Submit(std::function<void()> task);

  // Wraps `fn` in a packaged_task so the returned future carries the result
  // or the thrown exception. If the executor is shutting down the task runs
  // inline on the calling thread, so the future is always satisfied.
  template <typename Fn>
  auto SubmitFuture(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (!Submit([task]() { (*task)(); })) {
      (*task)();  // Shutdown race: satisfy the future on the caller.
    }
    return future;
  }

  // Stops intake, drains every admitted task, joins workers. Idempotent.
  void Shutdown();

  // Instantaneous depth of the waiting queue (admitted, not yet running).
  size_t QueueDepth() const;
  // Tasks currently executing on workers.
  size_t InFlight() const;
  // Tasks that exited via exception (swallowed by the worker loop).
  uint64_t uncaught_exceptions() const {
    return uncaught_exceptions_.load(std::memory_order_relaxed);
  }
  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  const size_t queue_limit_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable space_cv_;  // producers wait for queue space
  std::condition_variable idle_cv_;   // Shutdown waits for drain
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> uncaught_exceptions_{0};
  std::vector<std::thread> workers_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_EXECUTOR_H_
