// Clock abstraction. Production code uses SystemClock; tests that exercise the
// APPEND-mode epoch machinery use SimulatedClock so epochs can be advanced
// without real waits.

#ifndef MINICRYPT_SRC_COMMON_CLOCK_H_
#define MINICRYPT_SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace minicrypt {

// Monotonic time source, microsecond resolution.
class Clock {
 public:
  virtual ~Clock() = default;

  // Microseconds since an arbitrary epoch (monotonic).
  virtual uint64_t NowMicros() const = 0;

  // Blocks (or virtually advances) for the given duration.
  virtual void SleepMicros(uint64_t micros) = 0;
};

class SystemClock : public Clock {
 public:
  // Shared process-wide instance.
  static SystemClock* Get() {
    static SystemClock clock;
    return &clock;
  }

  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count());
  }

  void SleepMicros(uint64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
};

// Manually advanced clock for deterministic tests. SleepMicros advances the
// clock rather than blocking, so epoch rollovers can be driven synchronously.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_.load(std::memory_order_acquire); }

  void SleepMicros(uint64_t micros) override { Advance(micros); }

  void Advance(uint64_t micros) { now_.fetch_add(micros, std::memory_order_acq_rel); }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_CLOCK_H_
