// Status / Result error-handling primitives used across the MiniCrypt codebase.
//
// The library does not use exceptions for control flow; fallible operations return
// Status (no payload) or Result<T> (payload or error). Both are cheap to move and
// carry a code plus a human-readable message.

#ifndef MINICRYPT_SRC_COMMON_STATUS_H_
#define MINICRYPT_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace minicrypt {

enum class StatusCode {
  kOk = 0,
  kNotFound = 1,        // key / pack / epoch does not exist
  kAlreadyExists = 2,   // insert-if-not-exists lost the race
  kConditionFailed = 3, // update-if predicate evaluated false
  kCorruption = 4,      // decode / decrypt / decompress failure
  kInvalidArgument = 5,
  kAborted = 6,         // retryable contention (caller should retry)
  kUnavailable = 7,     // node down / timeout
  kInternal = 8,
  kOutOfRange = 9,
  kKeyUnavailable = 10,  // envelope names a key epoch this client cannot serve
};

// Human-readable name of a status code ("NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

// A lightweight success-or-error value. Ok statuses allocate nothing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ConditionFailed(std::string m = "condition failed") {
    return Status(StatusCode::kConditionFailed, std::move(m));
  }
  static Status Corruption(std::string m) { return Status(StatusCode::kCorruption, std::move(m)); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Aborted(std::string m = "aborted") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m = "unavailable") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status OutOfRange(std::string m = "out of range") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status KeyUnavailable(std::string m = "key unavailable") {
    return Status(StatusCode::kKeyUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsConditionFailed() const { return code_ == StatusCode::kConditionFailed; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsKeyUnavailable() const { return code_ == StatusCode::kKeyUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "NotFound: the message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a T or a non-ok Status. Asserts on wrong-side access.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from Ok status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

// Propagate a non-ok Status from an expression that yields Status.
#define MC_RETURN_IF_ERROR(expr)      \
  do {                                \
    ::minicrypt::Status _s = (expr);  \
    if (!_s.ok()) {                   \
      return _s;                      \
    }                                 \
  } while (0)

// Evaluate an expression yielding Result<T>; on error return its Status,
// otherwise bind the value to `lhs`.
#define MC_ASSIGN_OR_RETURN(lhs, expr)     \
  auto MC_CONCAT_(res_, __LINE__) = (expr);  \
  if (!MC_CONCAT_(res_, __LINE__).ok()) {    \
    return MC_CONCAT_(res_, __LINE__).status(); \
  }                                          \
  lhs = std::move(MC_CONCAT_(res_, __LINE__)).value()

#define MC_CONCAT_INNER_(a, b) a##b
#define MC_CONCAT_(a, b) MC_CONCAT_INNER_(a, b)

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_STATUS_H_
