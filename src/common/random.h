// Deterministic PRNG and distribution helpers used by workload generators and
// benchmarks. Everything is seedable so dataset generation is reproducible.

#ifndef MINICRYPT_SRC_COMMON_RANDOM_H_
#define MINICRYPT_SRC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace minicrypt {

// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p);

  // Uniform random bytes.
  std::string Bytes(size_t n);

  // Random lowercase-alpha string.
  std::string AlphaString(size_t n);

 private:
  uint64_t s_[4];
};

// Zipfian generator over [0, n) following the YCSB formulation (Gray et al.).
// theta in (0, 1); higher theta = more skew. YCSB default is 0.99.
//
// The paper's Figure 10 describes skew with "Zipfian parameter 0.2, with 0
// being pure Zipfian and 1 being uniformly random" — that maps to
// theta = 0.99 * (1 - parameter); see Fig10 bench for the mapping.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

// Fisher-Yates shuffle of [0, n) indices, deterministic from seed.
std::vector<uint64_t> ShuffledIndices(uint64_t n, uint64_t seed);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_RANDOM_H_
