#include "src/common/status.h"

namespace minicrypt {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConditionFailed:
      return "ConditionFailed";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kKeyUnavailable:
      return "KeyUnavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace minicrypt
