#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace minicrypt {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_init_once;
std::mutex g_io_mu;

void InitFromEnv() {
  const char* env = std::getenv("MINICRYPT_LOG_LEVEL");
  if (env == nullptr) {
    return;
  }
  if (std::strcmp(env, "debug") == 0) {
    g_level = LogLevel::kDebug;
  } else if (std::strcmp(env, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(env, "warn") == 0) {
    g_level = LogLevel::kWarn;
  } else if (std::strcmp(env, "error") == 0) {
    g_level = LogLevel::kError;
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() {
  std::call_once(g_init_once, InitFromEnv);
  return g_level.load();
}

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::lock_guard<std::mutex> lock(g_io_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace minicrypt
