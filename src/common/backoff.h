// Exponential backoff with seeded "equal jitter" for client retry loops.
//
// The delay before retry k is uniform in [cap/2, cap] where
// cap = min(max, base << k). Jitter comes from a deterministic Rng, so a
// chaos run replays the exact same sleep sequence from its seed, and sleeps
// route through the caller's Clock (a SimulatedClock in tests never
// wall-blocks).

#ifndef MINICRYPT_SRC_COMMON_BACKOFF_H_
#define MINICRYPT_SRC_COMMON_BACKOFF_H_

#include <cstdint>

#include "src/common/random.h"

namespace minicrypt {

class Backoff {
 public:
  Backoff(uint64_t base_micros, uint64_t max_micros, uint64_t seed)
      : base_(base_micros), max_(max_micros), rng_(seed) {}

  // Delay before retry number `attempt` (0-based: the first retry after the
  // initial try passes 0). base == 0 disables backoff entirely.
  uint64_t NextDelayMicros(int attempt) {
    if (base_ == 0) {
      return 0;
    }
    const int shift = attempt < 20 ? attempt : 20;
    uint64_t cap = base_ << shift;
    if (cap > max_ || cap < base_) {  // second test catches shift overflow
      cap = max_;
    }
    if (cap == 0) {
      return 0;
    }
    const uint64_t half = cap / 2;
    return half + rng_.Uniform(cap - half + 1);
  }

 private:
  uint64_t base_;
  uint64_t max_;
  Rng rng_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_BACKOFF_H_
