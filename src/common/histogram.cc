#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace minicrypt {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::BucketFor(uint64_t v) {
  if (v < 4) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  // Two bits below the MSB select the sub-bucket.
  const int sub = static_cast<int>((v >> (msb - 2)) & 0x3);
  const int b = msb * 4 + sub;
  return std::min(b, kBucketCount - 1);
}

Histogram Histogram::FromBucketCounts(const uint64_t* counts, int n, uint64_t sum, uint64_t min,
                                      uint64_t max) {
  Histogram out;
  const int limit = std::min(n, kBucketCount);
  for (int b = 0; b < limit; ++b) {
    out.buckets_[static_cast<size_t>(b)] = counts[b];
    out.count_ += counts[b];
  }
  out.sum_ = sum;
  out.min_ = out.count_ == 0 ? 0 : min;
  out.max_ = max;
  return out;
}

uint64_t Histogram::BucketLowerBound(int b) {
  if (b < 4) {
    return static_cast<uint64_t>(b);
  }
  const int msb = b / 4;
  const int sub = b % 4;
  return (1ULL << msb) | (static_cast<uint64_t>(sub) << (msb - 2));
}

void Histogram::Add(uint64_t v) {
  buckets_[static_cast<size_t>(BucketFor(v))]++;
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  max_ = std::max(max_, v);
  sum_ += v;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[static_cast<size_t>(b)];
    if (seen > target) {
      return static_cast<double>(BucketLowerBound(b));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "count=%llu mean=%.1fus p50=%.0fus p99=%.0fus max=%lluus",
                static_cast<unsigned long long>(count_), Mean(), Percentile(0.50),
                Percentile(0.99), static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace minicrypt
