// CRC32C (Castagnoli, reflected polynomial 0x1EDC6F41) with runtime dispatch:
// a portable slice-by-8 table implementation and an SSE4.2 hardware path
// using the CRC32 instruction. Both produce identical values for identical
// input (tests/simd_kernels_test.cc); which one runs is decided per call by
// CurrentSimdLevel() (src/common/cpu_features.h).
//
// Used for the SSTable v2 per-block checksums — the fetch-path cost every
// read pays — where the hardware path runs at tens of GB/s vs ~1 GB/s for
// the table walk. The commit log keeps its original zlib CRC32 framing.

#ifndef MINICRYPT_SRC_COMMON_CRC32C_H_
#define MINICRYPT_SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace minicrypt {

// CRC32C of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the standard
// iSCSI/RFC 3720 parameterization; Crc32c("123456789") == 0xE3069283).
uint32_t Crc32c(std::string_view data);

// Extends a running CRC32C with more bytes: Crc32c(a+b) ==
// Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

// Forced implementations, exposed for differential tests and the perf suite.
uint32_t Crc32cScalar(std::string_view data);
uint32_t Crc32cHardware(std::string_view data);  // requires SSE4.2

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_CRC32C_H_
