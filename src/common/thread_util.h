// Small threading helpers shared by the cluster simulation and the benchmark
// driver: a counting semaphore with timeout (models device queue depth), a
// latch-style start barrier, and a periodic background task runner.

#ifndef MINICRYPT_SRC_COMMON_THREAD_UTIL_H_
#define MINICRYPT_SRC_COMMON_THREAD_UTIL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace minicrypt {

// Counting semaphore. Used to bound outstanding requests at a simulated
// storage device (disk queue depth 1, SSD queue depth ~32).
class Semaphore {
 public:
  explicit Semaphore(int initial) : count_(initial) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++count_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

// RAII semaphore hold.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(sem) { sem_.Acquire(); }
  ~SemaphoreGuard() { sem_.Release(); }

  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore& sem_;
};

// One-shot start barrier: worker threads Wait(), the coordinator Release()s
// them all at once so throughput measurement starts simultaneously.
class StartGate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// Runs `fn` every `period_micros` on a dedicated thread until stopped.
// Used for the EM service tick, client heartbeat, and background mergers.
class PeriodicTask {
 public:
  PeriodicTask(std::function<void()> fn, uint64_t period_micros);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop();

 private:
  void Loop();

  std::function<void()> fn_;
  uint64_t period_micros_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_THREAD_UTIL_H_
