#include "src/common/random.h"

#include <cmath>

namespace minicrypt {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::string Rng::Bytes(size_t n) {
  std::string out;
  out.reserve(n);
  while (out.size() + 8 <= n) {
    uint64_t v = Next();
    out.append(reinterpret_cast<char*>(&v), 8);
  }
  uint64_t v = Next();
  out.append(reinterpret_cast<char*>(&v), n - out.size());
  return out;
}

std::string Rng::AlphaString(size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

std::vector<uint64_t> ShuffledIndices(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  Rng rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.Uniform(i)]);
  }
  return idx;
}

}  // namespace minicrypt
