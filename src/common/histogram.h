// Thread-compatible latency histogram with exponential buckets, used by the
// benchmark harnesses to report mean / p50 / p99 latencies.

#ifndef MINICRYPT_SRC_COMMON_HISTOGRAM_H_
#define MINICRYPT_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace minicrypt {

class Histogram {
 public:
  // Bucket layout is shared with the obs layer's sharded atomic histograms,
  // which accumulate counts per bucket concurrently and rebuild a Histogram
  // (via FromBucketCounts) whenever percentiles are needed.
  static constexpr int kBucketCount = 64 * 4;  // 4 sub-buckets per power of two

  static int BucketFor(uint64_t v);
  static uint64_t BucketLowerBound(int b);

  Histogram();

  // Rebuilds a histogram from externally accumulated per-bucket counts.
  // `counts` holds up to kBucketCount entries (missing tail treated as zero).
  static Histogram FromBucketCounts(const uint64_t* counts, int n, uint64_t sum, uint64_t min,
                                    uint64_t max);

  void Add(uint64_t value_micros);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double Mean() const;
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }

  // Approximate quantile (q in [0,1]) via bucket interpolation.
  double Percentile(double q) const;

  // One-line summary: "count=... mean=...us p50=... p99=... max=...".
  std::string Summary() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMMON_HISTOGRAM_H_
