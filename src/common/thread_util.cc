#include "src/common/thread_util.h"

#include <chrono>

namespace minicrypt {

PeriodicTask::PeriodicTask(std::function<void()> fn, uint64_t period_micros)
    : fn_(std::move(fn)), period_micros_(period_micros), thread_([this] { Loop(); }) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void PeriodicTask::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::microseconds(period_micros_), [&] { return stop_; })) {
      return;
    }
    lock.unlock();
    fn_();
    lock.lock();
  }
}

}  // namespace minicrypt
