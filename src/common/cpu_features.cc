#include "src/common/cpu_features.h"

#include <atomic>
#include <cstdlib>

namespace minicrypt {

namespace {

#if defined(__x86_64__) || defined(__i386__)
#define MC_X86 1
#else
#define MC_X86 0
#endif

CpuFeatures ProbeCpu() {
  CpuFeatures f;
#if MC_X86 && defined(__GNUC__)
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.aesni = __builtin_cpu_supports("aes") != 0;
  f.pclmul = __builtin_cpu_supports("pclmul") != 0;
#endif
  f.max_level = f.avx2 ? SimdLevel::kAvx2
                       : (f.sse42 ? SimdLevel::kSse42 : SimdLevel::kScalar);
  return f;
}

SimdLevel ClampToHost(SimdLevel level) {
  const SimdLevel host = HostCpuFeatures().max_level;
  return static_cast<int>(level) > static_cast<int>(host) ? host : level;
}

// Initial level: hardware max, capped by MC_SIMD_LEVEL, zeroed by MC_NO_SIMD.
SimdLevel InitialLevel() {
  const char* no_simd = std::getenv("MC_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    return SimdLevel::kScalar;
  }
  SimdLevel level = HostCpuFeatures().max_level;
  if (const char* cap = std::getenv("MC_SIMD_LEVEL"); cap != nullptr) {
    const long v = std::strtol(cap, nullptr, 10);
    if (v >= 0 && v <= static_cast<long>(SimdLevel::kAvx2)) {
      level = ClampToHost(static_cast<SimdLevel>(v));
    }
  }
  return level;
}

std::atomic<int>& LevelAtom() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = ProbeCpu();
  return features;
}

SimdLevel CurrentSimdLevel() {
  return static_cast<SimdLevel>(LevelAtom().load(std::memory_order_relaxed));
}

bool AesGcmHardwareEnabled() {
  const CpuFeatures& f = HostCpuFeatures();
  // The GCM kernel needs AES-NI + PCLMUL + SSSE3 byte shuffles; any SSE4.2-
  // capable dispatch level implies the latter. Forcing scalar disables it.
  return f.aesni && f.pclmul && CurrentSimdLevel() != SimdLevel::kScalar;
}

SimdLevel OverrideSimdLevelForTest(SimdLevel level) {
  const SimdLevel effective = ClampToHost(level);
  LevelAtom().store(static_cast<int>(effective), std::memory_order_relaxed);
  return effective;
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels;
  const int max = static_cast<int>(HostCpuFeatures().max_level);
  for (int l = 0; l <= max; ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace minicrypt
