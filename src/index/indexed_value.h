// Canonical row-value layout for secondary-indexable rows.
//
// The secondary index orders rows by a 64-bit attribute carried inside the
// (encrypted) row value. The canonical layout keeps the attribute extractable
// without schema machinery: an 8-byte big-endian attribute prefix followed by
// the opaque payload. Workload generators, benches, and the default index
// extractor all agree on this layout; applications with their own value
// format supply a custom extractor in SecondaryIndexOptions instead.
//
// Header-only on purpose: the workload library uses it without linking the
// index protocol engine.

#ifndef MINICRYPT_SRC_INDEX_INDEXED_VALUE_H_
#define MINICRYPT_SRC_INDEX_INDEXED_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/coding.h"

namespace minicrypt {

// attr (8 bytes, big-endian) || payload.
inline std::string EncodeIndexedValue(uint64_t attr, std::string_view payload) {
  std::string out = EncodeKey64(attr);
  out.append(payload);
  return out;
}

// The attribute prefix, or nullopt for values shorter than the prefix
// (such values are simply not indexed).
inline std::optional<uint64_t> DecodeIndexedAttr(std::string_view value) {
  if (value.size() < 8) {
    return std::nullopt;
  }
  auto attr = DecodeKey64(value.substr(0, 8));
  if (!attr.ok()) {
    return std::nullopt;
  }
  return *attr;
}

inline std::string_view DecodeIndexedPayload(std::string_view value) {
  return value.size() < 8 ? value : value.substr(8);
}

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_INDEX_INDEXED_VALUE_H_
