// GenericClient's secondary-index entry points. They live here (not in
// src/core) so mc_core stays below mc_index in the link order: the client
// header only forward-declares the index types, and callers that use
// CreateIndex/GetRangeByValue link mc_index.

#include <utility>
#include <vector>

#include "src/common/coding.h"
#include "src/core/generic_client.h"
#include "src/index/secondary_index.h"
#include "src/obs/metrics.h"

namespace minicrypt {

Status GenericClient::CreateIndex(const SecondaryIndexOptions& iopts) {
  auto index = std::make_shared<SecondaryIndex>(cluster_, options_, key_, iopts);
  MC_RETURN_IF_ERROR(index->CreateBacking());
  index_ = std::move(index);
  // The hook keeps Put() free of index types. Rows whose values don't decode
  // an attribute are simply not indexed (and thus not findable by value).
  index_add_hook_ = [this](uint64_t key, std::string_view value) -> Status {
    auto attr = index_->ExtractAttr(value);
    if (!attr.has_value()) {
      return Status::Ok();
    }
    return index_->Add(*attr, key);
  };
  return Status::Ok();
}

Result<std::vector<std::pair<uint64_t, std::string>>> GenericClient::GetRangeByValue(
    uint64_t lo, uint64_t hi) {
  if (index_ == nullptr) {
    return Status::InvalidArgument("GetRangeByValue requires CreateIndex first");
  }
  OBS_SPAN("client.get_range_by_value");
  stats_.range_queries.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates, index_->LookupRange(lo, hi));
  // Re-verify every candidate against the primary table: the index is a
  // superset (index-first writes, never-deleted entries), so NotFound rows
  // and out-of-range attributes are stale entries, not errors.
  std::vector<Result<std::string>> rows = MultiGet(candidates);
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(rows.size());
  uint64_t stale = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].ok()) {
      if (rows[i].status().IsNotFound()) {
        ++stale;  // row deleted (or never committed) after its index entry
        continue;
      }
      return rows[i].status();
    }
    const auto attr = index_->ExtractAttr(*rows[i]);
    if (!attr.has_value() || *attr < lo || *attr > hi) {
      ++stale;  // attribute rewritten since the entry was added
      continue;
    }
    out.emplace_back(candidates[i], std::move(*rows[i]));
  }
  index_->NoteStaleFiltered(stale);
  return out;  // candidates were sorted by pk; filtering preserves that
}

Status GenericClient::BulkLoadIndexed(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  if (index_ != nullptr) {
    std::vector<std::pair<uint64_t, uint64_t>> attr_pk;
    attr_pk.reserve(rows.size());
    for (const auto& [key, value] : rows) {
      auto attr = index_->ExtractAttr(value);
      if (attr.has_value()) {
        attr_pk.emplace_back(*attr, key);
      }
    }
    MC_RETURN_IF_ERROR(index_->BulkAdd(std::move(attr_pk)));
  }
  return BulkLoad(rows);
}

}  // namespace minicrypt
