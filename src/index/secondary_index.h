// Encrypted secondary index over pack values: a client-maintained POPE-style
// buffer structure whose nodes are themselves encrypted packs stored in the
// cluster (Roche et al.; see docs/INDEXING.md).
//
// The index maps a 64-bit attribute (extracted from the row value) to primary
// keys. Its server-side footprint is three row families inside one backing
// table:
//
//   partition "ib" — the unsorted buffer: an active pack ("buf") plus sealed
//                    arrival-order segments ("s" || seq). The server learns
//                    nothing about attribute order from these rows.
//   partition "ir" — the root manifest ("root"): an encrypted list of
//                    materialized sorted regions and their leaf labels. Every
//                    lazy sort commits here, so the manifest is the atomic
//                    commit point of the drain protocol.
//   partition "il" — sorted leaves, labeled by the OPE image of their minimum
//                    attribute. A leaf label existing at all is the only
//                    order the server ever learns.
//
// The leakage knob decides *when* leaves materialize:
//   kNoOrder      — never. Queries scan the whole (compact, encrypted)
//                   buffer; zero order leakage, full-scan cost.
//   kQueriedOrder — POPE: on the first range query touching a region, the
//                   buffer's in-range entries are drained into leaves. Order
//                   leaks only for queried regions.
//   kTotalOrder   — eagerly at insert, routing by OPE floor exactly like the
//                   primary table's packs (src/crypto/ope.h). Total order of
//                   attributes leaks; queries are cheapest.
//
// Every structural step is LWT-gated like SplitPack (paper Figure 6): leaves
// are inserted before the root manifest commits, the manifest commits before
// buffers truncate, and each write is conditioned on the envelope hash it was
// computed from. A crash between steps leaves duplicate (attr, pk) entries —
// never a lost one — and queries tolerate duplicates by construction.
//
// Correctness does not rest on the index alone: index entries are written
// BEFORE the primary row (index-first maintenance), so the index is always a
// superset of live rows, and GetRangeByValue re-verifies every candidate
// against the primary table. Stale entries (deleted rows, rewritten
// attributes) are filtered at read time, never trusted.

#ifndef MINICRYPT_SRC_INDEX_SECONDARY_INDEX_H_
#define MINICRYPT_SRC_INDEX_SECONDARY_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/status.h"
#include "src/core/options.h"
#include "src/core/pack.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/crypto/ope.h"
#include "src/index/indexed_value.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

// Per-column order leakage level (EncDBDB's framing; docs/INDEXING.md).
enum class IndexLeakage { kNoOrder = 0, kQueriedOrder = 1, kTotalOrder = 2 };

std::string_view IndexLeakageName(IndexLeakage leakage);

struct SecondaryIndexOptions {
  std::string name = "attr";
  IndexLeakage leakage = IndexLeakage::kQueriedOrder;

  // Entries per leaf pack before a drain/split cuts a new one.
  // 0 = inherit MiniCryptOptions::pack_rows.
  size_t leaf_rows = 0;

  // Active-buffer entries before it is sealed into a segment.
  // 0 = derive ceil(1.5 * leaf_rows), mirroring EffectiveMaxKeys.
  size_t buffer_seal_rows = 0;

  // Retry budget for index RMW loops. 0 = inherit max_put_retries.
  int max_retries = 0;

  // Maps a row value to its indexed attribute; rows whose values don't
  // decode are not indexed. Defaults to DecodeIndexedAttr (indexed_value.h).
  std::function<std::optional<uint64_t>(std::string_view)> extractor;
};

struct SecondaryIndexStats {
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> drains{0};           // lazy sorts that committed a manifest
  std::atomic<uint64_t> drained_entries{0};  // entries moved buffer -> leaves
  std::atomic<uint64_t> buffer_seals{0};
  std::atomic<uint64_t> leaf_splits{0};      // kTotalOrder oversize splits
  std::atomic<uint64_t> stale_filtered{0};   // candidates rejected by verification
  std::atomic<uint64_t> retries{0};          // extra RMW attempts, any cause
};

// Fixed row addresses inside the backing table (exposed for tests that audit
// server-visible state directly).
inline constexpr std::string_view kIndexBufferPartition = "ib";
inline constexpr std::string_view kIndexRootPartition = "ir";
inline constexpr std::string_view kIndexLeafPartition = "il";
inline constexpr std::string_view kIndexBufferRow = "buf";
inline constexpr std::string_view kIndexRootRow = "root";
inline constexpr std::string_view kIndexSegmentPrefix = "s";

class SecondaryIndex {
 public:
  // `cluster` outlives the index. `key` is the customer key; independent
  // subkeys are derived for index packs and the index OPE, so the primary
  // table's ciphertexts and the index's share nothing.
  SecondaryIndex(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key,
                 SecondaryIndexOptions iopts);

  // Creates the backing table (idempotent; any client may call it).
  Status CreateBacking();

  // Inserts (attr, pk). Buffered levels append to the active buffer pack
  // (sealing it into a segment on overflow); kTotalOrder routes by OPE floor
  // directly into a sorted leaf, splitting oversized leaves like SplitPack.
  Status Add(uint64_t attr, uint64_t pk);

  // Bulk variant for preloads: writes segments (buffered levels) or sorted
  // leaves (kTotalOrder) wholesale. Assumes no concurrent writers, exactly
  // like GenericClient::BulkLoad.
  Status BulkAdd(std::vector<std::pair<uint64_t, uint64_t>> attr_pk);

  // Candidate primary keys whose indexed attribute may lie in [lo, hi]
  // (inclusive). Sorted, unique, and always a superset of the live matches;
  // the caller verifies candidates against the primary table. Under
  // kQueriedOrder this is where the lazy sort runs: the buffer's in-range
  // entries drain into leaves before the answer is assembled. A drain that
  // loses every LWT race (or trips an injected fault) degrades to the
  // correct-but-unsorted answer rather than failing the query.
  Result<std::vector<uint64_t>> LookupRange(uint64_t lo, uint64_t hi);

  // Number of materialized sorted regions in the root manifest (the leakage
  // audit: strictly bounded by the number of distinct queried ranges).
  // kNoOrder always reports 0; kTotalOrder reports 1 once any leaf exists.
  Result<uint64_t> SortedRegions();

  const SecondaryIndexStats& stats() const { return stats_; }

  // Verification accounting: candidates the caller rejected against the
  // primary table (deleted rows, rewritten attributes).
  void NoteStaleFiltered(uint64_t n);

  const SecondaryIndexOptions& index_options() const { return iopts_; }
  const std::string& backing_table() const { return table_; }
  const OpeCipher& ope() const { return ope_; }

  std::optional<uint64_t> ExtractAttr(std::string_view value) const {
    return iopts_.extractor ? iopts_.extractor(value) : DecodeIndexedAttr(value);
  }

  // Test hooks: abort a structural protocol at a chosen step, modelling a
  // client crash (mirrors GenericClient::SplitFailPoint). The injected-fault
  // equivalents are the kIndexSplit / kIndexPersist points of the cluster's
  // FaultInjector, drawn at the same steps.
  enum class FailPoint {
    kNone,
    kAfterLeafWrite,    // drain: leaves written, manifest not committed
    kAfterRootCommit,   // drain: manifest committed, buffers not truncated
    kAfterSegmentWrite, // seal: segment written, buffer not truncated
    kAfterRightInsert,  // kTotalOrder split: right leaf in, left not truncated
  };
  void set_fail_point(FailPoint p) { fail_point_ = p; }

 private:
  // One decoded index row fetched from the cluster: the pack plus the
  // envelope hash its rewrite must be conditioned on.
  struct IndexRow {
    std::string row_key;  // clustering key within its partition
    Pack pack;
    std::string hash;
  };

  // A materialized sorted region [lo, hi] (inclusive) and the min-attrs of
  // its leaf packs (leaf label = OPE(min_attr)).
  struct Region {
    uint64_t lo = 0;
    uint64_t hi = 0;
    std::vector<uint64_t> leaf_mins;
  };
  struct Manifest {
    std::vector<Region> regions;  // sorted by lo, pairwise disjoint
  };

  static std::string SerializeManifest(const Manifest& m);
  static Result<Manifest> ParseManifest(std::string_view bytes);

  // --- row plumbing ----------------------------------------------------------

  Result<IndexRow> ReadIndexRow(std::string_view partition, std::string_view row_key);
  // All segment rows of the buffer partition, ascending by sequence.
  Result<std::vector<IndexRow>> ReadSegments();
  // Seals `pack` and writes it at (partition, row_key): INSERT IF NOT EXISTS
  // when expected_hash is empty, UPDATE IF h = expected_hash otherwise.
  // Resolves ambiguous outcomes by re-reading and comparing plaintext.
  Status WriteIndexPack(std::string_view partition, std::string_view row_key, const Pack& pack,
                        std::string_view expected_hash);

  // Root manifest row: empty result hash means "absent".
  Result<std::pair<Manifest, std::string>> ReadManifest();
  Status WriteManifest(const Manifest& m, std::string_view expected_hash);

  // --- protocol steps ---------------------------------------------------------

  Status AddToBuffer(const std::string& entry_key);
  // Moves a full active buffer into segment `seq` and resets the buffer.
  // Converges under concurrency by unioning into an existing segment.
  Status SealBufferSegment();

  Status AddTotalOrder(uint64_t attr, const std::string& entry_key);
  Status SplitLeaf(const IndexRow& leaf);

  // Writes `pack` at (il, `label`), converging with whatever is stored there
  // by unioning entries. A label collision means another protocol instance
  // (or an earlier crashed one) owns bytes at the label — e.g. two splits
  // whose right halves start at the same attribute — and the only safe
  // outcome is the union: dropping either side could lose entries a committed
  // manifest or a truncated left leaf depends on.
  Status WriteLeafUnioning(const std::string& label, const Pack& pack);

  // The POPE lazy sort for query [lo, hi]: merge overlapping regions, write
  // the region's leaves, commit the manifest, truncate drained buffers.
  // On success *pks holds the in-range candidates. `progressed` reports
  // whether the commit landed (for retry accounting).
  Status DrainForQuery(uint64_t lo, uint64_t hi, std::vector<uint64_t>* pks);

  // Unsorted fallback: scan buffer + segments (+ referenced leaves when a
  // manifest exists) without draining. Always correct, leaks nothing new.
  Result<std::vector<uint64_t>> ScanCandidates(uint64_t lo, uint64_t hi);

  Result<std::vector<uint64_t>> LookupTotalOrder(uint64_t lo, uint64_t hi);

  void BackoffBeforeRetry(int attempt);
  int MaxRetries() const;
  size_t LeafRows() const;
  size_t BufferSealRows() const;
  void PublishSortedRegions(size_t regions);

  // Fires the injected fault point when a cluster FaultInjector is armed;
  // also honors the deterministic test FailPoint.
  bool InjectedFault(FaultPoint point, FailPoint step, std::string_view context);

  Cluster* cluster_;
  MiniCryptOptions options_;  // table renamed to the backing table
  SecondaryIndexOptions iopts_;
  std::string table_;
  PackCrypter crypter_;
  OpeCipher ope_;
  SecondaryIndexStats stats_;
  std::mutex backoff_mu_;
  Backoff backoff_;
  std::atomic<FailPoint> fail_point_{FailPoint::kNone};
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_INDEX_SECONDARY_INDEX_H_
