#include "src/index/secondary_index.h"

#include <algorithm>
#include <set>

#include "src/common/coding.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";
constexpr std::string_view kHashColumn = "h";
// The manifest pack holds a single entry under this key.
constexpr std::string_view kManifestEntryKey = "m";

Row IndexPackRow(const SealedPack& sealed) {
  Row row;
  row.cells[std::string(kValueColumn)] = Cell{sealed.envelope, 0, false};
  row.cells[std::string(kHashColumn)] = Cell{sealed.hash, 0, false};
  return row;
}

Result<std::pair<std::string_view, std::string_view>> ExtractIndexCells(const Row& row) {
  auto v = row.cells.find(kValueColumn);
  auto h = row.cells.find(kHashColumn);
  if (v == row.cells.end() || h == row.cells.end()) {
    return Status::Corruption("index pack row missing value/hash cells");
  }
  return std::make_pair(std::string_view(v->second.value), std::string_view(h->second.value));
}

// An index entry's pack key: attr (big-endian) || pk (big-endian). Unique per
// (attr, pk), and lexicographic order == (attr, pk) order, so in-range slices
// of a sorted leaf are contiguous.
std::string EntryKey(uint64_t attr, uint64_t pk) {
  std::string out = EncodeKey64(attr);
  AppendKey64(&out, pk);
  return out;
}

Result<std::pair<uint64_t, uint64_t>> DecodeEntryKey(std::string_view key) {
  if (key.size() != 16) {
    return Status::Corruption("index entry key is not attr||pk");
  }
  MC_ASSIGN_OR_RETURN(uint64_t attr, DecodeKey64(key.substr(0, 8)));
  MC_ASSIGN_OR_RETURN(uint64_t pk, DecodeKey64(key.substr(8, 8)));
  return std::make_pair(attr, pk);
}

std::string SegmentRowKey(uint64_t seq) {
  std::string out(kIndexSegmentPrefix);
  AppendKey64(&out, seq);
  return out;
}

// Largest string of the same length strictly below `s`; nullopt when `s` is
// the all-zero minimum.
std::optional<std::string> PredecessorKey(std::string s) {
  for (size_t i = s.size(); i-- > 0;) {
    if (s[i] != '\0') {
      s[i] = static_cast<char>(static_cast<uint8_t>(s[i]) - 1);
      std::fill(s.begin() + static_cast<long>(i) + 1, s.end(), '\xff');
      return s;
    }
  }
  return std::nullopt;
}

// Collects the pks of `pack`'s entries whose attr lies in [lo, hi].
Status CollectInRange(const Pack& pack, uint64_t lo, uint64_t hi, std::set<uint64_t>* pks) {
  for (const auto& entry : pack.entries()) {
    MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(entry.key));
    if (decoded.first >= lo && decoded.first <= hi) {
      pks->insert(decoded.second);
    }
  }
  return Status::Ok();
}

}  // namespace

std::string_view IndexLeakageName(IndexLeakage leakage) {
  switch (leakage) {
    case IndexLeakage::kNoOrder:
      return "no_order";
    case IndexLeakage::kQueriedOrder:
      return "queried_order";
    case IndexLeakage::kTotalOrder:
      return "total_order";
  }
  return "unknown";
}

SecondaryIndex::SecondaryIndex(Cluster* cluster, const MiniCryptOptions& options,
                               const SymmetricKey& key, SecondaryIndexOptions iopts)
    : cluster_(cluster),
      options_(options),
      iopts_(std::move(iopts)),
      table_(options.table + ".idx." + iopts_.name),
      crypter_(options, key.Derive("index-pack:" + iopts_.name)),
      ope_(key.Derive("index-ope:" + iopts_.name)),
      backoff_(options.retry_backoff_base_micros, options.retry_backoff_max_micros,
               options.retry_jitter_seed != 0 ? options.retry_jitter_seed ^ 0x1D0ull
                                              : 0x5EC1D0ull) {
  options_.table = table_;
}

Status SecondaryIndex::CreateBacking() {
  return cluster_->CreateTable(table_, /*server_compression=*/false);
}

void SecondaryIndex::BackoffBeforeRetry(int attempt) {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(backoff_mu_);
    delay = backoff_.NextDelayMicros(attempt);
  }
  if (delay > 0) {
    cluster_->options().clock->SleepMicros(delay);
  }
}

int SecondaryIndex::MaxRetries() const {
  return iopts_.max_retries != 0 ? iopts_.max_retries : options_.max_put_retries;
}

size_t SecondaryIndex::LeafRows() const {
  return iopts_.leaf_rows != 0 ? iopts_.leaf_rows : options_.pack_rows;
}

size_t SecondaryIndex::BufferSealRows() const {
  return iopts_.buffer_seal_rows != 0 ? iopts_.buffer_seal_rows : (LeafRows() * 3 + 1) / 2;
}

void SecondaryIndex::PublishSortedRegions(size_t regions) {
  OBS_GAUGE_SET("index.sorted_regions", static_cast<double>(regions));
}

bool SecondaryIndex::InjectedFault(FaultPoint point, FailPoint step, std::string_view context) {
  if (fail_point_.load(std::memory_order_relaxed) == step) {
    return true;
  }
  FaultInjector* injector = cluster_->options().fault_injector;
  return injector != nullptr && injector->Fire(point, context);
}

// --- Row plumbing --------------------------------------------------------------

Result<SecondaryIndex::IndexRow> SecondaryIndex::ReadIndexRow(std::string_view partition,
                                                              std::string_view row_key) {
  Result<Row> row = Status::Unavailable("index read never attempted");
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    row = cluster_->Read(table_, partition, row_key);
    if (row.ok() || !row.status().IsUnavailable()) {
      break;
    }
  }
  if (!row.ok()) {
    return row.status();
  }
  MC_ASSIGN_OR_RETURN(auto cells, ExtractIndexCells(*row));
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
  IndexRow out;
  out.row_key = std::string(row_key);
  out.pack = std::move(pack);
  out.hash = std::string(cells.second);
  return out;
}

Result<std::vector<SecondaryIndex::IndexRow>> SecondaryIndex::ReadSegments() {
  const std::string lo(kIndexSegmentPrefix);
  const std::string hi = lo + std::string(8, '\xff');
  Result<std::vector<std::pair<std::string, Row>>> rows =
      Status::Unavailable("segment scan never attempted");
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    rows = cluster_->ReadRange(table_, kIndexBufferPartition, lo, hi);
    if (rows.ok() || !rows.status().IsUnavailable()) {
      break;
    }
  }
  if (!rows.ok()) {
    return rows.status();
  }
  std::vector<IndexRow> out;
  out.reserve(rows->size());
  for (auto& [id, row] : *rows) {
    MC_ASSIGN_OR_RETURN(auto cells, ExtractIndexCells(row));
    MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
    IndexRow seg;
    seg.row_key = id;
    seg.pack = std::move(pack);
    seg.hash = std::string(cells.second);
    out.push_back(std::move(seg));
  }
  return out;
}

Status SecondaryIndex::WriteIndexPack(std::string_view partition, std::string_view row_key,
                                      const Pack& pack, std::string_view expected_hash) {
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
  const std::string serialized = pack.Serialize();
  Status s = Status::Unavailable("index write never attempted");
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    s = expected_hash.empty()
            ? cluster_->WriteIf(table_, partition, row_key, IndexPackRow(sealed),
                                LwtCondition::NotExists())
            : cluster_->WriteIf(table_, partition, row_key, IndexPackRow(sealed),
                                LwtCondition::CellEquals(std::string(kHashColumn),
                                                         std::string(expected_hash)));
    if (s.ok() || s.IsConditionFailed() || s.IsAlreadyExists()) {
      return s;
    }
    if (!s.IsUnavailable()) {
      return s;
    }
    // Ambiguous LWT outcome: re-read and verify by content (sealing is
    // randomized, so envelope bytes never match across attempts; the
    // serialized plaintext does).
    auto current = cluster_->Read(table_, partition, row_key);
    if (current.ok()) {
      auto cells = ExtractIndexCells(*current);
      if (!cells.ok()) {
        return cells.status();
      }
      if (cells->second == sealed.hash) {
        return Status::Ok();  // our exact envelope landed
      }
      auto stored = crypter_.Open(cells->first);
      if (!stored.ok()) {
        return stored.status();
      }
      if (stored->Serialize() == serialized) {
        return Status::Ok();  // identical content (ours, or a peer's equal write)
      }
      // Different content is stored: behave like a lost LWT race so the
      // caller re-reads and reconciles.
      return Status::ConditionFailed("index pack moved under ambiguous write");
    }
    if (!current.status().IsNotFound() && !current.status().IsUnavailable()) {
      return current.status();
    }
    // NotFound (insert did not land) or still unavailable: loop and retry.
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("index.retries");
  }
  return s;
}

// --- Manifest -------------------------------------------------------------------

std::string SecondaryIndex::SerializeManifest(const Manifest& m) {
  std::string out;
  PutVarint64(&out, m.regions.size());
  for (const Region& r : m.regions) {
    PutFixed64(&out, r.lo);
    PutFixed64(&out, r.hi);
    PutVarint64(&out, r.leaf_mins.size());
    for (uint64_t min : r.leaf_mins) {
      PutFixed64(&out, min);
    }
  }
  return out;
}

Result<SecondaryIndex::Manifest> SecondaryIndex::ParseManifest(std::string_view bytes) {
  Manifest m;
  MC_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&bytes));
  m.regions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Region r;
    MC_ASSIGN_OR_RETURN(r.lo, GetFixed64(&bytes));
    MC_ASSIGN_OR_RETURN(r.hi, GetFixed64(&bytes));
    MC_ASSIGN_OR_RETURN(uint64_t leaves, GetVarint64(&bytes));
    r.leaf_mins.reserve(leaves);
    for (uint64_t j = 0; j < leaves; ++j) {
      MC_ASSIGN_OR_RETURN(uint64_t min, GetFixed64(&bytes));
      r.leaf_mins.push_back(min);
    }
    m.regions.push_back(std::move(r));
  }
  if (!bytes.empty()) {
    return Status::Corruption("trailing bytes after index manifest");
  }
  return m;
}

Result<std::pair<SecondaryIndex::Manifest, std::string>> SecondaryIndex::ReadManifest() {
  auto row = ReadIndexRow(kIndexRootPartition, kIndexRootRow);
  if (!row.ok()) {
    if (row.status().IsNotFound()) {
      return std::make_pair(Manifest{}, std::string());
    }
    return row.status();
  }
  auto value = row->pack.Find(kManifestEntryKey);
  if (!value.has_value()) {
    return Status::Corruption("index root pack missing manifest entry");
  }
  MC_ASSIGN_OR_RETURN(Manifest m, ParseManifest(*value));
  return std::make_pair(std::move(m), row->hash);
}

Status SecondaryIndex::WriteManifest(const Manifest& m, std::string_view expected_hash) {
  Pack pack;
  pack.Upsert(kManifestEntryKey, SerializeManifest(m));
  return WriteIndexPack(kIndexRootPartition, kIndexRootRow, pack, expected_hash);
}

// --- Insert paths ---------------------------------------------------------------

Status SecondaryIndex::Add(uint64_t attr, uint64_t pk) {
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("index.inserts");
  const std::string entry_key = EntryKey(attr, pk);
  if (iopts_.leakage == IndexLeakage::kTotalOrder) {
    return AddTotalOrder(attr, entry_key);
  }
  return AddToBuffer(entry_key);
}

Status SecondaryIndex::AddToBuffer(const std::string& entry_key) {
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNTER_INC("index.retries");
    }
    auto buf = ReadIndexRow(kIndexBufferPartition, kIndexBufferRow);
    if (!buf.ok() && !buf.status().IsNotFound()) {
      return buf.status();
    }
    Pack pack = buf.ok() ? std::move(buf->pack) : Pack();
    const std::string hash = buf.ok() ? buf->hash : "";
    if (pack.Find(entry_key).has_value()) {
      return Status::Ok();  // already durable (an earlier ambiguous attempt landed)
    }
    pack.Upsert(entry_key, "");
    const Status s = WriteIndexPack(kIndexBufferPartition, kIndexBufferRow, pack, hash);
    if (s.ok()) {
      if (pack.size() >= BufferSealRows()) {
        // Best-effort seal; the entry is durable either way, and a failed or
        // skipped seal just leaves a fuller buffer for the next writer.
        (void)SealBufferSegment();
      }
      return Status::Ok();
    }
    if (s.IsConditionFailed() || s.IsAlreadyExists()) {
      continue;  // lost the RMW race (or a seal truncated the buffer): re-read
    }
    return s;
  }
  return Status::Aborted("index add exceeded retry budget under contention (" + table_ + ")");
}

Status SecondaryIndex::SealBufferSegment() {
  auto buf = ReadIndexRow(kIndexBufferPartition, kIndexBufferRow);
  if (!buf.ok()) {
    return buf.status().IsNotFound() ? Status::Ok() : buf.status();
  }
  if (buf->pack.size() < BufferSealRows()) {
    return Status::Ok();  // a peer sealed it first
  }
  MC_ASSIGN_OR_RETURN(auto segments, ReadSegments());
  // Concurrency on the same seq converges by unioning: INSERT IF NOT EXISTS
  // races to create it; losers merge their buffer snapshot in.
  const uint64_t seq = segments.size();
  const std::string seg_key = SegmentRowKey(seq);
  Status s = WriteIndexPack(kIndexBufferPartition, seg_key, buf->pack, "");
  for (int attempt = 0; attempt < MaxRetries() && (s.IsConditionFailed() || s.IsAlreadyExists());
       ++attempt) {
    auto existing = ReadIndexRow(kIndexBufferPartition, seg_key);
    if (!existing.ok()) {
      if (existing.status().IsNotFound()) {
        s = WriteIndexPack(kIndexBufferPartition, seg_key, buf->pack, "");
        continue;
      }
      return existing.status();
    }
    Pack merged = existing->pack;
    bool changed = false;
    for (const auto& entry : buf->pack.entries()) {
      changed |= merged.Upsert(entry.key, entry.value);
    }
    if (!changed) {
      s = Status::Ok();  // segment already holds everything we sealed
      break;
    }
    s = WriteIndexPack(kIndexBufferPartition, seg_key, merged, existing->hash);
  }
  if (!s.ok()) {
    return s;
  }
  stats_.buffer_seals.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("index.buffer_seals");
  if (InjectedFault(FaultPoint::kIndexPersist, FailPoint::kAfterSegmentWrite,
                    "seal:" + table_)) {
    // The segment is durable; the buffer keeps a duplicate copy of its
    // entries. Queries tolerate duplicates, and the next overflow re-seals.
    return Status::Ok();
  }
  // Truncate the buffer, conditioned on the image we sealed — entries added
  // concurrently move the hash and the truncation cleanly loses.
  const Status ts =
      WriteIndexPack(kIndexBufferPartition, kIndexBufferRow, Pack(), buf->hash);
  if (ts.IsConditionFailed() || ts.IsAlreadyExists()) {
    return Status::Ok();
  }
  return ts;
}

Status SecondaryIndex::AddTotalOrder(uint64_t attr, const std::string& entry_key) {
  const std::string label = ope_.Encrypt(attr);
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNTER_INC("index.retries");
    }
    auto floor = cluster_->ReadFloor(table_, kIndexLeafPartition, label);
    if (!floor.ok()) {
      if (floor.status().IsUnavailable()) {
        continue;
      }
      if (!floor.status().IsNotFound()) {
        return floor.status();
      }
      // No leaf at or below this attr: create one labeled with its OPE image
      // (exactly how the primary table plants a new pack).
      Pack fresh;
      fresh.Upsert(entry_key, "");
      const Status s = WriteIndexPack(kIndexLeafPartition, label, fresh, "");
      if (s.ok()) {
        return Status::Ok();
      }
      if (s.IsConditionFailed() || s.IsAlreadyExists()) {
        continue;  // a peer planted it first; re-route through the floor
      }
      return s;
    }
    MC_ASSIGN_OR_RETURN(auto cells, ExtractIndexCells(floor->second));
    MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
    IndexRow leaf;
    leaf.row_key = floor->first;
    leaf.hash = std::string(cells.second);
    if (pack.size() > (LeafRows() * 3 + 1) / 2 &&
        pack.entries().front().key.compare(0, 8, pack.entries().back().key, 0, 8) != 0) {
      // Oversized and spanning more than one attribute: split at an attr
      // boundary. A single-attribute run is indivisible under attr-labeled
      // routing (a second leaf would need this leaf's own label) and simply
      // grows past the threshold.
      leaf.pack = std::move(pack);
      MC_RETURN_IF_ERROR(SplitLeaf(leaf));
      continue;  // re-route: the entry may now belong to the right half
    }
    if (pack.Find(entry_key).has_value()) {
      return Status::Ok();
    }
    pack.Upsert(entry_key, "");
    const Status s = WriteIndexPack(kIndexLeafPartition, leaf.row_key, pack, leaf.hash);
    if (s.ok()) {
      return Status::Ok();
    }
    if (s.IsConditionFailed() || s.IsAlreadyExists()) {
      continue;
    }
    return s;
  }
  return Status::Aborted("total-order index add exceeded retry budget (" + table_ + ")");
}

Status SecondaryIndex::SplitLeaf(const IndexRow& leaf) {
  stats_.leaf_splits.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("index.leaf_splits");
  // The cut must land on an attribute boundary: a count-based midpoint can
  // fall inside a run of equal attrs, making the right half's label equal to
  // an existing leaf's — in the worst case this leaf's own, turning the
  // split into a self-overwrite that discards the right half. Deterministic
  // given the pack's content: the first boundary at or after the midpoint,
  // else the last one before it.
  const auto& entries = leaf.pack.entries();
  const size_t mid = entries.size() / 2;
  size_t cut = 0;
  for (size_t j = mid; j < entries.size(); ++j) {
    if (entries[j].key.compare(0, 8, entries[j - 1].key, 0, 8) != 0) {
      cut = j;
      break;
    }
  }
  if (cut == 0) {
    for (size_t j = mid; j-- > 1;) {
      if (entries[j].key.compare(0, 8, entries[j - 1].key, 0, 8) != 0) {
        cut = j;
        break;
      }
    }
  }
  if (cut == 0) {
    return Status::Internal("split requested on a single-attribute leaf");
  }
  std::vector<Pack::Entry> left_entries;
  std::vector<Pack::Entry> right_entries;
  left_entries.reserve(cut);
  right_entries.reserve(entries.size() - cut);
  for (size_t j = 0; j < entries.size(); ++j) {
    (j < cut ? left_entries : right_entries)
        .push_back(Pack::Entry{std::string(entries[j].key), std::string(entries[j].value)});
  }
  MC_ASSIGN_OR_RETURN(Pack left, Pack::FromSorted(std::move(left_entries)));
  MC_ASSIGN_OR_RETURN(Pack right, Pack::FromSorted(std::move(right_entries)));
  MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(*right.MinKey()));
  const std::string right_label = ope_.Encrypt(decoded.first);
  // Step 1: land the right half. The label may already exist — a peer racing
  // the same deterministic split (identical bytes), or an earlier split whose
  // right half started at the same attribute (a cut inside a run of equal
  // attrs; different bytes). Unioning converges both: the left truncation
  // below must never run unless every right-half entry is durable somewhere.
  MC_RETURN_IF_ERROR(WriteLeafUnioning(right_label, right));
  if (InjectedFault(FaultPoint::kIndexSplit, FailPoint::kAfterRightInsert,
                    "leaf-split:" + table_)) {
    // Crash between insert and truncate: the right half exists twice. Both
    // copies hold identical (attr, pk) entries, so queries merely see
    // duplicate candidates; the next Add routed here finishes the job.
    return Status::Aborted("injected index split failure");
  }
  // Step 2: truncate the left leaf under its pre-split hash. ConditionFailed
  // means a peer (or our own ambiguously-applied attempt) already did.
  const Status ls = WriteIndexPack(kIndexLeafPartition, leaf.row_key, left, leaf.hash);
  if (ls.IsConditionFailed() || ls.IsAlreadyExists()) {
    return Status::Ok();
  }
  return ls;
}

Status SecondaryIndex::WriteLeafUnioning(const std::string& label, const Pack& pack) {
  Status s = WriteIndexPack(kIndexLeafPartition, label, pack, "");
  for (int attempt = 0; attempt < MaxRetries() && (s.IsConditionFailed() || s.IsAlreadyExists());
       ++attempt) {
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("index.retries");
    auto existing = ReadIndexRow(kIndexLeafPartition, label);
    if (!existing.ok()) {
      if (existing.status().IsNotFound()) {
        s = WriteIndexPack(kIndexLeafPartition, label, pack, "");
        continue;
      }
      return existing.status();
    }
    Pack unioned = existing->pack;
    bool changed = false;
    for (const auto& entry : pack.entries()) {
      changed |= unioned.Upsert(entry.key, entry.value);
    }
    if (!changed) {
      return Status::Ok();  // the stored leaf already holds all our entries
    }
    s = WriteIndexPack(kIndexLeafPartition, label, unioned, existing->hash);
  }
  return s;
}

// --- Bulk load ------------------------------------------------------------------

Status SecondaryIndex::BulkAdd(std::vector<std::pair<uint64_t, uint64_t>> attr_pk) {
  std::vector<Pack::Entry> entries;
  entries.reserve(attr_pk.size());
  for (const auto& [attr, pk] : attr_pk) {
    entries.push_back(Pack::Entry{EntryKey(attr, pk), ""});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Pack::Entry& a, const Pack::Entry& b) { return a.key < b.key; });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Pack::Entry& a, const Pack::Entry& b) {
                              return a.key == b.key;
                            }),
                entries.end());
  stats_.inserts.fetch_add(entries.size(), std::memory_order_relaxed);
  OBS_COUNTER_ADD("index.inserts", entries.size());
  const bool sorted_leaves = iopts_.leakage == IndexLeakage::kTotalOrder;
  const size_t chunk_rows = sorted_leaves ? LeafRows() : BufferSealRows();
  size_t i = 0;
  uint64_t seq = 0;
  while (i < entries.size()) {
    size_t take = std::min(chunk_rows, entries.size() - i);
    if (sorted_leaves) {
      // Never let the next leaf start with the attr this leaf started with:
      // both would be labeled OPE(attr) and the later write would replace the
      // earlier one. Extend through the run instead — the oversized leaf
      // splits on the next Add routed to it.
      while (i + take < entries.size() &&
             entries[i + take].key.compare(0, 8, entries[i].key, 0, 8) == 0) {
        ++take;
      }
    }
    std::vector<Pack::Entry> chunk(entries.begin() + static_cast<long>(i),
                                   entries.begin() + static_cast<long>(i + take));
    i += take;
    MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
    MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
    std::string row_key;
    if (sorted_leaves) {
      MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(*pack.MinKey()));
      row_key = ope_.Encrypt(decoded.first);
    } else {
      row_key = SegmentRowKey(seq++);
    }
    MC_RETURN_IF_ERROR(cluster_->Write(
        table_, sorted_leaves ? kIndexLeafPartition : kIndexBufferPartition, row_key,
        IndexPackRow(sealed)));
  }
  return Status::Ok();
}

// --- Query paths ----------------------------------------------------------------

Result<std::vector<uint64_t>> SecondaryIndex::LookupRange(uint64_t lo, uint64_t hi) {
  if (lo > hi) {
    return Status::InvalidArgument("index range low > high");
  }
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("index.lookups");
  OBS_SPAN("index.lookup");
  switch (iopts_.leakage) {
    case IndexLeakage::kNoOrder:
      return ScanCandidates(lo, hi);
    case IndexLeakage::kTotalOrder:
      return LookupTotalOrder(lo, hi);
    case IndexLeakage::kQueriedOrder:
      break;
  }
  std::vector<uint64_t> pks;
  const Status s = DrainForQuery(lo, hi, &pks);
  if (s.ok()) {
    return pks;
  }
  if (!s.IsAborted() && !s.IsUnavailable() && !s.IsConditionFailed()) {
    return s;
  }
  // The drain lost every race or tripped an injected fault. The unsorted
  // scan is always correct (and leaks nothing new); the next query retries
  // the drain.
  OBS_COUNTER_INC("index.drain_fallbacks");
  return ScanCandidates(lo, hi);
}

Status SecondaryIndex::DrainForQuery(uint64_t lo, uint64_t hi, std::vector<uint64_t>* pks) {
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    MC_ASSIGN_OR_RETURN(auto manifest_and_hash, ReadManifest());
    const Manifest& manifest = manifest_and_hash.first;
    const std::string& manifest_hash = manifest_and_hash.second;

    // POPE region merge: the new region spans the query and every existing
    // region it overlaps; disjoint regions are untouched (their order was
    // leaked by earlier queries, not this one).
    uint64_t nlo = lo;
    uint64_t nhi = hi;
    std::vector<Region> untouched;
    std::vector<uint64_t> absorbed_leaf_mins;
    bool grew = true;
    std::vector<Region> pending(manifest.regions);
    while (grew) {
      grew = false;
      std::vector<Region> next;
      for (Region& r : pending) {
        if (r.lo <= nhi && r.hi >= nlo) {
          nlo = std::min(nlo, r.lo);
          nhi = std::max(nhi, r.hi);
          absorbed_leaf_mins.insert(absorbed_leaf_mins.end(), r.leaf_mins.begin(),
                                    r.leaf_mins.end());
          grew = true;
        } else {
          next.push_back(std::move(r));
        }
      }
      pending = std::move(next);
    }
    untouched = std::move(pending);

    // Gather the buffered entries of [nlo, nhi] (and remember each source row
    // for post-commit truncation).
    std::vector<IndexRow> sources;
    auto buf = ReadIndexRow(kIndexBufferPartition, kIndexBufferRow);
    if (buf.ok()) {
      sources.push_back(std::move(*buf));
    } else if (!buf.status().IsNotFound()) {
      return buf.status();
    }
    MC_ASSIGN_OR_RETURN(auto segments, ReadSegments());
    for (IndexRow& seg : segments) {
      sources.push_back(std::move(seg));
    }

    std::vector<Pack::Entry> drained;  // buffered entries moving into leaves
    for (const IndexRow& src : sources) {
      for (const auto& entry : src.pack.entries()) {
        MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(entry.key));
        if (decoded.first >= nlo && decoded.first <= nhi) {
          drained.push_back(Pack::Entry{std::string(entry.key), std::string(entry.value)});
        }
      }
    }

    // Entries already materialized in the absorbed regions' leaves.
    std::vector<Pack::Entry> merged(std::move(drained));
    const size_t drained_count = merged.size();
    for (uint64_t leaf_min : absorbed_leaf_mins) {
      auto leaf = ReadIndexRow(kIndexLeafPartition, ope_.Encrypt(leaf_min));
      if (!leaf.ok()) {
        if (leaf.status().IsNotFound()) {
          continue;  // a crashed prior drain referenced it before writing? superset-safe
        }
        return leaf.status();
      }
      for (const auto& entry : leaf->pack.entries()) {
        merged.push_back(Pack::Entry{std::string(entry.key), std::string(entry.value)});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Pack::Entry& a, const Pack::Entry& b) { return a.key < b.key; });
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const Pack::Entry& a, const Pack::Entry& b) {
                               return a.key == b.key;
                             }),
                 merged.end());

    // Nothing buffered in range and exactly one existing region absorbed: the
    // manifest already describes this query's region, so answer straight from
    // the sorted leaves — no writes, no new leakage.
    if (drained_count == 0 && !absorbed_leaf_mins.empty() &&
        untouched.size() + 1 == manifest.regions.size()) {
      std::set<uint64_t> out;
      for (const auto& entry : merged) {
        MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(entry.key));
        if (decoded.first >= lo && decoded.first <= hi) {
          out.insert(decoded.second);
        }
      }
      pks->assign(out.begin(), out.end());
      PublishSortedRegions(manifest.regions.size());
      return Status::Ok();
    }

    // Cut the merged region into sorted leaves and write them. Leaf labels
    // are the OPE images of their min attrs — the only order the server
    // ever learns, and only for this (queried) region.
    Region region;
    region.lo = nlo;
    region.hi = nhi;
    std::vector<std::pair<std::string, Pack>> leaves;
    size_t i = 0;
    while (i < merged.size()) {
      const size_t take = std::min(LeafRows(), merged.size() - i);
      std::vector<Pack::Entry> chunk(merged.begin() + static_cast<long>(i),
                                     merged.begin() + static_cast<long>(i + take));
      i += take;
      MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
      MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(*pack.MinKey()));
      region.leaf_mins.push_back(decoded.first);
      leaves.emplace_back(ope_.Encrypt(decoded.first), std::move(pack));
    }
    for (const auto& [label, pack] : leaves) {
      // Reusing a label from an absorbed region rewrites that leaf; a brand
      // new label inserts. Concurrent drains writing the same label converge
      // by unioning, so a manifest can never commit while referencing a leaf
      // that is missing drained entries (that would let the truncation below
      // lose them).
      MC_RETURN_IF_ERROR(WriteLeafUnioning(label, pack));
    }

    if (InjectedFault(FaultPoint::kIndexSplit, FailPoint::kAfterLeafWrite,
                      "drain:" + table_)) {
      // Crash before the commit point: leaves exist but the manifest does
      // not reference them. Entries stay live in the buffers, so nothing is
      // lost; the next drain rewrites the leaves and commits.
      return Status::Aborted("injected index drain failure before manifest commit");
    }

    // The atomic commit point: publish the new region list under the
    // manifest hash we started from.
    Manifest updated;
    updated.regions = untouched;
    updated.regions.push_back(region);
    std::sort(updated.regions.begin(), updated.regions.end(),
              [](const Region& a, const Region& b) { return a.lo < b.lo; });
    const Status cs = WriteManifest(updated, manifest_hash);
    if (cs.IsConditionFailed() || cs.IsAlreadyExists()) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNTER_INC("index.retries");
      continue;  // another drain committed first; re-merge against its result
    }
    if (!cs.ok()) {
      return cs;
    }
    stats_.drains.fetch_add(1, std::memory_order_relaxed);
    stats_.drained_entries.fetch_add(drained_count, std::memory_order_relaxed);
    OBS_COUNTER_INC("index.drains");
    OBS_COUNTER_ADD("index.drained_entries", drained_count);
    PublishSortedRegions(updated.regions.size());

    if (!InjectedFault(FaultPoint::kIndexPersist, FailPoint::kAfterRootCommit,
                       "drain-truncate:" + table_)) {
      // Truncate the drained entries out of their source rows. Every write is
      // conditioned on the hash read before the commit; a lost condition
      // means a concurrent writer touched the row — its entries simply stay
      // duplicated (queries dedup) until a later drain retires them.
      for (const IndexRow& src : sources) {
        Pack trimmed;
        bool any_removed = false;
        for (const auto& entry : src.pack.entries()) {
          MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(entry.key));
          if (decoded.first >= nlo && decoded.first <= nhi) {
            any_removed = true;
          } else {
            trimmed.Upsert(entry.key, entry.value);
          }
        }
        if (!any_removed) {
          continue;
        }
        const Status ts = WriteIndexPack(kIndexBufferPartition, src.row_key, trimmed, src.hash);
        if (!ts.ok() && !ts.IsConditionFailed() && !ts.IsAlreadyExists() &&
            !ts.IsUnavailable()) {
          return ts;
        }
      }
    }

    std::set<uint64_t> out;
    for (const auto& entry : merged) {
      MC_ASSIGN_OR_RETURN(auto decoded, DecodeEntryKey(entry.key));
      if (decoded.first >= lo && decoded.first <= hi) {
        out.insert(decoded.second);
      }
    }
    pks->assign(out.begin(), out.end());
    return Status::Ok();
  }
  return Status::Aborted("index drain lost every manifest race (" + table_ + ")");
}

Result<std::vector<uint64_t>> SecondaryIndex::ScanCandidates(uint64_t lo, uint64_t hi) {
  std::set<uint64_t> pks;
  auto buf = ReadIndexRow(kIndexBufferPartition, kIndexBufferRow);
  if (buf.ok()) {
    MC_RETURN_IF_ERROR(CollectInRange(buf->pack, lo, hi, &pks));
  } else if (!buf.status().IsNotFound()) {
    return buf.status();
  }
  MC_ASSIGN_OR_RETURN(auto segments, ReadSegments());
  for (const IndexRow& seg : segments) {
    MC_RETURN_IF_ERROR(CollectInRange(seg.pack, lo, hi, &pks));
  }
  // Entries drained into leaves by earlier queries (kQueriedOrder) are no
  // longer in the buffers; walk the manifest's overlapping regions too.
  MC_ASSIGN_OR_RETURN(auto manifest_and_hash, ReadManifest());
  for (const Region& r : manifest_and_hash.first.regions) {
    if (r.lo > hi || r.hi < lo) {
      continue;
    }
    for (uint64_t leaf_min : r.leaf_mins) {
      auto leaf = ReadIndexRow(kIndexLeafPartition, ope_.Encrypt(leaf_min));
      if (!leaf.ok()) {
        if (leaf.status().IsNotFound()) {
          continue;
        }
        return leaf.status();
      }
      MC_RETURN_IF_ERROR(CollectInRange(leaf->pack, lo, hi, &pks));
    }
  }
  return std::vector<uint64_t>(pks.begin(), pks.end());
}

Result<std::vector<uint64_t>> SecondaryIndex::LookupTotalOrder(uint64_t lo, uint64_t hi) {
  const std::string slo = ope_.Encrypt(lo);
  const std::string shi = ope_.Encrypt(hi);
  Result<std::vector<std::pair<std::string, Row>>> rows =
      Status::Unavailable("leaf scan never attempted");
  for (int attempt = 0; attempt < MaxRetries(); ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    rows = cluster_->ReadRange(table_, kIndexLeafPartition, slo, shi);
    if (rows.ok() || !rows.status().IsUnavailable()) {
      break;
    }
  }
  if (!rows.ok()) {
    return rows.status();
  }
  std::set<uint64_t> pks;
  for (const auto& [label, row] : *rows) {
    MC_ASSIGN_OR_RETURN(auto cells, ExtractIndexCells(row));
    MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
    MC_RETURN_IF_ERROR(CollectInRange(pack, lo, hi, &pks));
  }
  // The leaf covering `lo` may be labeled strictly below it (Figure 4
  // line 5) — and it must be consulted even when a leaf labeled exactly
  // OPE(lo) exists: a split that cut inside a run of equal attributes leaves
  // in-range entries on both sides of the label. One strictly-below leaf
  // suffices: entries in deeper leaves with attr >= lo are either routed
  // duplicates already covered above or moved upward by the split that
  // created the next label.
  if (auto pred = PredecessorKey(slo); pred.has_value()) {
    auto floor = cluster_->ReadFloor(table_, kIndexLeafPartition, *pred);
    if (floor.ok()) {
      MC_ASSIGN_OR_RETURN(auto cells, ExtractIndexCells(floor->second));
      MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
      MC_RETURN_IF_ERROR(CollectInRange(pack, lo, hi, &pks));
    } else if (!floor.status().IsNotFound()) {
      return floor.status();
    }
  }
  return std::vector<uint64_t>(pks.begin(), pks.end());
}

void SecondaryIndex::NoteStaleFiltered(uint64_t n) {
  if (n == 0) {
    return;
  }
  stats_.stale_filtered.fetch_add(n, std::memory_order_relaxed);
  OBS_COUNTER_ADD("index.stale_filtered", n);
}

Result<uint64_t> SecondaryIndex::SortedRegions() {
  switch (iopts_.leakage) {
    case IndexLeakage::kNoOrder:
      return uint64_t{0};
    case IndexLeakage::kTotalOrder: {
      MC_ASSIGN_OR_RETURN(auto rows, cluster_->ReadRange(table_, kIndexLeafPartition, "",
                                                         std::string(kOpeCiphertextBytes, '\xff'),
                                                         /*limit=*/1));
      return rows.empty() ? uint64_t{0} : uint64_t{1};
    }
    case IndexLeakage::kQueriedOrder:
      break;
  }
  MC_ASSIGN_OR_RETURN(auto manifest_and_hash, ReadManifest());
  const uint64_t regions = manifest_and_hash.first.regions.size();
  PublishSortedRegions(regions);
  return regions;
}

}  // namespace minicrypt
