// Burrows-Wheeler transform and move-to-front stages of the Bzip2Like codec.
//
// The forward transform uses the suffix array of (input + sentinel) built with
// prefix-doubling (O(n log^2 n)) — fine for the <= 256 KiB blocks Bzip2Like
// feeds it. The inverse uses the standard LF-mapping walk.

#ifndef MINICRYPT_SRC_COMPRESS_BWT_H_
#define MINICRYPT_SRC_COMPRESS_BWT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace minicrypt {

struct BwtResult {
  std::string transformed;   // same length as input
  uint32_t primary_index;    // row of the original string, needed to invert
};

// Forward BWT. Input may be any bytes (a virtual sentinel smaller than every
// byte is used internally, it is not emitted).
BwtResult BwtForward(std::string_view input);

// Inverse BWT; Corruption if primary_index is out of range.
Result<std::string> BwtInverse(std::string_view transformed, uint32_t primary_index);

// Move-to-front transform (in place conceptually; returns the rank stream).
std::string MtfForward(std::string_view input);
std::string MtfInverse(std::string_view ranks);

// Zero-run-length encoding applied after MTF (bzip2's RUNA/RUNB trick,
// simplified): emits a symbol stream over a 258-symbol alphabet —
//   0..255   -> literal byte value (ranks shifted by +1, see .cc)
//   256, 257 -> binary run-length digits for runs of rank-0 symbols
// Returned as uint16 symbols for the Huffman stage.
std::vector<uint16_t> ZrleForward(std::string_view mtf_ranks);
Result<std::string> ZrleInverse(const std::vector<uint16_t>& symbols);

inline constexpr unsigned kZrleAlphabet = 258;

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_BWT_H_
