#include "src/compress/bzip2_like.h"

#include <vector>

#include "src/common/coding.h"
#include "src/compress/bwt.h"
#include "src/compress/huffman.h"

namespace minicrypt {

namespace {

// Per-block wire format:
//   varint raw_len
//   fixed32 primary_index
//   length table: 258 x 4-bit-packed code lengths? — we keep it simple and
//   store each length in one byte (258 bytes), then varint symbol count and
//   the Huffman-coded symbol stream (byte-aligned at block end).
void CompressBlock(std::string_view block, std::string* out) {
  PutVarint64(out, block.size());
  const BwtResult bwt = BwtForward(block);
  PutFixed32(out, bwt.primary_index);
  const std::string mtf = MtfForward(bwt.transformed);
  const std::vector<uint16_t> symbols = ZrleForward(mtf);

  std::vector<uint64_t> freqs(kZrleAlphabet, 0);
  for (uint16_t s : symbols) {
    freqs[s]++;
  }
  const std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs);
  out->append(reinterpret_cast<const char*>(lengths.data()), lengths.size());
  PutVarint64(out, symbols.size());
  HuffmanEncoder enc(lengths);
  BitWriter writer(out);
  for (uint16_t s : symbols) {
    enc.Encode(&writer, s);
  }
  writer.Finish();
}

Result<std::string> DecompressBlock(std::string_view* in) {
  MC_ASSIGN_OR_RETURN(uint64_t raw_len, GetVarint64(in));
  if (raw_len > (1ULL << 31)) {
    return Status::Corruption("bzip2like: oversized block");
  }
  MC_ASSIGN_OR_RETURN(uint32_t primary, GetFixed32(in));
  if (in->size() < kZrleAlphabet) {
    return Status::Corruption("bzip2like: truncated length table");
  }
  std::vector<uint8_t> lengths(kZrleAlphabet);
  for (size_t i = 0; i < kZrleAlphabet; ++i) {
    lengths[i] = static_cast<uint8_t>((*in)[i]);
  }
  in->remove_prefix(kZrleAlphabet);
  MC_ASSIGN_OR_RETURN(uint64_t symbol_count, GetVarint64(in));
  if (symbol_count > (1ULL << 31)) {
    return Status::Corruption("bzip2like: absurd symbol count");
  }
  MC_ASSIGN_OR_RETURN(HuffmanDecoder dec, HuffmanDecoder::Make(lengths));

  // The Huffman payload is byte-aligned and its byte length is not stored;
  // decode symbol_count symbols, then compute consumed bytes from the bit
  // count. To do that we decode from a reader over the remaining input and
  // track how much it consumed via symbol-by-symbol decode.
  //
  // BitReader consumes from a view; we give it the whole remainder and then
  // re-derive the consumed prefix length from the number of bits read. Since
  // BitReader does not expose position, we conservatively re-scan: decode
  // while counting bits via a counting wrapper.
  std::vector<uint16_t> symbols;
  symbols.reserve(symbol_count);
  // Count bits by decoding with a local reader and measuring leftover.
  size_t bits_used = 0;
  {
    BitReader reader(*in);
    for (uint64_t i = 0; i < symbol_count; ++i) {
      // Decode() reads bit-by-bit; we cannot observe its count directly, so
      // recompute: decode symbol, then add its code length.
      MC_ASSIGN_OR_RETURN(unsigned sym, dec.Decode(&reader));
      symbols.push_back(static_cast<uint16_t>(sym));
      bits_used += lengths[sym];
    }
  }
  const size_t bytes_used = (bits_used + 7) / 8;
  if (in->size() < bytes_used) {
    return Status::Corruption("bzip2like: truncated payload");
  }
  in->remove_prefix(bytes_used);

  MC_ASSIGN_OR_RETURN(std::string mtf, ZrleInverse(symbols));
  const std::string transformed = MtfInverse(mtf);
  if (transformed.size() != raw_len) {
    return Status::Corruption("bzip2like: block size mismatch");
  }
  return BwtInverse(transformed, primary);
}

}  // namespace

Result<std::string> Bzip2LikeCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  size_t pos = 0;
  while (pos < input.size()) {
    const size_t len = std::min(block_size_, input.size() - pos);
    CompressBlock(input.substr(pos, len), &out);
    pos += len;
  }
  return out;
}

Result<std::string> Bzip2LikeCompressor::Decompress(std::string_view input) const {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t total, GetVarint64(&in));
  if (total > (1ULL << 32)) {
    return Status::Corruption("bzip2like: oversized frame");
  }
  std::string out;
  out.reserve(total);
  while (out.size() < total) {
    MC_ASSIGN_OR_RETURN(std::string block, DecompressBlock(&in));
    if (block.empty()) {
      return Status::Corruption("bzip2like: empty block before declared end");
    }
    out += block;
  }
  if (out.size() != total) {
    return Status::Corruption("bzip2like: frame size mismatch");
  }
  return out;
}

}  // namespace minicrypt
