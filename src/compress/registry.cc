#include <array>

#include "src/compress/bzip2_like.h"
#include "src/compress/compressor.h"
#include "src/compress/lz4_like.h"
#include "src/compress/lzma_like.h"
#include "src/compress/snappy_like.h"
#include "src/compress/strawman.h"
#include "src/compress/zlib_compressor.h"

namespace minicrypt {

namespace {

struct Registry {
  SnappyLikeCompressor snappylike;
  Lz4LikeCompressor lz4like;
  ZlibCompressor zlib{6, "zlib"};
  ZlibCompressor zlib9{9, "zlib9"};
  Bzip2LikeCompressor bzip2like;
  LzmaLikeCompressor lzmalike;
  RleCompressor rle;
};

const Registry& GetRegistry() {
  static const Registry registry;
  return registry;
}

}  // namespace

const Compressor* FindCompressor(std::string_view name) {
  const Registry& r = GetRegistry();
  const std::array<const Compressor*, 7> all = {&r.snappylike, &r.lz4like, &r.zlib,
                                                &r.zlib9,      &r.bzip2like, &r.lzmalike,
                                                &r.rle};
  for (const Compressor* c : all) {
    if (c->Name() == name) {
      return c;
    }
  }
  return nullptr;
}

std::vector<std::string_view> AllCompressorNames() {
  // Ratio/speed survey order, fastest first (the five algorithms of Fig. 2).
  return {"snappylike", "lz4like", "zlib", "bzip2like", "lzmalike"};
}

const Compressor* DefaultCompressor() { return FindCompressor("zlib"); }

}  // namespace minicrypt
